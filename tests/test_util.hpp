// Shared fixtures and helpers for the test matrix.
//
// The suites grew near-identical private fakes (a two-node CAN bus, a
// scripted VM port environment, canned installation packages); those live
// here now.  Everything is header-only and lazily instantiated, so light
// suites (support, os) can include this header without linking the heavier
// modules they never touch.
//
// Randomized ("property") suites draw their generator from PropertySeed():
// set DACM_TEST_SEED to replay a failing run — the seed is attached to
// every failure message via DACM_PROPERTY_RNG.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bsw/can_if.hpp"
#include "bsw/can_tp.hpp"
#include "fes/appgen.hpp"
#include "pirte/package.hpp"
#include "sim/can_bus.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"
#include "vm/interpreter.hpp"

namespace dacm::testutil {

// --- deterministic property-test seeding -------------------------------------------

/// The run-wide seed for randomized suites.  Reads DACM_TEST_SEED when set
/// (any strtoull base-0 literal); otherwise draws a fresh random seed once
/// per process so successive runs explore different inputs.
inline std::uint64_t PropertySeed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("DACM_TEST_SEED"); env && *env != '\0') {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
    }
    std::random_device device;
    return (static_cast<std::uint64_t>(device()) << 32) | device();
  }();
  return seed;
}

// Declares `rng` seeded from PropertySeed() and arranges for any failure in
// the enclosing scope to print the reproduction command.
#define DACM_PROPERTY_RNG(rng)                                              \
  SCOPED_TRACE(::testing::Message() << "reproduce with DACM_TEST_SEED="     \
                                    << ::dacm::testutil::PropertySeed());   \
  ::dacm::sim::Rng rng(::dacm::testutil::PropertySeed())

/// Simulator lane count for suites that honor DACM_SIM_LANES (the TSan
/// CI job exports 4 so deterministic suites replay on the parallel lane
/// engine).  Unset/empty/zero falls back; values clamp to the engine's
/// lane ceiling.
inline std::size_t LanesFromEnvOr(std::size_t fallback) {
  if (const char* env = std::getenv("DACM_SIM_LANES"); env && *env != '\0') {
    const auto lanes = static_cast<std::size_t>(std::strtoull(env, nullptr, 0));
    if (lanes >= 1) {
      return lanes > sim::Simulator::kMaxSimLanes
                 ? sim::Simulator::kMaxSimLanes
                 : lanes;
    }
  }
  return fallback;
}

/// In-place Fisher-Yates shuffle driven by the deterministic Rng.
template <typename T>
void Shuffle(sim::Rng& rng, std::vector<T>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.NextBelow(i)]);
  }
}

// --- scripted CAN bus --------------------------------------------------------------

/// Two CAN interfaces on one simulated bus, driven by the deterministic
/// simulator clock.  The base of every bsw-level fixture.
struct TwoNodeCanBus {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  bsw::CanIf if_a{bus, "A"};
  bsw::CanIf if_b{bus, "B"};
};

/// A unidirectional CanTp link (tx on node A, rx on node B) that captures
/// every reassembled message and every transport error.
struct ScriptedTpLink : TwoNodeCanBus {
  bsw::CanTp tx{if_a, /*tx_id=*/0x100, /*rx_id=*/0x101};
  bsw::CanTp rx{if_b, /*tx_id=*/0x101, /*rx_id=*/0x100};
  std::vector<support::Bytes> messages;
  std::vector<support::Status> errors;

  ScriptedTpLink() {
    rx.SetMessageHandler(
        [this](const support::Bytes& m) { messages.push_back(m); });
    rx.SetErrorHandler(
        [this](const support::Status& s) { errors.push_back(s); });
  }
};

/// Deterministic, size-dependent payload: byte i of an n-byte pattern is
/// (i * 31 + n) mod 256, so truncation and cross-size mixups are visible.
inline support::Bytes PatternBytes(std::size_t size) {
  support::Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>((i * 31 + size) & 0xFF);
  }
  return data;
}

// --- scripted VM port environment --------------------------------------------------

/// In-memory PortEnv standing in for a PIRTE: scripted reads, captured
/// writes, and a deterministic clock.  A default-constructed instance acts
/// as a null environment (no ports available, clock pinned to zero).
class ScriptedVmEnv : public vm::PortEnv {
 public:
  support::Result<support::Bytes> ReadPort(std::uint8_t port) override {
    auto it = port_data.find(port);
    if (it == port_data.end()) return support::Bytes{};
    return it->second;
  }
  support::Status WritePort(std::uint8_t port,
                            std::span<const std::uint8_t> data) override {
    writes.emplace_back(port, support::Bytes(data.begin(), data.end()));
    return support::OkStatus();
  }
  bool PortAvailable(std::uint8_t port) override {
    return available.contains(port);
  }
  std::uint32_t ClockMs() override { return clock_ms; }

  std::map<std::uint8_t, support::Bytes> port_data;
  std::set<std::uint8_t> available;
  std::uint32_t clock_ms = 0;
  std::vector<std::pair<std::uint8_t, support::Bytes>> writes;
};

// --- canned installation packages --------------------------------------------------

/// Assembles a context package from its parts.
inline pirte::InstallationPackage MakeCannedPackage(
    const std::string& name, support::Bytes binary,
    std::vector<pirte::PicEntry> pic, std::vector<pirte::PlcEntry> plc = {},
    std::vector<pirte::EccEntry> ecc = {}, const std::string& version = "1.0") {
  pirte::InstallationPackage package;
  package.plugin_name = name;
  package.version = version;
  package.pic.entries = std::move(pic);
  package.plc.entries = std::move(plc);
  package.ecc.entries = std::move(ecc);
  package.binary = std::move(binary);
  return package;
}

/// An echo plug-in whose required port `in_unique` loops straight back out
/// of provided port `out_unique` over a Type II virtual channel — the
/// canonical "smallest useful plug-in" used across the PIRTE suites.
inline pirte::InstallationPackage MakeEchoLoopbackPackage(
    const std::string& name, std::uint8_t in_unique, std::uint8_t out_unique) {
  return MakeCannedPackage(
      name, fes::MakeEchoPluginBinary(),
      {{0, "in", in_unique, pirte::PluginPortDirection::kRequired},
       {1, "out", out_unique, pirte::PluginPortDirection::kProvided}},
      {{1, pirte::PlcKind::kVirtual, 4, 0, "", 0}});
}

}  // namespace dacm::testutil
