// Crash-consistent persistence and kill-and-restart recovery.
//
// Three layers under test, bottom up:
//
//  * storage framing (support/storage.hpp): CRC-framed record streams
//    must replay exactly the durable prefix — torn tails (crash
//    mid-append, fabricated by TruncateTo or a FaultingSink budget) and
//    corrupted frames truncate silently instead of failing recovery;
//
//  * the durable images (server/status_db.hpp, server/journal.hpp):
//    status paragraphs fold last-writer-wins with tombstone erasure, the
//    campaign journal folds per-id to the last committed tick;
//
//  * whole-server recovery: a TrustedServer + CampaignEngine killed
//    mid-campaign (inside one simulator event, via
//    FaultScenario::KillAndRestartServer) is rebuilt from the status DB
//    and journal, resumes the retry cadence without re-pushing converged
//    rows, rematerializes dropped package bytes from the re-uploaded
//    catalog, and — the acceptance bar — produces a Describe()
//    fingerprint byte-identical to an uninterrupted run.
//
// Labelled `recovery` in ctest; the TSan CI job runs this label too, to
// keep the status-DB writes from shard workers race-clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/campaign.hpp"
#include "server/catalog.hpp"
#include "server/journal.hpp"
#include "server/status_db.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/bytes.hpp"
#include "support/storage.hpp"

namespace dacm {
namespace {

using server::CampaignJournal;
using server::CampaignKind;
using server::CampaignStatus;
using server::DbState;
using server::InstallState;
using server::JournalRowEntry;
using server::StatusDb;
using server::StatusParagraph;
using server::Want;
using server::CatalogImage;
using server::StatusImage;
using support::CheckpointWriter;
using support::ErrorCode;
using support::FaultingSink;
using support::MemorySink;
using support::RecordWriter;
using support::ReplayRecords;
using support::ReplayStats;

// --- storage framing ---------------------------------------------------------------

support::Bytes Payload(std::string_view text) {
  return support::Bytes(text.begin(), text.end());
}

/// Replays `data` collecting every decoded payload as a string.
ReplayStats Replay(std::span<const std::uint8_t> data,
                   std::vector<std::string>* out) {
  auto stats = ReplayRecords(data, [&](std::span<const std::uint8_t> payload) {
    out->emplace_back(payload.begin(), payload.end());
    return support::OkStatus();
  });
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? *stats : ReplayStats{};
}

TEST(RecordStorageTest, FramedRecordsRoundTrip) {
  MemorySink sink;
  RecordWriter writer(sink);
  ASSERT_TRUE(writer.Append(Payload("alpha")).ok());
  ASSERT_TRUE(writer.Append(Payload("")).ok());  // empty payloads are legal
  ASSERT_TRUE(writer.Append(Payload("gamma-gamma")).ok());

  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(sink.bytes(), &decoded);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.valid_bytes, sink.bytes().size());
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(decoded,
            (std::vector<std::string>{"alpha", "", "gamma-gamma"}));
}

TEST(RecordStorageTest, EmptyImageReplaysToNothing) {
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay({}, &decoded);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_FALSE(stats.truncated);
  EXPECT_TRUE(decoded.empty());
}

TEST(RecordStorageTest, TornTailTruncatesToLastDurableRecord) {
  MemorySink sink;
  RecordWriter writer(sink);
  ASSERT_TRUE(writer.Append(Payload("first")).ok());
  ASSERT_TRUE(writer.Append(Payload("second")).ok());
  const std::size_t durable = sink.bytes().size();
  ASSERT_TRUE(writer.Append(Payload("torn-away")).ok());

  // Crash lands mid-frame: only part of the third append survives.
  sink.TruncateTo(durable + 5);
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(sink.bytes(), &decoded);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.valid_bytes, durable);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"first", "second"}));
}

TEST(RecordStorageTest, CrcMismatchStopsReplayAtTheBadFrame) {
  MemorySink sink;
  RecordWriter writer(sink);
  ASSERT_TRUE(writer.Append(Payload("good")).ok());
  const std::size_t first_frame = sink.bytes().size();
  ASSERT_TRUE(writer.Append(Payload("flipped")).ok());
  ASSERT_TRUE(writer.Append(Payload("unreachable")).ok());

  support::Bytes image = sink.bytes();
  image[first_frame + 8] ^= 0x40;  // one bit inside the second payload

  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(image, &decoded);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.valid_bytes, first_frame);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"good"}));
}

TEST(RecordStorageTest, FaultingSinkProducesExactlyATornTail) {
  MemorySink inner;
  FaultingSink faulty(inner, /*fail_after=*/8 + 5 + 3);  // mid second frame
  RecordWriter writer(faulty);
  ASSERT_TRUE(writer.Append(Payload("alpha")).ok());
  EXPECT_FALSE(faulty.torn());
  EXPECT_FALSE(writer.Append(Payload("beta")).ok());
  EXPECT_TRUE(faulty.torn());
  // Once torn, nothing further reaches the inner sink.
  const std::size_t torn_size = inner.bytes().size();
  EXPECT_FALSE(writer.Append(Payload("gamma")).ok());
  EXPECT_EQ(inner.bytes().size(), torn_size);

  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(inner.bytes(), &decoded);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"alpha"}));
}

TEST(RecordStorageTest, FileSinkAppendsAcrossReopen) {
  const std::string path = "dacm_test_recovery_filesink.log";
  {
    auto sink = support::FileSink::Open(path, /*truncate=*/true);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    RecordWriter writer(**sink);
    ASSERT_TRUE(writer.Append(Payload("one")).ok());
    ASSERT_TRUE(writer.Append(Payload("two")).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    // A restarted process appends to the surviving log.
    auto sink = support::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    RecordWriter writer(**sink);
    ASSERT_TRUE(writer.Append(Payload("three")).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  auto image = support::ReadFileBytes(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(*image, &decoded);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"one", "two", "three"}));

  EXPECT_EQ(support::ReadFileBytes("dacm_no_such_file.log").status().code(),
            ErrorCode::kNotFound);
  std::remove(path.c_str());
}

TEST(RecordStorageTest, RotateSwapsLogContentAndKeepsAppending) {
  MemorySink sink;
  RecordWriter writer(sink);
  ASSERT_TRUE(writer.Append(Payload("old-1")).ok());
  ASSERT_TRUE(writer.Append(Payload("old-2")).ok());

  CheckpointWriter checkpoint;
  ASSERT_TRUE(checkpoint.Append(Payload("folded")).ok());
  EXPECT_EQ(checkpoint.records(), 1u);
  ASSERT_TRUE(checkpoint.Commit(sink).ok());

  // The log now holds exactly the checkpoint image; appends continue
  // after it.
  EXPECT_EQ(sink.bytes().size(), checkpoint.image_bytes());
  ASSERT_TRUE(writer.Append(Payload("after")).ok());
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(sink.bytes(), &decoded);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"folded", "after"}));
}

TEST(RecordStorageTest, FileSinkRotateCommitsAtomicallyAcrossReopen) {
  const std::string path = "dacm_test_recovery_rotate.log";
  {
    auto sink = support::FileSink::Open(path, /*truncate=*/true);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    RecordWriter writer(**sink);
    ASSERT_TRUE(writer.Append(Payload("pre-rotate")).ok());

    CheckpointWriter checkpoint;
    ASSERT_TRUE(checkpoint.Append(Payload("image")).ok());
    ASSERT_TRUE(checkpoint.Commit(**sink).ok());
    // Rotation is write-temp + sync + rename: no temp file survives.
    EXPECT_EQ(support::ReadFileBytes(path + ".rotate").status().code(),
              ErrorCode::kNotFound);
    // The rotated sink reopened in append mode: the log keeps growing.
    ASSERT_TRUE(writer.Append(Payload("post-rotate")).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  auto image = support::ReadFileBytes(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(*image, &decoded);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(decoded, (std::vector<std::string>{"image", "post-rotate"}));
  std::remove(path.c_str());
}

TEST(RecordStorageTest, FaultedRotationLeavesTheOldLogUntouched) {
  MemorySink inner;
  RecordWriter writer(inner);
  ASSERT_TRUE(writer.Append(Payload("survivor")).ok());
  const support::Bytes before = inner.bytes();

  CheckpointWriter checkpoint;
  ASSERT_TRUE(checkpoint.Append(Payload("never-lands")).ok());
  FaultingSink faulty(inner, /*fail_after=*/4);  // image larger than budget
  EXPECT_FALSE(checkpoint.Commit(faulty).ok());
  EXPECT_TRUE(faulty.torn());
  // All-or-nothing: a failed rotation must not tear the old log — the
  // un-rotated records are still the durable truth.
  EXPECT_EQ(inner.bytes(), before);
  // The image survives the failure, so a retry against a healthy sink
  // commits.
  ASSERT_TRUE(checkpoint.Commit(inner).ok());
  std::vector<std::string> decoded;
  Replay(inner.bytes(), &decoded);
  EXPECT_EQ(decoded, (std::vector<std::string>{"never-lands"}));
}

/// MemorySink that counts Sync() calls — the observable side of the
/// RecordWriter durability knob (for FileSink a Sync is fflush + fsync).
struct CountingSyncSink : support::MemorySink {
  std::size_t syncs = 0;
  support::Status Sync() override {
    ++syncs;
    return support::MemorySink::Sync();
  }
};

TEST(RecordStorageTest, WriterSyncsEveryNthFrameWhenAsked) {
  CountingSyncSink sink;
  RecordWriter writer(sink, /*sync_every_n_frames=*/3);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(writer.Append(Payload("r" + std::to_string(i))).ok());
  }
  // 7 frames at N=3: syncs after frames 3 and 6, the 7th rides until the
  // next boundary — a power loss loses at most N-1 acknowledged frames.
  EXPECT_EQ(sink.syncs, 2u);
  ASSERT_TRUE(writer.Append(Payload("r7")).ok());
  ASSERT_TRUE(writer.Append(Payload("r8")).ok());
  EXPECT_EQ(sink.syncs, 3u);

  // Default (0) never syncs explicitly, matching the historic behavior.
  CountingSyncSink unsynced;
  RecordWriter lazy(unsynced);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(lazy.Append(Payload("x")).ok());
  }
  EXPECT_EQ(unsynced.syncs, 0u);

  // The synced stream replays like any other.
  std::vector<std::string> decoded;
  const ReplayStats stats = Replay(sink.bytes(), &decoded);
  EXPECT_EQ(stats.records, 9u);
  EXPECT_FALSE(stats.truncated);
}

// --- status DB ---------------------------------------------------------------------

StatusParagraph MakeParagraph(std::string vin, std::string app, Want want,
                              DbState state) {
  StatusParagraph paragraph;
  paragraph.vin = std::move(vin);
  paragraph.app = std::move(app);
  paragraph.version = "1.0.0";
  paragraph.want = want;
  paragraph.state = state;
  return paragraph;
}

TEST(StatusDbTest, LastParagraphWinsAndTombstonesErase) {
  MemorySink sink;
  StatusDb db(sink);
  // (V2, maps): half-installed, then fully acknowledged — with the
  // recorded per-ECU port-id claims the recovering server must rebuild.
  ASSERT_TRUE(
      db.Append(MakeParagraph("V2", "maps", Want::kInstall, DbState::kHalfInstalled))
          .ok());
  StatusParagraph final_maps =
      MakeParagraph("V2", "maps", Want::kInstall, DbState::kInstalled);
  StatusParagraph::PluginIds ids;
  ids.plugin = "maps.p0";
  ids.ecu_id = 1;
  ids.unique_ids = {3, 4};
  final_maps.plugins.push_back(ids);
  ASSERT_TRUE(db.Append(final_maps).ok());
  // (V1, nav): installed, then erased by a tombstone.
  ASSERT_TRUE(
      db.Append(MakeParagraph("V1", "nav", Want::kInstall, DbState::kInstalled)).ok());
  ASSERT_TRUE(
      db.Append(MakeParagraph("V1", "nav", Want::kDeinstall, DbState::kNotInstalled))
          .ok());
  // (V1, maps): an uninstall caught mid-flight.
  ASSERT_TRUE(
      db.Append(MakeParagraph("V1", "maps", Want::kDeinstall, DbState::kHalfRemoved))
          .ok());

  auto replayed = StatusDb::Replay(sink.bytes());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed->size(), 2u);  // sorted by (vin, app); tombstone gone
  EXPECT_EQ((*replayed)[0].vin, "V1");
  EXPECT_EQ((*replayed)[0].app, "maps");
  EXPECT_EQ((*replayed)[0].want, Want::kDeinstall);
  EXPECT_EQ((*replayed)[0].state, DbState::kHalfRemoved);
  EXPECT_EQ((*replayed)[1].vin, "V2");
  EXPECT_EQ((*replayed)[1].state, DbState::kInstalled);
  ASSERT_EQ((*replayed)[1].plugins.size(), 1u);
  EXPECT_EQ((*replayed)[1].plugins[0].plugin, "maps.p0");
  EXPECT_EQ((*replayed)[1].plugins[0].ecu_id, 1u);
  EXPECT_EQ((*replayed)[1].plugins[0].unique_ids, (std::vector<std::uint8_t>{3, 4}));
}

TEST(StatusDbTest, DecodableButInvalidParagraphIsCorrupted) {
  // A frame whose CRC is intact but whose payload violates the paragraph
  // schema (want = 7) must fail replay loudly — that is corruption, not
  // a torn tail.
  support::ByteWriter payload;
  payload.WriteU8(1);  // paragraph version
  payload.WriteString("VIN-X");
  payload.WriteString("maps");
  payload.WriteString("1.0.0");
  payload.WriteU8(7);  // want: out of range
  payload.WriteU8(2);
  payload.WriteVarU32(0);  // no plugins

  MemorySink sink;
  RecordWriter writer(sink);
  ASSERT_TRUE(writer.Append(payload.bytes()).ok());
  EXPECT_EQ(StatusDb::Replay(sink.bytes()).status().code(), ErrorCode::kCorrupted);
}

TEST(StatusDbTest, TornTailYieldsThePriorParagraph) {
  MemorySink sink;
  StatusDb db(sink);
  ASSERT_TRUE(
      db.Append(MakeParagraph("V1", "maps", Want::kInstall, DbState::kHalfInstalled))
          .ok());
  const std::size_t durable = sink.bytes().size();
  ASSERT_TRUE(
      db.Append(MakeParagraph("V1", "maps", Want::kInstall, DbState::kInstalled)).ok());
  sink.TruncateTo(durable + 6);

  auto replayed = StatusDb::Replay(sink.bytes());
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), 1u);
  // The crash forgot the acknowledgement: recovery re-arms the push.
  EXPECT_EQ((*replayed)[0].state, DbState::kHalfInstalled);
}

/// A minimal but realistic checkpoint image: one catalog kImage record
/// (as compaction writes first) followed by two live paragraphs.
support::Bytes MakeCheckpointImage() {
  CatalogImage catalog;
  catalog.users.push_back(server::User{"ops", {}});
  catalog.bindings.push_back(server::CatalogBinding{"V1", "m", 0});
  CheckpointWriter checkpoint;
  EXPECT_TRUE(checkpoint.Append(server::EncodeCatalogImage(catalog)).ok());
  EXPECT_TRUE(
      checkpoint
          .Append(StatusDb::EncodeParagraph(
              MakeParagraph("V1", "maps", Want::kInstall, DbState::kInstalled)))
          .ok());
  EXPECT_TRUE(
      checkpoint
          .Append(StatusDb::EncodeParagraph(MakeParagraph(
              "V2", "maps", Want::kInstall, DbState::kHalfInstalled)))
          .ok());
  return checkpoint.image();
}

TEST(StatusDbTest, CheckpointImageReplaysCatalogAndParagraphs) {
  const support::Bytes image = MakeCheckpointImage();
  auto replayed = StatusDb::ReplayImage(image);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed->catalog.users.size(), 1u);
  EXPECT_EQ(replayed->catalog.bindings.size(), 1u);
  ASSERT_EQ(replayed->paragraphs.size(), 2u);
  EXPECT_FALSE(replayed->stats.truncated);
  // A checkpoint IS the minimal live image: replaying it reports exactly
  // its own size as the live bytes (the compaction guard's denominator).
  EXPECT_EQ(replayed->live_bytes, image.size());
}

TEST(StatusDbTest, TornCheckpointTailRecoversTheDurablePrefix) {
  support::Bytes image = MakeCheckpointImage();
  image.resize(image.size() - 5);  // crash mid-final-paragraph
  auto replayed = StatusDb::ReplayImage(image);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->stats.truncated);
  EXPECT_EQ(replayed->catalog.users.size(), 1u);
  ASSERT_EQ(replayed->paragraphs.size(), 1u);
  EXPECT_EQ(replayed->paragraphs[0].vin, "V1");
}

TEST(StatusDbTest, BitFlippedCheckpointFrameStopsReplayThere) {
  support::Bytes image = MakeCheckpointImage();
  image[10] ^= 0x01;  // inside the catalog image record's payload
  auto replayed = StatusDb::ReplayImage(image);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  // The very first frame failed its CRC: nothing is durable.
  EXPECT_TRUE(replayed->stats.truncated);
  EXPECT_TRUE(replayed->catalog.empty());
  EXPECT_TRUE(replayed->paragraphs.empty());
}

TEST(StatusDbTest, EmptyLogReplaysToAnEmptyImage) {
  auto replayed = StatusDb::ReplayImage({});
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->catalog.empty());
  EXPECT_TRUE(replayed->paragraphs.empty());
  EXPECT_FALSE(replayed->stats.truncated);
}

// --- campaign journal --------------------------------------------------------------

TEST(CampaignJournalTest, FoldsToTheLastCommittedTick) {
  MemorySink sink;
  CampaignJournal journal(sink);
  std::vector<server::CampaignRow> rows(2);
  rows[0].vin = "VIN-A";
  rows[1].vin = "VIN-B";
  server::RetryPolicy policy;
  policy.max_waves = 3;
  ASSERT_TRUE(journal
                  .AppendStart(/*id=*/0, CampaignKind::kDeploy, /*user=*/7, "maps",
                               policy, /*started_at=*/1000, rows)
                  .ok());
  std::vector<JournalRowEntry> tick1(1);
  tick1[0].index = 1;
  tick1[0].state = server::CampaignRowState::kDone;
  tick1[0].attempts = 2;
  tick1[0].done_at = 5000;
  ASSERT_TRUE(journal.AppendRows(0, tick1).ok());
  ASSERT_TRUE(journal
                  .AppendWave(0, /*waves_pushed=*/1, /*total_pushes=*/2,
                              /*last_push_at=*/4000, /*next_tick_at=*/6000)
                  .ok());
  const std::size_t committed = sink.bytes().size();

  auto recovered = server::ReplayCampaignJournal(sink.bytes());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->size(), 1u);
  const server::RecoveredCampaign& campaign = (*recovered)[0];
  EXPECT_EQ(campaign.id, 0u);
  EXPECT_EQ(campaign.user, 7u);
  EXPECT_EQ(campaign.app_name, "maps");
  EXPECT_EQ(campaign.policy.max_waves, 3u);
  EXPECT_EQ(campaign.started_at, 1000u);
  ASSERT_EQ(campaign.rows.size(), 2u);
  EXPECT_EQ(campaign.rows[0].state, server::CampaignRowState::kPending);
  EXPECT_EQ(campaign.rows[1].state, server::CampaignRowState::kDone);
  EXPECT_EQ(campaign.rows[1].attempts, 2u);
  EXPECT_EQ(campaign.rows[1].done_at, 5000u);
  EXPECT_EQ(campaign.waves_pushed, 1u);
  EXPECT_EQ(campaign.total_pushes, 2u);
  EXPECT_EQ(campaign.next_tick_at, 6000u);
  EXPECT_EQ(campaign.status, CampaignStatus::kRunning);
  EXPECT_FALSE(campaign.forgotten);

  // A finish marker closes the fold...
  ASSERT_TRUE(journal.AppendFinish(0, CampaignStatus::kConverged, 9000).ok());
  recovered = server::ReplayCampaignJournal(sink.bytes());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)[0].status, CampaignStatus::kConverged);
  EXPECT_EQ((*recovered)[0].finished_at, 9000u);

  // ...and a tail torn mid-record rewinds to the previous tick.
  sink.TruncateTo(committed + 3);
  recovered = server::ReplayCampaignJournal(sink.bytes());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)[0].status, CampaignStatus::kRunning);
  EXPECT_EQ((*recovered)[0].next_tick_at, 6000u);
}

TEST(CampaignJournalTest, RowsWithoutAStartAreCorrupted) {
  MemorySink sink;
  CampaignJournal journal(sink);
  std::vector<JournalRowEntry> orphan(1);
  orphan[0].index = 0;
  ASSERT_TRUE(journal.AppendRows(/*id=*/5, orphan).ok());
  EXPECT_EQ(server::ReplayCampaignJournal(sink.bytes()).status().code(),
            ErrorCode::kCorrupted);
}

TEST(CampaignJournalTest, ForgetRecordTombstonesTheCampaign) {
  MemorySink sink;
  CampaignJournal journal(sink);
  std::vector<server::CampaignRow> rows(1);
  rows[0].vin = "VIN-A";
  ASSERT_TRUE(journal
                  .AppendStart(0, CampaignKind::kDeploy, 0, "maps",
                               server::RetryPolicy{}, 0, rows)
                  .ok());
  ASSERT_TRUE(journal.AppendFinish(0, CampaignStatus::kConverged, 100).ok());
  ASSERT_TRUE(journal.AppendForget(0).ok());
  auto recovered = server::ReplayCampaignJournal(sink.bytes());
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->size(), 1u);
  EXPECT_TRUE((*recovered)[0].forgotten);
}

TEST(CampaignJournalTest, ForgetWithoutAStartBecomesAForgottenPlaceholder) {
  // A compacted journal drops retired campaigns' full record chains and
  // keeps only the bare Forget tombstone — replay must materialize the
  // hole (and any implied earlier holes), not fail.
  MemorySink sink;
  CampaignJournal journal(sink);
  ASSERT_TRUE(journal.AppendForget(2).ok());
  std::vector<server::CampaignRow> rows(1);
  rows[0].vin = "VIN-A";
  ASSERT_TRUE(journal
                  .AppendStart(3, CampaignKind::kDeploy, 0, "maps",
                               server::RetryPolicy{}, 0, rows)
                  .ok());
  auto recovered = server::ReplayCampaignJournal(sink.bytes());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->size(), 4u);
  for (std::uint32_t id = 0; id <= 2; ++id) {
    EXPECT_TRUE((*recovered)[id].forgotten) << id;
  }
  EXPECT_FALSE((*recovered)[3].forgotten);
  EXPECT_EQ((*recovered)[3].app_name, "maps");
}

// --- whole-server kill-and-restart -------------------------------------------------

/// Quick retry cadence (mirrors test_campaign.cpp): settle 50 ms,
/// backoff 200 ms doubling.
server::RetryPolicy FastPolicy(std::size_t max_waves = 6) {
  server::RetryPolicy policy;
  policy.max_waves = max_waves;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 2 * sim::kSecond;
  return policy;
}

/// A campaign world whose server + engine can be killed and rebuilt from
/// the durable images mid-run.  The sinks, network, fleet and journal
/// outlive the kill — exactly the split a process crash produces (the
/// fleet is *other* machines; the logs are the disk).
struct RecoveryRig {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  support::MemorySink status_log;
  support::MemorySink journal_log;
  CampaignJournal journal{journal_log};
  std::unique_ptr<server::TrustedServer> server;
  std::unique_ptr<server::CampaignEngine> engine;
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;
  std::size_t shards;
  std::uint64_t compact_after_bytes;
  /// Everything uploaded, for the re-upload flavor of recovery (the
  /// catalog is also persisted in the log now — RestartFromLogOnly below
  /// recovers without touching this).
  std::vector<fes::SyntheticAppParams> catalog;

  explicit RecoveryRig(std::size_t vehicles, std::size_t shard_count = 4,
                       std::uint64_t compact_watermark = 0)
      : shards(shard_count), compact_after_bytes(compact_watermark) {
    NewServer();
    fes::ScriptedFleetOptions options;
    options.vehicle_count = vehicles;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, *server,
                                                 options);
    EXPECT_TRUE(fleet->BindAndConnect(user).ok());
    NewEngine();
  }

  /// A server with no catalog: what a restarted process has before
  /// recovery runs.
  void NewBareServer() {
    server::ServerOptions options;
    options.shard_count = shards;
    options.status_sink = &status_log;
    options.compact_after_bytes = compact_after_bytes;
    server = std::make_unique<server::TrustedServer>(network, "srv:443", options);
    EXPECT_TRUE(server->Start().ok());
  }

  void NewServer() {
    NewBareServer();
    EXPECT_TRUE(server->UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    user = *server->CreateUser("ops");
  }

  void NewEngine() {
    engine = std::make_unique<server::CampaignEngine>(simulator, *server);
    engine->AttachJournal(&journal);
  }

  void UploadApp(const std::string& name, std::uint32_t plugins = 2) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.target_ecu = 1;
    catalog.push_back(params);
    EXPECT_TRUE(server->UploadApp(fes::MakeSyntheticApp(params)).ok());
  }

  /// The crash: engine first (its timers go inert via the alive token),
  /// then the server (unlistens, closes every Pusher connection).
  void KillServer() {
    engine.reset();
    server.reset();
  }

  /// The documented recovery order (server.hpp): rebuild the catalog
  /// from uploads, re-bind the fleet, replay the status DB, reconnect,
  /// then resume campaigns from the journal.
  void RestartAndRecover() {
    NewServer();
    for (const fes::SyntheticAppParams& params : catalog) {
      EXPECT_TRUE(server->UploadApp(fes::MakeSyntheticApp(params)).ok());
    }
    for (const std::string& vin : fleet->vins()) {
      EXPECT_TRUE(server->BindVehicle(user, vin, "rpi-testbed").ok());
    }
    const support::Status recovered = server->RecoverInstallDb(status_log.bytes());
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    fleet->RetargetServer(*server);
    fleet->RedialDead();
    NewEngine();
    const support::Status resumed = engine->Recover(journal_log.bytes());
    EXPECT_TRUE(resumed.ok()) << resumed.ToString();
  }

  /// A restarted process scans each log and truncates the torn tail, so
  /// post-restart appends land after the durable prefix instead of
  /// behind unreachable garbage.
  static void TruncateToDurable(support::MemorySink& sink) {
    auto stats = ReplayRecords(
        sink.bytes(), [](std::span<const std::uint8_t>) {
          return support::OkStatus();
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    sink.TruncateTo(stats->valid_bytes);
  }

  /// Recovery with NOTHING re-uploaded: the status log's catalog records
  /// alone must make the restarted server serviceable.
  void RestartFromLogOnly() {
    TruncateToDurable(status_log);
    TruncateToDurable(journal_log);
    NewBareServer();
    const support::Status recovered = server->RecoverInstallDb(status_log.bytes());
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    fleet->RetargetServer(*server);
    fleet->RedialDead();
    NewEngine();
    const support::Status resumed = engine->Recover(journal_log.bytes());
    EXPECT_TRUE(resumed.ok()) << resumed.ToString();
  }
};

TEST(RecoveryTest, KilledBeforeAnyAckRematerializesPackagesAndConverges) {
  RecoveryRig rig(/*vehicles=*/4, /*shards=*/2);
  rig.UploadApp("maps");
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/3);

  auto id = rig.engine->StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                    FastPolicy());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Wave 1 pushes at T0; deliveries land at T0 + 1 ms.  The WAN drops at
  // T0 + 0.25 ms — so the batches still reach the vehicles, but every
  // acknowledgement send fails — and the server dies at T0 + 0.5 ms.
  // What survives: four half-installed status paragraphs (written ahead
  // of the pushes) and the journal's committed wave-1 tick.  No package
  // bytes survive anywhere.
  faults.LinkFlapAfter(sim::kMillisecond / 4,
                       sim::kMillisecond + sim::kMillisecond / 2);
  faults.KillAndRestartServer(
      sim::kMillisecond / 2, [&rig] { rig.KillServer(); },
      [&rig] { rig.RestartAndRecover(); });
  rig.simulator.Run();

  ASSERT_TRUE(rig.engine->Finished(*id));
  auto snapshot = *rig.engine->Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 4u);
  EXPECT_EQ(snapshot.waves_pushed, 2u);
  EXPECT_EQ(snapshot.total_pushes, 8u);  // 4 original + 4 recovered repushes
  // The recovered rows carried no package bytes: the retry wave had to
  // regenerate them from the re-uploaded catalog before re-pushing.
  EXPECT_EQ(rig.server->stats().repushes, 4u);
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server->AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }
}

TEST(RecoveryTest, ForgottenCampaignStaysForgottenAndConvergedRowsStayDone) {
  RecoveryRig rig(/*vehicles=*/2, /*shards=*/1);
  rig.UploadApp("maps");
  auto first = rig.engine->StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                       FastPolicy());
  ASSERT_TRUE(first.ok());
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine->Finished(*first));
  ASSERT_TRUE(rig.engine->Forget(*first).ok());

  rig.KillServer();
  rig.RestartAndRecover();

  // The forget tombstone survives recovery: the slot is a hole, not a
  // resurrected campaign.
  EXPECT_EQ(rig.engine->Snapshot(*first).status().code(), ErrorCode::kNotFound);

  // A fresh campaign over the recovered fleet: every row was already
  // installed per the status DB, so the wave converges with zero pushes —
  // the recovered server must not re-push converged rows.
  const std::uint64_t batches_before = rig.fleet->batches_received();
  auto second = rig.engine->StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                        FastPolicy());
  ASSERT_TRUE(second.ok());
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine->Finished(*second));
  auto snapshot = *rig.engine->Snapshot(*second);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.total_pushes, 0u);
  EXPECT_EQ(rig.fleet->batches_received(), batches_before);
  EXPECT_EQ(rig.server->stats().repushes, 0u);
}

/// What one fleet campaign run looks like from the outside — everything
/// the byte-identical acceptance check compares.
struct CampaignOutcome {
  std::string describe;
  CampaignStatus status = CampaignStatus::kRunning;
  std::size_t done = 0;
  std::uint64_t batches_received = 0;
};

/// Runs a 1k-vehicle campaign over 20% offline churn; when
/// `kill_mid_campaign`, the server + engine die at T0 + 500 ms — the
/// quiet window between the committed wave-2 evaluation (T0 + 300 ms)
/// and wave 3 (T0 + 700 ms) — and are rebuilt from the durable images
/// inside the same simulator event.
CampaignOutcome RunChurnedFleetCampaign(bool kill_mid_campaign) {
  RecoveryRig rig(/*vehicles=*/1000, /*shards=*/4);
  rig.UploadApp("fleet-app");
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/1914);
  faults.AddOfflineChurn(*rig.fleet, /*fraction=*/0.20,
                         /*horizon=*/10 * sim::kMillisecond,
                         /*min_offline=*/100 * sim::kMillisecond,
                         /*max_offline=*/400 * sim::kMillisecond);

  auto id = rig.engine->StartDeploy(rig.user, "fleet-app", rig.fleet->vins(),
                                    FastPolicy());
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (kill_mid_campaign) {
    faults.KillAndRestartServer(
        500 * sim::kMillisecond, [&rig] { rig.KillServer(); },
        [&rig] { rig.RestartAndRecover(); });
  }
  rig.simulator.Run();

  CampaignOutcome outcome;
  outcome.describe = rig.engine->Describe(*id);
  outcome.batches_received = rig.fleet->batches_received();
  auto snapshot = rig.engine->Snapshot(*id);
  EXPECT_TRUE(snapshot.ok());
  if (snapshot.ok()) {
    outcome.status = snapshot->status;
    outcome.done = snapshot->done;
  }
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server->AppState(vin, "fleet-app"), InstallState::kInstalled)
        << vin;
  }
  return outcome;
}

TEST(RecoveryTest, KilledMidCampaignServerResumesByteIdenticallyAtFleetScale) {
  const CampaignOutcome uninterrupted = RunChurnedFleetCampaign(false);
  const CampaignOutcome killed = RunChurnedFleetCampaign(true);

  EXPECT_EQ(uninterrupted.status, CampaignStatus::kConverged);
  EXPECT_EQ(killed.status, CampaignStatus::kConverged);
  EXPECT_EQ(killed.done, 1000u);
  // The acceptance bar: the recovered run's full campaign fingerprint —
  // per-row states, attempts, done times, wave and push totals — is
  // byte-identical to the run that never died, and the fleet saw exactly
  // the same batch pushes (nothing converged was re-pushed).
  EXPECT_EQ(killed.describe, uninterrupted.describe);
  EXPECT_EQ(killed.batches_received, uninterrupted.batches_received);
}

// --- persistent catalog ------------------------------------------------------------

TEST(RecoveryTest, RecoveredCatalogMakesServerServiceableWithoutReuploads) {
  RecoveryRig rig(/*vehicles=*/6, /*shards=*/2);
  rig.UploadApp("maps");
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/7);

  auto id = rig.engine->StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                    FastPolicy());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // Same shape as the rematerialization test above, but the restart
  // replays the LOG ALONE: no model re-upload, no app re-upload, no user
  // re-creation, no re-binding.  The catalog records in the status log
  // must carry everything — including the app binaries the retry wave
  // regenerates packages from.
  faults.LinkFlapAfter(sim::kMillisecond / 4,
                       sim::kMillisecond + sim::kMillisecond / 2);
  faults.KillAndRestartServer(
      sim::kMillisecond / 2, [&rig] { rig.KillServer(); },
      [&rig] { rig.RestartFromLogOnly(); });
  rig.simulator.Run();

  ASSERT_TRUE(rig.engine->Finished(*id));
  auto snapshot = *rig.engine->Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 6u);
  EXPECT_TRUE(rig.server->HasApp("maps"));
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server->AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }
  // The recovered rows had no package bytes; the pushes that converged
  // them were materialized from the *recovered* catalog.
  EXPECT_GT(rig.server->stats().repushes, 0u);
}

/// Recovers a fresh server from `image` and returns its fleet fingerprint
/// text.  Deliberately sharded differently from the rig: the fingerprint
/// must not depend on shard placement.
std::string RecoverDescribeFleet(RecoveryRig& rig, std::uint32_t shard_count,
                                 std::span<const std::uint8_t> image) {
  server::ServerOptions options;
  options.shard_count = shard_count;
  server::TrustedServer fresh(rig.network, "srv-recover:1", options);
  const support::Status recovered = fresh.RecoverInstallDb(image);
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  return fresh.DescribeFleet();
}

TEST(RecoveryTest, CompactedLogRecoversIdenticallyToTheRawLog) {
  RecoveryRig rig(/*vehicles=*/6, /*shards=*/2);
  rig.UploadApp("maps");
  rig.UploadApp("nav", /*plugins=*/3);
  for (const char* app : {"maps", "nav"}) {
    auto id = rig.engine->StartDeploy(rig.user, app, rig.fleet->vins(),
                                      FastPolicy());
    ASSERT_TRUE(id.ok());
    rig.simulator.Run();
    ASSERT_TRUE(rig.engine->Finished(*id));
  }

  const support::Bytes raw = rig.status_log.bytes();
  ASSERT_TRUE(rig.server->Compact().ok());
  EXPECT_EQ(rig.server->stats().compactions, 1u);
  const support::Bytes& compacted = rig.status_log.bytes();
  EXPECT_LT(compacted.size(), raw.size());

  // Post-compaction the log IS the live image: well under the 2x guard.
  auto replayed = StatusDb::ReplayImage(compacted);
  ASSERT_TRUE(replayed.ok());
  EXPECT_LE(compacted.size(), 2 * replayed->live_bytes);

  const std::string live = rig.server->DescribeFleet();
  EXPECT_EQ(RecoverDescribeFleet(rig, /*shard_count=*/3, raw), live);
  EXPECT_EQ(RecoverDescribeFleet(rig, /*shard_count=*/1, compacted), live);
}

TEST(RecoveryTest, WatermarkCompactionBoundsTheLogAcrossFiveCampaigns) {
  // Five back-to-back fleet campaigns with a small watermark: the status
  // log must stay bounded by the live state, not grow with history.
  RecoveryRig rig(/*vehicles=*/50, /*shards=*/1,
                  /*compact_watermark=*/16 * 1024);
  rig.engine->SetJournalCompactionWatermark(8 * 1024);
  for (int i = 1; i <= 5; ++i) {
    const std::string app = "app-" + std::to_string(i);
    rig.UploadApp(app);
    auto id = rig.engine->StartDeploy(rig.user, app, rig.fleet->vins(),
                                      FastPolicy());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    rig.simulator.Run();
    ASSERT_TRUE(rig.engine->Finished(*id));
    EXPECT_EQ(rig.engine->Snapshot(*id)->status, CampaignStatus::kConverged);
  }
  // The watermark actually fired mid-run...
  EXPECT_GE(rig.server->stats().compactions, 1u);
  // ...and the clean-shutdown compaction folds the log to the live bytes.
  ASSERT_TRUE(rig.server->Compact().ok());
  ASSERT_TRUE(rig.engine->CompactJournal().ok());
  auto replayed = StatusDb::ReplayImage(rig.status_log.bytes());
  ASSERT_TRUE(replayed.ok());
  EXPECT_LE(rig.status_log.bytes().size(), 2 * replayed->live_bytes);
  EXPECT_EQ(replayed->paragraphs.size(), 50u * 5u);

  // The compacted pair of logs still recovers a serviceable world.
  rig.KillServer();
  rig.RestartFromLogOnly();
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(rig.server->HasApp("app-" + std::to_string(i)));
  }
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server->AppState(vin, "app-5"), InstallState::kInstalled) << vin;
  }
}

TEST(RecoveryTest, JournalCompactionDropsRetiredCampaigns) {
  RecoveryRig rig(/*vehicles=*/4, /*shards=*/1);
  rig.UploadApp("maps");
  auto first = rig.engine->StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                       FastPolicy());
  ASSERT_TRUE(first.ok());
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine->Finished(*first));
  ASSERT_TRUE(rig.engine->Forget(*first).ok());

  rig.UploadApp("nav");
  auto second = rig.engine->StartDeploy(rig.user, "nav", rig.fleet->vins(),
                                        FastPolicy());
  ASSERT_TRUE(second.ok());
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine->Finished(*second));
  const std::string describe_before = rig.engine->Describe(*second);

  const std::size_t size_before = rig.journal_log.bytes().size();
  ASSERT_TRUE(rig.engine->CompactJournal().ok());
  // The Forget-growth fix: the retired campaign's whole record chain is
  // gone, only its tombstone (and the live campaign's fold) remain.
  EXPECT_LT(rig.journal_log.bytes().size(), size_before);
  auto recovered = server::ReplayCampaignJournal(rig.journal_log.bytes());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->size(), 2u);
  EXPECT_TRUE((*recovered)[0].forgotten);
  EXPECT_EQ((*recovered)[1].status, CampaignStatus::kConverged);

  // A restart from the compacted journal reproduces the campaign
  // fingerprint byte-identically and keeps the retired slot a hole.
  rig.KillServer();
  rig.RestartFromLogOnly();
  EXPECT_EQ(rig.engine->Describe(*second), describe_before);
  EXPECT_EQ(rig.engine->Snapshot(*first).status().code(), ErrorCode::kNotFound);
}

// --- degraded durability -----------------------------------------------------------

TEST(RecoveryTest, SinkFailureDegradesDurabilityStickilyAfterBoundedRetries) {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  MemorySink inner;
  FaultingSink faulty(inner, /*fail_after=*/10);  // tears the first record
  server::ServerOptions options;
  options.status_sink = &faulty;
  server::TrustedServer server(network, "srv:443", options);
  EXPECT_FALSE(server.stats().durability_degraded);

  // The catalog record for the model upload exceeds the sink budget: the
  // append fails, is retried the bounded number of times, and the server
  // goes (stickily) degraded — but the mutation itself succeeds.
  EXPECT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
  server::ServerStats stats = server.stats();
  EXPECT_TRUE(stats.durability_degraded);
  EXPECT_EQ(stats.status_write_retries, 3u);
  EXPECT_EQ(stats.status_writes_lost, 1u);

  // Once degraded: single-attempt writes (no retry storm against a dead
  // sink), losses keep counting, availability is unaffected.
  EXPECT_TRUE(server.CreateUser("ops").ok());
  stats = server.stats();
  EXPECT_TRUE(stats.durability_degraded);
  EXPECT_EQ(stats.status_write_retries, 3u);
  EXPECT_EQ(stats.status_writes_lost, 2u);
}

}  // namespace
}  // namespace dacm
