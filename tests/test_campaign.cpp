// Campaign orchestration under induced faults: multi-wave retry
// convergence over offline churn, link flaps and nack cohorts; abort
// thresholds on pathological (all-nack) fleets; rollback campaigns
// restoring the pre-deploy install set; and the seeded determinism of the
// whole machine — two identically seeded faulted runs must produce
// byte-identical campaign fingerprints.
//
// Labelled `faults` in ctest; the TSan CI job runs this suite to keep the
// sharded wave pushes and parallel ack-inbox flushes race-clean.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "fes/vehicle.hpp"
#include "pirte/protocol.hpp"
#include "server/campaign.hpp"
#include "sim/fault.hpp"

namespace dacm {
namespace {

using server::CampaignRowState;
using server::CampaignStatus;
using server::InstallState;

/// Quick cadence for tests: sim-time is free, wall time is not.
server::RetryPolicy FastPolicy(std::size_t max_waves = 6) {
  server::RetryPolicy policy;
  policy.max_waves = max_waves;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 2 * sim::kSecond;
  return policy;
}

struct ScriptedCampaign {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  server::TrustedServer server;
  server::CampaignEngine engine{simulator, server};
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;

  explicit ScriptedCampaign(std::size_t vehicles, std::size_t shards = 4,
                            std::size_t nack_every = 0)
      : server(network, "srv:443", server::ServerOptions{shards}) {
    EXPECT_TRUE(server.Start().ok());
    EXPECT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    user = *server.CreateUser("ops");
    fes::ScriptedFleetOptions options;
    options.vehicle_count = vehicles;
    options.nack_every = nack_every;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, server,
                                                 options);
    EXPECT_TRUE(fleet->BindAndConnect(user).ok());
  }

  void UploadApp(const std::string& name, std::uint32_t plugins = 2) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.target_ecu = 1;
    EXPECT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());
  }
};

TEST(CampaignEngineTest, RetryWaveConvergesAnOfflineCohort) {
  ScriptedCampaign rig(/*vehicles=*/32);
  rig.UploadApp("maps");

  // A quarter of the fleet is dark when the campaign starts and dials
  // back in before the second wave.
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/7);
  for (std::size_t i = 0; i < 8; ++i) {
    faults.ChurnAfter(*rig.fleet, i, /*after=*/0, /*offline_for=*/150 * sim::kMillisecond);
  }
  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(), FastPolicy());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  rig.simulator.Run();

  ASSERT_TRUE(rig.engine.Finished(*id));
  auto snapshot = *rig.engine.Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 32u);
  EXPECT_EQ(snapshot.waves_pushed, 2u);
  EXPECT_EQ(snapshot.total_pushes, 40u);  // 32 first wave + 8 retries
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server.AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }
  const auto* churned = rig.engine.FindRow(*id, rig.fleet->vins()[0]);
  ASSERT_NE(churned, nullptr);
  EXPECT_EQ(churned->attempts, 2u);
  const auto* steady = rig.engine.FindRow(*id, rig.fleet->vins()[31]);
  ASSERT_NE(steady, nullptr);
  EXPECT_EQ(steady->attempts, 1u);
}

TEST(CampaignEngineTest, AllNackCampaignAbortsAtTheConfiguredThreshold) {
  ScriptedCampaign rig(/*vehicles=*/12, /*shards=*/4, /*nack_every=*/1);
  rig.UploadApp("bad-app");

  auto policy = FastPolicy(/*max_waves=*/5);
  policy.abort_nack_fraction = 0.5;
  auto id = rig.engine.StartDeploy(rig.user, "bad-app", rig.fleet->vins(), policy);
  ASSERT_TRUE(id.ok());
  rig.simulator.Run();

  ASSERT_TRUE(rig.engine.Finished(*id));
  auto snapshot = *rig.engine.Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kAborted);
  // The abort fires at the first evaluation — no retry waves wasted on a
  // fleet that is systematically rejecting.
  EXPECT_EQ(snapshot.waves_pushed, 1u);
  EXPECT_EQ(snapshot.total_pushes, 12u);
  EXPECT_EQ(snapshot.failed, 12u);
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server.AppState(vin, "bad-app"), InstallState::kFailed) << vin;
    const auto* row = rig.engine.FindRow(*id, vin);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->state, CampaignRowState::kFailed);
  }
  EXPECT_EQ(rig.server.stats().nacks_received, 24u);  // 12 vehicles x 2 plug-ins
}

TEST(CampaignEngineTest, MidCampaignLinkFlapLeavesNoRowStrandedPending) {
  ScriptedCampaign rig(/*vehicles=*/16, /*shards=*/2);
  rig.UploadApp("maps");

  // The flap covers the acknowledgement send (install deliveries land at
  // +1 ms, the link is dark from +0.5 ms to +1.5 ms): every push lands,
  // every ack is lost, and the server's rows are stranded kPending — the
  // exact state only a re-push of the recorded batch can resolve.
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/3);
  faults.LinkFlapAfter(500 * sim::kMicrosecond, sim::kMillisecond);

  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(), FastPolicy());
  ASSERT_TRUE(id.ok());
  rig.simulator.Run();

  ASSERT_TRUE(rig.engine.Finished(*id));
  auto snapshot = *rig.engine.Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 16u);
  EXPECT_EQ(snapshot.pending + snapshot.pushed, 0u);
  EXPECT_EQ(snapshot.waves_pushed, 2u);
  // The retry wave re-pushed the recorded batches instead of regenerating.
  EXPECT_EQ(rig.server.stats().repushes, 16u);
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server.AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }
}

TEST(CampaignEngineTest, PermanentlyOfflineVehicleExhaustsTheWaveBudget) {
  ScriptedCampaign rig(/*vehicles=*/2, /*shards=*/1);
  rig.UploadApp("maps");
  ASSERT_TRUE(rig.fleet->TakeOffline(1).ok());

  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                   FastPolicy(/*max_waves=*/3));
  ASSERT_TRUE(id.ok());
  rig.simulator.Run();

  auto snapshot = *rig.engine.Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kExhausted);
  EXPECT_EQ(snapshot.done, 1u);
  EXPECT_EQ(snapshot.failed, 1u);
  EXPECT_EQ(snapshot.waves_pushed, 3u);
  const auto* row = rig.engine.FindRow(*id, rig.fleet->vins()[1]);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->state, CampaignRowState::kFailed);
  EXPECT_EQ(row->attempts, 3u);
  EXPECT_EQ(row->error, support::ErrorCode::kUnavailable);
}

TEST(CampaignEngineTest, NackCohortHealsAndTheCampaignConverges) {
  ScriptedCampaign rig(/*vehicles=*/20, /*shards=*/4);
  rig.UploadApp("maps");

  // A third of the fleet nacks every push for up to 300 ms, then heals —
  // a transient (ECU busy flashing, low battery) rather than a rejection.
  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/11);
  faults.AddNackCohort(*rig.fleet, /*fraction=*/0.3, 300 * sim::kMillisecond);
  EXPECT_EQ(faults.nacked_vehicles(), 6u);

  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(), FastPolicy());
  ASSERT_TRUE(id.ok());
  rig.simulator.Run();

  auto snapshot = *rig.engine.Snapshot(*id);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 20u);
  EXPECT_GT(snapshot.total_pushes, 20u);  // the cohort needed retries
  EXPECT_GE(rig.fleet->nacks_sent(), 6u);
}

TEST(CampaignEngineTest, RollbackRetriesNackedUninstallsUntilTheCohortHeals) {
  ScriptedCampaign rig(/*vehicles=*/4, /*shards=*/2);
  rig.UploadApp("maps");
  auto deploy = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                       FastPolicy());
  ASSERT_TRUE(deploy.ok());
  rig.simulator.Run();
  ASSERT_EQ(rig.engine.Snapshot(*deploy)->status, CampaignStatus::kConverged);

  // Vehicle 0 refuses uninstalls for 300 ms.  A nacked uninstall must NOT
  // erase the server row (that would be a false convergence while the
  // vehicle still runs the app): the row re-arms and a later wave retries.
  rig.fleet->SetTransientNack(0, rig.simulator.Now() + 300 * sim::kMillisecond);
  auto rollback = rig.engine.StartRollback(rig.user, "maps", rig.fleet->vins(),
                                           FastPolicy());
  ASSERT_TRUE(rollback.ok());
  rig.simulator.Run();

  auto snapshot = *rig.engine.Snapshot(*rollback);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_GE(snapshot.waves_pushed, 2u);  // the nacked vehicle needed a retry
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_FALSE(rig.server.AppState(vin, "maps").ok()) << vin;
  }
  EXPECT_GE(rig.fleet->nacks_sent(), 1u);
}

TEST(CampaignEngineTest, FinishedCampaignsCanBeForgottenRunningOnesCannot) {
  ScriptedCampaign rig(/*vehicles=*/4, /*shards=*/1);
  rig.UploadApp("maps");
  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                   FastPolicy());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(rig.engine.Forget(*id).code(),
            support::ErrorCode::kFailedPrecondition);  // still running
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine.Finished(*id));
  EXPECT_TRUE(rig.engine.Forget(*id).ok());
  EXPECT_FALSE(rig.engine.Snapshot(*id).ok());  // row table released
  EXPECT_EQ(rig.engine.Forget(*id).code(), support::ErrorCode::kNotFound);
  // Ids are never reused: a later campaign gets a fresh slot.
  auto next = rig.engine.StartRollback(rig.user, "maps", rig.fleet->vins(),
                                       FastPolicy());
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next->value(), id->value());
  rig.simulator.Run();
  EXPECT_TRUE(rig.engine.Finished(*next));
}

TEST(CampaignEngineTest, RollbackOverUnknownVinsFailsInsteadOfConverging) {
  ScriptedCampaign rig(/*vehicles=*/2, /*shards=*/1);
  rig.UploadApp("maps");
  std::vector<std::string> vins = {rig.fleet->vins()[0], "VIN-GHOST"};
  auto rollback = rig.engine.StartRollback(rig.user, "maps", vins, FastPolicy());
  ASSERT_TRUE(rollback.ok());
  rig.simulator.Run();

  auto snapshot = *rig.engine.Snapshot(*rollback);
  EXPECT_EQ(snapshot.status, CampaignStatus::kExhausted);
  EXPECT_EQ(snapshot.done, 1u);    // the known VIN never had the app
  EXPECT_EQ(snapshot.failed, 1u);  // the ghost must not read as converged
  const auto* ghost = rig.engine.FindRow(*rollback, "VIN-GHOST");
  ASSERT_NE(ghost, nullptr);
  EXPECT_EQ(ghost->state, CampaignRowState::kFailed);
  EXPECT_EQ(ghost->error, support::ErrorCode::kNotFound);
}

// --- recovery-edge-case regressions ------------------------------------------

TEST(CampaignEngineTest, EngineDestroyedWithSettleTimerPendingLeavesInertEvents) {
  // Regression: the settle-delay tick captures the engine.  Destroying
  // the engine (the kill half of a crash-recovery cycle) while that
  // timer is still scheduled used to leave a dangling callback; the
  // alive-token guard must turn it into a no-op.
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  server::TrustedServer server(network, "srv:443", server::ServerOptions{1});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
  auto user = *server.CreateUser("ops");
  fes::ScriptedFleetOptions options;
  options.vehicle_count = 4;
  fes::ScriptedFleet fleet(simulator, network, server, options);
  ASSERT_TRUE(fleet.BindAndConnect(user).ok());
  fes::SyntheticAppParams params;
  params.name = "maps";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 2;
  params.target_ecu = 1;
  ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());

  {
    server::CampaignEngine engine(simulator, server);
    auto id = engine.StartDeploy(user, "maps", fleet.vins(), FastPolicy());
    ASSERT_TRUE(id.ok());
    // Run just past the wave push: acks have landed, but the 50 ms
    // settle tick is still scheduled when the engine dies.
    simulator.RunFor(10 * sim::kMillisecond);
    EXPECT_FALSE(engine.Finished(*id));
  }
  EXPECT_GT(simulator.PendingEvents(), 0u);  // the orphaned tick
  simulator.Run();  // must be absorbed, not crash

  // The server outlived the engine and already applied the in-flight
  // acks; orchestration died, the install table did not.
  for (const std::string& vin : fleet.vins()) {
    EXPECT_EQ(*server.AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }
}

TEST(CampaignEngineTest, DuplicateAckBatchAfterConvergenceLeavesRowsUntouched) {
  // Regression: once a row converges its recorded batch envelope is
  // dropped.  A duplicate kAckBatch arriving after that (redelivered by
  // a flaky vehicle, or replayed across a server restart) must neither
  // corrupt the row nor resurrect an empty push.
  ScriptedCampaign rig(/*vehicles=*/4, /*shards=*/1);
  rig.UploadApp("maps");
  auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                   FastPolicy());
  ASSERT_TRUE(id.ok());
  rig.simulator.Run();
  ASSERT_EQ(rig.engine.Snapshot(*id)->status, CampaignStatus::kConverged);
  const auto pushed_before = rig.server.stats().packages_pushed;
  const auto acks_before = rig.server.stats().acks_received;

  // Forge the duplicate on a fresh connection that Hellos for vehicle 0.
  auto peer = rig.network.Connect(rig.server.address());
  ASSERT_TRUE(peer.ok());
  pirte::Envelope hello;
  hello.kind = pirte::Envelope::Kind::kHello;
  hello.vin = rig.fleet->vins()[0];
  ASSERT_TRUE((*peer)->Send(hello.Serialize()).ok());
  rig.simulator.Run();
  std::vector<pirte::BatchAckEntryView> verdicts = {
      {"maps.p0", true, {}}, {"maps.p1", true, {}}};
  ASSERT_TRUE(
      (*peer)
          ->Send(pirte::SerializeEnvelopedAckBatch(rig.fleet->vins()[0], verdicts))
          .ok());
  rig.simulator.Run();

  // The duplicate was received and counted, but the converged row did
  // not move.
  EXPECT_GT(rig.server.stats().acks_received, acks_before);
  EXPECT_EQ(*rig.server.AppState(rig.fleet->vins()[0], "maps"),
            InstallState::kInstalled);

  // A follow-up campaign over the same app reads every row as already
  // done: zero pushes, zero repushes — in particular no push of an
  // empty envelope where the recorded batch used to be.
  auto again = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                      FastPolicy());
  ASSERT_TRUE(again.ok());
  rig.simulator.Run();
  auto snapshot = *rig.engine.Snapshot(*again);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.total_pushes, 0u);
  EXPECT_EQ(rig.server.stats().repushes, 0u);
  EXPECT_EQ(rig.server.stats().packages_pushed, pushed_before);
}

// --- the acceptance scenario -------------------------------------------------
//
// A seeded 1k-vehicle campaign with a 20% offline-churn cohort plus
// mid-campaign link flaps must converge to 100% installed within the
// configured waves, byte-identical across two identically seeded runs;
// the rollback campaign then restores the pre-deploy install set on the
// same faulted fleet.

std::string RunSeededFaultedCampaign(std::uint64_t seed) {
  ScriptedCampaign rig(/*vehicles=*/1000, /*shards=*/4);
  rig.UploadApp("base", /*plugins=*/1);
  rig.UploadApp("maps", /*plugins=*/2);

  // Pre-deploy install set: `base` on every vehicle, no faults.
  auto base = rig.engine.StartDeploy(rig.user, "base", rig.fleet->vins(),
                                     FastPolicy());
  EXPECT_TRUE(base.ok());
  rig.simulator.Run();
  EXPECT_EQ(rig.engine.Snapshot(*base)->status, CampaignStatus::kConverged);

  // The faulted deploy: 20% of the fleet is churning dark as wave 1
  // pushes (trickling back over 100-400 ms) while the WAN flaps three
  // times mid-campaign, all drawn from `seed`.
  sim::FaultScenario deploy_faults(rig.simulator, rig.network, seed);
  deploy_faults.AddOfflineChurn(*rig.fleet, /*fraction=*/0.20,
                                /*horizon=*/10 * sim::kMillisecond,
                                /*min_offline=*/100 * sim::kMillisecond,
                                /*max_offline=*/400 * sim::kMillisecond);
  deploy_faults.AddRandomLinkFlaps(/*count=*/3, /*horizon=*/600 * sim::kMillisecond,
                                   /*min_duration=*/20 * sim::kMillisecond,
                                   /*max_duration=*/80 * sim::kMillisecond);
  EXPECT_EQ(deploy_faults.churn_events(), 200u);

  auto deploy = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                       FastPolicy(/*max_waves=*/10));
  EXPECT_TRUE(deploy.ok());
  rig.simulator.Run();

  auto snapshot = *rig.engine.Snapshot(*deploy);
  EXPECT_EQ(snapshot.status, CampaignStatus::kConverged);
  EXPECT_EQ(snapshot.done, 1000u);
  EXPECT_LE(snapshot.waves_pushed, 10u);
  // The fault matrix really engaged: the offline cohort forced retry waves.
  EXPECT_GE(snapshot.waves_pushed, 2u);
  EXPECT_GT(snapshot.total_pushes, 1000u);
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_EQ(*rig.server.AppState(vin, "maps"), InstallState::kInstalled) << vin;
  }

  // Rollback on the same fleet, under a fresh seeded fault round: the
  // batched uninstalls must erase every `maps` row and leave `base`.
  sim::FaultScenario rollback_faults(rig.simulator, rig.network, seed + 1);
  rollback_faults.AddOfflineChurn(*rig.fleet, /*fraction=*/0.20,
                                  /*horizon=*/10 * sim::kMillisecond,
                                  /*min_offline=*/100 * sim::kMillisecond,
                                  /*max_offline=*/400 * sim::kMillisecond);
  rollback_faults.AddRandomLinkFlaps(/*count=*/2,
                                     /*horizon=*/600 * sim::kMillisecond,
                                     /*min_duration=*/20 * sim::kMillisecond,
                                     /*max_duration=*/80 * sim::kMillisecond);
  auto rollback = rig.engine.StartRollback(rig.user, "maps", rig.fleet->vins(),
                                           FastPolicy(/*max_waves=*/10));
  EXPECT_TRUE(rollback.ok());
  rig.simulator.Run();

  EXPECT_EQ(rig.engine.Snapshot(*rollback)->status, CampaignStatus::kConverged);
  for (const std::string& vin : rig.fleet->vins()) {
    EXPECT_FALSE(rig.server.AppState(vin, "maps").ok()) << vin;
    EXPECT_EQ(rig.server.InstalledApps(vin), std::vector<std::string>{"base"})
        << vin;
  }
  EXPECT_GT(rig.server.stats().rollback_pushes, 0u);

  // The determinism fingerprint: full row tables of both campaigns plus
  // the protocol-level counters.
  const auto stats = rig.server.stats();
  return rig.engine.Describe(*deploy) + rig.engine.Describe(*rollback) +
         "pushed=" + std::to_string(stats.packages_pushed) +
         " acks=" + std::to_string(stats.acks_received) +
         " repushes=" + std::to_string(stats.repushes) +
         " rollbacks=" + std::to_string(stats.rollback_pushes) +
         " reaped=" + std::to_string(stats.connections_reaped) +
         " delivered=" + std::to_string(rig.network.messages_delivered()) +
         " now=" + std::to_string(rig.simulator.Now());
}

TEST(CampaignEngineTest, Seeded1kChurnAndFlapCampaignIsByteIdenticalAcrossRuns) {
  const std::string first = RunSeededFaultedCampaign(0xDACDAC);
  const std::string second = RunSeededFaultedCampaign(0xDACDAC);
  EXPECT_EQ(first, second);
  // The fingerprint proves convergence too: every row reads state=done.
  EXPECT_EQ(first.find("state=failed"), std::string::npos);
  EXPECT_NE(first.find("status=converged"), std::string::npos);
}

namespace {

std::uint64_t Fnv1a(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

TEST(CampaignEngineTest, FingerprintHashesExactlyTheDescribeBytes) {
  // Fingerprint() must be FNV-1a over Describe()'s exact output — the
  // streaming formatter behind both may never drift, or the cheap
  // fleet-scale comparison stops proving what the string proves.  Use a
  // campaign with failed rows so the conditional error= column (the
  // subtle branch) is covered, plus a converged rollback.
  ScriptedCampaign rig(/*vehicles=*/16, /*shards=*/2, /*nack_every=*/4);
  rig.UploadApp("maps");
  auto deploy =
      rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(), FastPolicy());
  ASSERT_TRUE(deploy.ok());
  rig.simulator.Run();
  ASSERT_TRUE(rig.engine.Finished(*deploy));
  ASSERT_GT(rig.engine.Snapshot(*deploy)->failed, 0u);

  const std::string described = rig.engine.Describe(*deploy);
  EXPECT_NE(described.find(" error="), std::string::npos);
  EXPECT_EQ(rig.engine.Fingerprint(*deploy), Fnv1a(described));

  // The unknown-campaign sentinel hashes identically too.
  const server::CampaignId ghost(999);
  EXPECT_EQ(rig.engine.Fingerprint(ghost), Fnv1a(rig.engine.Describe(ghost)));
}

// --- rollback against real ECMs ----------------------------------------------

TEST(CampaignEngineTest, RollbackBatchUnpacksOnRealEcmsAndRestoresState) {
  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);
  server::TrustedServer server(network, "fleet-server:443",
                               server::ServerOptions{2});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());

  auto build_vehicle = [&](const std::string& vin) {
    auto vehicle = std::make_unique<fes::Vehicle>(
        simulator, network, fes::VehicleParams{vin, "rpi-testbed", 500'000});
    fes::Ecu& ecu1 = vehicle->AddEcu(1, vin + ".ECU1");
    auto p1 = vehicle->AddPluginSwc(ecu1, "PIRTE1");
    EXPECT_TRUE(p1.ok());
    EXPECT_TRUE(vehicle->DesignateEcm(**p1, "fleet-server:443").ok());
    EXPECT_TRUE(vehicle->Finalize().ok());
    return vehicle;
  };
  std::vector<std::unique_ptr<fes::Vehicle>> cars;
  std::vector<std::string> vins = {"VIN-RA", "VIN-RB", "VIN-RC"};
  for (const std::string& vin : vins) cars.push_back(build_vehicle(vin));
  simulator.RunFor(2 * sim::kSecond);

  auto user = server.CreateUser("ops");
  ASSERT_TRUE(user.ok());
  for (const std::string& vin : vins) {
    ASSERT_TRUE(server.BindVehicle(*user, vin, "rpi-testbed").ok());
    ASSERT_TRUE(server.VehicleOnline(vin));
  }
  fes::SyntheticAppParams params;
  params.name = "maps";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 2;
  params.target_ecu = 1;
  ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());

  server::CampaignEngine engine(simulator, server);
  auto run_until_finished = [&](server::CampaignId id) {
    const sim::SimTime deadline = simulator.Now() + 30 * sim::kSecond;
    while (!engine.Finished(id) && simulator.Now() < deadline) {
      simulator.RunFor(100 * sim::kMillisecond);
    }
    return engine.Finished(id);
  };

  auto deploy = engine.StartDeploy(*user, "maps", vins, FastPolicy());
  ASSERT_TRUE(deploy.ok());
  ASSERT_TRUE(run_until_finished(*deploy));
  EXPECT_EQ(engine.Snapshot(*deploy)->status, CampaignStatus::kConverged);
  for (std::size_t i = 0; i < vins.size(); ++i) {
    EXPECT_NE(cars[i]->ecm()->FindPlugin("maps.p0"), nullptr) << vins[i];
    EXPECT_NE(cars[i]->ecm()->FindPlugin("maps.p1"), nullptr) << vins[i];
  }

  // One kUninstallBatch per vehicle; the ECM unpacks it into per-plug-in
  // uninstalls and the forwarded acks erase the rows.
  auto rollback = engine.StartRollback(*user, "maps", vins, FastPolicy());
  ASSERT_TRUE(rollback.ok());
  ASSERT_TRUE(run_until_finished(*rollback));
  EXPECT_EQ(engine.Snapshot(*rollback)->status, CampaignStatus::kConverged);
  EXPECT_EQ(server.stats().rollback_pushes, 3u);
  for (std::size_t i = 0; i < vins.size(); ++i) {
    EXPECT_FALSE(server.AppState(vins[i], "maps").ok()) << vins[i];
    EXPECT_EQ(cars[i]->ecm()->FindPlugin("maps.p0"), nullptr) << vins[i];
    EXPECT_EQ(cars[i]->ecm()->FindPlugin("maps.p1"), nullptr) << vins[i];
  }
}

// --- stats snapshot -----------------------------------------------------------

TEST(CampaignEngineTest, StatsSnapshotAggregatesShardsAndCountsFaults) {
  ScriptedCampaign rig(/*vehicles=*/16, /*shards=*/4, /*nack_every=*/4);
  rig.UploadApp("maps", /*plugins=*/2);

  auto report = rig.server.DeployCampaign(rig.user, "maps", rig.fleet->vins());
  ASSERT_TRUE(report.ok());
  rig.simulator.Run();

  const auto total = rig.server.stats();
  EXPECT_EQ(total.packages_pushed, 16u);
  EXPECT_EQ(total.acks_received, 32u);           // per-plug-in verdicts
  EXPECT_EQ(total.nacks_received, 8u);           // 4 nacking vehicles x 2
  EXPECT_EQ(total.deploys_ok, 16u);
  // The aggregate is exactly the sum of the per-shard snapshots.
  server::ServerStats sum;
  for (std::size_t i = 0; i < rig.server.shard_count(); ++i) {
    sum.acks_received += rig.server.shard_stats(i).acks_received;
    sum.nacks_received += rig.server.shard_stats(i).nacks_received;
    sum.packages_pushed += rig.server.shard_stats(i).packages_pushed;
  }
  EXPECT_EQ(sum.acks_received, total.acks_received);
  EXPECT_EQ(sum.nacks_received, total.nacks_received);
  EXPECT_EQ(sum.packages_pushed, total.packages_pushed);

  // Churning a vehicle off and back on reaps its dead predecessor at the
  // Hello adoption.
  ASSERT_TRUE(rig.fleet->TakeOffline(0).ok());
  ASSERT_TRUE(rig.fleet->BringOnline(0).ok());
  rig.simulator.Run();
  EXPECT_GE(rig.server.stats().connections_reaped, 1u);
  EXPECT_EQ(rig.fleet->reconnects(), 1u);
}

}  // namespace
}  // namespace dacm
