// Unit tests for the trusted server: user setup, uploads, the deploy
// pipeline's compatibility / dependency / conflict checks, unique-id
// allocation, acknowledgement bookkeeping, uninstall dependency guards,
// and the restore operation — exercised against a scripted fake vehicle
// so every server decision is observable without a full vehicle stack.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"
#include "server/server.hpp"

namespace dacm::server {
namespace {

/// A scripted ECM stand-in: connects to the server, says hello, records
/// every pushed message, and acks on demand.
struct FakeEcm {
  sim::Simulator& simulator;
  std::shared_ptr<sim::NetPeer> peer;
  std::vector<pirte::PirteMessage> pushed;
  std::string vin;

  FakeEcm(sim::Simulator& simulator, sim::Network& network, TrustedServer& server,
          std::string vin_in)
      : simulator(simulator), vin(std::move(vin_in)) {
    auto client = network.Connect(server.address());
    EXPECT_TRUE(client.ok());
    peer = std::move(*client);
    peer->SetReceiveHandler([this](const support::Bytes& data) {
      auto envelope = pirte::Envelope::Deserialize(data);
      if (!envelope.ok()) return;
      auto message = pirte::PirteMessage::Deserialize(envelope->message);
      if (message.ok()) pushed.push_back(*message);
    });
    pirte::Envelope hello;
    hello.kind = pirte::Envelope::Kind::kHello;
    hello.vin = vin;
    EXPECT_TRUE(peer->Send(hello.Serialize()).ok());
    simulator.Run();
  }

  void Ack(const std::string& plugin, bool ok, const std::string& detail = "") {
    pirte::PirteMessage ack;
    ack.type = pirte::MessageType::kAck;
    ack.plugin_name = plugin;
    ack.ok = ok;
    ack.detail = detail;
    pirte::Envelope envelope;
    envelope.kind = pirte::Envelope::Kind::kPirteMessage;
    envelope.vin = vin;
    envelope.message = ack.Serialize();
    EXPECT_TRUE(peer->Send(envelope.Serialize()).ok());
    simulator.Run();
  }

  void AckAllPushedInstalls() {
    for (const auto& message : pushed) {
      if (message.type == pirte::MessageType::kInstallPackage ||
          message.type == pirte::MessageType::kUninstall) {
        Ack(message.plugin_name, true);
      }
    }
  }
};

struct ServerFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  TrustedServer server{network, "srv:443"};
  UserId alice = UserId::Invalid();
  std::unique_ptr<FakeEcm> ecm;

  void SetUp() override {
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    auto user = server.CreateUser("alice");
    ASSERT_TRUE(user.ok());
    alice = *user;
    ASSERT_TRUE(server.BindVehicle(alice, "VIN-1", "rpi-testbed").ok());
    ecm = std::make_unique<FakeEcm>(simulator, network, server, "VIN-1");
  }

  App EchoApp(const std::string& name, std::uint32_t plugins = 1,
              std::vector<std::string> depends = {},
              std::vector<std::string> conflicts = {}) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.target_ecu = 1;
    params.depends_on = std::move(depends);
    params.conflicts_with = std::move(conflicts);
    return fes::MakeSyntheticApp(params);
  }

  /// Runs the simulator so server pushes reach the (scripted) vehicle.
  void Settle() { simulator.Run(); }

  void DeployAndAck(const std::string& app) {
    // Tests may have uploaded (a customized) `app` already; the idempotent
    // re-upload of the same version is rejected and that is fine.
    auto upload = server.UploadApp(EchoApp(app));
    ASSERT_TRUE(upload.ok() || upload.code() == support::ErrorCode::kAlreadyExists)
        << upload.ToString();
    ASSERT_TRUE(server.Deploy(alice, "VIN-1", app).ok());
    Settle();
    ecm->AckAllPushedInstalls();
    ecm->pushed.clear();
    auto state = server.AppState("VIN-1", app);
    ASSERT_TRUE(state.ok());
    ASSERT_EQ(*state, InstallState::kInstalled);
  }
};

// --- user setup ------------------------------------------------------------------------

TEST_F(ServerFixture, DuplicateUserRejected) {
  EXPECT_FALSE(server.CreateUser("alice").ok());
}

TEST_F(ServerFixture, BindVehicleValidatesModelAndVin) {
  EXPECT_EQ(server.BindVehicle(alice, "VIN-2", "unknown-model").code(),
            support::ErrorCode::kNotFound);
  EXPECT_EQ(server.BindVehicle(alice, "VIN-1", "rpi-testbed").code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(ServerFixture, OwnershipEnforcedOnAllOperations) {
  auto mallory = server.CreateUser("mallory");
  ASSERT_TRUE(mallory.ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  EXPECT_EQ(server.Deploy(*mallory, "VIN-1", "app").code(),
            support::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.UninstallApp(*mallory, "VIN-1", "app").code(),
            support::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.Restore(*mallory, "VIN-1", 1).code(),
            support::ErrorCode::kPermissionDenied);
}

// --- uploads -----------------------------------------------------------------------------

TEST_F(ServerFixture, AppUploadValidation) {
  App empty;
  empty.name = "empty";
  EXPECT_FALSE(server.UploadApp(empty).ok());  // no plug-ins

  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  // Same version again: rejected.
  EXPECT_EQ(server.UploadApp(EchoApp("app")).code(),
            support::ErrorCode::kAlreadyExists);
  // Higher version: accepted (update).
  auto v2 = EchoApp("app");
  v2.version = "2.0";
  EXPECT_TRUE(server.UploadApp(v2).ok());
}

// --- deploy pipeline ------------------------------------------------------------------------

TEST_F(ServerFixture, DeployPushesOnePackagePerPlugin) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", /*plugins=*/3)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 3u);
  for (const auto& message : ecm->pushed) {
    EXPECT_EQ(message.type, pirte::MessageType::kInstallPackage);
    EXPECT_EQ(message.target_ecu, 1u);
    EXPECT_TRUE(pirte::InstallationPackage::Deserialize(message.payload).ok());
  }
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
}

TEST_F(ServerFixture, InstallConfirmedOnlyWhenAllPluginsAck) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", 2)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 2u);
  ecm->Ack(ecm->pushed[0].plugin_name, true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
  ecm->Ack(ecm->pushed[1].plugin_name, true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kInstalled);
}

TEST_F(ServerFixture, NackMarksInstallFailed) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", 2)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 2u);
  ecm->Ack(ecm->pushed[0].plugin_name, false, "quota");
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kFailed);
}

TEST_F(ServerFixture, DeployRejectedWithoutSwConfForModel) {
  fes::SyntheticAppParams params;
  params.name = "wrongmodel";
  params.vehicle_model = "some-other-model";
  ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "wrongmodel").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DeployRejectedOnOldPlatform) {
  auto app = EchoApp("needsnew");
  app.confs[0].min_platform = "9.9";
  ASSERT_TRUE(server.UploadApp(app).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "needsnew").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DeployRejectedOnMissingVirtualPort) {
  auto app = EchoApp("needsvp");
  app.confs[0].required_virtual_ports = {"NonexistentPort"};
  ASSERT_TRUE(server.UploadApp(app).ok());
  auto status = server.Deploy(alice, "VIN-1", "needsvp");
  EXPECT_EQ(status.code(), support::ErrorCode::kIncompatible);
  EXPECT_NE(status.message().find("NonexistentPort"), std::string::npos);
}

TEST_F(ServerFixture, DeployRejectedOnNonPluginEcu) {
  auto app = EchoApp("badplacement");
  app.confs[0].placements[0].ecu_id = 99;
  ASSERT_TRUE(server.UploadApp(app).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "badplacement").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DependencyMustBeInstalledFirst) {
  ASSERT_TRUE(server.UploadApp(EchoApp("base")).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "addon").code(),
            support::ErrorCode::kDependencyViolation);
  DeployAndAck("base");
  EXPECT_TRUE(server.Deploy(alice, "VIN-1", "addon").ok());
}

TEST_F(ServerFixture, PendingDependencyDoesNotCount) {
  ASSERT_TRUE(server.UploadApp(EchoApp("base")).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "base").ok());
  // base is pushed but not acked -> still pending -> addon must wait.
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "addon").code(),
            support::ErrorCode::kDependencyViolation);
}

TEST_F(ServerFixture, ConflictsRejectedBothDirections) {
  ASSERT_TRUE(server.UploadApp(EchoApp("first", 1, {}, {"second"})).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("second")).ok());
  DeployAndAck("first");
  // first declares the conflict; second is the newcomer.
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "second").code(),
            support::ErrorCode::kDependencyViolation);
}

TEST_F(ServerFixture, DoubleDeployRejected) {
  DeployAndAck("app");
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "app").code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(ServerFixture, DeployToOfflineVehicleFails) {
  ecm->peer->Close();
  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "app").code(),
            support::ErrorCode::kUnavailable);
}

TEST_F(ServerFixture, UniqueIdsNeverCollideAcrossApps) {
  DeployAndAck("one");
  DeployAndAck("two");
  const Vehicle* vehicle = server.FindVehicle("VIN-1");
  ASSERT_NE(vehicle, nullptr);
  std::set<std::uint8_t> ids;
  for (const auto& installed : vehicle->installed) {
    for (const auto& plugin : installed.plugins) {
      for (const auto& entry : plugin.pic.entries) {
        EXPECT_TRUE(ids.insert(entry.unique_id).second)
            << "uid " << int(entry.unique_id) << " reused";
      }
    }
  }
  EXPECT_EQ(ids.size(), 4u);  // 2 apps x 1 plugin x 2 ports
}

TEST_F(ServerFixture, FreedIdsAreReusedAfterUninstall) {
  DeployAndAck("one");
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "one").ok());
  Settle();
  ecm->AckAllPushedInstalls();
  ecm->pushed.clear();
  DeployAndAck("two");
  const Vehicle* vehicle = server.FindVehicle("VIN-1");
  ASSERT_EQ(vehicle->installed.size(), 1u);
  EXPECT_EQ(vehicle->installed[0].plugins[0].pic.entries[0].unique_id, 0);
}

// --- uninstall -----------------------------------------------------------------------------

TEST_F(ServerFixture, UninstallPushesMessagesAndRemovesOnAck) {
  DeployAndAck("app");
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 1u);
  EXPECT_EQ(ecm->pushed[0].type, pirte::MessageType::kUninstall);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kUninstalling);
  ecm->Ack("app.p0", true);
  EXPECT_FALSE(server.AppState("VIN-1", "app").ok());  // row removed
}

TEST_F(ServerFixture, UninstallBlockedByDependents) {
  DeployAndAck("base");
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  DeployAndAck("addon");
  auto status = server.UninstallApp(alice, "VIN-1", "base");
  EXPECT_EQ(status.code(), support::ErrorCode::kDependencyViolation);
  EXPECT_NE(status.message().find("addon"), std::string::npos);
  // After removing the dependent, the base can go.
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "addon").ok());
  Settle();
  ecm->AckAllPushedInstalls();
  ecm->pushed.clear();
  EXPECT_TRUE(server.UninstallApp(alice, "VIN-1", "base").ok());
}

TEST_F(ServerFixture, UninstallUnknownAppFails) {
  EXPECT_EQ(server.UninstallApp(alice, "VIN-1", "ghost").code(),
            support::ErrorCode::kNotFound);
}

// --- restore ---------------------------------------------------------------------------------

TEST_F(ServerFixture, RestoreRepushesRecordedPackages) {
  DeployAndAck("app");
  const Vehicle* vehicle = server.FindVehicle("VIN-1");
  const auto original_uid =
      vehicle->installed[0].plugins[0].pic.entries[0].unique_id;

  ASSERT_TRUE(server.Restore(alice, "VIN-1", 1).ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 1u);
  EXPECT_EQ(ecm->pushed[0].type, pirte::MessageType::kInstallPackage);
  auto package = pirte::InstallationPackage::Deserialize(ecm->pushed[0].payload);
  ASSERT_TRUE(package.ok());
  // The restored package carries the identical contexts (same unique ids).
  EXPECT_EQ(package->pic.entries[0].unique_id, original_uid);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
  ecm->Ack("app.p0", true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kInstalled);
}

TEST_F(ServerFixture, RestoreOnlyTouchesTheReplacedEcu) {
  DeployAndAck("app");  // placed on ECU 1
  EXPECT_EQ(server.Restore(alice, "VIN-1", 2).code(),
            support::ErrorCode::kNotFound);  // nothing on ECU 2
  EXPECT_TRUE(ecm->pushed.empty());
}

// --- queries / stats -----------------------------------------------------------------------------

TEST_F(ServerFixture, InstalledAppsListing) {
  EXPECT_TRUE(server.InstalledApps("VIN-1").empty());
  DeployAndAck("a1");
  DeployAndAck("a2");
  auto apps = server.InstalledApps("VIN-1");
  EXPECT_EQ(apps.size(), 2u);
}

TEST_F(ServerFixture, StatsTrackOperations) {
  DeployAndAck("app");
  EXPECT_EQ(server.stats().deploys_ok, 1u);
  EXPECT_EQ(server.stats().packages_pushed, 1u);
  EXPECT_EQ(server.stats().acks_received, 1u);
  ASSERT_TRUE(server.UploadApp(EchoApp("bad", 1, {"missing-dep"})).ok());
  (void)server.Deploy(alice, "VIN-1", "bad");
  EXPECT_EQ(server.stats().deploys_rejected, 1u);
}

TEST_F(ServerFixture, VehicleOnlineTracksConnection) {
  EXPECT_TRUE(server.VehicleOnline("VIN-1"));
  ecm->peer->Close();
  EXPECT_FALSE(server.VehicleOnline("VIN-1"));
  EXPECT_FALSE(server.VehicleOnline("VIN-404"));
}

}  // namespace
}  // namespace dacm::server
