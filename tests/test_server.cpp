// Unit tests for the trusted server: user setup, uploads, the deploy
// pipeline's compatibility / dependency / conflict checks, unique-id
// allocation, acknowledgement bookkeeping, uninstall dependency guards,
// and the restore operation — exercised against a scripted fake vehicle
// so every server decision is observable without a full vehicle stack.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/server.hpp"

namespace dacm::server {
namespace {

/// A scripted ECM stand-in: connects to the server, says hello, records
/// every pushed message, and acks on demand.
struct FakeEcm {
  sim::Simulator& simulator;
  std::shared_ptr<sim::NetPeer> peer;
  std::vector<pirte::PirteMessage> pushed;
  std::string vin;

  FakeEcm(sim::Simulator& simulator, sim::Network& network, TrustedServer& server,
          std::string vin_in)
      : simulator(simulator), vin(std::move(vin_in)) {
    auto client = network.Connect(server.address());
    EXPECT_TRUE(client.ok());
    peer = std::move(*client);
    peer->SetReceiveHandler([this](const support::Bytes& data) {
      auto envelope = pirte::Envelope::Deserialize(data);
      if (!envelope.ok()) return;
      auto message = pirte::PirteMessage::Deserialize(envelope->message);
      if (message.ok()) pushed.push_back(*message);
    });
    pirte::Envelope hello;
    hello.kind = pirte::Envelope::Kind::kHello;
    hello.vin = vin;
    EXPECT_TRUE(peer->Send(hello.Serialize()).ok());
    simulator.Run();
  }

  void Ack(const std::string& plugin, bool ok, const std::string& detail = "") {
    pirte::PirteMessage ack;
    ack.type = pirte::MessageType::kAck;
    ack.plugin_name = plugin;
    ack.ok = ok;
    ack.detail = detail;
    pirte::Envelope envelope;
    envelope.kind = pirte::Envelope::Kind::kPirteMessage;
    envelope.vin = vin;
    envelope.message = ack.Serialize();
    EXPECT_TRUE(peer->Send(envelope.Serialize()).ok());
    simulator.Run();
  }

  void AckAllPushedInstalls() {
    for (const auto& message : pushed) {
      if (message.type == pirte::MessageType::kInstallPackage ||
          message.type == pirte::MessageType::kUninstall) {
        Ack(message.plugin_name, true);
      }
    }
  }
};

struct ServerFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  TrustedServer server{network, "srv:443"};
  UserId alice = UserId::Invalid();
  std::unique_ptr<FakeEcm> ecm;

  void SetUp() override {
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    auto user = server.CreateUser("alice");
    ASSERT_TRUE(user.ok());
    alice = *user;
    ASSERT_TRUE(server.BindVehicle(alice, "VIN-1", "rpi-testbed").ok());
    ecm = std::make_unique<FakeEcm>(simulator, network, server, "VIN-1");
  }

  App EchoApp(const std::string& name, std::uint32_t plugins = 1,
              std::vector<std::string> depends = {},
              std::vector<std::string> conflicts = {}) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.target_ecu = 1;
    params.depends_on = std::move(depends);
    params.conflicts_with = std::move(conflicts);
    return fes::MakeSyntheticApp(params);
  }

  /// Runs the simulator so server pushes reach the (scripted) vehicle.
  void Settle() { simulator.Run(); }

  void DeployAndAck(const std::string& app) {
    // Tests may have uploaded (a customized) `app` already; the idempotent
    // re-upload of the same version is rejected and that is fine.
    auto upload = server.UploadApp(EchoApp(app));
    ASSERT_TRUE(upload.ok() || upload.code() == support::ErrorCode::kAlreadyExists)
        << upload.ToString();
    ASSERT_TRUE(server.Deploy(alice, "VIN-1", app).ok());
    Settle();
    ecm->AckAllPushedInstalls();
    ecm->pushed.clear();
    auto state = server.AppState("VIN-1", app);
    ASSERT_TRUE(state.ok());
    ASSERT_EQ(*state, InstallState::kInstalled);
  }
};

// --- user setup ------------------------------------------------------------------------

TEST_F(ServerFixture, DuplicateUserRejected) {
  EXPECT_FALSE(server.CreateUser("alice").ok());
}

TEST_F(ServerFixture, BindVehicleValidatesModelAndVin) {
  EXPECT_EQ(server.BindVehicle(alice, "VIN-2", "unknown-model").code(),
            support::ErrorCode::kNotFound);
  EXPECT_EQ(server.BindVehicle(alice, "VIN-1", "rpi-testbed").code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(ServerFixture, OwnershipEnforcedOnAllOperations) {
  auto mallory = server.CreateUser("mallory");
  ASSERT_TRUE(mallory.ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  EXPECT_EQ(server.Deploy(*mallory, "VIN-1", "app").code(),
            support::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.UninstallApp(*mallory, "VIN-1", "app").code(),
            support::ErrorCode::kPermissionDenied);
  EXPECT_EQ(server.Restore(*mallory, "VIN-1", 1).code(),
            support::ErrorCode::kPermissionDenied);
}

// --- uploads -----------------------------------------------------------------------------

TEST_F(ServerFixture, AppUploadValidation) {
  App empty;
  empty.name = "empty";
  EXPECT_FALSE(server.UploadApp(empty).ok());  // no plug-ins

  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  // Same version again: rejected.
  EXPECT_EQ(server.UploadApp(EchoApp("app")).code(),
            support::ErrorCode::kAlreadyExists);
  // Higher version: accepted (update).
  auto v2 = EchoApp("app");
  v2.version = "2.0";
  EXPECT_TRUE(server.UploadApp(v2).ok());
}

// --- deploy pipeline ------------------------------------------------------------------------

TEST_F(ServerFixture, DeployPushesOnePackagePerPlugin) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", /*plugins=*/3)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 3u);
  for (const auto& message : ecm->pushed) {
    EXPECT_EQ(message.type, pirte::MessageType::kInstallPackage);
    EXPECT_EQ(message.target_ecu, 1u);
    EXPECT_TRUE(pirte::InstallationPackage::Deserialize(message.payload).ok());
  }
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
}

TEST_F(ServerFixture, InstallConfirmedOnlyWhenAllPluginsAck) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", 2)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 2u);
  ecm->Ack(ecm->pushed[0].plugin_name, true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
  ecm->Ack(ecm->pushed[1].plugin_name, true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kInstalled);
}

TEST_F(ServerFixture, NackMarksInstallFailed) {
  ASSERT_TRUE(server.UploadApp(EchoApp("app", 2)).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 2u);
  ecm->Ack(ecm->pushed[0].plugin_name, false, "quota");
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kFailed);
}

TEST_F(ServerFixture, DeployRejectedWithoutSwConfForModel) {
  fes::SyntheticAppParams params;
  params.name = "wrongmodel";
  params.vehicle_model = "some-other-model";
  ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "wrongmodel").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DeployRejectedOnOldPlatform) {
  auto app = EchoApp("needsnew");
  app.confs[0].min_platform = "9.9";
  ASSERT_TRUE(server.UploadApp(app).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "needsnew").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DeployRejectedOnMissingVirtualPort) {
  auto app = EchoApp("needsvp");
  app.confs[0].required_virtual_ports = {"NonexistentPort"};
  ASSERT_TRUE(server.UploadApp(app).ok());
  auto status = server.Deploy(alice, "VIN-1", "needsvp");
  EXPECT_EQ(status.code(), support::ErrorCode::kIncompatible);
  EXPECT_NE(status.message().find("NonexistentPort"), std::string::npos);
}

TEST_F(ServerFixture, DeployRejectedOnNonPluginEcu) {
  auto app = EchoApp("badplacement");
  app.confs[0].placements[0].ecu_id = 99;
  ASSERT_TRUE(server.UploadApp(app).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "badplacement").code(),
            support::ErrorCode::kIncompatible);
}

TEST_F(ServerFixture, DependencyMustBeInstalledFirst) {
  ASSERT_TRUE(server.UploadApp(EchoApp("base")).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "addon").code(),
            support::ErrorCode::kDependencyViolation);
  DeployAndAck("base");
  EXPECT_TRUE(server.Deploy(alice, "VIN-1", "addon").ok());
}

TEST_F(ServerFixture, PendingDependencyDoesNotCount) {
  ASSERT_TRUE(server.UploadApp(EchoApp("base")).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  ASSERT_TRUE(server.Deploy(alice, "VIN-1", "base").ok());
  // base is pushed but not acked -> still pending -> addon must wait.
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "addon").code(),
            support::ErrorCode::kDependencyViolation);
}

TEST_F(ServerFixture, ConflictsRejectedBothDirections) {
  ASSERT_TRUE(server.UploadApp(EchoApp("first", 1, {}, {"second"})).ok());
  ASSERT_TRUE(server.UploadApp(EchoApp("second")).ok());
  DeployAndAck("first");
  // first declares the conflict; second is the newcomer.
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "second").code(),
            support::ErrorCode::kDependencyViolation);
}

TEST_F(ServerFixture, DoubleDeployRejected) {
  DeployAndAck("app");
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "app").code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(ServerFixture, DeployToOfflineVehicleFails) {
  ecm->peer->Close();
  ASSERT_TRUE(server.UploadApp(EchoApp("app")).ok());
  EXPECT_EQ(server.Deploy(alice, "VIN-1", "app").code(),
            support::ErrorCode::kUnavailable);
}

TEST_F(ServerFixture, UniqueIdsNeverCollideAcrossApps) {
  DeployAndAck("one");
  DeployAndAck("two");
  const auto vehicle = server.FindVehicle("VIN-1");
  ASSERT_NE(vehicle, nullptr);
  std::set<std::uint8_t> ids;
  for (const auto& installed : vehicle->installed) {
    for (const auto& plugin : installed.plugins) {
      for (const auto& entry : plugin.pic.entries) {
        EXPECT_TRUE(ids.insert(entry.unique_id).second)
            << "uid " << int(entry.unique_id) << " reused";
      }
    }
  }
  EXPECT_EQ(ids.size(), 4u);  // 2 apps x 1 plugin x 2 ports
}

TEST_F(ServerFixture, FreedIdsAreReusedAfterUninstall) {
  DeployAndAck("one");
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "one").ok());
  Settle();
  ecm->AckAllPushedInstalls();
  ecm->pushed.clear();
  DeployAndAck("two");
  const auto vehicle = server.FindVehicle("VIN-1");
  ASSERT_EQ(vehicle->installed.size(), 1u);
  EXPECT_EQ(vehicle->installed[0].plugins[0].pic.entries[0].unique_id, 0);
}

// --- uninstall -----------------------------------------------------------------------------

TEST_F(ServerFixture, UninstallPushesMessagesAndRemovesOnAck) {
  DeployAndAck("app");
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "app").ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 1u);
  EXPECT_EQ(ecm->pushed[0].type, pirte::MessageType::kUninstall);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kUninstalling);
  ecm->Ack("app.p0", true);
  EXPECT_FALSE(server.AppState("VIN-1", "app").ok());  // row removed
}

TEST_F(ServerFixture, UninstallBlockedByDependents) {
  DeployAndAck("base");
  ASSERT_TRUE(server.UploadApp(EchoApp("addon", 1, {"base"})).ok());
  DeployAndAck("addon");
  auto status = server.UninstallApp(alice, "VIN-1", "base");
  EXPECT_EQ(status.code(), support::ErrorCode::kDependencyViolation);
  EXPECT_NE(status.message().find("addon"), std::string::npos);
  // After removing the dependent, the base can go.
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-1", "addon").ok());
  Settle();
  ecm->AckAllPushedInstalls();
  ecm->pushed.clear();
  EXPECT_TRUE(server.UninstallApp(alice, "VIN-1", "base").ok());
}

TEST_F(ServerFixture, UninstallUnknownAppFails) {
  EXPECT_EQ(server.UninstallApp(alice, "VIN-1", "ghost").code(),
            support::ErrorCode::kNotFound);
}

// --- restore ---------------------------------------------------------------------------------

TEST_F(ServerFixture, RestoreRepushesRecordedPackages) {
  DeployAndAck("app");
  const auto vehicle = server.FindVehicle("VIN-1");
  const auto original_uid =
      vehicle->installed[0].plugins[0].pic.entries[0].unique_id;

  ASSERT_TRUE(server.Restore(alice, "VIN-1", 1).ok());
  Settle();
  ASSERT_EQ(ecm->pushed.size(), 1u);
  EXPECT_EQ(ecm->pushed[0].type, pirte::MessageType::kInstallPackage);
  auto package = pirte::InstallationPackage::Deserialize(ecm->pushed[0].payload);
  ASSERT_TRUE(package.ok());
  // The restored package carries the identical contexts (same unique ids).
  EXPECT_EQ(package->pic.entries[0].unique_id, original_uid);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kPending);
  ecm->Ack("app.p0", true);
  EXPECT_EQ(*server.AppState("VIN-1", "app"), InstallState::kInstalled);
}

TEST_F(ServerFixture, RestoreOnlyTouchesTheReplacedEcu) {
  DeployAndAck("app");  // placed on ECU 1
  EXPECT_EQ(server.Restore(alice, "VIN-1", 2).code(),
            support::ErrorCode::kNotFound);  // nothing on ECU 2
  EXPECT_TRUE(ecm->pushed.empty());
}

// --- campaigns -------------------------------------------------------------------------------

/// Fixture for fleet campaigns: a sharded server and a scripted fleet.
struct CampaignFixture : ::testing::Test {
  static constexpr std::size_t kFleet = 24;
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  TrustedServer server{network, "srv:443", ServerOptions{4}};
  UserId alice = UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;

  void SetUp() override {
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    alice = *server.CreateUser("alice");
    fes::ScriptedFleetOptions options;
    options.vehicle_count = kFleet;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, server,
                                                 options);
    ASSERT_TRUE(fleet->BindAndConnect(alice).ok());
  }

  App FleetApp(const std::string& name, std::uint32_t plugins = 3) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = plugins;
    params.target_ecu = 1;
    return fes::MakeSyntheticApp(params);
  }
};

TEST_F(CampaignFixture, CampaignInstallsWholeFleetWithOneBatchPerVehicle) {
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/3)).ok());
  auto report = server.DeployCampaign(alice, "app", fleet->vins());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deployed, kFleet);
  EXPECT_EQ(report->rejected, 0u);
  EXPECT_EQ(report->per_vehicle_ns.size(), kFleet);
  simulator.Run();

  // One batched push per vehicle carrying all three packages...
  EXPECT_EQ(fleet->batches_received(), kFleet);
  EXPECT_EQ(fleet->packages_received(), kFleet * 3);
  EXPECT_EQ(server.stats().packages_pushed, kFleet);  // batches, not plug-ins
  // ...and the batch acks complete every row.
  EXPECT_EQ(server.stats().acks_received, kFleet * 3);
  for (const std::string& vin : fleet->vins()) {
    EXPECT_EQ(*server.AppState(vin, "app"), InstallState::kInstalled) << vin;
  }
  EXPECT_EQ(server.stats().deploys_ok, kFleet);
}

TEST_F(CampaignFixture, PerPluginAcksCompleteBatchedRowsToo) {
  // A fleet that acks each embedded package individually (the real ECM's
  // behavior) must converge to the same state as the batch-ack path.
  fes::ScriptedFleetOptions options;
  options.vehicle_count = 5;
  options.vin_prefix = "MIXED-";
  options.batch_ack = false;
  fes::ScriptedFleet mixed(simulator, network, server, options);
  ASSERT_TRUE(mixed.BindAndConnect(alice).ok());
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/2)).ok());
  auto report = server.DeployCampaign(alice, "app", mixed.vins());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deployed, 5u);
  simulator.Run();
  for (const std::string& vin : mixed.vins()) {
    EXPECT_EQ(*server.AppState(vin, "app"), InstallState::kInstalled) << vin;
  }
}

TEST_F(CampaignFixture, PerVehicleRejectionsAreReportedNotFatal) {
  ASSERT_TRUE(server.UploadApp(FleetApp("app")).ok());
  // Two bad VINs in the middle of the fleet: one unknown, one offline.
  std::vector<std::string> vins = fleet->vins();
  vins.insert(vins.begin() + 3, "VIN-GHOST");
  ASSERT_TRUE(server.BindVehicle(alice, "VIN-OFFLINE", "rpi-testbed").ok());
  vins.push_back("VIN-OFFLINE");

  auto report = server.DeployCampaign(alice, "app", vins);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deployed, kFleet);
  EXPECT_EQ(report->rejected, 2u);
  ASSERT_EQ(report->failures.size(), 2u);
  for (const auto& [vin, status] : report->failures) {
    if (vin == "VIN-GHOST") {
      EXPECT_EQ(status.code(), support::ErrorCode::kNotFound);
    } else {
      EXPECT_EQ(vin, "VIN-OFFLINE");
      EXPECT_EQ(status.code(), support::ErrorCode::kUnavailable);
    }
  }
  simulator.Run();
  EXPECT_EQ(server.stats().deploys_ok, kFleet);
  // Only the offline vehicle counts as a rejection; an unknown VIN fails
  // before the pipeline starts (same accounting as interactive Deploy).
  EXPECT_EQ(server.stats().deploys_rejected, 1u);
}

TEST_F(CampaignFixture, NackedVehiclesEndUpFailedTheRestInstalled) {
  fes::ScriptedFleetOptions options;
  options.vehicle_count = 9;
  options.vin_prefix = "NACK-";
  options.nack_every = 3;  // endpoints 2, 5, 8 reject
  fes::ScriptedFleet nacky(simulator, network, server, options);
  ASSERT_TRUE(nacky.BindAndConnect(alice).ok());
  ASSERT_TRUE(server.UploadApp(FleetApp("app")).ok());
  auto report = server.DeployCampaign(alice, "app", nacky.vins());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->deployed, 9u);
  simulator.Run();
  std::size_t installed = 0, failed = 0;
  for (const std::string& vin : nacky.vins()) {
    auto state = *server.AppState(vin, "app");
    (state == InstallState::kInstalled ? installed : failed) += 1;
    EXPECT_TRUE(state == InstallState::kInstalled || state == InstallState::kFailed);
  }
  EXPECT_EQ(installed, 6u);
  EXPECT_EQ(failed, 3u);
}

TEST_F(CampaignFixture, CampaignOfUnknownAppFailsWholesale) {
  auto report = server.DeployCampaign(alice, "ghost-app", fleet->vins());
  EXPECT_EQ(report.status().code(), support::ErrorCode::kNotFound);
}

TEST_F(CampaignFixture, WholeBatchNackFailsTheRowInsteadOfStrandingIt) {
  // An ECM that cannot decode a campaign batch replies with a *failed
  // kAckBatch* naming the app (the batch's label); the row must go
  // kFailed — not wait forever for per-plug-in acks that never arrive.
  ASSERT_TRUE(server.BindVehicle(alice, "VIN-RAW", "rpi-testbed").ok());
  FakeEcm raw(simulator, network, server, "VIN-RAW");
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/2)).ok());
  std::vector<std::string> vins = {"VIN-RAW"};
  auto report = server.DeployCampaign(alice, "app", vins);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->deployed, 1u);
  simulator.Run();
  EXPECT_EQ(*server.AppState("VIN-RAW", "app"), InstallState::kPending);

  // A plain per-plug-in nack that happens to carry the app's name must
  // NOT fail the row (an app and a plug-in may legally share a name).
  raw.Ack("app", false, "not a batch rejection");
  EXPECT_EQ(*server.AppState("VIN-RAW", "app"), InstallState::kPending);

  pirte::PirteMessage nack;
  nack.type = pirte::MessageType::kAckBatch;
  nack.plugin_name = "app";
  nack.ok = false;
  nack.detail = "undecodable install batch";
  pirte::Envelope envelope;
  envelope.kind = pirte::Envelope::Kind::kPirteMessage;
  envelope.vin = "VIN-RAW";
  envelope.message = nack.Serialize();
  ASSERT_TRUE(raw.peer->Send(envelope.Serialize()).ok());
  simulator.Run();
  EXPECT_EQ(*server.AppState("VIN-RAW", "app"), InstallState::kFailed);
  // The failed row uninstalls normally, freeing the ids for a retry.
  ASSERT_TRUE(server.UninstallApp(alice, "VIN-RAW", "app").ok());
}

TEST_F(CampaignFixture, PersistentIdBitmapAgreesWithTableReconstruction) {
  // Vehicle::port_ids is maintained incrementally; CollectUsedIds rebuilds
  // the same information from the InstalledAPP table.  After a campaign +
  // partial uninstall churn the two must agree exactly.
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/3)).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app", fleet->vins()).ok());
  simulator.Run();
  for (std::size_t i = 0; i < fleet->vins().size(); i += 2) {
    ASSERT_TRUE(server.UninstallApp(alice, fleet->vins()[i], "app").ok());
  }
  simulator.Run();
  for (const std::string& vin : fleet->vins()) {
    const auto vehicle = server.FindVehicle(vin);
    ASSERT_NE(vehicle, nullptr);
    const UsedIdMap rebuilt = CollectUsedIds(*vehicle);
    std::size_t live_nonempty = 0;
    for (const auto& [ecu, set] : vehicle->port_ids) {
      if (set.size() == 0) continue;
      ++live_nonempty;
      ASSERT_TRUE(rebuilt.contains(ecu)) << vin << " ECU " << ecu;
      for (int id = 0; id < 256; ++id) {
        EXPECT_EQ(set.contains(static_cast<std::uint8_t>(id)),
                  rebuilt.at(ecu).contains(static_cast<std::uint8_t>(id)))
            << vin << " ECU " << ecu << " id " << id;
      }
    }
    EXPECT_EQ(live_nonempty, rebuilt.size()) << vin;
  }
}

TEST_F(CampaignFixture, CampaignDeploymentsAreUninstallableAndRedeployable) {
  // The batched row must behave like any other: uninstall frees the ids,
  // a second campaign reuses them.
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/2)).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app", fleet->vins()).ok());
  simulator.Run();
  for (const std::string& vin : fleet->vins()) {
    ASSERT_TRUE(server.UninstallApp(alice, vin, "app").ok());
  }
  simulator.Run();
  for (const std::string& vin : fleet->vins()) {
    EXPECT_FALSE(server.AppState(vin, "app").ok()) << vin;  // rows removed
  }
  auto again = server.DeployCampaign(alice, "app", fleet->vins());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->deployed, kFleet);
  simulator.Run();
  const auto vehicle = server.FindVehicle(fleet->vins()[0]);
  ASSERT_NE(vehicle, nullptr);
  ASSERT_EQ(vehicle->installed.size(), 1u);
  // Freed ids were reused: allocation restarted at 0.
  EXPECT_EQ(vehicle->installed[0].plugins[0].pic.entries[0].unique_id, 0);
}

// --- content-addressed package cache ---------------------------------------------------------

TEST_F(CampaignFixture, CampaignSharesOneCachedBatchAcrossTheFleet) {
  ASSERT_TRUE(server.UploadApp(FleetApp("app")).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app", fleet->vins()).ok());
  // Before the acks land: every pending row references the *same*
  // refcounted envelope — pointer identity, not just equal bytes.
  const auto first = server.FindVehicle(fleet->vins()[0]);
  const auto last = server.FindVehicle(fleet->vins()[kFleet - 1]);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  ASSERT_EQ(first->installed.size(), 1u);
  EXPECT_EQ(first->installed[0].push_bytes.data(),
            last->installed[0].push_bytes.data());
  EXPECT_EQ(first->installed[0].uninstall_bytes.data(),
            last->installed[0].uninstall_bytes.data());
  // One distinct (model, app, version) -> one cache entry, generated once.
  EXPECT_EQ(server.package_cache().entries(), 1u);
}

TEST_F(CampaignFixture, DistinctAppsNeverShareCachedEnvelopes) {
  // Same fleet, same version string, different app names: the cache keys
  // must isolate them — a hash-key collision handing app-b's fleet
  // app-a's batch would install the wrong software.
  ASSERT_TRUE(server.UploadApp(FleetApp("app-a")).ok());
  ASSERT_TRUE(server.UploadApp(FleetApp("app-b")).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app-a", fleet->vins()).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app-b", fleet->vins()).ok());
  const auto vehicle = server.FindVehicle(fleet->vins()[0]);
  ASSERT_NE(vehicle, nullptr);
  ASSERT_EQ(vehicle->installed.size(), 2u);
  const auto& a = vehicle->installed[0];
  const auto& b = vehicle->installed[1];
  EXPECT_NE(a.push_bytes.data(), b.push_bytes.data());
  EXPECT_NE(a.push_bytes.bytes(), b.push_bytes.bytes());
  EXPECT_NE(a.uninstall_bytes.bytes(), b.uninstall_bytes.bytes());
  EXPECT_EQ(server.package_cache().entries(), 2u);
  simulator.Run();
  for (const std::string& vin : fleet->vins()) {
    EXPECT_EQ(*server.AppState(vin, "app-a"), InstallState::kInstalled) << vin;
    EXPECT_EQ(*server.AppState(vin, "app-b"), InstallState::kInstalled) << vin;
  }
}

TEST_F(CampaignFixture, ConvergenceDropsTheCachedPayload) {
  ASSERT_TRUE(server.UploadApp(FleetApp("app")).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app", fleet->vins()).ok());
  // In flight: the fleet's pending rows pin the payload alive.
  EXPECT_EQ(server.package_cache().live_payloads(), 1u);
  simulator.Run();
  // Converged: the last row's refcount drop freed the package bytes and
  // batch envelope fleet-wide; only the manifest (names, ids, uninstall
  // wire) stays pinned.
  EXPECT_EQ(server.package_cache().live_payloads(), 0u);
  EXPECT_EQ(server.package_cache().entries(), 1u);
  for (const std::string& vin : fleet->vins()) {
    EXPECT_EQ(*server.AppState(vin, "app"), InstallState::kInstalled) << vin;
  }
}

TEST_F(CampaignFixture, RollbackReusesTheCachedUninstallBatch) {
  ASSERT_TRUE(server.UploadApp(FleetApp("app", /*plugins=*/2)).ok());
  ASSERT_TRUE(server.DeployCampaign(alice, "app", fleet->vins()).ok());
  simulator.Run();
  // The rollback wave pushes the manifest's pre-built kUninstallBatch —
  // no per-vehicle serialization, same refcounted wire for every VIN.
  auto outcomes = server.CampaignWavePush(alice, "app", CampaignKind::kRollback,
                                          fleet->vins());
  for (const WaveOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.action, WaveOutcome::Action::kPushed)
        << outcome.status.ToString();
  }
  const auto first = server.FindVehicle(fleet->vins()[0]);
  const auto last = server.FindVehicle(fleet->vins()[kFleet - 1]);
  ASSERT_EQ(first->installed.size(), 1u);
  EXPECT_EQ(first->installed[0].uninstall_bytes.data(),
            last->installed[0].uninstall_bytes.data());
  simulator.Run();
  EXPECT_EQ(fleet->uninstall_batches_received(), kFleet);
  for (const std::string& vin : fleet->vins()) {
    EXPECT_FALSE(server.AppState(vin, "app").ok()) << vin;  // rows gone
  }
}

// --- queries / stats -----------------------------------------------------------------------------

TEST_F(ServerFixture, InstalledAppsListing) {
  EXPECT_TRUE(server.InstalledApps("VIN-1").empty());
  DeployAndAck("a1");
  DeployAndAck("a2");
  auto apps = server.InstalledApps("VIN-1");
  EXPECT_EQ(apps.size(), 2u);
}

TEST_F(ServerFixture, StatsTrackOperations) {
  DeployAndAck("app");
  EXPECT_EQ(server.stats().deploys_ok, 1u);
  EXPECT_EQ(server.stats().packages_pushed, 1u);
  EXPECT_EQ(server.stats().acks_received, 1u);
  ASSERT_TRUE(server.UploadApp(EchoApp("bad", 1, {"missing-dep"})).ok());
  (void)server.Deploy(alice, "VIN-1", "bad");
  EXPECT_EQ(server.stats().deploys_rejected, 1u);
}

TEST_F(ServerFixture, VehicleOnlineTracksConnection) {
  EXPECT_TRUE(server.VehicleOnline("VIN-1"));
  ecm->peer->Close();
  EXPECT_FALSE(server.VehicleOnline("VIN-1"));
  EXPECT_FALSE(server.VehicleOnline("VIN-404"));
}

}  // namespace
}  // namespace dacm::server
