// Property tests on the communication substrate: CanTp payload round-trips
// across the segmentation boundaries, single-bit corruption detection at
// every byte position, CAN arbitration order under load, frame timing
// monotonicity, and NvM block independence sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bsw/can_if.hpp"
#include "bsw/can_tp.hpp"
#include "bsw/nvm.hpp"
#include "sim/can_bus.hpp"
#include "test_util.hpp"

namespace dacm::bsw {
namespace {

/// The shared ScriptedTpLink under its property-suite alias.
using TpLink = testutil::ScriptedTpLink;

// --- segmentation boundaries --------------------------------------------------------------

class TpBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TpBoundary, PayloadRoundTripsExactly) {
  TpLink link;
  const auto message = testutil::PatternBytes(GetParam());
  ASSERT_TRUE(link.tx.Send(message).ok());
  link.simulator.Run();
  ASSERT_EQ(link.messages.size(), 1u) << "size " << GetParam();
  EXPECT_EQ(link.messages[0], message);
  EXPECT_TRUE(link.errors.empty());
}

// The interesting sizes: around the single-frame limit (7 bytes of payload
// minus the 4-byte CRC trailer => 3 user bytes), the FF payload (3), CF
// payload (7), and the sequence-counter wrap (16 CFs).
INSTANTIATE_TEST_SUITE_P(Boundaries, TpBoundary,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 10, 11, 17, 18,
                                           24, 25, 109, 110, 111, 112, 113,
                                           512, 4096));

// --- corruption detection ---------------------------------------------------------------------

class TpCorruption : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TpCorruption, FlippedBitAtAnyPositionIsNeverDeliveredAsData) {
  // Deterministic corruption: flip one payload bit of the k-th frame by
  // intercepting at the CanIf level is not exposed, so use the bus's fault
  // injection at rate 1.0 for exactly the window of one frame instead:
  // every frame is delivered corrupted -> reassembly must fail, never
  // deliver wrong bytes.
  TpLink link;
  link.bus.SetCorruptRate(1.0);
  const auto message = testutil::PatternBytes(GetParam());
  ASSERT_TRUE(link.tx.Send(message).ok());
  link.simulator.Run();
  EXPECT_TRUE(link.messages.empty()) << "corrupted payload delivered!";
  EXPECT_GE(link.errors.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TpCorruption,
                         ::testing::Values(1, 3, 8, 64, 200));

TEST(TpCorruptionRecovery, ChannelRecoversAfterCorruptionEnds) {
  TpLink link;
  link.bus.SetCorruptRate(1.0);
  ASSERT_TRUE(link.tx.Send(testutil::PatternBytes(50)).ok());
  link.simulator.Run();
  EXPECT_TRUE(link.messages.empty());
  link.bus.SetCorruptRate(0.0);
  ASSERT_TRUE(link.tx.Send(testutil::PatternBytes(50)).ok());
  link.simulator.Run();
  ASSERT_EQ(link.messages.size(), 1u);
  EXPECT_EQ(link.messages[0], testutil::PatternBytes(50));
}

TEST(TpDrops, DroppedFramesAreDetectedNotMisassembled) {
  TpLink link;
  link.bus.SetDropRate(0.4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(link.tx.Send(testutil::PatternBytes(100)).ok());
    link.simulator.Run();
  }
  // Whatever got through is byte-perfect.
  for (const auto& message : link.messages) {
    EXPECT_EQ(message, testutil::PatternBytes(100));
  }
  // Conservation: every send either arrived or raised an error (a fully
  // dropped first frame leaves the receiver idle, which is also safe).
  EXPECT_LE(link.messages.size(), 20u);
}

// --- CAN arbitration --------------------------------------------------------------------------

TEST(CanArbitration, LowestIdWinsAtEveryBusIdlePoint) {
  // Arbitration happens between the *head* frames of the attached nodes
  // (within one node the TX mailbox is FIFO, as in a real controller), so
  // give every frame its own node.
  sim::Simulator simulator;
  sim::CanBus bus(simulator, 500'000);
  std::vector<std::uint32_t> delivery_order;
  bus.AttachNode("rx", [&](const sim::CanFrame& frame) {
    delivery_order.push_back(frame.can_id);
  });
  for (std::uint32_t id : {0x300u, 0x200u, 0x100u, 0x050u}) {
    auto node = bus.AttachNode("tx" + std::to_string(id),
                               [](const sim::CanFrame&) {});
    sim::CanFrame frame;
    frame.can_id = id;
    frame.dlc = 1;
    ASSERT_TRUE(bus.Send(node, frame).ok());
  }
  simulator.Run();
  ASSERT_EQ(delivery_order.size(), 4u);
  EXPECT_EQ(delivery_order[0], 0x300u);  // grabbed the idle bus first
  EXPECT_EQ(delivery_order[1], 0x050u);  // then strict priority
  EXPECT_EQ(delivery_order[2], 0x100u);
  EXPECT_EQ(delivery_order[3], 0x200u);
}

TEST(CanArbitration, TwoNodesInterleaveByPriorityNotFairness) {
  sim::Simulator simulator;
  sim::CanBus bus(simulator, 500'000);
  std::vector<std::uint32_t> order;
  bus.AttachNode("rx", [&](const sim::CanFrame& f) { order.push_back(f.can_id); });
  auto high = bus.AttachNode("high", [](const sim::CanFrame&) {});
  auto low = bus.AttachNode("low", [](const sim::CanFrame&) {});
  for (int i = 0; i < 3; ++i) {
    sim::CanFrame hf;
    hf.can_id = 0x010 + static_cast<std::uint32_t>(i);
    hf.dlc = 1;
    sim::CanFrame lf;
    lf.can_id = 0x700 + static_cast<std::uint32_t>(i);
    lf.dlc = 1;
    ASSERT_TRUE(bus.Send(low, lf).ok());
    ASSERT_TRUE(bus.Send(high, hf).ok());
  }
  simulator.Run();
  ASSERT_EQ(order.size(), 6u);
  // After the head-of-line frame, all high-priority traffic precedes low.
  for (std::size_t i = 1; i < 4; ++i) EXPECT_LT(order[i], 0x100u) << i;
  for (std::size_t i = 4; i < 6; ++i) EXPECT_GE(order[i], 0x700u) << i;
}

class FrameTimeSweep : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(FrameTimeSweep, FrameTimeGrowsWithDlcAndShrinksWithBitRate) {
  const std::uint8_t dlc = GetParam();
  sim::Simulator simulator;
  sim::CanBus slow(simulator, 125'000);
  sim::CanBus fast(simulator, 1'000'000);
  EXPECT_GT(slow.FrameTime(dlc), fast.FrameTime(dlc));
  if (dlc < 8) {
    EXPECT_LT(slow.FrameTime(dlc), slow.FrameTime(dlc + 1));
  }
  // Sanity: a 500 kbit/s 8-byte frame is on the order of 10^2 us.
  sim::CanBus nominal(simulator, 500'000);
  EXPECT_GT(nominal.FrameTime(8), 100 * sim::kMicrosecond);
  EXPECT_LT(nominal.FrameTime(8), 500 * sim::kMicrosecond);
}

INSTANTIATE_TEST_SUITE_P(Dlcs, FrameTimeSweep,
                         ::testing::Values(0, 1, 4, 7, 8));

// --- NvM block independence -------------------------------------------------------------------

class NvmSweep : public ::testing::TestWithParam<int> {};

TEST_P(NvmSweep, BlocksAreIndependentUnderInterleavedWrites) {
  const int blocks = GetParam();
  Nvm nvm;
  std::vector<NvBlockId> ids;
  for (int i = 0; i < blocks; ++i) {
    ids.push_back(*nvm.DefineBlock("block" + std::to_string(i), 256));
  }
  // Interleave two write generations.
  for (int generation = 0; generation < 2; ++generation) {
    for (int i = generation % 2; i < blocks; i += 2) {
      support::Bytes data{static_cast<std::uint8_t>(i),
                          static_cast<std::uint8_t>(generation)};
      ASSERT_TRUE(nvm.WriteBlock(ids[static_cast<std::size_t>(i)], data).ok());
    }
  }
  for (int i = 0; i < blocks; ++i) {
    auto data = nvm.ReadBlock(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(data.ok()) << i;
    EXPECT_EQ((*data)[0], static_cast<std::uint8_t>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, NvmSweep, ::testing::Values(1, 2, 5, 16));

// --- randomized round-trip fuzz ---------------------------------------------------------------

TEST(TpFuzz, RandomSizesRoundTripInOrderOnACleanBus) {
  DACM_PROPERTY_RNG(rng);
  TpLink link;
  std::vector<support::Bytes> sent;
  for (int i = 0; i < 64; ++i) {
    const auto size = static_cast<std::size_t>(rng.NextBelow(600));
    sent.push_back(testutil::PatternBytes(size));
    ASSERT_TRUE(link.tx.Send(sent.back()).ok()) << "message " << i;
    // Sometimes drain mid-stream, sometimes let sends queue up.
    if (rng.NextBool(0.5)) link.simulator.Run();
  }
  link.simulator.Run();
  ASSERT_EQ(link.messages.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(link.messages[i], sent[i]) << "message " << i;
  }
  EXPECT_TRUE(link.errors.empty());
}

TEST(TpFuzz, RandomCorruptionNeverDeliversWrongBytes) {
  DACM_PROPERTY_RNG(rng);
  TpLink link;
  const auto payload = testutil::PatternBytes(120);
  for (int round = 0; round < 32; ++round) {
    link.bus.SetCorruptRate(rng.NextDouble());
    ASSERT_TRUE(link.tx.Send(payload).ok()) << "round " << round;
    link.simulator.Run();
  }
  // Whatever survived the noise is byte-perfect; nothing mangled leaks out.
  for (const auto& message : link.messages) EXPECT_EQ(message, payload);
}

}  // namespace
}  // namespace dacm::bsw
