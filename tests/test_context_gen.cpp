// Direct unit tests of the server's context generator (paper §3.2.2):
// PIC id assignment against the occupied-id map, PLC translation for every
// ConnectionDecl target, the same-ECU vs cross-ECU peer split, Type II
// channel lookup, ECC extraction, and the generator's rejection diagnostics.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"
#include "server/context_gen.hpp"

namespace dacm::server {
namespace {

using pirte::PlcKind;

/// A two-plugin app shaped like the paper's RemoteCar: `a` on ECU 1,
/// `b` on ECU 2, two ports each.
App TwoEcuApp() {
  App app;
  app.name = "app";
  app.version = "1.0";
  const support::Bytes binary = fes::MakeEchoPluginBinary();
  PluginDecl a;
  a.name = "a";
  a.binary = binary;
  a.ports = {{0, "a.in", pirte::PluginPortDirection::kRequired},
             {1, "a.out", pirte::PluginPortDirection::kProvided}};
  PluginDecl b;
  b.name = "b";
  b.binary = binary;
  b.ports = {{0, "b.in", pirte::PluginPortDirection::kRequired},
             {1, "b.out", pirte::PluginPortDirection::kProvided}};
  app.plugins.push_back(std::move(a));
  app.plugins.push_back(std::move(b));
  SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.placements = {{"a", 1}, {"b", 2}};
  app.confs.push_back(std::move(conf));
  return app;
}

const SwConf& Conf(const App& app) { return app.confs[0]; }

const GeneratedPackage* Find(const std::vector<GeneratedPackage>& packages,
                             const std::string& plugin) {
  for (const auto& package : packages) {
    if (package.plugin == plugin) return &package;
  }
  return nullptr;
}

// --- PIC / id allocation ----------------------------------------------------------------

TEST(ContextGenPic, IdsAreAllocatedLowestFreeFirstPerEcu) {
  auto app = TwoEcuApp();
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  used[1] = {0, 1, 3};  // ECU1 has holes: 2 is the lowest free id
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto* a = Find(*packages, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->package.pic.entries[0].unique_id, 2);
  EXPECT_EQ(a->package.pic.entries[1].unique_id, 4);
  // ECU2 was untouched: ids start at 0.
  const auto* b = Find(*packages, "b");
  EXPECT_EQ(b->package.pic.entries[0].unique_id, 0);
  EXPECT_EQ(b->package.pic.entries[1].unique_id, 1);
}

TEST(ContextGenPic, UsedMapIsUpdatedWithTheNewIds) {
  auto app = TwoEcuApp();
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  ASSERT_TRUE(GeneratePackages(app, Conf(app), model.sw, used).ok());
  EXPECT_TRUE(used[1].contains(0));
  EXPECT_TRUE(used[1].contains(1));
  EXPECT_TRUE(used[2].contains(0));
  EXPECT_TRUE(used[2].contains(1));
  // A second generation continues after them.
  auto again = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Find(*again, "a")->package.pic.entries[0].unique_id, 2);
}

TEST(ContextGenPic, IdSpaceExhaustionIsDetected) {
  auto app = TwoEcuApp();
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  for (int i = 0; i < 255; ++i) used[1].insert(static_cast<std::uint8_t>(i));
  // One id left on ECU1 but plug-in `a` needs two.
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  EXPECT_EQ(packages.status().code(), support::ErrorCode::kResourceExhausted);
  // The id claimed before exhaustion was released again: 255 is still free.
  EXPECT_EQ(used[1].size(), 255u);
  EXPECT_FALSE(used[1].contains(255));
}

TEST(ContextGenPic, FailedGenerationReleasesEveryClaimedId) {
  auto app = TwoEcuApp();
  app.confs[0].placements.pop_back();  // b has no placement -> pass-1 abort
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  used[1] = {7};
  ASSERT_FALSE(GeneratePackages(app, Conf(app), model.sw, used).ok());
  // a's two ids on ECU1 were claimed before the abort and must be gone;
  // the pre-existing occupancy stays.
  EXPECT_EQ(used[1].size(), 1u);
  EXPECT_TRUE(used[1].contains(7));
  EXPECT_FALSE(used.contains(2) && used[2].size() > 0);
}

TEST(PortIdSetTest, AllocatesLowestFreeAndRoundTrips) {
  PortIdSet set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(*set.AllocateLowest(), 0);
  EXPECT_EQ(*set.AllocateLowest(), 1);
  set.insert(3);
  EXPECT_EQ(*set.AllocateLowest(), 2);
  EXPECT_EQ(*set.AllocateLowest(), 4);  // 3 was taken
  set.erase(1);
  EXPECT_EQ(*set.AllocateLowest(), 1);  // freed ids come back lowest-first
  // Word boundaries: fill 0..127, expect 128 next.
  for (int i = 0; i < 128; ++i) set.insert(static_cast<std::uint8_t>(i));
  EXPECT_EQ(*set.AllocateLowest(), 128);
  for (int i = 0; i < 256; ++i) set.insert(static_cast<std::uint8_t>(i));
  EXPECT_FALSE(set.AllocateLowest().has_value());
  EXPECT_EQ(set.size(), 256u);
}

TEST(ContextGenPic, MissingPlacementRejected) {
  auto app = TwoEcuApp();
  app.confs[0].placements.pop_back();  // b has no placement
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  EXPECT_EQ(packages.status().code(), support::ErrorCode::kIncompatible);
  EXPECT_NE(packages.status().message().find("b"), std::string::npos);
}

TEST(ContextGenPic, PicCarriesNamesDirectionsAndLocalIndices) {
  auto app = TwoEcuApp();
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto& pic = Find(*packages, "a")->package.pic;
  ASSERT_EQ(pic.entries.size(), 2u);
  EXPECT_EQ(pic.entries[0].port_name, "a.in");
  EXPECT_EQ(pic.entries[0].direction, pirte::PluginPortDirection::kRequired);
  EXPECT_EQ(pic.entries[1].port_name, "a.out");
  EXPECT_EQ(pic.entries[1].direction, pirte::PluginPortDirection::kProvided);
}

// --- PLC translation --------------------------------------------------------------------

TEST(ContextGenPlc, VirtualPortConnectionTranslatesToVId) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"b", 1, ConnectionDecl::Target::kVirtualPort, "WheelsReq", "", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto& plc = Find(*packages, "b")->package.plc;
  ASSERT_EQ(plc.entries.size(), 1u);
  EXPECT_EQ(plc.entries[0].kind, PlcKind::kVirtual);
  EXPECT_EQ(plc.entries[0].virtual_port, 4);  // WheelsReq is V4
}

TEST(ContextGenPlc, VirtualPortOnWrongEcuRejectedWithBothEcusNamed) {
  auto app = TwoEcuApp();
  // WheelsReq lives on ECU2, but `a` is placed on ECU1.
  app.confs[0].connections.push_back(
      {"a", 1, ConnectionDecl::Target::kVirtualPort, "WheelsReq", "", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_FALSE(packages.ok());
  EXPECT_NE(packages.status().message().find("ECU 2"), std::string::npos);
  EXPECT_NE(packages.status().message().find("ECU 1"), std::string::npos);
}

TEST(ContextGenPlc, UnknownVirtualPortRejected) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"b", 1, ConnectionDecl::Target::kVirtualPort, "Ghost", "", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  EXPECT_FALSE(GeneratePackages(app, Conf(app), model.sw, used).ok());
}

TEST(ContextGenPlc, SameEcuPeerBecomesDirectLocalLink) {
  auto app = TwoEcuApp();
  app.confs[0].placements = {{"a", 1}, {"b", 1}};  // co-located
  app.confs[0].connections.push_back(
      {"a", 1, ConnectionDecl::Target::kPeerPlugin, "", "b", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto& entry = Find(*packages, "a")->package.plc.entries[0];
  EXPECT_EQ(entry.kind, PlcKind::kLocalPlugin);
  EXPECT_EQ(entry.peer_plugin, "b");
  EXPECT_EQ(entry.peer_local_port, 0);
}

TEST(ContextGenPlc, CrossEcuPeerRoutesThroughTypeIIWithRecipientId) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"a", 1, ConnectionDecl::Target::kPeerPlugin, "", "b", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  used[2] = {0, 1, 2};  // shift b's ids so the recipient id is non-trivial
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto& entry = Find(*packages, "a")->package.plc.entries[0];
  EXPECT_EQ(entry.kind, PlcKind::kVirtualRemote);
  EXPECT_EQ(entry.virtual_port, 0);  // the ECU1->ECU2 Type II channel is V0
  // The paper's "P2-V0.P0" post: the recipient id is b's port 0 unique id.
  EXPECT_EQ(entry.remote_port_id,
            Find(*packages, "b")->package.pic.entries[0].unique_id);
  EXPECT_EQ(entry.remote_port_id, 3);
}

TEST(ContextGenPlc, MissingTypeIIChannelRejected) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"a", 1, ConnectionDecl::Target::kPeerPlugin, "", "b", 0, "", ""});
  auto model = fes::MakeRpiTestbedConf();
  // Remove the Type II descriptors: no route between the plug-in SW-Cs.
  std::erase_if(model.sw.virtual_ports,
                [](const VirtualPortDesc& vp) { return vp.kind == 2; });
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_FALSE(packages.ok());
  EXPECT_NE(packages.status().message().find("Type II"), std::string::npos);
}

TEST(ContextGenPlc, ConnectionToUndeclaredPortRejected) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"a", 7, ConnectionDecl::Target::kNone, "", "", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_FALSE(packages.ok());
  EXPECT_NE(packages.status().message().find("P7"), std::string::npos);
}

TEST(ContextGenPlc, ConnectionForUnknownPluginRejected) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back(
      {"ghost", 0, ConnectionDecl::Target::kNone, "", "", 0, "", ""});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  EXPECT_FALSE(GeneratePackages(app, Conf(app), model.sw, used).ok());
}

// --- ECC extraction ----------------------------------------------------------------------

TEST(ContextGenEcc, ExternalConnectionsProduceEccAndStayPirteDirect) {
  auto app = TwoEcuApp();
  app.confs[0].connections.push_back({"a", 0, ConnectionDecl::Target::kExternalIn,
                                      "", "", 0, "1.2.3.4:5", "Wheels"});
  app.confs[0].connections.push_back({"a", 1, ConnectionDecl::Target::kExternalOut,
                                      "", "", 0, "5.6.7.8:9", "Telemetry"});
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  const auto& package = Find(*packages, "a")->package;
  // The ports are PIRTE-direct in the PLC ("P0-" posts)...
  ASSERT_EQ(package.plc.entries.size(), 2u);
  EXPECT_EQ(package.plc.entries[0].kind, PlcKind::kUnconnected);
  EXPECT_EQ(package.plc.entries[1].kind, PlcKind::kUnconnected);
  // ...and the ECC carries endpoint, message id, and in-vehicle routing.
  ASSERT_EQ(package.ecc.entries.size(), 2u);
  const auto& in = package.ecc.entries[0];
  EXPECT_EQ(in.direction, pirte::EccDirection::kInbound);
  EXPECT_EQ(in.endpoint, "1.2.3.4:5");
  EXPECT_EQ(in.message_id, "Wheels");
  EXPECT_EQ(in.target_ecu, 1u);
  EXPECT_EQ(in.port_unique_id, package.pic.entries[0].unique_id);
  const auto& out = package.ecc.entries[1];
  EXPECT_EQ(out.direction, pirte::EccDirection::kOutbound);
  EXPECT_EQ(out.message_id, "Telemetry");
}

TEST(ContextGenEcc, PluginsWithoutExternalTrafficGetEmptyEcc) {
  auto app = TwoEcuApp();
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, Conf(app), model.sw, used);
  ASSERT_TRUE(packages.ok());
  EXPECT_TRUE(Find(*packages, "a")->package.ecc.empty());
  EXPECT_TRUE(Find(*packages, "b")->package.ecc.empty());
}

// --- CollectUsedIds ---------------------------------------------------------------------------

TEST(CollectUsedIdsTest, GathersIdsPerEcuFromInstalledTable) {
  Vehicle vehicle;
  vehicle.vin = "VIN";
  InstalledApp installed;
  installed.app_name = "x";
  InstalledApp::PluginRecord r1;
  r1.plugin = "p1";
  r1.ecu_id = 1;
  r1.pic.entries = {{0, "a", 5, pirte::PluginPortDirection::kRequired}};
  InstalledApp::PluginRecord r2;
  r2.plugin = "p2";
  r2.ecu_id = 2;
  r2.pic.entries = {{0, "b", 5, pirte::PluginPortDirection::kProvided}};
  installed.plugins = {r1, r2};
  vehicle.installed.push_back(installed);

  const auto used = CollectUsedIds(vehicle);
  ASSERT_TRUE(used.contains(1));
  ASSERT_TRUE(used.contains(2));
  EXPECT_TRUE(used.at(1).contains(5));
  EXPECT_TRUE(used.at(2).contains(5));  // same id, different ECUs: fine
  EXPECT_EQ(used.at(1).size(), 1u);
}

// --- the paper's exact example ---------------------------------------------------------------

TEST(ContextGenPaper, RemoteCarContextsMatchSection4) {
  const auto app = fes::MakeRemoteCarApp("111.22.33.44:56789");
  const auto model = fes::MakeRpiTestbedConf();
  UsedIdMap used;
  auto packages = GeneratePackages(app, *app.ConfForModel("rpi-testbed"),
                                   model.sw, used);
  ASSERT_TRUE(packages.ok());

  // OP's PLC: {P0-V3... no — P2-V4, P3-V5} with P0/P1 left to the Type II
  // delivery (no explicit posts needed on the receiving side).
  const auto& op = Find(*packages, "OP")->package;
  ASSERT_EQ(op.plc.entries.size(), 2u);
  EXPECT_EQ(op.plc.entries[0].local_port, 2);
  EXPECT_EQ(op.plc.entries[0].kind, PlcKind::kVirtual);
  EXPECT_EQ(op.plc.entries[0].virtual_port, 4);  // WheelsReq = V4
  EXPECT_EQ(op.plc.entries[1].local_port, 3);
  EXPECT_EQ(op.plc.entries[1].virtual_port, 5);  // SpeedReq = V5

  // COM's PLC: {P0-, P1-, P2-V0.P0, P3-V0.P1}.
  const auto& com = Find(*packages, "COM")->package;
  ASSERT_EQ(com.plc.entries.size(), 4u);
  EXPECT_EQ(com.plc.entries[0].kind, PlcKind::kUnconnected);
  EXPECT_EQ(com.plc.entries[1].kind, PlcKind::kUnconnected);
  EXPECT_EQ(com.plc.entries[2].kind, PlcKind::kVirtualRemote);
  EXPECT_EQ(com.plc.entries[2].virtual_port, 0);  // V0
  EXPECT_EQ(com.plc.entries[2].remote_port_id, op.pic.entries[0].unique_id);
  EXPECT_EQ(com.plc.entries[3].remote_port_id, op.pic.entries[1].unique_id);

  // COM's ECC: two inbound posts for 'Wheels' and 'Speed' on ECU1.
  ASSERT_EQ(com.ecc.entries.size(), 2u);
  EXPECT_EQ(com.ecc.entries[0].message_id, "Wheels");
  EXPECT_EQ(com.ecc.entries[1].message_id, "Speed");
  EXPECT_EQ(com.ecc.entries[0].endpoint, "111.22.33.44:56789");
  EXPECT_EQ(com.ecc.entries[0].target_ecu, 1u);
  EXPECT_TRUE(op.ecc.empty());
}

}  // namespace
}  // namespace dacm::server
