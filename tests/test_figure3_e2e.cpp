// End-to-end integration tests for the paper's §4 example application
// (Figure 3): server-triggered installation across the ECM into two ECUs,
// followed by the full phone -> COM -> Type II -> OP -> virtual ports ->
// built-in software signal chain.
#include <gtest/gtest.h>

#include "fes/testbed.hpp"
#include "server/server.hpp"

namespace dacm {
namespace {

using fes::Figure3Testbed;

class Figure3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto testbed = Figure3Testbed::Create();
    ASSERT_TRUE(testbed.ok()) << testbed.status().ToString();
    testbed_ = std::move(*testbed);
    ASSERT_TRUE(testbed_->SetUp().ok());
  }

  std::unique_ptr<Figure3Testbed> testbed_;
};

TEST_F(Figure3Test, EcmConnectsToTrustedServerAtStartup) {
  EXPECT_TRUE(testbed_->server().VehicleOnline("VIN-0001"));
  EXPECT_TRUE(testbed_->vehicle().ecm()->connected_to_server());
}

TEST_F(Figure3Test, DeployInstallsBothPluginsAndAcksArrive) {
  ASSERT_TRUE(testbed_->DeployRemoteCar().ok());

  auto state = testbed_->server().AppState("VIN-0001", "remote-car");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, server::InstallState::kInstalled);

  // COM landed on the ECM (PIRTE1), OP on PIRTE2.
  auto* pirte1 = testbed_->vehicle().FindPirte("PIRTE1");
  auto* pirte2 = testbed_->vehicle().FindPirte("PIRTE2");
  ASSERT_NE(pirte1, nullptr);
  ASSERT_NE(pirte2, nullptr);
  ASSERT_NE(pirte1->FindPlugin("COM"), nullptr);
  ASSERT_NE(pirte2->FindPlugin("OP"), nullptr);
  EXPECT_EQ(pirte1->FindPlugin("COM")->state(), pirte::PluginState::kRunning);
  EXPECT_EQ(pirte2->FindPlugin("OP")->state(), pirte::PluginState::kRunning);
}

TEST_F(Figure3Test, WheelsCommandReachesMotorControl) {
  ASSERT_TRUE(testbed_->DeployRemoteCar().ok());

  auto latency = testbed_->SendWheels(42);
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  EXPECT_EQ(testbed_->last_wheels(), 42);
  EXPECT_EQ(testbed_->wheels_commands(), 1u);
  EXPECT_GT(*latency, 0u);
}

TEST_F(Figure3Test, SpeedCommandReachesMotorControl) {
  ASSERT_TRUE(testbed_->DeployRemoteCar().ok());

  // 55 is inside the OEM guard's [0, 100] speed range; hostile values are
  // covered by FesTest.HostileValuesStopAtTheCriticalSignalGuards.
  auto latency = testbed_->SendSpeed(55);
  ASSERT_TRUE(latency.ok()) << latency.status().ToString();
  EXPECT_EQ(testbed_->last_speed(), 55);
}

TEST_F(Figure3Test, RepeatedCommandsAllArriveInOrder) {
  ASSERT_TRUE(testbed_->DeployRemoteCar().ok());
  for (int i = 1; i <= 10; ++i) {
    auto latency = testbed_->SendWheels(i * 3);
    ASSERT_TRUE(latency.ok()) << "command " << i;
    EXPECT_EQ(testbed_->last_wheels(), i * 3);
  }
  EXPECT_EQ(testbed_->wheels_commands(), 10u);
}

TEST_F(Figure3Test, UninstallRemovesBothPluginsAndStopsTraffic) {
  ASSERT_TRUE(testbed_->DeployRemoteCar().ok());
  ASSERT_TRUE(testbed_->SendWheels(1).ok());

  ASSERT_TRUE(
      testbed_->server().UninstallApp(testbed_->user(), "VIN-0001", "remote-car").ok());
  testbed_->RunUntil(
      [&]() {
        return testbed_->server().AppState("VIN-0001", "remote-car").status().code() ==
               support::ErrorCode::kNotFound;
      },
      5 * sim::kSecond);
  EXPECT_FALSE(testbed_->server().AppState("VIN-0001", "remote-car").ok());
  EXPECT_EQ(testbed_->vehicle().FindPirte("PIRTE1")->FindPlugin("COM"), nullptr);
  EXPECT_EQ(testbed_->vehicle().FindPirte("PIRTE2")->FindPlugin("OP"), nullptr);

  // Phone traffic no longer reaches the actuators.
  const auto before = testbed_->wheels_commands();
  (void)testbed_->phone().Send("Wheels", fes::EncodeControl(9));
  testbed_->simulator().RunFor(sim::kSecond);
  EXPECT_EQ(testbed_->wheels_commands(), before);
}

TEST_F(Figure3Test, GeneratedContextsMatchThePaper) {
  // The server must produce exactly the PLC/ECC of §4: COM gets
  // {P0-, P1-, P2-V0.P0, P3-V0.P1} plus two inbound ECC entries; OP gets
  // {P2-V4, P3-V5}.
  auto app = fes::MakeRemoteCarApp("111.22.33.44:56789");
  auto model = fes::MakeRpiTestbedConf();
  server::UsedIdMap used;
  auto generated =
      server::GeneratePackages(app, app.confs[0], model.sw, used);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  ASSERT_EQ(generated->size(), 2u);

  const auto& com = (*generated)[0];
  EXPECT_EQ(com.plugin, "COM");
  EXPECT_EQ(com.ecu_id, 1u);
  ASSERT_EQ(com.package.plc.entries.size(), 4u);
  // P0-, P1- (PIRTE-direct; external data arrives through the ECM).
  EXPECT_EQ(com.package.plc.entries[0].kind, pirte::PlcKind::kUnconnected);
  EXPECT_EQ(com.package.plc.entries[1].kind, pirte::PlcKind::kUnconnected);
  // P2-V0.P0 and P3-V0.P1.
  EXPECT_EQ(com.package.plc.entries[2].kind, pirte::PlcKind::kVirtualRemote);
  EXPECT_EQ(com.package.plc.entries[2].local_port, 2);
  EXPECT_EQ(com.package.plc.entries[2].virtual_port, 0);
  EXPECT_EQ(com.package.plc.entries[2].remote_port_id, 0);  // OP.P0 got uid 0
  EXPECT_EQ(com.package.plc.entries[3].kind, pirte::PlcKind::kVirtualRemote);
  EXPECT_EQ(com.package.plc.entries[3].remote_port_id, 1);  // OP.P1 got uid 1
  // ECC: {phone, 'Wheels', ECU1, P0} and {phone, 'Speed', ECU1, P1}.
  ASSERT_EQ(com.package.ecc.entries.size(), 2u);
  EXPECT_EQ(com.package.ecc.entries[0].message_id, "Wheels");
  EXPECT_EQ(com.package.ecc.entries[0].endpoint, "111.22.33.44:56789");
  EXPECT_EQ(com.package.ecc.entries[0].target_ecu, 1u);
  EXPECT_EQ(com.package.ecc.entries[0].port_unique_id, 0);
  EXPECT_EQ(com.package.ecc.entries[1].message_id, "Speed");
  EXPECT_EQ(com.package.ecc.entries[1].port_unique_id, 1);

  const auto& op = (*generated)[1];
  EXPECT_EQ(op.plugin, "OP");
  EXPECT_EQ(op.ecu_id, 2u);
  ASSERT_EQ(op.package.plc.entries.size(), 2u);
  EXPECT_EQ(op.package.plc.entries[0].kind, pirte::PlcKind::kVirtual);
  EXPECT_EQ(op.package.plc.entries[0].local_port, 2);
  EXPECT_EQ(op.package.plc.entries[0].virtual_port, 4);  // V4 = WheelsReq
  EXPECT_EQ(op.package.plc.entries[1].local_port, 3);
  EXPECT_EQ(op.package.plc.entries[1].virtual_port, 5);  // V5 = SpeedReq
  EXPECT_TRUE(op.package.ecc.empty());
}

}  // namespace
}  // namespace dacm
