// Property tests on the PVM: algebraic identities of the ALU over an
// adversarial value grid, fuel monotonicity, serialization round-trips
// for generated programs, corruption rejection, and I/O window bounds.
#include <gtest/gtest.h>

#include <climits>

#include "support/crc.hpp"
#include "test_util.hpp"
#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"

namespace dacm::vm {
namespace {

/// A default-constructed ScriptedVmEnv is exactly the null environment
/// these algebra tests need: no ports, clock pinned to zero.
using NullEnv = testutil::ScriptedVmEnv;

/// Runs an assembled `main` entry and returns register 1.
std::int32_t Eval(const std::string& body) {
  auto program = Assemble(".entry main m\nm:\n" + body + "\nSTORE 1\nHALT\n");
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  NullEnv env;
  VmInstance instance(*program, env, {});
  auto result = instance.Run("main");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result->outcome, ExecOutcome::kHalted);
  return instance.Register(1);
}

// The adversarial operand grid: zeros, ones, sign boundaries.
const std::int32_t kGrid[] = {0,       1,        -1,      2,
                              -2,      127,      -128,    32767,
                              INT_MAX, INT_MIN,  1000000, -999999};

struct PairCase {
  std::int32_t a;
  std::int32_t b;
};

std::vector<PairCase> GridPairs() {
  std::vector<PairCase> pairs;
  for (std::int32_t a : kGrid) {
    for (std::int32_t b : kGrid) pairs.push_back({a, b});
  }
  return pairs;
}

class AluIdentity : public ::testing::TestWithParam<PairCase> {};

TEST_P(AluIdentity, AddCommutes) {
  const auto [a, b] = GetParam();
  const std::string ab = "PUSH " + std::to_string(a) + "\nPUSH " +
                         std::to_string(b) + "\nADD\n";
  const std::string ba = "PUSH " + std::to_string(b) + "\nPUSH " +
                         std::to_string(a) + "\nADD\n";
  EXPECT_EQ(Eval(ab), Eval(ba));
}

TEST_P(AluIdentity, AddThenSubRestores) {
  const auto [a, b] = GetParam();
  // ((a + b) - b) == a under two's-complement wraparound, always.
  const std::string source = "PUSH " + std::to_string(a) + "\nPUSH " +
                             std::to_string(b) + "\nADD\nPUSH " +
                             std::to_string(b) + "\nSUB\n";
  EXPECT_EQ(Eval(source), a);
}

TEST_P(AluIdentity, XorTwiceRestores) {
  const auto [a, b] = GetParam();
  const std::string source = "PUSH " + std::to_string(a) + "\nPUSH " +
                             std::to_string(b) + "\nXOR\nPUSH " +
                             std::to_string(b) + "\nXOR\n";
  EXPECT_EQ(Eval(source), a);
}

TEST_P(AluIdentity, ComparisonsAreConsistent) {
  const auto [a, b] = GetParam();
  auto source = [&](const char* op) {
    return "PUSH " + std::to_string(a) + "\nPUSH " + std::to_string(b) + "\n" +
           op + "\n";
  };
  const std::int32_t eq = Eval(source("CMPEQ"));
  const std::int32_t lt = Eval(source("CMPLT"));
  const std::int32_t gt = Eval(source("CMPGT"));
  EXPECT_EQ(eq, a == b ? 1 : 0);
  EXPECT_EQ(lt, a < b ? 1 : 0);
  EXPECT_EQ(gt, a > b ? 1 : 0);
  EXPECT_EQ(eq + lt + gt, 1) << "exactly one of ==, <, > must hold";
}

TEST_P(AluIdentity, DivModReconstruct) {
  const auto [a, b] = GetParam();
  if (b == 0) return;                      // division traps, covered elsewhere
  if (a == INT_MIN && b == -1) return;     // overflow faults, covered elsewhere
  const std::string div = "PUSH " + std::to_string(a) + "\nPUSH " +
                          std::to_string(b) + "\nDIV\n";
  const std::string mod = "PUSH " + std::to_string(a) + "\nPUSH " +
                          std::to_string(b) + "\nMOD\n";
  const std::int32_t q = Eval(div);
  const std::int32_t r = Eval(mod);
  EXPECT_EQ(q * b + r, a);
}

INSTANTIATE_TEST_SUITE_P(Grid, AluIdentity, ::testing::ValuesIn(GridPairs()));

// Random operands beyond the grid: the same identities must hold for any
// 32-bit pair, under two's-complement wraparound.
TEST(AluFuzz, IdentitiesHoldForRandomOperands) {
  DACM_PROPERTY_RNG(rng);
  for (int i = 0; i < 48; ++i) {
    const auto a = static_cast<std::int32_t>(rng.NextU64());
    const auto b = static_cast<std::int32_t>(rng.NextU64());
    SCOPED_TRACE(::testing::Message() << "a=" << a << " b=" << b);
    const std::string push_ab = "PUSH " + std::to_string(a) + "\nPUSH " +
                                std::to_string(b) + "\n";
    const std::string push_ba = "PUSH " + std::to_string(b) + "\nPUSH " +
                                std::to_string(a) + "\n";
    EXPECT_EQ(Eval(push_ab + "ADD\n"), Eval(push_ba + "ADD\n"));
    EXPECT_EQ(Eval(push_ab + "XOR\nPUSH " + std::to_string(b) + "\nXOR\n"), a);
    EXPECT_EQ(Eval(push_ab + "ADD\nPUSH " + std::to_string(b) + "\nSUB\n"), a);
    const std::int32_t eq = Eval(push_ab + "CMPEQ\n");
    const std::int32_t lt = Eval(push_ab + "CMPLT\n");
    const std::int32_t gt = Eval(push_ab + "CMPGT\n");
    EXPECT_EQ(eq + lt + gt, 1) << "exactly one of ==, <, > must hold";
  }
}

// --- fuel ------------------------------------------------------------------------

class FuelMonotonic : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FuelMonotonic, FuelGrowsWithWork) {
  const std::uint32_t turns = GetParam();
  auto loop = [&](std::uint32_t n) {
    auto program = Assemble(R"(
      .entry main m
      m:
        PUSH )" + std::to_string(n) + R"(
        STORE 1
      loop:
        LOAD 1
        JZ end
        LOAD 1
        PUSH 1
        SUB
        STORE 1
        JMP loop
      end:
        HALT
    )");
    EXPECT_TRUE(program.ok());
    NullEnv env;
    VmLimits limits;
    limits.fuel_per_activation = 10'000'000;
    VmInstance instance(*program, env, limits);
    auto result = instance.Run("main");
    EXPECT_TRUE(result.ok());
    return result->fuel_used;
  };
  EXPECT_GT(loop(turns + 1), loop(turns));
  // Fuel is linear in loop turns: per-turn cost is constant.
  const auto f1 = loop(turns);
  const auto f2 = loop(2 * turns);
  const auto per_turn = (f2 - f1) / turns;
  EXPECT_EQ(f2 - f1, per_turn * turns);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuelMonotonic,
                         ::testing::Values(1, 5, 32, 100, 500));

// --- serialization robustness -----------------------------------------------------

class TruncationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationSweep, EveryPrefixOfAProgramIsRejected) {
  auto program = Assemble(R"(
    .entry on_data a
    .entry step b
    a: PUSH 1
       STORE 1
       HALT
    b: LOAD 1
       HALT
  )");
  ASSERT_TRUE(program.ok());
  const support::Bytes wire = program->Serialize();
  const std::size_t cut = GetParam();
  if (cut >= wire.size()) GTEST_SKIP() << "binary shorter than cut";
  const support::Bytes truncated(wire.begin(),
                                 wire.begin() + static_cast<std::ptrdiff_t>(cut));
  EXPECT_FALSE(Program::Deserialize(truncated).ok()) << "prefix length " << cut;
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 23,
                                           31, 40, 47));

TEST(ProgramRoundTrip, ManyEntriesSurvive) {
  std::string source;
  for (int i = 0; i < 32; ++i) {
    source += ".entry e" + std::to_string(i) + " l" + std::to_string(i) + "\n";
  }
  for (int i = 0; i < 32; ++i) {
    source += "l" + std::to_string(i) + ": PUSH " + std::to_string(i) +
              "\nSTORE 1\nHALT\n";
  }
  auto program = Assemble(source);
  ASSERT_TRUE(program.ok());
  auto round = Program::Deserialize(program->Serialize());
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->entries.size(), 32u);
  NullEnv env;
  VmInstance instance(*round, env, {});
  for (int i = 0; i < 32; ++i) {
    auto result = instance.Run("e" + std::to_string(i));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(instance.Register(1), i);
  }
}

TEST(ProgramRoundTrip, RandomProgramsSurviveScatterFreeParse) {
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 64; ++iter) {
    Program program;
    program.register_count = 129 + static_cast<std::uint32_t>(rng.NextBelow(512));
    const std::size_t entry_count = rng.NextBelow(65);
    const std::size_t code_size = 1 + rng.NextBelow(4096);
    program.code.resize(code_size);
    for (auto& byte : program.code) byte = static_cast<std::uint8_t>(rng.NextU64());
    for (std::size_t i = 0; i < entry_count; ++i) {
      EntryPoint entry;
      // Name lengths straddle the SSO boundary so both the alloc-free and
      // the allocating name path are exercised.
      const std::size_t name_len = 1 + rng.NextBelow(40);
      for (std::size_t c = 0; c < name_len; ++c) {
        entry.name += static_cast<char>('a' + rng.NextBelow(26));
      }
      entry.pc = static_cast<std::uint32_t>(rng.NextBelow(code_size));
      program.entries.push_back(std::move(entry));
    }

    const auto wire = program.Serialize();
    auto round = Program::Deserialize(wire);
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round->register_count, program.register_count);
    EXPECT_EQ(round->code, program.code);
    ASSERT_EQ(round->entries.size(), program.entries.size());
    for (std::size_t i = 0; i < entry_count; ++i) {
      EXPECT_EQ(round->entries[i].name, program.entries[i].name);
      EXPECT_EQ(round->entries[i].pc, program.entries[i].pc);
    }

    // A random corruption or truncation must never crash the parser; an
    // out-of-code entry pc must be rejected.
    auto corrupted = wire;
    if (rng.NextBool(0.5) && !corrupted.empty()) {
      corrupted.resize(rng.NextBelow(corrupted.size()));
    } else {
      corrupted[rng.NextBelow(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    }
    (void)Program::Deserialize(corrupted);  // must not crash / UB (ASan run)
    if (!program.entries.empty()) {
      Program bad = program;
      bad.entries[rng.NextBelow(entry_count)].pc =
          static_cast<std::uint32_t>(code_size + rng.NextBelow(100));
      EXPECT_FALSE(Program::Deserialize(bad.Serialize()).ok());
    }
  }
}

// --- I/O window bounds ---------------------------------------------------------------

class EchoEnv final : public PortEnv {
 public:
  support::Result<support::Bytes> ReadPort(std::uint8_t) override { return in; }
  support::Status WritePort(std::uint8_t, std::span<const std::uint8_t> data) override {
    out.assign(data.begin(), data.end());
    return support::OkStatus();
  }
  bool PortAvailable(std::uint8_t) override { return !in.empty(); }
  std::uint32_t ClockMs() override { return 0; }

  support::Bytes in;
  support::Bytes out;
};

class IoWindowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IoWindowSweep, ReadThenWritePreservesPayloadUpToWindow) {
  const std::size_t size = GetParam();
  auto program = Assemble(R"(
    .entry on_data m
    m:
      READP 0
      STORE 1      ; reported length
      WRITEP 1 )" + std::to_string(std::min<std::size_t>(size, kIoWindowSize)) + R"(
      HALT
  )");
  ASSERT_TRUE(program.ok());
  EchoEnv env;
  env.in.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    env.in[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  VmInstance instance(*program, env, {});
  auto result = instance.Run("on_data");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outcome, ExecOutcome::kHalted);
  const std::size_t visible = std::min<std::size_t>(size, kIoWindowSize);
  // Reported length is clamped to the window.
  EXPECT_EQ(static_cast<std::size_t>(instance.Register(1)), visible);
  ASSERT_EQ(env.out.size(), visible);
  for (std::size_t i = 0; i < visible; ++i) {
    EXPECT_EQ(env.out[i], env.in[i]) << "byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IoWindowSweep,
                         ::testing::Values(0, 1, 2, 7, 8, 64, 127, 128, 129,
                                           200));

// --- dispatch differential ----------------------------------------------------------
//
// The interpreter compiles its loop twice: computed-goto threaded dispatch
// and the portable switch loop.  Both must agree on every observable —
// outcome, fuel, trap code, fault text, final registers, port writes — for
// arbitrary (including invalid) programs.

/// A random instruction stream: mostly well-formed instructions with random
/// operands (wild jump targets included), salted with raw garbage bytes so
/// bad opcodes and truncated immediates are exercised too.
support::Bytes RandomProgramCode(sim::Rng& rng) {
  support::Bytes code;
  const std::size_t instructions = 1 + rng.NextBelow(48);
  for (std::size_t i = 0; i < instructions; ++i) {
    if (rng.NextBool(0.08)) {  // raw chaos
      code.push_back(static_cast<std::uint8_t>(rng.NextU64()));
      continue;
    }
    const auto op = static_cast<Op>(rng.NextBelow(static_cast<std::uint64_t>(Op::kTrap) + 1));
    code.push_back(static_cast<std::uint8_t>(op));
    auto emit = [&](std::size_t bytes) {
      // Occasionally drop immediate bytes to hit the truncation faults.
      if (rng.NextBool(0.05)) bytes = rng.NextBelow(bytes);
      for (std::size_t b = 0; b < bytes; ++b) {
        code.push_back(static_cast<std::uint8_t>(rng.NextU64()));
      }
    };
    switch (op) {
      case Op::kPush: emit(4); break;
      case Op::kJmp: case Op::kJz: case Op::kJnz: case Op::kCall: emit(2); break;
      case Op::kLoad: case Op::kStore: case Op::kReadP: case Op::kAvailP:
      case Op::kTrap: emit(1); break;
      case Op::kWriteP: emit(2); break;
      default: break;
    }
  }
  return code;
}

TEST(DispatchDifferential, ThreadedAndSwitchLoopsAgreeOnRandomPrograms) {
  if (!VmInstance::ThreadedDispatchAvailable()) {
    GTEST_SKIP() << "threaded dispatch not compiled in; differential is vacuous";
  }
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 300; ++iter) {
    Program program;
    program.register_count = 256;
    program.code = RandomProgramCode(rng);

    // A scripted environment with data on a few ports; both instances get
    // identical copies so READP/AVAILP/CLOCK observations line up.
    testutil::ScriptedVmEnv env_switch;
    env_switch.clock_ms = static_cast<std::uint32_t>(rng.NextU64());
    for (std::uint8_t port = 0; port < 4; ++port) {
      if (rng.NextBool(0.5)) {
        env_switch.port_data[port] =
            testutil::PatternBytes(rng.NextBelow(200));
        env_switch.available.insert(port);
      }
    }
    testutil::ScriptedVmEnv env_threaded = env_switch;

    VmLimits limits;
    limits.fuel_per_activation = 2048;  // bounds runaway loops
    VmInstance with_switch(program, env_switch, limits);
    VmInstance with_threaded(program, env_threaded, limits);

    const ExecResult a = with_switch.RunAt(0, DispatchKind::kSwitch);
    const ExecResult b = with_threaded.RunAt(0, DispatchKind::kThreaded);

    SCOPED_TRACE(::testing::Message() << "iter=" << iter << " code bytes="
                                      << program.code.size());
    EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome));
    EXPECT_EQ(a.fuel_used, b.fuel_used);
    EXPECT_EQ(a.trap_code, b.trap_code);
    EXPECT_EQ(a.fault, b.fault);
    for (std::uint32_t r = 0; r < program.register_count; ++r) {
      ASSERT_EQ(with_switch.Register(r), with_threaded.Register(r)) << "reg " << r;
    }
    ASSERT_EQ(env_switch.writes.size(), env_threaded.writes.size());
    for (std::size_t w = 0; w < env_switch.writes.size(); ++w) {
      EXPECT_EQ(env_switch.writes[w], env_threaded.writes[w]) << "write " << w;
    }
  }
}

TEST(DispatchDifferential, EntryPointRunsIdenticallyThroughBothLoops) {
  if (!VmInstance::ThreadedDispatchAvailable()) {
    GTEST_SKIP() << "threaded dispatch not compiled in; differential is vacuous";
  }
  auto program = Assemble(R"(
    .entry on_data m
    m:
      PUSH 7
      STORE 1
      PUSH 3
      LOAD 1
      MUL
      STORE 2
      HALT
  )");
  ASSERT_TRUE(program.ok());
  NullEnv env_a, env_b;
  VmInstance with_switch(*program, env_a, {});
  VmInstance with_threaded(*program, env_b, {});
  const ExecResult a = with_switch.RunAt(0, DispatchKind::kSwitch);
  const ExecResult b = with_threaded.RunAt(0, DispatchKind::kThreaded);
  EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(b.outcome));
  EXPECT_EQ(a.fuel_used, b.fuel_used);
  EXPECT_EQ(with_switch.Register(2), 21);
  EXPECT_EQ(with_threaded.Register(2), 21);
}

TEST(IoWindowBounds, WritepBeyondWindowIsRejectedByAssembler) {
  auto program = Assemble(R"(
    .entry m m
    m: WRITEP 0 129
       HALT
  )");
  EXPECT_FALSE(program.ok());
}

}  // namespace
}  // namespace dacm::vm
