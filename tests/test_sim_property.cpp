// Property tests for the timer-wheel event kernel.
//
// The EventQueue rewrite (PR 5) promises *exact* replay equivalence with
// the std::priority_queue core it replaced: strictly increasing
// (timestamp, schedule-sequence) firing order, FIFO for equal timestamps,
// monotone Now(), identical RunUntil clock semantics.  Two angles:
//
//  * a differential fuzz drives a Simulator and a reference model (sorted
//    by the exact ordering key) through random ScheduleAt / ScheduleAfter /
//    Run(limit) / RunUntil interleavings — including same-timestamp storms,
//    wheel-window boundary times, callback-nested scheduling, and far
//    events beyond the wheel horizon — and requires identical fired
//    sequences and clocks after every operation;
//
//  * a determinism re-run deploys a sharded campaign (worker-pool pushes,
//    staged sends, parallel ack inboxes) twice on the new core and
//    requires fingerprint-identical outcomes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/server.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/crc.hpp"
#include "test_util.hpp"

namespace dacm::sim {
namespace {

// --- differential model ------------------------------------------------------------

/// The behavioral spec of the event kernel: a flat list popped in
/// (timestamp, sequence) order — exactly the ordering the old
/// priority_queue core implemented.
class ReferenceKernel {
 public:
  SimTime Now() const { return now_; }

  void ScheduleAt(SimTime at, int id) {
    if (at < now_) at = now_;
    pending_.push_back(Event{at, next_seq_++, id});
  }

  /// Pops the next due event (at <= limit), if any.
  bool PopDue(SimTime limit, SimTime* at, int* id) {
    std::size_t best = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (best == pending_.size() || Earlier(pending_[i], pending_[best])) {
        best = i;
      }
    }
    if (best == pending_.size() || pending_[best].at > limit) return false;
    *at = pending_[best].at;
    *id = pending_[best].id;
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
  }

  void SetNow(SimTime now) { now_ = now; }
  std::size_t Pending() const { return pending_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    int id;
  };
  static bool Earlier(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> pending_;
};

/// Drives the real Simulator and the reference kernel through one shared
/// randomized plan.  Every event id has a pre-drawn follow-up decision
/// (child delay or none), so callback-nested scheduling stays identical on
/// both sides without the model observing the simulator.
class DifferentialHarness {
 public:
  explicit DifferentialHarness(Rng& rng) : rng_(rng) {}

  /// Delays biased at wheel stress points: same-timestamp storms (0),
  /// slot-window boundaries (64/4096 multiples), typical latencies, and
  /// far-future events beyond the 2^36 us overflow horizon.
  SimTime RandomDelay() {
    switch (rng_.NextBelow(8)) {
      case 0: return 0;
      case 1: return rng_.NextBelow(4);
      case 2: return 63 + rng_.NextBelow(3);
      case 3: return 4095 + rng_.NextBelow(3);
      case 4: return rng_.NextBelow(1000);
      case 5: return rng_.NextBelow(100000);
      case 6: return 20 * kMillisecond;
      default: {
        // Overflow-heap region, pinned to the horizon boundary: exactly
        // 2^36, one below (last wheel slot), one above, and a random
        // point beyond — the off-by-one band where a routing bug would
        // drop an event into slot 0 of the current window.
        const SimTime horizon = SimTime{1} << 36;
        switch (rng_.NextBelow(4)) {
          case 0: return horizon;
          case 1: return horizon - 1;
          case 2: return horizon + 1;
          default: return horizon + rng_.NextBelow(1 << 20);
        }
      }
    }
  }

  void ScheduleBoth(SimTime at) {
    const int id = next_id_++;
    // ~1/3 of events schedule a follow-up from inside their callback.
    child_delay_.push_back(rng_.NextBelow(3) == 0
                               ? static_cast<std::int64_t>(RandomDelay())
                               : -1);
    model_.ScheduleAt(at, id);
    simulator_.ScheduleAt(at, [this, id] { OnFire(id); });
  }

  void RunBoth(std::size_t limit) {
    const std::size_t processed = simulator_.Run(limit);
    std::size_t model_processed = 0;
    SimTime at = 0;
    int id = 0;
    while (model_processed < limit && model_.PopDue(EventQueue::kMaxTime, &at, &id)) {
      model_.SetNow(at);
      ModelFire(at, id);
      ++model_processed;
    }
    ASSERT_EQ(processed, model_processed);
    Compare();
  }

  void RunUntilBoth(SimTime until) {
    simulator_.RunUntil(until);
    SimTime at = 0;
    int id = 0;
    while (model_.PopDue(until, &at, &id)) {
      model_.SetNow(at);
      ModelFire(at, id);
    }
    if (model_.Now() < until) model_.SetNow(until);
    Compare();
  }

  Simulator& simulator() { return simulator_; }
  ReferenceKernel& model() { return model_; }

  void Compare() {
    ASSERT_EQ(simulator_.Now(), model_.Now());
    ASSERT_EQ(simulator_.PendingEvents(), model_.Pending());
    ASSERT_EQ(fired_sim_.size(), fired_model_.size());
    ASSERT_EQ(fired_sim_, fired_model_);
    // Now() never runs backwards across fired events.
    for (std::size_t i = 1; i < fired_at_sim_.size(); ++i) {
      ASSERT_LE(fired_at_sim_[i - 1], fired_at_sim_[i]);
    }
    ASSERT_EQ(fired_at_sim_, fired_at_model_);
  }

 private:
  void OnFire(int id) {
    fired_sim_.push_back(id);
    fired_at_sim_.push_back(simulator_.Now());
    MaybeScheduleChild(id, /*real=*/true);
  }

  void ModelFire(SimTime at, int id) {
    fired_model_.push_back(id);
    fired_at_model_.push_back(at);
    MaybeScheduleChild(id, /*real=*/false);
  }

  void MaybeScheduleChild(int id, bool real) {
    const std::int64_t delay = child_delay_[static_cast<std::size_t>(id)];
    if (delay < 0) return;
    // Both sides reach here for the same ids in the same order (asserted
    // by Compare), so child ids/seqs line up.  Allocate the child's plan
    // exactly once, on the real side (which fires first in RunBoth).
    if (real) {
      const int child = next_id_++;
      child_delay_.push_back(-1);  // children do not nest further
      simulator_.ScheduleAfter(static_cast<SimTime>(delay),
                               [this, child] { OnFire(child); });
      pending_child_ids_.push_back(child);
    } else {
      ASSERT_FALSE(pending_child_ids_.empty());
      const int child = pending_child_ids_.front();
      pending_child_ids_.erase(pending_child_ids_.begin());
      model_.ScheduleAt(model_.Now() + static_cast<SimTime>(delay), child);
    }
  }

  Rng& rng_;
  Simulator simulator_;
  ReferenceKernel model_;
  int next_id_ = 0;
  std::vector<std::int64_t> child_delay_;
  std::vector<int> pending_child_ids_;
  std::vector<int> fired_sim_, fired_model_;
  std::vector<SimTime> fired_at_sim_, fired_at_model_;
};

TEST(EventQueueProperty, DifferentialFuzzAgainstPriorityQueueModel) {
  DACM_PROPERTY_RNG(rng);
  for (int round = 0; round < 20; ++round) {
    DifferentialHarness harness(rng);
    const int ops = 120;
    for (int op = 0; op < ops; ++op) {
      switch (rng.NextBelow(5)) {
        case 0:
        case 1: {
          // A burst of schedules, sometimes at one shared timestamp
          // (storm) to stress FIFO tie-breaking.
          const SimTime base = harness.simulator().Now() + harness.RandomDelay();
          const std::size_t burst = 1 + rng.NextBelow(8);
          const bool storm = rng.NextBelow(2) == 0;
          for (std::size_t i = 0; i < burst; ++i) {
            harness.ScheduleBoth(storm ? base : harness.simulator().Now() +
                                                    harness.RandomDelay());
          }
          break;
        }
        case 2:
          harness.RunBoth(rng.NextBelow(6));
          break;
        case 3:
          harness.RunUntilBoth(harness.simulator().Now() + harness.RandomDelay());
          break;
        default: {
          // Late scheduling must clamp identically on both sides.
          const SimTime now = harness.simulator().Now();
          const SimTime back = 1 + rng.NextBelow(100);
          harness.ScheduleBoth(now > back ? now - back : 0);
          break;
        }
      }
      if (HasFatalFailure()) return;
    }
    harness.RunBoth(SIZE_MAX);  // drain everything, including far events
    if (HasFatalFailure()) return;
  }
}

// --- determinism fingerprint on the new core ---------------------------------------

/// One sharded campaign world; returns a fingerprint over everything the
/// determinism contract covers: delivery counts, per-shard statistics and
/// per-vehicle terminal states.
std::uint32_t ShardedCampaignFingerprint() {
  Simulator simulator;
  Network network(simulator, kMillisecond);
  server::TrustedServer server(network, "srv:443", server::ServerOptions{4});
  EXPECT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
  const server::UserId user = *server.CreateUser("prop");

  fes::ScriptedFleetOptions options;
  options.vehicle_count = 160;
  options.nack_every = 7;  // a healthy mix of acks and nacks
  fes::ScriptedFleet fleet(simulator, network, server, options);
  EXPECT_TRUE(fleet.BindAndConnect(user).ok());

  fes::SyntheticAppParams params;
  params.name = "prop-app";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 3;
  params.ports_per_plugin = 4;
  params.target_ecu = 1;
  params.binary_padding = 512;
  EXPECT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());

  auto report = server.DeployCampaign(user, "prop-app", fleet.vins());
  EXPECT_TRUE(report.ok());
  simulator.Run();

  support::ByteWriter fp;
  fp.WriteU64(network.messages_delivered());
  fp.WriteU64(fleet.acks_sent());
  fp.WriteU64(fleet.nacks_sent());
  for (std::size_t shard = 0; shard < server.shard_count(); ++shard) {
    const server::ServerStats& stats = server.shard_stats(shard);
    fp.WriteU64(stats.packages_pushed);
    fp.WriteU64(stats.acks_received);
    fp.WriteU64(stats.nacks_received);
    fp.WriteU64(stats.deploys_ok);
    fp.WriteU64(stats.deploys_rejected);
  }
  for (const std::string& vin : fleet.vins()) {
    auto state = server.AppState(vin, "prop-app");
    fp.WriteU8(state.ok() ? static_cast<std::uint8_t>(*state) : 0xff);
  }
  return support::Crc32(fp.bytes());
}

TEST(EventQueueProperty, ShardedCampaignFingerprintIsStableOnNewCore) {
  const std::uint32_t first = ShardedCampaignFingerprint();
  const std::uint32_t second = ShardedCampaignFingerprint();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);  // a degenerate all-zero world would also "match"
}

}  // namespace
}  // namespace dacm::sim
