// Property tests for the timer-wheel event kernel and the parallel lane
// engine.
//
// The EventQueue rewrite (PR 5) promises *exact* replay equivalence with
// the std::priority_queue core it replaced: strictly increasing
// (timestamp, schedule-sequence) firing order, FIFO for equal timestamps,
// monotone Now(), identical RunUntil clock semantics.  The lane engine
// (PR 10) generalizes the contract to (timestamp, lane, lane-local seq)
// and must collapse back to the serial behavior bit-for-bit at lanes=1.
// Three angles:
//
//  * a differential fuzz drives a Simulator at lanes {1, 2, 4, 8} and a
//    flat reference model (sorted by the exact ordering key) through
//    random ScheduleAt / ScheduleAtLane / Run(limit) / RunUntil
//    interleavings — same-timestamp storms, wheel-window boundary times,
//    callback-nested in-lane and cross-lane scheduling, far events
//    beyond the wheel horizon — and requires identical merged fired
//    sequences and clocks after every operation;
//
//  * an overflow-routing regression pins that a far-future event
//    scheduled from a *worker lane* mid-window waits in the owning
//    lane's overflow heap, never lane 0's;
//
//  * a determinism re-run deploys a sharded campaign (worker-pool
//    pushes, staged sends, parallel ack inboxes) twice — honoring
//    DACM_SIM_LANES so the TSan job replays it on the parallel engine —
//    and requires fingerprint-identical outcomes, plus fingerprint
//    equality across every lane count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/server.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/crc.hpp"
#include "test_util.hpp"

namespace dacm::sim {
namespace {

// --- differential model ------------------------------------------------------------

/// The behavioral spec of the lane engine: a flat list popped in
/// (timestamp, lane, lane-local sequence) order, sequences assigned at
/// schedule time in fire order.  With one lane this degenerates to the
/// (timestamp, sequence) ordering the old priority_queue core
/// implemented.
class ReferenceKernel {
 public:
  explicit ReferenceKernel(std::size_t lanes)
      : lane_now_(lanes, 0), next_seq_(lanes, 0) {}

  SimTime Now() const { return now_; }
  SimTime LaneNow(std::uint32_t lane) const { return lane_now_[lane]; }

  /// Control-plane schedule (between runs): clamps like the engine's
  /// control-thread push — never before the global clock.
  void ScheduleAt(std::uint32_t lane, SimTime at, int id) {
    if (at < now_) at = now_;
    if (at < lane_now_[lane]) at = lane_now_[lane];
    Push(lane, at, id);
  }

  /// Schedule issued from inside a fired event (the firing code computes
  /// `at` from the firing lane's clock, so no clamp can bite).
  void ScheduleFromEvent(std::uint32_t lane, SimTime at, int id) {
    Push(lane, at, id);
  }

  /// Pops the next due event (at <= limit), if any.
  bool PopDue(SimTime limit, SimTime* at, std::uint32_t* lane, int* id) {
    std::size_t best = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (best == pending_.size() || Earlier(pending_[i], pending_[best])) {
        best = i;
      }
    }
    if (best == pending_.size() || pending_[best].at > limit) return false;
    *at = pending_[best].at;
    *lane = pending_[best].lane;
    *id = pending_[best].id;
    lane_now_[pending_[best].lane] = pending_[best].at;
    if (pending_[best].at > now_) now_ = pending_[best].at;
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
  }

  void SetNow(SimTime now) {
    if (now > now_) now_ = now;
    for (SimTime& lane_now : lane_now_) {
      if (lane_now < now) lane_now = now;
    }
  }
  std::size_t Pending() const { return pending_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint32_t lane;
    std::uint64_t seq;  // lane-local
    int id;
  };
  static bool Earlier(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  }

  void Push(std::uint32_t lane, SimTime at, int id) {
    pending_.push_back(Event{at, lane, next_seq_[lane]++, id});
  }

  SimTime now_ = 0;
  std::vector<SimTime> lane_now_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<Event> pending_;
};

/// Drives the real Simulator (at a given lane count) and the reference
/// kernel through one shared randomized plan.  Every parent id has
/// pre-drawn follow-up decisions (in-lane child delay, cross-lane child
/// delay, or none) and child ids are pure functions of the parent id, so
/// callback-nested scheduling stays identical on both sides without any
/// shared mutable state — the real side's callbacks run concurrently on
/// worker lanes.
class DifferentialHarness {
 public:
  /// Window lookahead for lanes > 1.  Cross-lane children are scheduled
  /// at least this far ahead (the conservative-DES notice contract).
  static constexpr SimTime kLookahead = 64;
  /// Child ids: in-lane child = parent + kChildBias, cross-lane child =
  /// parent + 2 * kChildBias.  Parents stay below the bias, so children
  /// never nest.
  static constexpr int kChildBias = 1 << 20;

  DifferentialHarness(Rng& rng, std::size_t lanes)
      : rng_(rng), lanes_(lanes), model_(lanes), fired_lane_(lanes) {
    if (lanes > 1) {
      LaneOptions options;
      options.lanes = lanes;
      options.lookahead = kLookahead;
      // Force one real worker per lane (the default caps at the core
      // count): this harness is the race stressor the TSan job runs.
      options.threads = lanes - 1;
      simulator_.ConfigureLanes(options);
    }
  }

  /// Delays biased at wheel stress points: same-timestamp storms (0),
  /// slot-window boundaries (64/4096 multiples), typical latencies, and
  /// far-future events beyond the 2^36 us overflow horizon.
  SimTime RandomDelay() {
    switch (rng_.NextBelow(8)) {
      case 0: return 0;
      case 1: return rng_.NextBelow(4);
      case 2: return 63 + rng_.NextBelow(3);
      case 3: return 4095 + rng_.NextBelow(3);
      case 4: return rng_.NextBelow(1000);
      case 5: return rng_.NextBelow(100000);
      case 6: return 20 * kMillisecond;
      default: {
        // Overflow-heap region, pinned to the horizon boundary: exactly
        // 2^36, one below (last wheel slot), one above, and a random
        // point beyond — the off-by-one band where a routing bug would
        // drop an event into slot 0 of the current window.
        const SimTime horizon = SimTime{1} << 36;
        switch (rng_.NextBelow(4)) {
          case 0: return horizon;
          case 1: return horizon - 1;
          case 2: return horizon + 1;
          default: return horizon + rng_.NextBelow(1 << 20);
        }
      }
    }
  }

  std::uint32_t RandomLane() {
    return static_cast<std::uint32_t>(rng_.NextBelow(lanes_));
  }

  void ScheduleBoth(std::uint32_t lane, SimTime at) {
    const int id = next_id_++;
    ASSERT_LT(id, kChildBias);
    // ~1/3 of events schedule an in-lane follow-up from inside their
    // callback; ~1/4 schedule a cross-lane follow-up (beyond the
    // lookahead, as the conservative-window contract requires).
    child_delay_.push_back(rng_.NextBelow(3) == 0
                               ? static_cast<std::int64_t>(RandomDelay())
                               : -1);
    cross_delay_.push_back(rng_.NextBelow(4) == 0
                               ? static_cast<std::int64_t>(RandomDelay())
                               : -1);
    model_.ScheduleAt(lane, at, id);
    simulator_.ScheduleAtLane(lane, at, [this, lane, id] { OnFire(lane, id); });
  }

  void RunBoth(std::size_t limit) {
    ++epoch_;  // before Run: the pool handshake orders this for workers
    const std::size_t processed = simulator_.Run(limit);
    std::size_t model_processed = 0;
    SimTime at = 0;
    std::uint32_t lane = 0;
    int id = 0;
    while (model_processed < limit &&
           model_.PopDue(EventQueue::kMaxTime, &at, &lane, &id)) {
      ModelFire(at, lane, id);
      ++model_processed;
    }
    ASSERT_EQ(processed, model_processed);
    Compare();
  }

  void RunUntilBoth(SimTime until) {
    ++epoch_;
    simulator_.RunUntil(until);
    SimTime at = 0;
    std::uint32_t lane = 0;
    int id = 0;
    while (model_.PopDue(until, &at, &lane, &id)) {
      ModelFire(at, lane, id);
    }
    model_.SetNow(until);
    Compare();
  }

  Simulator& simulator() { return simulator_; }

  void Compare() {
    ASSERT_EQ(simulator_.Now(), model_.Now());
    ASSERT_EQ(simulator_.PendingEvents(), model_.Pending());
    // Per-lane clocks never run backwards.
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      const auto& fired = fired_lane_[lane];
      for (std::size_t i = 1; i < fired.size(); ++i) {
        ASSERT_LE(fired[i - 1].at, fired[i].at)
            << "lane " << lane << " clock ran backwards";
      }
    }
    // The real engine records per-lane logs (windowed execution
    // interleaves lanes arbitrarily in wall time); the deterministic
    // contract is their merge in (run epoch, at, lane, in-lane order) —
    // the lane tie-break only applies *within* one run, because a
    // late-clamped schedule can re-create a past timestamp in a later
    // run.  The merge must be byte-identical to the model's fire
    // sequence.
    merged_scratch_.clear();
    for (std::uint32_t lane = 0; lane < lanes_; ++lane) {
      const auto& fired = fired_lane_[lane];
      for (std::size_t i = 0; i < fired.size(); ++i) {
        merged_scratch_.push_back(MergedEvent{fired[i].epoch, fired[i].at,
                                              lane, fired[i].id});
      }
    }
    std::stable_sort(merged_scratch_.begin(), merged_scratch_.end(),
                     [](const MergedEvent& a, const MergedEvent& b) {
                       return std::tie(a.epoch, a.at, a.lane) <
                              std::tie(b.epoch, b.at, b.lane);
                     });
    ASSERT_EQ(merged_scratch_.size(), fired_model_.size());
    for (std::size_t i = 0; i < merged_scratch_.size(); ++i) {
      ASSERT_EQ(merged_scratch_[i].epoch, fired_model_[i].epoch)
          << "event " << i;
      ASSERT_EQ(merged_scratch_[i].at, fired_model_[i].at) << "event " << i;
      ASSERT_EQ(merged_scratch_[i].lane, fired_model_[i].lane) << "event " << i;
      ASSERT_EQ(merged_scratch_[i].id, fired_model_[i].id) << "event " << i;
    }
  }

 private:
  struct MergedEvent {
    int epoch;
    SimTime at;
    std::uint32_t lane;
    int id;
  };
  struct LaneEvent {
    int epoch;
    SimTime at;
    int id;
  };

  /// Runs on the firing lane's thread: records into the lane-exclusive
  /// log and schedules the pre-drawn children.  No gtest assertions here
  /// (worker-lane threads); Compare() checks everything afterwards.
  void OnFire(std::uint32_t lane, int id) {
    fired_lane_[lane].push_back(LaneEvent{epoch_, simulator_.Now(), id});
    if (id >= kChildBias) return;  // children do not nest further
    const auto index = static_cast<std::size_t>(id);
    if (child_delay_[index] >= 0) {
      const int child = id + kChildBias;
      simulator_.ScheduleAfter(
          static_cast<SimTime>(child_delay_[index]),
          [this, lane, child] { OnFire(lane, child); });
    }
    if (cross_delay_[index] >= 0) {
      const int child = id + 2 * kChildBias;
      const auto target =
          static_cast<std::uint32_t>((lane + 1) % lanes_);
      simulator_.ScheduleAtLane(
          target,
          simulator_.Now() + kLookahead +
              static_cast<SimTime>(cross_delay_[index]),
          [this, target, child] { OnFire(target, child); });
    }
  }

  void ModelFire(SimTime at, std::uint32_t lane, int id) {
    fired_model_.push_back(MergedEvent{epoch_, at, lane, id});
    if (id >= kChildBias) return;
    const auto index = static_cast<std::size_t>(id);
    if (child_delay_[index] >= 0) {
      model_.ScheduleFromEvent(
          lane, at + static_cast<SimTime>(child_delay_[index]),
          id + kChildBias);
    }
    if (cross_delay_[index] >= 0) {
      const auto target = static_cast<std::uint32_t>((lane + 1) % lanes_);
      model_.ScheduleFromEvent(
          target, at + kLookahead + static_cast<SimTime>(cross_delay_[index]),
          id + 2 * kChildBias);
    }
  }

  Rng& rng_;
  std::size_t lanes_;
  Simulator simulator_;
  ReferenceKernel model_;
  int next_id_ = 0;
  /// Monotone run counter: bumped (on the control thread, before the
  /// workers start) at every RunBoth / RunUntilBoth.  Disambiguates
  /// equal-timestamp events fired in different runs.
  int epoch_ = 0;
  std::vector<std::int64_t> child_delay_;
  std::vector<std::int64_t> cross_delay_;
  /// One log per lane, appended only by that lane's executing thread.
  std::vector<std::vector<LaneEvent>> fired_lane_;
  std::vector<MergedEvent> fired_model_;
  std::vector<MergedEvent> merged_scratch_;
};

TEST(EventQueueProperty, DifferentialFuzzAgainstPriorityQueueModel) {
  DACM_PROPERTY_RNG(rng);
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    for (int round = 0; round < 6; ++round) {
      DifferentialHarness harness(rng, lanes);
      const int ops = 120;
      for (int op = 0; op < ops; ++op) {
        switch (rng.NextBelow(5)) {
          case 0:
          case 1: {
            // A burst of schedules, sometimes at one shared timestamp
            // (storm) to stress FIFO tie-breaking — across lanes, the
            // (at, lane, seq) tie-breaking.
            const SimTime base =
                harness.simulator().Now() + harness.RandomDelay();
            const std::size_t burst = 1 + rng.NextBelow(8);
            const bool storm = rng.NextBelow(2) == 0;
            for (std::size_t i = 0; i < burst; ++i) {
              harness.ScheduleBoth(harness.RandomLane(),
                                   storm ? base
                                         : harness.simulator().Now() +
                                               harness.RandomDelay());
            }
            break;
          }
          case 2:
            harness.RunBoth(rng.NextBelow(6));
            break;
          case 3:
            harness.RunUntilBoth(harness.simulator().Now() +
                                 harness.RandomDelay());
            break;
          default: {
            // Late scheduling must clamp identically on both sides.
            const SimTime now = harness.simulator().Now();
            const SimTime back = 1 + rng.NextBelow(100);
            harness.ScheduleBoth(harness.RandomLane(),
                                 now > back ? now - back : 0);
            break;
          }
        }
        if (HasFatalFailure()) return;
      }
      harness.RunBoth(SIZE_MAX);  // drain everything, including far events
      if (HasFatalFailure()) return;
    }
  }
}

// --- overflow routing from worker lanes --------------------------------------------

// A worker-lane event that schedules past the 2^36 us wheel horizon
// mid-window must park the far event in its *own* lane's overflow heap.
// (A routing bug that sent lane-context schedules through the control
// queue would both misplace the overflow node and fire the event on the
// wrong thread.)  The near/far pair defeats the solo fast path, which
// would otherwise hold the single far event outside the overflow census.
TEST(EventQueueProperty, WorkerLaneOverflowLandsInOwningLane) {
  Simulator simulator;
  LaneOptions options;
  options.lanes = 4;
  options.lookahead = 64;
  options.threads = 3;  // real workers: the far event is scheduled mid-window
  simulator.ConfigureLanes(options);

  constexpr SimTime horizon = SimTime{1} << 36;
  // Lane 3, t=100: schedule a near follow-up and a far one just past the
  // horizon boundary as seen from the window the event fires in.
  simulator.ScheduleAtLane(3, 100, [&simulator] {
    simulator.ScheduleAfter(10 * kSecond, [] {});
    simulator.ScheduleAfter(horizon + 1, [] {});
  });
  // Keep lane 0 busy at the same timestamp so the window is genuinely
  // concurrent (control plane + worker lane in one window).
  simulator.ScheduleAtLane(0, 100, [] {});

  simulator.RunUntil(200);
  EXPECT_EQ(simulator.Now(), SimTime{200});
  EXPECT_EQ(simulator.OverflowEvents(3), 1u) << "far event left lane 3";
  EXPECT_EQ(simulator.OverflowEvents(0), 0u) << "far event leaked to lane 0";
  EXPECT_EQ(simulator.OverflowEvents(), 1u);
  EXPECT_EQ(simulator.PendingEvents(), 2u);

  // Both follow-ups still fire, on time, in (at, lane, seq) order.
  const std::size_t remaining = simulator.Run();
  EXPECT_EQ(remaining, 2u);
  EXPECT_EQ(simulator.Now(), SimTime{100} + horizon + 1);
  EXPECT_EQ(simulator.OverflowEvents(), 0u);
  EXPECT_TRUE(simulator.Empty());
}

// --- determinism fingerprint on the new core ---------------------------------------

/// One sharded campaign world at `lanes` simulator lanes; returns a
/// fingerprint over everything the determinism contract covers: delivery
/// counts, per-shard statistics and per-vehicle terminal states.
std::uint32_t ShardedCampaignFingerprint(std::size_t lanes) {
  Simulator simulator;
  if (lanes > 1) {
    LaneOptions options;
    options.lanes = lanes;
    options.threads = lanes - 1;  // real workers for the TSan replay
    simulator.ConfigureLanes(options);  // lookahead comes from the network
  }
  Network network(simulator, kMillisecond);
  server::TrustedServer server(network, "srv:443", server::ServerOptions{4});
  EXPECT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
  const server::UserId user = *server.CreateUser("prop");

  fes::ScriptedFleetOptions options;
  options.vehicle_count = 160;
  options.nack_every = 7;  // a healthy mix of acks and nacks
  fes::ScriptedFleet fleet(simulator, network, server, options);
  EXPECT_TRUE(fleet.BindAndConnect(user).ok());

  fes::SyntheticAppParams params;
  params.name = "prop-app";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 3;
  params.ports_per_plugin = 4;
  params.target_ecu = 1;
  params.binary_padding = 512;
  EXPECT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());

  auto report = server.DeployCampaign(user, "prop-app", fleet.vins());
  EXPECT_TRUE(report.ok());
  simulator.Run();

  support::ByteWriter fp;
  fp.WriteU64(network.messages_delivered());
  fp.WriteU64(fleet.acks_sent());
  fp.WriteU64(fleet.nacks_sent());
  for (std::size_t shard = 0; shard < server.shard_count(); ++shard) {
    const server::ServerStats& stats = server.shard_stats(shard);
    fp.WriteU64(stats.packages_pushed);
    fp.WriteU64(stats.acks_received);
    fp.WriteU64(stats.nacks_received);
    fp.WriteU64(stats.deploys_ok);
    fp.WriteU64(stats.deploys_rejected);
  }
  for (const std::string& vin : fleet.vins()) {
    auto state = server.AppState(vin, "prop-app");
    fp.WriteU8(state.ok() ? static_cast<std::uint8_t>(*state) : 0xff);
  }
  return support::Crc32(fp.bytes());
}

TEST(EventQueueProperty, ShardedCampaignFingerprintIsStableOnNewCore) {
  // DACM_SIM_LANES (the TSan CI job exports 4) reruns the whole campaign
  // on the parallel engine.
  const std::size_t lanes = testutil::LanesFromEnvOr(1);
  const std::uint32_t first = ShardedCampaignFingerprint(lanes);
  const std::uint32_t second = ShardedCampaignFingerprint(lanes);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);  // a degenerate all-zero world would also "match"
}

TEST(EventQueueProperty, ShardedCampaignFingerprintMatchesAcrossLaneCounts) {
  // Delivery timing shifts with the lane count (staged sends commit at
  // merge barriers), but every count and terminal state the fingerprint
  // folds is structural — the parallel engine must converge the same
  // campaign to the same world.
  const std::uint32_t serial = ShardedCampaignFingerprint(1);
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{4},
                                  std::size_t{8}}) {
    EXPECT_EQ(ShardedCampaignFingerprint(lanes), serial)
        << "lanes=" << lanes;
  }
}

}  // namespace
}  // namespace dacm::sim
