// Unit tests for the wire formats: PIC/PLC/ECC contexts, installation
// packages (CRC protection), Type I PirteMessages, server Envelopes and
// FES frames.  These are the artifacts that travel between the trusted
// server, the ECM, and the plug-in SW-Cs.
#include <gtest/gtest.h>

#include <algorithm>

#include "pirte/context.hpp"
#include "pirte/package.hpp"
#include "pirte/protocol.hpp"

namespace dacm::pirte {
namespace {

PortInitContext SamplePic() {
  PortInitContext pic;
  pic.entries = {
      {0, "wheels_in", 10, PluginPortDirection::kRequired},
      {1, "speed_in", 11, PluginPortDirection::kRequired},
      {2, "wheels_out", 12, PluginPortDirection::kProvided},
  };
  return pic;
}

PortLinkingContext SamplePlc() {
  PortLinkingContext plc;
  plc.entries = {
      {0, PlcKind::kUnconnected, 0, 0, "", 0},
      {2, PlcKind::kVirtual, 4, 0, "", 0},
      {3, PlcKind::kVirtualRemote, 0, 7, "", 0},
      {1, PlcKind::kLocalPlugin, 0, 0, "peer", 5},
  };
  return plc;
}

ExternalConnectionContext SampleEcc() {
  ExternalConnectionContext ecc;
  ecc.entries = {
      {EccDirection::kInbound, "111.22.33.44:56789", "Wheels", 1, 0},
      {EccDirection::kOutbound, "10.1.1.1:9", "Telemetry", 1, 3},
  };
  return ecc;
}

// --- PIC ----------------------------------------------------------------------------

TEST(PicTest, RoundTrip) {
  support::ByteWriter writer;
  SamplePic().SerializeTo(writer);
  support::ByteReader reader(writer.bytes());
  auto pic = PortInitContext::DeserializeFrom(reader);
  ASSERT_TRUE(pic.ok());
  ASSERT_EQ(pic->entries.size(), 3u);
  EXPECT_EQ(pic->entries[0].port_name, "wheels_in");
  EXPECT_EQ(pic->entries[0].unique_id, 10);
  EXPECT_EQ(pic->entries[2].direction, PluginPortDirection::kProvided);
  EXPECT_TRUE(reader.exhausted());
}

TEST(PicTest, EmptyRoundTrip) {
  support::ByteWriter writer;
  PortInitContext{}.SerializeTo(writer);
  support::ByteReader reader(writer.bytes());
  auto pic = PortInitContext::DeserializeFrom(reader);
  ASSERT_TRUE(pic.ok());
  EXPECT_TRUE(pic->entries.empty());
}

TEST(PicTest, BadDirectionRejected) {
  support::ByteWriter writer;
  writer.WriteVarU32(1);
  writer.WriteU8(0);
  writer.WriteString("p");
  writer.WriteU8(1);
  writer.WriteU8(9);  // invalid direction
  support::ByteReader reader(writer.bytes());
  EXPECT_FALSE(PortInitContext::DeserializeFrom(reader).ok());
}

TEST(PicTest, TruncationRejected) {
  support::ByteWriter writer;
  SamplePic().SerializeTo(writer);
  auto bytes = writer.Take();
  bytes.resize(bytes.size() - 3);
  support::ByteReader reader(bytes);
  EXPECT_FALSE(PortInitContext::DeserializeFrom(reader).ok());
}

// --- PLC ---------------------------------------------------------------------------------

TEST(PlcTest, RoundTripAllKinds) {
  support::ByteWriter writer;
  SamplePlc().SerializeTo(writer);
  support::ByteReader reader(writer.bytes());
  auto plc = PortLinkingContext::DeserializeFrom(reader);
  ASSERT_TRUE(plc.ok());
  ASSERT_EQ(plc->entries.size(), 4u);
  EXPECT_EQ(plc->entries[0].kind, PlcKind::kUnconnected);
  EXPECT_EQ(plc->entries[1].kind, PlcKind::kVirtual);
  EXPECT_EQ(plc->entries[1].virtual_port, 4);
  EXPECT_EQ(plc->entries[2].kind, PlcKind::kVirtualRemote);
  EXPECT_EQ(plc->entries[2].remote_port_id, 7);
  EXPECT_EQ(plc->entries[3].kind, PlcKind::kLocalPlugin);
  EXPECT_EQ(plc->entries[3].peer_plugin, "peer");
  EXPECT_EQ(plc->entries[3].peer_local_port, 5);
}

TEST(PlcTest, BadKindRejected) {
  support::ByteWriter writer;
  writer.WriteVarU32(1);
  writer.WriteU8(0);
  writer.WriteU8(7);  // invalid kind
  writer.WriteU8(0);
  writer.WriteU8(0);
  writer.WriteString("");
  writer.WriteU8(0);
  support::ByteReader reader(writer.bytes());
  EXPECT_FALSE(PortLinkingContext::DeserializeFrom(reader).ok());
}

// --- ECC -----------------------------------------------------------------------------------

TEST(EccTest, RoundTrip) {
  support::ByteWriter writer;
  SampleEcc().SerializeTo(writer);
  support::ByteReader reader(writer.bytes());
  auto ecc = ExternalConnectionContext::DeserializeFrom(reader);
  ASSERT_TRUE(ecc.ok());
  ASSERT_EQ(ecc->entries.size(), 2u);
  EXPECT_EQ(ecc->entries[0].direction, EccDirection::kInbound);
  EXPECT_EQ(ecc->entries[0].endpoint, "111.22.33.44:56789");
  EXPECT_EQ(ecc->entries[0].message_id, "Wheels");
  EXPECT_EQ(ecc->entries[1].direction, EccDirection::kOutbound);
  EXPECT_EQ(ecc->entries[1].port_unique_id, 3);
}

TEST(EccTest, EmptyMeansNoExternalCommunication) {
  ExternalConnectionContext ecc;
  EXPECT_TRUE(ecc.empty());
  EXPECT_FALSE(SampleEcc().empty());
}

// --- InstallationPackage --------------------------------------------------------------------

InstallationPackage SamplePackage() {
  InstallationPackage package;
  package.plugin_name = "OP";
  package.version = "1.2";
  package.pic = SamplePic();
  package.plc = SamplePlc();
  package.ecc = SampleEcc();
  package.binary = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02};
  return package;
}

TEST(PackageTest, RoundTrip) {
  auto bytes = SamplePackage().Serialize();
  auto package = InstallationPackage::Deserialize(bytes);
  ASSERT_TRUE(package.ok()) << package.status().ToString();
  EXPECT_EQ(package->plugin_name, "OP");
  EXPECT_EQ(package->version, "1.2");
  EXPECT_EQ(package->pic.entries.size(), 3u);
  EXPECT_EQ(package->plc.entries.size(), 4u);
  EXPECT_EQ(package->ecc.entries.size(), 2u);
  EXPECT_EQ(package->binary, SamplePackage().binary);
}

TEST(PackageTest, EveryBitFlipIsDetected) {
  // The CRC must catch any single-bit corruption of the package.
  const auto bytes = SamplePackage().Serialize();
  for (std::size_t bit = 0; bit < bytes.size() * 8; bit += 29) {
    auto mutated = bytes;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto result = InstallationPackage::Deserialize(mutated);
    EXPECT_FALSE(result.ok()) << "bit " << bit << " undetected";
  }
}

TEST(PackageTest, TruncationRejected) {
  auto bytes = SamplePackage().Serialize();
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                           bytes.size() - 1}) {
    auto truncated = bytes;
    truncated.resize(keep);
    EXPECT_FALSE(InstallationPackage::Deserialize(truncated).ok()) << keep;
  }
}

// --- PirteMessage ------------------------------------------------------------------------------

TEST(PirteMessageTest, InstallRoundTrip) {
  PirteMessage message;
  message.type = MessageType::kInstallPackage;
  message.plugin_name = "COM";
  message.target_ecu = 2;
  message.payload = SamplePackage().Serialize();
  auto restored = PirteMessage::Deserialize(message.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->type, MessageType::kInstallPackage);
  EXPECT_EQ(restored->plugin_name, "COM");
  EXPECT_EQ(restored->target_ecu, 2u);
  EXPECT_EQ(restored->payload, message.payload);
}

TEST(PirteMessageTest, AckRoundTrip) {
  PirteMessage ack;
  ack.type = MessageType::kAck;
  ack.plugin_name = "OP";
  ack.ok = false;
  ack.detail = "INCOMPATIBLE: quota";
  auto restored = PirteMessage::Deserialize(ack.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->type, MessageType::kAck);
  EXPECT_FALSE(restored->ok);
  EXPECT_EQ(restored->detail, "INCOMPATIBLE: quota");
}

TEST(PirteMessageTest, ExternalDataCarriesDestPort) {
  PirteMessage message;
  message.type = MessageType::kExternalData;
  message.dest_port = 7;
  message.detail = "Wheels";
  message.payload = {1, 2, 3, 4};
  auto restored = PirteMessage::Deserialize(message.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->dest_port, 7);
  EXPECT_EQ(restored->detail, "Wheels");
}

TEST(PirteMessageTest, InstallationPackageTypeIdIsZero) {
  // Paper: "a message type id (e.g. 0 for the installation package)".
  EXPECT_EQ(static_cast<std::uint8_t>(MessageType::kInstallPackage), 0);
  PirteMessage message;
  message.type = MessageType::kInstallPackage;
  EXPECT_EQ(message.Serialize()[0], 0);
}

TEST(PirteMessageTest, BadTypeRejected) {
  PirteMessage message;
  auto bytes = message.Serialize();
  bytes[0] = 200;
  EXPECT_FALSE(PirteMessage::Deserialize(bytes).ok());
}

TEST(PirteMessageTest, ViewParseAgreesWithOwningParse) {
  PirteMessage message;
  message.type = MessageType::kExternalData;
  message.plugin_name = "OP";
  message.target_ecu = 2;
  message.dest_port = 7;
  message.ok = false;
  message.detail = "Wheels";
  message.payload = {1, 2, 3};
  const auto bytes = message.Serialize();
  EXPECT_EQ(bytes.size(), message.WireSize());
  auto view = PirteMessageView::Parse(bytes);
  ASSERT_TRUE(view.ok());
  auto owned = PirteMessage::Deserialize(bytes);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(view->type, owned->type);
  EXPECT_EQ(view->plugin_name, owned->plugin_name);
  EXPECT_EQ(view->target_ecu, owned->target_ecu);
  EXPECT_EQ(view->dest_port, owned->dest_port);
  EXPECT_EQ(view->ok, owned->ok);
  EXPECT_EQ(view->detail, owned->detail);
  EXPECT_TRUE(std::equal(view->payload.begin(), view->payload.end(),
                         owned->payload.begin(), owned->payload.end()));
}

// --- campaign batches --------------------------------------------------------------------------

TEST(InstallBatchTest, EntriesRoundTripAsIndividualInstallMessages) {
  const support::Bytes pkg_a = {10, 11, 12};
  const support::Bytes pkg_b = {20};
  const std::vector<InstallBatchEntry> entries = {
      {"app.p0", 1, pkg_a},
      {"app.p1", 2, pkg_b},
  };
  const auto payload = SerializeInstallBatch(entries);

  std::vector<PirteMessage> unpacked;
  auto status = ForEachInBatch(payload, [&](std::span<const std::uint8_t> entry) {
    auto inner = PirteMessage::Deserialize(entry);
    if (!inner.ok()) return inner.status();
    unpacked.push_back(std::move(*inner));
    return support::OkStatus();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(unpacked.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    // The one-pass batch framing must be byte-identical to serializing
    // the equivalent kInstallPackage message.
    PirteMessage equivalent;
    equivalent.type = MessageType::kInstallPackage;
    equivalent.plugin_name = entries[i].plugin_name;
    equivalent.target_ecu = entries[i].target_ecu;
    equivalent.payload.assign(entries[i].package_bytes.begin(),
                              entries[i].package_bytes.end());
    EXPECT_EQ(unpacked[i].Serialize(), equivalent.Serialize()) << i;
  }
  // Truncation never crashes or reads out of range.
  for (std::size_t cut = 0; cut < payload.size(); cut += 3) {
    auto truncated = payload;
    truncated.resize(cut);
    (void)ForEachInBatch(truncated, [](std::span<const std::uint8_t>) {
      return support::OkStatus();
    });
  }
}

TEST(AckBatchTest, RoundTripThroughViewsAndOwningApi) {
  const std::vector<BatchAckEntry> entries = {
      {"app.p0", true, ""},
      {"app.p1", false, "quota exceeded"},
  };
  const auto payload = SerializeAckBatch(entries);

  auto owned = DeserializeAckBatch(payload);
  ASSERT_TRUE(owned.ok());
  ASSERT_EQ(owned->size(), 2u);
  std::size_t i = 0;
  auto status = ForEachAckInBatch(
      payload, [&](std::string_view plugin, bool ok, std::string_view detail) {
        EXPECT_EQ(plugin, (*owned)[i].plugin);
        EXPECT_EQ(ok, (*owned)[i].ok);
        EXPECT_EQ(detail, (*owned)[i].detail);
        ++i;
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(i, 2u);
  EXPECT_EQ((*owned)[1].detail, "quota exceeded");
  EXPECT_FALSE((*owned)[1].ok);

  support::Bytes garbage = {0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(DeserializeAckBatch(garbage).ok());
}

// --- Envelope / FesFrame ----------------------------------------------------------------------

TEST(EnvelopeTest, HelloRoundTrip) {
  Envelope envelope;
  envelope.kind = Envelope::Kind::kHello;
  envelope.vin = "VIN-42";
  auto restored = Envelope::Deserialize(envelope.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->kind, Envelope::Kind::kHello);
  EXPECT_EQ(restored->vin, "VIN-42");
}

TEST(EnvelopeTest, PirteMessageRoundTrip) {
  PirteMessage inner;
  inner.type = MessageType::kUninstall;
  inner.plugin_name = "OP";
  Envelope envelope;
  envelope.kind = Envelope::Kind::kPirteMessage;
  envelope.vin = "VIN-1";
  envelope.message = inner.Serialize();
  auto restored = Envelope::Deserialize(envelope.Serialize());
  ASSERT_TRUE(restored.ok());
  auto inner_restored = PirteMessage::Deserialize(restored->message);
  ASSERT_TRUE(inner_restored.ok());
  EXPECT_EQ(inner_restored->type, MessageType::kUninstall);
  EXPECT_EQ(inner_restored->plugin_name, "OP");
}

TEST(EnvelopeTest, BadKindRejected) {
  Envelope envelope;
  auto bytes = envelope.Serialize();
  bytes[0] = 9;
  EXPECT_FALSE(Envelope::Deserialize(bytes).ok());
}

TEST(FesFrameTest, RoundTrip) {
  FesFrame frame;
  frame.message_id = "Speed";
  frame.payload = {0xFF, 0x00};
  auto restored = FesFrame::Deserialize(frame.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->message_id, "Speed");
  EXPECT_EQ(restored->payload, frame.payload);
}

TEST(FesFrameTest, GarbageRejected) {
  support::Bytes garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  EXPECT_FALSE(FesFrame::Deserialize(garbage).ok());
}

}  // namespace
}  // namespace dacm::pirte
