// Systematic crash-point injection sweep.
//
// The kill-and-restart tests in test_recovery.cpp crash at a handful of
// hand-picked times.  This harness removes the hand-picking: a recording
// pass runs a campaign to convergence over a CrashPointSink that counts
// every durability op (status-log and journal Append / Sync / Rotate
// share ONE CrashClock, so op numbers order the interleaved stream) and
// timestamps each op with the simulator clock.  Then, for every
// reachable op number N, a fresh world replays the identical schedule
// armed to die at op N — the N-th write fails (optionally leaking a torn
// prefix), every later write fails too, and the process is killed one
// nanosecond after the recorded time of op N and rebuilt from nothing
// but the durable logs.
//
// The acceptance bar for every N: the campaign still converges and the
// final fleet image is BYTE-IDENTICAL to the uninterrupted run's —
// DescribeFleet() text and FleetFingerprint() both equal.  Identical
// describe output is also the no-duplicate-install proof: a doubled row
// or re-claimed port id would change the paragraph text.  No catalog
// re-upload happens by construction — recovery replays the logs alone.
//
// Determinism notes (why the recorded op times are valid for the armed
// run): shard_count=1 keeps server-side ParallelFor inline, the fault
// scenario is seeded, and the armed run is bit-identical to the
// recording until op N fails — so op N occurs at exactly the recorded
// T_N, and a kill at T_N + 1 lands strictly between the crash point and
// the next simulator event that could diverge.
//
// Labelled `recovery` (ctest): the ASan/UBSan and TSan CI jobs run it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/campaign.hpp"
#include "server/journal.hpp"
#include "server/server.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/storage.hpp"

namespace dacm {
namespace {

using server::CampaignStatus;
using support::CrashClock;
using support::CrashPointSink;
using support::MemorySink;
using support::ReplayRecords;

/// Sweep knobs, overridable for deeper soak runs:
///   DACM_SWEEP_FLEET  — fleet size for the exhaustive sweep (default 12)
///   DACM_SWEEP_STRIDE — op stride for the 1k-vehicle sweep (default 199)
std::uint64_t EnvKnob(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

server::RetryPolicy SweepPolicy() {
  server::RetryPolicy policy;
  policy.max_waves = 10;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 2 * sim::kSecond;
  return policy;
}

/// A campaign world writing both durable logs through CrashPointSinks
/// that share one clock.  Kill() destroys the server-side objects;
/// Recover() rebuilds them from the raw logs alone — no re-uploads, and
/// the fresh process writes the raw sinks directly (a new process has a
/// new disk handle, not the dead one).
struct CrashRig {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMillisecond};
  MemorySink status_raw;
  MemorySink journal_raw;
  CrashClock clock;
  CrashPointSink status_crash{status_raw, clock};
  CrashPointSink journal_crash{journal_raw, clock};
  std::unique_ptr<server::CampaignJournal> journal;
  std::unique_ptr<server::TrustedServer> server;
  std::unique_ptr<server::CampaignEngine> engine;
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;
  std::uint64_t compact_bytes;
  std::uint64_t journal_compact_bytes;

  CrashRig(std::size_t vehicles, std::uint64_t compact_after_bytes,
           std::uint64_t journal_watermark)
      : compact_bytes(compact_after_bytes),
        journal_compact_bytes(journal_watermark) {
    clock.SetNowFn([this] { return simulator.Now(); });
    MakeServer(&status_crash);
    EXPECT_TRUE(server->UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    user = *server->CreateUser("ops");
    fes::SyntheticAppParams params;
    params.name = "sweep-app";
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = 2;
    params.target_ecu = 1;
    EXPECT_TRUE(server->UploadApp(fes::MakeSyntheticApp(params)).ok());
    fes::ScriptedFleetOptions options;
    options.vehicle_count = vehicles;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, *server,
                                                 options);
    EXPECT_TRUE(fleet->BindAndConnect(user).ok());
    journal = std::make_unique<server::CampaignJournal>(journal_crash);
    NewEngine();
  }

  void MakeServer(support::RecordSink* sink) {
    server::ServerOptions options;
    options.shard_count = 1;  // inline ParallelFor: deterministic op order
    options.status_sink = sink;
    options.compact_after_bytes = compact_bytes;
    server =
        std::make_unique<server::TrustedServer>(network, "srv:443", options);
    EXPECT_TRUE(server->Start().ok());
  }

  void NewEngine() {
    engine = std::make_unique<server::CampaignEngine>(simulator, *server);
    engine->AttachJournal(journal.get());
    engine->SetJournalCompactionWatermark(journal_compact_bytes);
  }

  void Kill() {
    engine.reset();
    server.reset();
    journal.reset();
  }

  static void TruncateToDurable(MemorySink& sink) {
    auto stats = ReplayRecords(sink.bytes(),
                               [](std::span<const std::uint8_t>) {
                                 return support::OkStatus();
                               });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    sink.TruncateTo(stats->valid_bytes);
  }

  void Recover() {
    TruncateToDurable(status_raw);
    TruncateToDurable(journal_raw);
    MakeServer(&status_raw);
    const support::Status recovered =
        server->RecoverInstallDb(status_raw.bytes());
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    fleet->RetargetServer(*server);
    fleet->RedialDead();
    journal = std::make_unique<server::CampaignJournal>(journal_raw);
    NewEngine();
    const support::Status resumed = engine->Recover(journal_raw.bytes());
    EXPECT_TRUE(resumed.ok()) << resumed.ToString();
  }
};

struct SweepOutcome {
  bool converged = false;
  bool reissued = false;  // campaign lost before a durable kStart
  std::string fleet_describe;
  std::uint64_t fingerprint = 0;
  std::uint64_t compactions = 0;         // status-log rotations that landed
  std::uint64_t setup_ops = 0;           // recording pass only
  std::uint64_t total_ops = 0;           // recording pass only
  std::vector<std::uint64_t> op_times;   // recording pass only
};

/// One full campaign.  `crash_at` == 0 is the recording pass; otherwise
/// the world dies at durability op `crash_at` (leaking `tear_bytes` of
/// the armed append) at recorded time `kill_time` + 1 and recovers from
/// the logs.  If the crash predates the journal's kStart the campaign
/// never existed durably — the operator re-issues it, the one
/// legitimate client-side retry in the model.
SweepOutcome RunSweepCampaign(std::size_t vehicles, bool churn,
                              std::uint64_t compact_after_bytes,
                              std::uint64_t journal_watermark,
                              std::uint64_t crash_at, std::size_t tear_bytes,
                              std::uint64_t kill_time) {
  CrashRig rig(vehicles, compact_after_bytes, journal_watermark);
  SweepOutcome out;
  out.setup_ops = rig.clock.ops();

  sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/1914);
  if (churn) {
    faults.AddOfflineChurn(*rig.fleet, /*fraction=*/0.20,
                           /*horizon=*/10 * sim::kMillisecond,
                           /*min_offline=*/100 * sim::kMillisecond,
                           /*max_offline=*/400 * sim::kMillisecond);
  }
  if (crash_at != 0) {
    rig.clock.Arm(crash_at, tear_bytes);
    faults.KillAndRestartServer(
        kill_time + 1 - rig.simulator.Now(), [&rig] { rig.Kill(); },
        [&rig] { rig.Recover(); });
  }

  auto id = rig.engine->StartDeploy(rig.user, "sweep-app", rig.fleet->vins(),
                                    SweepPolicy());
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  if (!id.ok()) return out;
  rig.simulator.Run();

  if (!rig.engine->Snapshot(*id).ok()) {
    out.reissued = true;
    id = rig.engine->StartDeploy(rig.user, "sweep-app", rig.fleet->vins(),
                                 SweepPolicy());
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return out;
    rig.simulator.Run();
  }

  auto snapshot = rig.engine->Snapshot(*id);
  EXPECT_TRUE(snapshot.ok());
  out.converged =
      snapshot.ok() && snapshot->status == CampaignStatus::kConverged;
  out.fleet_describe = rig.server->DescribeFleet();
  out.fingerprint = rig.server->FleetFingerprint();
  out.compactions = rig.server->stats().compactions;
  out.total_ops = rig.clock.ops();
  out.op_times = rig.clock.op_times();
  return out;
}

// Every reachable crash point in a small campaign, with compaction
// watermarks low enough that status-log AND journal rotations are among
// the swept ops.  Tear lengths cycle pseudo-randomly so torn-prefix
// recovery is exercised at many boundaries, not just budget-shaped ones.
TEST(CrashPointSweepTest, EveryDurabilityOpRecoversByteIdentically) {
  const std::size_t vehicles =
      static_cast<std::size_t>(EnvKnob("DACM_SWEEP_FLEET", 12));
  constexpr std::uint64_t kCompactBytes = 2 * 1024;
  constexpr std::uint64_t kJournalBytes = 1024;

  const SweepOutcome base = RunSweepCampaign(
      vehicles, /*churn=*/false, kCompactBytes, kJournalBytes,
      /*crash_at=*/0, /*tear_bytes=*/0, /*kill_time=*/0);
  ASSERT_TRUE(base.converged);
  ASSERT_EQ(base.op_times.size(), base.total_ops);
  ASSERT_GT(base.total_ops, base.setup_ops);
  // The low watermarks must make checkpoint rotation one of the swept op
  // kinds — a sweep that never crosses a Rotate proves nothing about it.
  ASSERT_GE(base.compactions, 1u);
  std::cout << "[sweep] " << (base.total_ops - base.setup_ops)
            << " crash points (ops " << base.setup_ops + 1 << ".."
            << base.total_ops << "), " << base.compactions
            << " compaction(s) in the recording pass\n";

  for (std::uint64_t n = base.setup_ops + 1; n <= base.total_ops; ++n) {
    const std::size_t tear = static_cast<std::size_t>((n * 7919) % 23);
    const SweepOutcome crashed = RunSweepCampaign(
        vehicles, /*churn=*/false, kCompactBytes, kJournalBytes,
        /*crash_at=*/n, tear, /*kill_time=*/base.op_times[n - 1]);
    ASSERT_TRUE(crashed.converged) << "crash point " << n;
    EXPECT_EQ(crashed.fleet_describe, base.fleet_describe)
        << "crash point " << n << " (tear " << tear << ")";
    EXPECT_EQ(crashed.fingerprint, base.fingerprint) << "crash point " << n;
  }
}

// The fleet-scale flavor: 1000 vehicles with 20% offline churn, crash
// points sampled on a prime stride (so the samples drift across record
// kinds instead of aliasing onto one).  DACM_SWEEP_STRIDE=1 turns this
// into the exhaustive soak.
TEST(CrashPointSweepTest, StridedSweepAtFleetScaleUnderChurn) {
  constexpr std::size_t kVehicles = 1000;
  constexpr std::uint64_t kCompactBytes = 64 * 1024;
  constexpr std::uint64_t kJournalBytes = 32 * 1024;

  const SweepOutcome base = RunSweepCampaign(
      kVehicles, /*churn=*/true, kCompactBytes, kJournalBytes,
      /*crash_at=*/0, /*tear_bytes=*/0, /*kill_time=*/0);
  ASSERT_TRUE(base.converged);
  ASSERT_GT(base.total_ops, base.setup_ops);
  ASSERT_GE(base.compactions, 1u);

  const std::uint64_t stride = EnvKnob("DACM_SWEEP_STRIDE", 199);
  std::size_t points = 0;
  for (std::uint64_t n = base.setup_ops + 1; n <= base.total_ops;
       n += stride) {
    const std::size_t tear = static_cast<std::size_t>((n * 7919) % 23);
    const SweepOutcome crashed = RunSweepCampaign(
        kVehicles, /*churn=*/true, kCompactBytes, kJournalBytes,
        /*crash_at=*/n, tear, /*kill_time=*/base.op_times[n - 1]);
    ASSERT_TRUE(crashed.converged) << "crash point " << n;
    EXPECT_EQ(crashed.fleet_describe, base.fleet_describe)
        << "crash point " << n;
    EXPECT_EQ(crashed.fingerprint, base.fingerprint) << "crash point " << n;
    ++points;
  }
  EXPECT_GE(points, 10u);
}

}  // namespace
}  // namespace dacm
