// Plug-in population properties of one PIRTE: quota enforcement, id-space
// integrity, fault independence, lifecycle sweeps, and persistence of
// whole populations across ECU reboots.
#include <gtest/gtest.h>

#include <memory>

#include "bsw/nvm.hpp"
#include "fes/appgen.hpp"
#include "fes/ecu.hpp"
#include "pirte/pirte.hpp"
#include "test_util.hpp"

namespace dacm::pirte {
namespace {

/// Minimal single-ECU stack: one plug-in SW-C with a Type III out port
/// (V4) facing a harness port; rebuildable over an external Nvm.
struct SwarmStack {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  fes::Ecu ecu{simulator, bus, 1, "ECU1"};
  std::unique_ptr<Pirte> pirte;
  rte::PortId mon_act = rte::PortId::Invalid();

  explicit SwarmStack(bsw::Nvm& nvm, std::size_t max_plugins = 16,
                      std::size_t max_binary = 64 * 1024) {
    rte::Rte& rte = ecu.ecu_rte();
    auto plug_swc = *rte.AddSwc("Plug");
    auto harness_swc = *rte.AddSwc("Harness");
    rte::PortConfig act_config;
    act_config.name = "ActReq";
    act_config.direction = rte::PortDirection::kProvided;
    act_config.max_len = 256;
    auto act_out = *rte.AddPort(plug_swc, std::move(act_config));
    rte::PortConfig mon_config;
    mon_config.name = "mon.act";
    mon_config.direction = rte::PortDirection::kRequired;
    mon_config.max_len = 256;
    mon_act = *rte.AddPort(harness_swc, std::move(mon_config));
    EXPECT_TRUE(rte.ConnectLocal(act_out, mon_act).ok());

    PirteConfig config;
    config.name = "P1";
    config.ecu_id = 1;
    config.swc = plug_swc;
    config.max_plugins = max_plugins;
    config.max_binary_size = max_binary;
    config.nv_block = [&nvm]() {
      auto existing = nvm.FindBlock("pirte.P1");
      if (existing.ok()) return *existing;
      return *nvm.DefineBlock("pirte.P1", 1 << 20);
    }();
    VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    config.virtual_ports.push_back(v4);

    pirte = std::make_unique<Pirte>(rte, &nvm, &ecu.dem(), std::move(config));
    EXPECT_TRUE(pirte->Init().ok());
    EXPECT_TRUE(ecu.Start().ok());
    simulator.Run();
  }

  InstallationPackage EchoPackage(int index) {
    return testutil::MakeEchoLoopbackPackage(
        "p" + std::to_string(index), static_cast<std::uint8_t>(2 * index),
        static_cast<std::uint8_t>(2 * index + 1));
  }

  void Poke(int index) {
    (void)pirte->DeliverToPluginPortByUnique(static_cast<std::uint8_t>(2 * index),
                                             support::Bytes{std::uint8_t(index)});
    simulator.Run();
  }
};

class Swarm : public ::testing::TestWithParam<int> {};

TEST_P(Swarm, PopulationInstallsRunsAndDrainsCompletely) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok()) << i;
  }
  stack.simulator.Run();
  EXPECT_EQ(stack.pirte->InstalledPluginNames().size(),
            static_cast<std::size_t>(count));

  // Every member reacts independently.
  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count));

  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Uninstall("p" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(stack.pirte->InstalledPluginNames().empty());
  EXPECT_EQ(stack.pirte->stats().uninstalls, static_cast<std::uint64_t>(count));
}

TEST_P(Swarm, WholePopulationSurvivesReboot) {
  const int count = GetParam();
  bsw::Nvm nvm;
  {
    SwarmStack stack(nvm, /*max_plugins=*/64);
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
    }
    stack.simulator.Run();
  }  // ECU power-off
  SwarmStack rebooted(nvm, /*max_plugins=*/64);
  EXPECT_EQ(rebooted.pirte->InstalledPluginNames().size(),
            static_cast<std::size_t>(count));
  // Revived plug-ins are functional, not just listed.
  for (int i = 0; i < count; ++i) rebooted.Poke(i);
  EXPECT_EQ(rebooted.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count));
}

TEST_P(Swarm, OneTrappingMemberLeavesTheRestUntouched) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  // Replace member 0's healthy binary with a trap bomb.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  auto bomb = stack.EchoPackage(0);
  bomb.binary = fes::MakeTrapPluginBinary();
  ASSERT_TRUE(stack.pirte->Install(bomb).ok());
  stack.simulator.Run();

  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->FindPlugin("p0")->state(), PluginState::kFaulted);
  for (int i = 1; i < count; ++i) {
    EXPECT_EQ(stack.pirte->FindPlugin("p" + std::to_string(i))->state(),
              PluginState::kRunning)
        << i;
  }
  EXPECT_EQ(stack.pirte->stats().vm_faults, 1u);
}

TEST_P(Swarm, StopStartSweepKeepsStatesIndependent) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  stack.simulator.Run();
  // Stop every second plug-in.
  for (int i = 0; i < count; i += 2) {
    ASSERT_TRUE(stack.pirte->Stop("p" + std::to_string(i)).ok());
  }
  for (int i = 0; i < count; ++i) stack.Poke(i);
  // Only running members reacted.
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count / 2));
  // Restart and poke again: everyone reacts now.
  for (int i = 0; i < count; i += 2) {
    ASSERT_TRUE(stack.pirte->Start("p" + std::to_string(i)).ok());
  }
  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count / 2 + count));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Swarm, ::testing::Values(1, 2, 5, 12, 24));

// --- quotas ------------------------------------------------------------------------------

TEST(SwarmQuota, PluginCountQuotaIsExact) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(4)).code(),
            support::ErrorCode::kResourceExhausted);
  // Freeing one slot re-admits exactly one.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  EXPECT_TRUE(stack.pirte->Install(stack.EchoPackage(4)).ok());
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(5)).code(),
            support::ErrorCode::kResourceExhausted);
}

TEST(SwarmQuota, BinarySizeQuotaEnforced) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm, 16, /*max_binary=*/64);
  auto package = stack.EchoPackage(0);
  EXPECT_GT(package.binary.size(), 64u);  // echo binary exceeds tiny quota
  EXPECT_EQ(stack.pirte->Install(package).code(),
            support::ErrorCode::kCapacityExceeded);
}

TEST(SwarmQuota, UniqueIdClashAcrossPluginsRejected) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm);
  ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(0)).ok());
  auto clash = stack.EchoPackage(1);
  clash.pic.entries[0].unique_id = 0;  // taken by p0's "in"
  EXPECT_EQ(stack.pirte->Install(clash).code(), support::ErrorCode::kIncompatible);
  // After removing the holder the id is installable again.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  EXPECT_TRUE(stack.pirte->Install(clash).ok());
}

TEST(SwarmQuota, ReinstallSameNameRequiresUninstall) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm);
  ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(0)).ok());
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(0)).code(),
            support::ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace dacm::pirte
