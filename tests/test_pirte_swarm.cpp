// Plug-in population properties of one PIRTE: quota enforcement, id-space
// integrity, fault independence, lifecycle sweeps, and persistence of
// whole populations across ECU reboots.
#include <gtest/gtest.h>

#include <memory>

#include "bsw/nvm.hpp"
#include "fes/appgen.hpp"
#include "fes/ecu.hpp"
#include "pirte/pirte.hpp"
#include "test_util.hpp"

namespace dacm::pirte {
namespace {

/// Minimal single-ECU stack: one plug-in SW-C with a Type III out port
/// (V4) facing a harness port; rebuildable over an external Nvm.
struct SwarmStack {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  fes::Ecu ecu{simulator, bus, 1, "ECU1"};
  std::unique_ptr<Pirte> pirte;
  rte::PortId mon_act = rte::PortId::Invalid();

  explicit SwarmStack(bsw::Nvm& nvm, std::size_t max_plugins = 16,
                      std::size_t max_binary = 64 * 1024) {
    rte::Rte& rte = ecu.ecu_rte();
    auto plug_swc = *rte.AddSwc("Plug");
    auto harness_swc = *rte.AddSwc("Harness");
    rte::PortConfig act_config;
    act_config.name = "ActReq";
    act_config.direction = rte::PortDirection::kProvided;
    act_config.max_len = 256;
    auto act_out = *rte.AddPort(plug_swc, std::move(act_config));
    rte::PortConfig mon_config;
    mon_config.name = "mon.act";
    mon_config.direction = rte::PortDirection::kRequired;
    mon_config.max_len = 256;
    mon_act = *rte.AddPort(harness_swc, std::move(mon_config));
    EXPECT_TRUE(rte.ConnectLocal(act_out, mon_act).ok());

    PirteConfig config;
    config.name = "P1";
    config.ecu_id = 1;
    config.swc = plug_swc;
    config.max_plugins = max_plugins;
    config.max_binary_size = max_binary;
    config.nv_block = [&nvm]() {
      auto existing = nvm.FindBlock("pirte.P1");
      if (existing.ok()) return *existing;
      return *nvm.DefineBlock("pirte.P1", 1 << 20);
    }();
    VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    config.virtual_ports.push_back(v4);

    pirte = std::make_unique<Pirte>(rte, &nvm, &ecu.dem(), std::move(config));
    EXPECT_TRUE(pirte->Init().ok());
    EXPECT_TRUE(ecu.Start().ok());
    simulator.Run();
  }

  InstallationPackage EchoPackage(int index) {
    return testutil::MakeEchoLoopbackPackage(
        "p" + std::to_string(index), static_cast<std::uint8_t>(2 * index),
        static_cast<std::uint8_t>(2 * index + 1));
  }

  void Poke(int index) {
    (void)pirte->DeliverToPluginPortByUnique(static_cast<std::uint8_t>(2 * index),
                                             support::Bytes{std::uint8_t(index)});
    simulator.Run();
  }
};

class Swarm : public ::testing::TestWithParam<int> {};

TEST_P(Swarm, PopulationInstallsRunsAndDrainsCompletely) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok()) << i;
  }
  stack.simulator.Run();
  EXPECT_EQ(stack.pirte->InstalledPluginNames().size(),
            static_cast<std::size_t>(count));

  // Every member reacts independently.
  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count));

  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Uninstall("p" + std::to_string(i)).ok());
  }
  EXPECT_TRUE(stack.pirte->InstalledPluginNames().empty());
  EXPECT_EQ(stack.pirte->stats().uninstalls, static_cast<std::uint64_t>(count));
}

TEST_P(Swarm, WholePopulationSurvivesReboot) {
  const int count = GetParam();
  bsw::Nvm nvm;
  {
    SwarmStack stack(nvm, /*max_plugins=*/64);
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
    }
    stack.simulator.Run();
  }  // ECU power-off
  SwarmStack rebooted(nvm, /*max_plugins=*/64);
  EXPECT_EQ(rebooted.pirte->InstalledPluginNames().size(),
            static_cast<std::size_t>(count));
  // Revived plug-ins are functional, not just listed.
  for (int i = 0; i < count; ++i) rebooted.Poke(i);
  EXPECT_EQ(rebooted.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count));
}

TEST_P(Swarm, OneTrappingMemberLeavesTheRestUntouched) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  // Replace member 0's healthy binary with a trap bomb.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  auto bomb = stack.EchoPackage(0);
  bomb.binary = fes::MakeTrapPluginBinary();
  ASSERT_TRUE(stack.pirte->Install(bomb).ok());
  stack.simulator.Run();

  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->FindPlugin("p0")->state(), PluginState::kFaulted);
  for (int i = 1; i < count; ++i) {
    EXPECT_EQ(stack.pirte->FindPlugin("p" + std::to_string(i))->state(),
              PluginState::kRunning)
        << i;
  }
  EXPECT_EQ(stack.pirte->stats().vm_faults, 1u);
}

TEST_P(Swarm, StopStartSweepKeepsStatesIndependent) {
  const int count = GetParam();
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  stack.simulator.Run();
  // Stop every second plug-in.
  for (int i = 0; i < count; i += 2) {
    ASSERT_TRUE(stack.pirte->Stop("p" + std::to_string(i)).ok());
  }
  for (int i = 0; i < count; ++i) stack.Poke(i);
  // Only running members reacted.
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count / 2));
  // Restart and poke again: everyone reacts now.
  for (int i = 0; i < count; i += 2) {
    ASSERT_TRUE(stack.pirte->Start("p" + std::to_string(i)).ok());
  }
  for (int i = 0; i < count; ++i) stack.Poke(i);
  EXPECT_EQ(stack.pirte->stats().vm_activations,
            static_cast<std::uint64_t>(count / 2 + count));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Swarm, ::testing::Values(1, 2, 5, 12, 24));

// --- seeded mux fuzz ---------------------------------------------------------------
//
// Random interleavings of port deliveries (mapped and unmapped unique
// ids, both port directions) with lifecycle transitions, checked against
// an exact reference model of the PIRTE mux:
//   * a delivery succeeds iff some installed plug-in owns the unique id;
//   * it activates the VM iff that plug-in is running (stopped members
//     buffer the value silently);
//   * Stop/Start/Install/Uninstall succeed exactly per the lifecycle
//     rules, and the population never cross-talks.
// Set DACM_TEST_SEED to replay.
TEST(SwarmFuzz, RandomMuxAndLifecycleInterleavingsMatchReferenceModel) {
  DACM_PROPERTY_RNG(rng);
  constexpr int kPlugins = 10;
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/64);

  struct Model {
    bool installed = false;
    bool running = false;
  };
  std::vector<Model> model(kPlugins);
  std::uint64_t expected_activations = 0;
  std::uint64_t expected_installs = 0;
  std::uint64_t expected_uninstalls = 0;

  for (int i = 0; i < kPlugins; ++i) {
    ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
    model[i] = {true, true};
    ++expected_installs;
  }
  stack.simulator.Run();

  for (int op = 0; op < 500; ++op) {
    SCOPED_TRACE(::testing::Message() << "op " << op);
    const int plugin = static_cast<int>(rng.NextBelow(kPlugins));
    const std::string name = "p" + std::to_string(plugin);
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {
        // Deliver to a random unique id: mapped in-port (2i), mapped
        // out-port (2i+1), or unmapped ids beyond the population.
        const auto uid = static_cast<std::uint8_t>(rng.NextBelow(2 * kPlugins + 4));
        support::Bytes payload(rng.NextBelow(24));
        for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.NextU64());
        const int owner = uid / 2;
        const bool mapped = owner < kPlugins && model[owner].installed;
        auto status = stack.pirte->DeliverToPluginPortByUnique(uid, payload);
        EXPECT_EQ(status.ok(), mapped) << status.ToString();
        if (mapped && model[owner].running) ++expected_activations;
        break;
      }
      case 4: {
        auto status = stack.pirte->Stop(name);
        EXPECT_EQ(status.ok(), model[plugin].installed && model[plugin].running)
            << status.ToString();
        if (status.ok()) model[plugin].running = false;
        break;
      }
      case 5: {
        auto status = stack.pirte->Start(name);
        EXPECT_EQ(status.ok(), model[plugin].installed && !model[plugin].running)
            << status.ToString();
        if (status.ok()) model[plugin].running = true;
        break;
      }
      case 6: {
        auto status = stack.pirte->Uninstall(name);
        EXPECT_EQ(status.ok(), model[plugin].installed) << status.ToString();
        if (status.ok()) {
          model[plugin] = {false, false};
          ++expected_uninstalls;
        }
        break;
      }
      case 7: {
        auto status = stack.pirte->Install(stack.EchoPackage(plugin));
        // Reinstalling a live name must be rejected; a fresh install runs.
        EXPECT_EQ(status.ok(), !model[plugin].installed) << status.ToString();
        if (status.ok()) {
          model[plugin] = {true, true};
          ++expected_installs;
        }
        break;
      }
    }
    stack.simulator.Run();
  }

  // The storm must leave the mux fully consistent with the model.
  const auto& stats = stack.pirte->stats();
  EXPECT_EQ(stats.vm_activations, expected_activations);
  EXPECT_EQ(stats.installs, expected_installs);
  EXPECT_EQ(stats.uninstalls, expected_uninstalls);
  EXPECT_EQ(stats.vm_faults, 0u);
  std::size_t expected_population = 0;
  for (int i = 0; i < kPlugins; ++i) {
    if (model[i].installed) ++expected_population;
    auto* instance = stack.pirte->FindPlugin("p" + std::to_string(i));
    ASSERT_EQ(instance != nullptr, model[i].installed) << i;
    if (instance != nullptr) {
      EXPECT_EQ(instance->state() == PluginState::kRunning, model[i].running) << i;
    }
  }
  EXPECT_EQ(stack.pirte->InstalledPluginNames().size(), expected_population);

  // And still route: every running member reacts to one more poke.
  const std::uint64_t before = stack.pirte->stats().vm_activations;
  std::uint64_t still_running = 0;
  for (int i = 0; i < kPlugins; ++i) {
    if (model[i].installed) {
      stack.Poke(i);
      if (model[i].running) ++still_running;
    }
  }
  EXPECT_EQ(stack.pirte->stats().vm_activations, before + still_running);
}

// --- quotas ------------------------------------------------------------------------------

TEST(SwarmQuota, PluginCountQuotaIsExact) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm, /*max_plugins=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(stack.pirte->Install(stack.EchoPackage(i)).ok());
  }
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(4)).code(),
            support::ErrorCode::kResourceExhausted);
  // Freeing one slot re-admits exactly one.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  EXPECT_TRUE(stack.pirte->Install(stack.EchoPackage(4)).ok());
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(5)).code(),
            support::ErrorCode::kResourceExhausted);
}

TEST(SwarmQuota, BinarySizeQuotaEnforced) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm, 16, /*max_binary=*/64);
  auto package = stack.EchoPackage(0);
  EXPECT_GT(package.binary.size(), 64u);  // echo binary exceeds tiny quota
  EXPECT_EQ(stack.pirte->Install(package).code(),
            support::ErrorCode::kCapacityExceeded);
}

TEST(SwarmQuota, UniqueIdClashAcrossPluginsRejected) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm);
  ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(0)).ok());
  auto clash = stack.EchoPackage(1);
  clash.pic.entries[0].unique_id = 0;  // taken by p0's "in"
  EXPECT_EQ(stack.pirte->Install(clash).code(), support::ErrorCode::kIncompatible);
  // After removing the holder the id is installable again.
  ASSERT_TRUE(stack.pirte->Uninstall("p0").ok());
  EXPECT_TRUE(stack.pirte->Install(clash).ok());
}

TEST(SwarmQuota, ReinstallSameNameRequiresUninstall) {
  bsw::Nvm nvm;
  SwarmStack stack(nvm);
  ASSERT_TRUE(stack.pirte->Install(stack.EchoPackage(0)).ok());
  EXPECT_EQ(stack.pirte->Install(stack.EchoPackage(0)).code(),
            support::ErrorCode::kAlreadyExists);
}

}  // namespace
}  // namespace dacm::pirte
