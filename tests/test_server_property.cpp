// Property tests on the trusted server's bookkeeping invariants:
//
//  * unique-id allocation never collides, whatever the deploy/uninstall
//    churn, and the id space is compact enough for long-lived vehicles;
//  * dependency chains can only be dismantled in reverse installation
//    (topological) order;
//  * restore is idempotent and preserves the recorded contexts exactly;
//  * the InstalledAPP table equals the set of acked deploys at all times.
#include <gtest/gtest.h>

#include <set>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"
#include "server/server.hpp"
#include "test_util.hpp"

namespace dacm::server {
namespace {

/// Scripted auto-acking vehicle endpoint (no real ECU stack — these tests
/// pin server behaviour only).
struct AckingVehicle {
  sim::Simulator& simulator;
  std::shared_ptr<sim::NetPeer> peer;
  std::string vin;
  std::uint64_t installs_seen = 0;
  std::uint64_t uninstalls_seen = 0;

  AckingVehicle(sim::Simulator& simulator, sim::Network& network,
                TrustedServer& server, std::string vin_in)
      : simulator(simulator), vin(std::move(vin_in)) {
    auto client = network.Connect(server.address());
    EXPECT_TRUE(client.ok());
    peer = std::move(*client);
    peer->SetReceiveHandler([this](const support::Bytes& data) {
      auto envelope = pirte::Envelope::Deserialize(data);
      if (!envelope.ok()) return;
      auto message = pirte::PirteMessage::Deserialize(envelope->message);
      if (!message.ok()) return;
      if (message->type != pirte::MessageType::kInstallPackage &&
          message->type != pirte::MessageType::kUninstall) {
        return;
      }
      if (message->type == pirte::MessageType::kInstallPackage) ++installs_seen;
      if (message->type == pirte::MessageType::kUninstall) ++uninstalls_seen;
      pirte::PirteMessage ack;
      ack.type = pirte::MessageType::kAck;
      ack.plugin_name = message->plugin_name;
      ack.ok = true;
      pirte::Envelope reply;
      reply.kind = pirte::Envelope::Kind::kPirteMessage;
      reply.vin = vin;
      reply.message = ack.Serialize();
      (void)peer->Send(reply.Serialize());
    });
    pirte::Envelope hello;
    hello.kind = pirte::Envelope::Kind::kHello;
    hello.vin = vin;
    EXPECT_TRUE(peer->Send(hello.Serialize()).ok());
    simulator.Run();
  }
};

struct ServerProperty : ::testing::Test {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  TrustedServer server{network, "srv:443"};
  UserId user = UserId::Invalid();
  std::unique_ptr<AckingVehicle> vehicle;

  void SetUp() override {
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    user = *server.CreateUser("prop");
    ASSERT_TRUE(server.BindVehicle(user, "VIN-1", "rpi-testbed").ok());
    vehicle = std::make_unique<AckingVehicle>(simulator, network, server, "VIN-1");
  }

  void Upload(const std::string& name, std::uint32_t ports = 2,
              std::vector<std::string> depends = {}) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.ports_per_plugin = ports;
    params.target_ecu = 1;
    params.depends_on = std::move(depends);
    ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());
  }

  void Deploy(const std::string& name) {
    ASSERT_TRUE(server.Deploy(user, "VIN-1", name).ok()) << name;
    simulator.Run();
    ASSERT_EQ(*server.AppState("VIN-1", name), InstallState::kInstalled) << name;
  }

  void Uninstall(const std::string& name) {
    ASSERT_TRUE(server.UninstallApp(user, "VIN-1", name).ok()) << name;
    simulator.Run();
    ASSERT_FALSE(server.AppState("VIN-1", name).ok()) << name;
  }

  /// All unique ids currently recorded for the vehicle, asserting no clash.
  std::set<std::uint8_t> CollectIds() {
    std::set<std::uint8_t> ids;
    const auto record = server.FindVehicle("VIN-1");
    EXPECT_NE(record, nullptr);
    for (const auto& installed : record->installed) {
      for (const auto& plugin : installed.plugins) {
        for (const auto& entry : plugin.pic.entries) {
          EXPECT_TRUE(ids.insert(entry.unique_id).second)
              << "id " << int(entry.unique_id) << " clashes";
        }
      }
    }
    return ids;
  }
};

// --- id allocation under churn ------------------------------------------------------

struct ChurnCase {
  int apps;
  std::uint32_t ports;
};

struct IdChurn : ServerProperty,
                 ::testing::WithParamInterface<ChurnCase> {};

TEST_P(IdChurn, IdsStayUniqueAndCompactUnderChurn) {
  const auto [apps, ports] = GetParam();
  for (int i = 0; i < apps; ++i) {
    Upload("app" + std::to_string(i), ports);
    Deploy("app" + std::to_string(i));
  }
  EXPECT_EQ(CollectIds().size(), static_cast<std::size_t>(apps) * ports);

  // Remove every second app, then add replacements: freed ids must be
  // reused (compactness) and never clash (uniqueness).
  for (int i = 0; i < apps; i += 2) Uninstall("app" + std::to_string(i));
  for (int i = 0; i < apps; i += 2) {
    Upload("new" + std::to_string(i), ports);
    Deploy("new" + std::to_string(i));
  }
  const auto ids = CollectIds();
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(apps) * ports);
  // Compactness: with full reuse the highest id is bounded by the live
  // population (ids are allocated lowest-free-first).
  EXPECT_LT(static_cast<std::size_t>(*ids.rbegin()),
            static_cast<std::size_t>(apps) * ports + ports);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IdChurn,
                         ::testing::Values(ChurnCase{2, 2}, ChurnCase{4, 4},
                                           ChurnCase{8, 2}, ChurnCase{6, 8},
                                           ChurnCase{16, 3}));

// --- dependency order ------------------------------------------------------------------

struct ChainDepth : ServerProperty, ::testing::WithParamInterface<int> {};

TEST_P(ChainDepth, ChainsDismantleOnlyInReverseOrder) {
  const int depth = GetParam();
  Upload("c0");
  Deploy("c0");
  for (int i = 1; i < depth; ++i) {
    Upload("c" + std::to_string(i), 2, {"c" + std::to_string(i - 1)});
    Deploy("c" + std::to_string(i));
  }
  // Every non-leaf uninstall is rejected while its dependent lives.
  for (int i = 0; i < depth - 1; ++i) {
    EXPECT_EQ(server.UninstallApp(user, "VIN-1", "c" + std::to_string(i)).code(),
              support::ErrorCode::kDependencyViolation)
        << "c" << i;
  }
  // Reverse order succeeds all the way down.
  for (int i = depth - 1; i >= 0; --i) Uninstall("c" + std::to_string(i));
  EXPECT_TRUE(server.InstalledApps("VIN-1").empty());
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainDepth, ::testing::Values(2, 3, 5, 8));

TEST_F(ServerProperty, DiamondDependencyNeedsBothBranchesGone) {
  Upload("base");
  Deploy("base");
  Upload("left", 2, {"base"});
  Upload("right", 2, {"base"});
  Deploy("left");
  Deploy("right");
  EXPECT_FALSE(server.UninstallApp(user, "VIN-1", "base").ok());
  Uninstall("left");
  EXPECT_FALSE(server.UninstallApp(user, "VIN-1", "base").ok());  // right remains
  Uninstall("right");
  EXPECT_TRUE(server.UninstallApp(user, "VIN-1", "base").ok());
}

// --- restore idempotence --------------------------------------------------------------------

struct RestoreCount : ServerProperty, ::testing::WithParamInterface<int> {};

TEST_P(RestoreCount, RestoreIsIdempotentAndContextPreserving) {
  const int apps = GetParam();
  for (int i = 0; i < apps; ++i) {
    Upload("app" + std::to_string(i));
    Deploy("app" + std::to_string(i));
  }
  const auto ids_before = CollectIds();
  const auto installed_before = server.InstalledApps("VIN-1");

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(server.Restore(user, "VIN-1", 1).ok());
    simulator.Run();
    EXPECT_EQ(CollectIds(), ids_before) << "round " << round;
    EXPECT_EQ(server.InstalledApps("VIN-1"), installed_before);
    for (int i = 0; i < apps; ++i) {
      EXPECT_EQ(*server.AppState("VIN-1", "app" + std::to_string(i)),
                InstallState::kInstalled);
    }
  }
  // Each restore re-pushed one package per app.
  EXPECT_EQ(vehicle->installs_seen, static_cast<std::uint64_t>(apps) * 4);
}

INSTANTIATE_TEST_SUITE_P(Counts, RestoreCount, ::testing::Values(1, 3, 8));

// --- table consistency ------------------------------------------------------------------------

TEST_F(ServerProperty, InstalledTableMatchesAckedDeploysThroughout) {
  std::set<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    const std::string name = "app" + std::to_string(i);
    Upload(name);
    Deploy(name);
    expected.insert(name);
    if (i % 3 == 2) {
      const std::string victim = "app" + std::to_string(i - 1);
      Uninstall(victim);
      expected.erase(victim);
    }
    const auto listed = server.InstalledApps("VIN-1");
    EXPECT_EQ(std::set<std::string>(listed.begin(), listed.end()), expected)
        << "after step " << i;
  }
}

TEST_F(ServerProperty, ConflictIsCheckedAgainstLiveAppsOnly) {
  Upload("peace");
  fes::SyntheticAppParams params;
  params.name = "war";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 1;
  params.conflicts_with = {"peace"};
  ASSERT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());

  Deploy("peace");
  EXPECT_EQ(server.Deploy(user, "VIN-1", "war").code(),
            support::ErrorCode::kDependencyViolation);
  Uninstall("peace");
  Deploy("war");  // conflict gone with the app
  // And the reverse direction: the live app's conflict list blocks newcomers.
  EXPECT_EQ(server.Deploy(user, "VIN-1", "peace").code(),
            support::ErrorCode::kDependencyViolation);
}

// --- randomized churn fuzz --------------------------------------------------------------------

TEST_F(ServerProperty, RandomDeployUninstallChurnKeepsIdsUniqueAndTableExact) {
  DACM_PROPERTY_RNG(rng);
  std::set<std::string> live;
  int uploaded = 0;
  for (int step = 0; step < 40; ++step) {
    SCOPED_TRACE(::testing::Message() << "step " << step);
    if (live.empty() || rng.NextBool(0.6)) {
      const std::string name = "fuzz" + std::to_string(uploaded++);
      Upload(name, /*ports=*/static_cast<std::uint32_t>(rng.NextInRange(1, 4)));
      Deploy(name);
      live.insert(name);
    } else {
      // Uninstall a uniformly random live app (no dependencies here, so
      // any order is legal).
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      Uninstall(*it);
      live.erase(it);
    }
    // Invariants after every step: recorded ids never clash (CollectIds
    // asserts that) and the installed table is exactly the live set.
    CollectIds();
    const auto record = server.FindVehicle("VIN-1");
    ASSERT_NE(record, nullptr);
    std::set<std::string> installed;
    for (const auto& app : record->installed) installed.insert(app.app_name);
    EXPECT_EQ(installed, live);
  }
}

}  // namespace
}  // namespace dacm::server
