// Unit tests for the RTE: static configuration discipline, sender-receiver
// semantics, client-server calls, connector validation, data-received
// triggers, port listeners, and remote routing over COM / CanTp.
#include <gtest/gtest.h>

#include "rte/rte.hpp"
#include "rte/system.hpp"

namespace dacm::rte {
namespace {

struct RteFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  bsw::CanIf can_if{bus, "A"};
  bsw::Com com{can_if};
  os::Os ecu_os{simulator, "A"};
  Rte rte{ecu_os, can_if, com};

  SwcId swc;
  void SetUp() override {
    auto id = rte.AddSwc("TestSwc");
    ASSERT_TRUE(id.ok());
    swc = *id;
  }

  PortId MakePort(const std::string& name, PortDirection dir,
                  PortStyle style = PortStyle::kSenderReceiver,
                  std::size_t max_len = 16) {
    PortConfig config;
    config.name = name;
    config.direction = dir;
    config.style = style;
    config.max_len = max_len;
    auto id = rte.AddPort(swc, std::move(config));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  void Finish() {
    ASSERT_TRUE(com.Init().ok());
    ASSERT_TRUE(rte.Finalize().ok());
    ASSERT_TRUE(ecu_os.StartOs().ok());
  }
};

TEST_F(RteFixture, WriteReadThroughLocalConnector) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, required).ok());
  Finish();

  EXPECT_EQ(rte.Read(required).status().code(), support::ErrorCode::kNotFound);
  const support::Bytes data = {1, 2, 3};
  ASSERT_TRUE(rte.Write(provided, data).ok());
  auto read = rte.Read(required);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(RteFixture, LastIsBestSemantics) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, required).ok());
  Finish();
  ASSERT_TRUE(rte.Write(provided, support::Bytes{1}).ok());
  ASSERT_TRUE(rte.Write(provided, support::Bytes{2}).ok());
  EXPECT_EQ((*rte.Read(required))[0], 2);
}

TEST_F(RteFixture, FanOutToMultipleReceivers) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto r1 = MakePort("r1", PortDirection::kRequired);
  auto r2 = MakePort("r2", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, r1).ok());
  ASSERT_TRUE(rte.ConnectLocal(provided, r2).ok());
  Finish();
  ASSERT_TRUE(rte.Write(provided, support::Bytes{7}).ok());
  EXPECT_EQ((*rte.Read(r1))[0], 7);
  EXPECT_EQ((*rte.Read(r2))[0], 7);
}

TEST_F(RteFixture, FreshFlagAndReadClearing) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, required).ok());
  Finish();
  EXPECT_FALSE(rte.HasFreshData(required));
  ASSERT_TRUE(rte.Write(provided, support::Bytes{5}).ok());
  EXPECT_TRUE(rte.HasFreshData(required));
  ASSERT_TRUE(rte.ReadClearing(required).ok());
  EXPECT_FALSE(rte.HasFreshData(required));
  auto again = rte.Read(required);  // plain Read keeps the value
  ASSERT_TRUE(again.ok());
}

TEST_F(RteFixture, ConnectorValidation) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  auto cs = MakePort("cs", PortDirection::kProvided, PortStyle::kClientServer);
  // Wrong directions.
  EXPECT_FALSE(rte.ConnectLocal(required, provided).ok());
  // Wrong style.
  EXPECT_FALSE(rte.ConnectLocal(cs, required).ok());
  // Truncating connector (provided wider than required).
  auto wide = MakePort("wide", PortDirection::kProvided, PortStyle::kSenderReceiver, 64);
  auto narrow =
      MakePort("narrow", PortDirection::kRequired, PortStyle::kSenderReceiver, 8);
  EXPECT_EQ(rte.ConnectLocal(wide, narrow).code(), support::ErrorCode::kIncompatible);
}

TEST_F(RteFixture, ConfigurationFrozenAfterFinalize) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  Finish();
  EXPECT_FALSE(rte.AddSwc("late").ok());
  EXPECT_FALSE(rte.ConnectLocal(provided, required).ok());
  PortConfig late;
  late.name = "late";
  EXPECT_FALSE(rte.AddPort(swc, std::move(late)).ok());
}

TEST_F(RteFixture, WriteBeforeFinalizeRejected) {
  auto provided = MakePort("p", PortDirection::kProvided);
  EXPECT_EQ(rte.Write(provided, support::Bytes{1}).code(),
            support::ErrorCode::kFailedPrecondition);
}

TEST_F(RteFixture, OversizePayloadRejected) {
  auto provided = MakePort("p", PortDirection::kProvided, PortStyle::kSenderReceiver, 4);
  Finish();
  EXPECT_EQ(rte.Write(provided, support::Bytes(5, 0)).code(),
            support::ErrorCode::kCapacityExceeded);
}

TEST_F(RteFixture, DuplicatePortNamePerSwcRejected) {
  MakePort("same", PortDirection::kProvided);
  PortConfig duplicate;
  duplicate.name = "same";
  EXPECT_EQ(rte.AddPort(swc, std::move(duplicate)).status().code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(RteFixture, FindPortAndSwc) {
  auto p = MakePort("needle", PortDirection::kProvided);
  EXPECT_EQ(*rte.FindPort(swc, "needle"), p);
  EXPECT_FALSE(rte.FindPort(swc, "nope").ok());
  EXPECT_EQ(*rte.FindSwc("TestSwc"), swc);
  EXPECT_FALSE(rte.FindSwc("nope").ok());
  EXPECT_EQ(rte.PortName(p), "needle");
}

TEST_F(RteFixture, ClientServerSynchronousCall) {
  auto server = MakePort("srv", PortDirection::kProvided, PortStyle::kClientServer);
  auto client = MakePort("cli", PortDirection::kRequired, PortStyle::kClientServer);
  ASSERT_TRUE(rte.ConnectClientServer(client, server).ok());
  ASSERT_TRUE(rte.RegisterServerHandler(server, [](std::span<const std::uint8_t> req)
                                            -> support::Result<support::Bytes> {
    support::Bytes response(req.begin(), req.end());
    std::reverse(response.begin(), response.end());
    return response;
  }).ok());
  Finish();
  auto response = rte.Call(client, support::Bytes{1, 2, 3});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, (support::Bytes{3, 2, 1}));
}

TEST_F(RteFixture, CallOnUnconnectedClientFails) {
  auto client = MakePort("cli", PortDirection::kRequired, PortStyle::kClientServer);
  Finish();
  EXPECT_EQ(rte.Call(client, support::Bytes{}).status().code(),
            support::ErrorCode::kFailedPrecondition);
}

TEST_F(RteFixture, CallWithoutHandlerFails) {
  auto server = MakePort("srv", PortDirection::kProvided, PortStyle::kClientServer);
  auto client = MakePort("cli", PortDirection::kRequired, PortStyle::kClientServer);
  ASSERT_TRUE(rte.ConnectClientServer(client, server).ok());
  Finish();
  EXPECT_EQ(rte.Call(client, support::Bytes{}).status().code(),
            support::ErrorCode::kUnavailable);
}

TEST_F(RteFixture, ServerHandlerCanReturnError) {
  auto server = MakePort("srv", PortDirection::kProvided, PortStyle::kClientServer);
  auto client = MakePort("cli", PortDirection::kRequired, PortStyle::kClientServer);
  ASSERT_TRUE(rte.ConnectClientServer(client, server).ok());
  ASSERT_TRUE(rte.RegisterServerHandler(
                     server, [](std::span<const std::uint8_t>)
                                 -> support::Result<support::Bytes> {
                       return support::InvalidArgument("bad request");
                     })
                  .ok());
  Finish();
  EXPECT_EQ(rte.Call(client, support::Bytes{}).status().code(),
            support::ErrorCode::kInvalidArgument);
}

TEST_F(RteFixture, DataReceivedTriggerActivatesRunnable) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, required).ok());
  int runs = 0;
  RunnableConfig runnable;
  runnable.name = "onData";
  runnable.body = [&]() { ++runs; };
  auto rid = rte.AddRunnable(swc, std::move(runnable));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(rte.TriggerOnDataReceived(*rid, required).ok());
  Finish();
  ASSERT_TRUE(rte.Write(provided, support::Bytes{1}).ok());
  simulator.Run();
  EXPECT_EQ(runs, 1);
  ASSERT_TRUE(rte.Write(provided, support::Bytes{2}).ok());
  simulator.Run();
  EXPECT_EQ(runs, 2);
}

TEST_F(RteFixture, PeriodicRunnableRunsOnSchedule) {
  int runs = 0;
  RunnableConfig runnable;
  runnable.name = "periodic";
  runnable.period = 10 * sim::kMillisecond;
  runnable.body = [&]() { ++runs; };
  ASSERT_TRUE(rte.AddRunnable(swc, std::move(runnable)).ok());
  Finish();
  simulator.RunFor(35 * sim::kMillisecond);
  EXPECT_EQ(runs, 3);
}

TEST_F(RteFixture, PortListenerFiresSynchronously) {
  auto provided = MakePort("p", PortDirection::kProvided);
  auto required = MakePort("r", PortDirection::kRequired);
  ASSERT_TRUE(rte.ConnectLocal(provided, required).ok());
  support::Bytes seen;
  ASSERT_TRUE(rte.SetPortListener(required, [&](std::span<const std::uint8_t> data) {
    seen.assign(data.begin(), data.end());
  }).ok());
  Finish();
  ASSERT_TRUE(rte.Write(provided, support::Bytes{9, 9}).ok());
  // No simulator run needed: listeners are synchronous middleware hooks.
  EXPECT_EQ(seen, (support::Bytes{9, 9}));
}

// --- cross-ECU routing -----------------------------------------------------------------

struct TwoEcuFixture : ::testing::Test {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  bsw::CanIf can_if_a{bus, "A"}, can_if_b{bus, "B"};
  bsw::Com com_a{can_if_a}, com_b{can_if_b};
  os::Os os_a{simulator, "A"}, os_b{simulator, "B"};
  Rte rte_a{os_a, can_if_a, com_a}, rte_b{os_b, can_if_b, com_b};
  SwcId swc_a, swc_b;
  PortId provided, required;

  void SetUp() override {
    swc_a = *rte_a.AddSwc("S");
    swc_b = *rte_b.AddSwc("R");
    PortConfig p;
    p.name = "out";
    p.direction = PortDirection::kProvided;
    p.max_len = 4;
    provided = *rte_a.AddPort(swc_a, std::move(p));
    PortConfig r;
    r.name = "in";
    r.direction = PortDirection::kRequired;
    r.max_len = 256;
    required = *rte_b.AddPort(swc_b, std::move(r));
  }

  void Finish() {
    ASSERT_TRUE(com_a.Init().ok());
    ASSERT_TRUE(com_b.Init().ok());
    ASSERT_TRUE(rte_a.Finalize().ok());
    ASSERT_TRUE(rte_b.Finalize().ok());
    ASSERT_TRUE(os_a.StartOs().ok());
    ASSERT_TRUE(os_b.StartOs().ok());
  }
};

TEST_F(TwoEcuFixture, RemoteSenderReceiverOverCom) {
  ASSERT_TRUE(ConnectRemoteSenderReceiver(rte_a, com_a, provided, rte_b, com_b,
                                          required, "route", 0x150, 4)
                  .ok());
  Finish();
  ASSERT_TRUE(rte_a.Write(provided, support::Bytes{1, 2, 3, 4}).ok());
  simulator.Run();
  auto value = rte_b.Read(required);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, (support::Bytes{1, 2, 3, 4}));
}

TEST_F(TwoEcuFixture, RemoteVariableSizeOverCanTp) {
  ASSERT_TRUE(ConnectRemoteTp(rte_a, provided, rte_b, required, 0x160).ok());
  // CanTp routes carry variable sizes; widen the provided port.
  Finish();
  ASSERT_TRUE(rte_a.Write(provided, support::Bytes{42}).ok());
  simulator.Run();
  auto small = rte_b.Read(required);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ((*small)[0], 42);
}

TEST_F(TwoEcuFixture, RemoteDeliveryTriggersRunnable) {
  ASSERT_TRUE(ConnectRemoteSenderReceiver(rte_a, com_a, provided, rte_b, com_b,
                                          required, "route", 0x150, 4)
                  .ok());
  int runs = 0;
  RunnableConfig runnable;
  runnable.name = "onRemote";
  runnable.body = [&]() { ++runs; };
  auto rid = rte_b.AddRunnable(swc_b, std::move(runnable));
  ASSERT_TRUE(rte_b.TriggerOnDataReceived(*rid, required).ok());
  Finish();
  ASSERT_TRUE(rte_a.Write(provided, support::Bytes{0, 0, 0, 1}).ok());
  simulator.Run();
  EXPECT_EQ(runs, 1);
}

TEST_F(TwoEcuFixture, CanIdAllocatorHandsOutDistinctIds) {
  CanIdAllocator allocator(0x100);
  EXPECT_EQ(allocator.Allocate(), 0x100u);
  EXPECT_EQ(allocator.Allocate(), 0x101u);
  EXPECT_EQ(allocator.Allocate(), 0x102u);
}

}  // namespace
}  // namespace dacm::rte
