// Unit tests for the OSEK-flavoured OS kernel: static task configuration,
// priority dispatch, activation limits, alarms, events, resources, hooks.
#include <gtest/gtest.h>

#include "os/os.hpp"

namespace dacm::os {
namespace {

struct OsFixture : ::testing::Test {
  sim::Simulator simulator;
  Os ecu_os{simulator, "ECU"};
  std::vector<std::string> trace;

  TaskId MakeTask(const std::string& name, std::uint8_t priority,
                  std::uint8_t max_activations = 1,
                  sim::SimTime exec = 10 * sim::kMicrosecond,
                  TaskKind kind = TaskKind::kBasic) {
    TaskConfig config;
    config.name = name;
    config.kind = kind;
    config.priority = priority;
    config.max_activations = max_activations;
    config.execution_time = exec;
    config.body = [this, name](EventMask events) {
      trace.push_back(name + (events ? "+" + std::to_string(events) : ""));
    };
    auto id = ecu_os.CreateTask(std::move(config));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }
};

TEST_F(OsFixture, ConfigurationFrozenAfterStart) {
  MakeTask("t", 1);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  TaskConfig late;
  late.name = "late";
  late.body = [](EventMask) {};
  EXPECT_EQ(ecu_os.CreateTask(std::move(late)).status().code(),
            support::ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(ecu_os.CreateResource("r", 1).ok());
  EXPECT_EQ(ecu_os.StartOs().code(), support::ErrorCode::kFailedPrecondition);
}

TEST_F(OsFixture, DuplicateTaskNameRejected) {
  MakeTask("same", 1);
  TaskConfig duplicate;
  duplicate.name = "same";
  duplicate.body = [](EventMask) {};
  EXPECT_EQ(ecu_os.CreateTask(std::move(duplicate)).status().code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(OsFixture, ActivateBeforeStartFails) {
  auto task = MakeTask("t", 1);
  EXPECT_EQ(ecu_os.ActivateTask(task).code(),
            support::ErrorCode::kFailedPrecondition);
}

TEST_F(OsFixture, HigherPriorityDispatchesFirst) {
  auto low = MakeTask("low", 1);
  auto high = MakeTask("high", 9);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.ActivateTask(low).ok());
  ASSERT_TRUE(ecu_os.ActivateTask(high).ok());
  simulator.Run();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], "high");
  EXPECT_EQ(trace[1], "low");
}

TEST_F(OsFixture, CpuBusyDelaysNextDispatch) {
  auto a = MakeTask("a", 5, 1, 100 * sim::kMicrosecond);
  auto b = MakeTask("b", 1, 1, 10 * sim::kMicrosecond);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.ActivateTask(a).ok());
  ASSERT_TRUE(ecu_os.ActivateTask(b).ok());
  simulator.Run();
  // b runs only after a's 100us execution window.
  EXPECT_GE(simulator.Now(), 100u);
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b"}));
}

TEST_F(OsFixture, ActivationLimitEnforced) {
  auto task = MakeTask("t", 1, /*max_activations=*/2);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  EXPECT_TRUE(ecu_os.ActivateTask(task).ok());
  EXPECT_TRUE(ecu_os.ActivateTask(task).ok());
  EXPECT_EQ(ecu_os.ActivateTask(task).code(),
            support::ErrorCode::kResourceExhausted);  // E_OS_LIMIT
  simulator.Run();
  EXPECT_EQ(ecu_os.task_activations(task), 2u);
}

TEST_F(OsFixture, ErrorHookSeesLimitViolation) {
  auto task = MakeTask("t", 1, 1);
  std::vector<support::ErrorCode> hook_codes;
  ecu_os.SetErrorHook([&](const support::Status& s) { hook_codes.push_back(s.code()); });
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.ActivateTask(task).ok());
  (void)ecu_os.ActivateTask(task);
  ASSERT_EQ(hook_codes.size(), 1u);
  EXPECT_EQ(hook_codes[0], support::ErrorCode::kResourceExhausted);
}

TEST_F(OsFixture, EventsDeliveredToExtendedTask) {
  auto task = MakeTask("ext", 3, 1, 10, TaskKind::kExtended);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.SetEvent(task, 0x5).ok());
  simulator.Run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0], "ext+5");
}

TEST_F(OsFixture, EventsAccumulateUntilDispatch) {
  auto task = MakeTask("ext", 3, 1, 10, TaskKind::kExtended);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.SetEvent(task, 0x1).ok());
  ASSERT_TRUE(ecu_os.SetEvent(task, 0x4).ok());
  simulator.Run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0], "ext+5");  // both bits in one activation
}

TEST_F(OsFixture, SetEventOnBasicTaskRejected) {
  auto task = MakeTask("basic", 1);
  ASSERT_TRUE(ecu_os.StartOs().ok());
  EXPECT_EQ(ecu_os.SetEvent(task, 1).code(), support::ErrorCode::kInvalidArgument);
}

TEST_F(OsFixture, PeriodicAlarmActivatesTask) {
  auto task = MakeTask("periodic", 1, 3);
  auto alarm = ecu_os.CreateTaskAlarm("alarm", task, 100, 100);
  ASSERT_TRUE(alarm.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(350);
  EXPECT_EQ(ecu_os.task_activations(task), 3u);  // t=100,200,300
}

TEST_F(OsFixture, OneShotAlarmFiresOnce) {
  auto task = MakeTask("oneshot", 1, 3);
  ASSERT_TRUE(ecu_os.CreateTaskAlarm("alarm", task, 50, 0).ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(1000);
  EXPECT_EQ(ecu_os.task_activations(task), 1u);
}

TEST_F(OsFixture, CancelAlarmStopsFiring) {
  auto task = MakeTask("t", 1, 5);
  auto alarm = ecu_os.CreateTaskAlarm("alarm", task, 100, 100);
  ASSERT_TRUE(alarm.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(250);  // fires at 100, 200
  ASSERT_TRUE(ecu_os.CancelAlarm(*alarm).ok());
  simulator.RunUntil(1000);
  EXPECT_EQ(ecu_os.task_activations(task), 2u);
}

TEST_F(OsFixture, SetRelAlarmReArms) {
  auto task = MakeTask("t", 1, 5);
  auto alarm = ecu_os.CreateTaskAlarm("alarm", task, 100, 0);
  ASSERT_TRUE(alarm.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(200);
  EXPECT_EQ(ecu_os.task_activations(task), 1u);
  ASSERT_TRUE(ecu_os.SetRelAlarm(*alarm, 100, 0).ok());
  simulator.RunUntil(400);
  EXPECT_EQ(ecu_os.task_activations(task), 2u);
}

TEST_F(OsFixture, CallbackAlarmRuns) {
  int fired = 0;
  ASSERT_TRUE(ecu_os.CreateCallbackAlarm("cb", [&]() { ++fired; }, 10, 10).ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(55);
  EXPECT_EQ(fired, 5);
}

TEST_F(OsFixture, EventAlarmSetsEvents) {
  auto task = MakeTask("ext", 1, 3, 10, TaskKind::kExtended);
  ASSERT_TRUE(ecu_os.CreateEventAlarm("ev", task, 0x2, 100, 0).ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  simulator.RunUntil(200);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0], "ext+2");
}

TEST_F(OsFixture, EventAlarmRequiresExtendedTask) {
  auto task = MakeTask("basic", 1);
  EXPECT_EQ(ecu_os.CreateEventAlarm("ev", task, 1, 10, 0).status().code(),
            support::ErrorCode::kInvalidArgument);
}

TEST_F(OsFixture, ResourcesFollowLifoProtocol) {
  auto r1 = ecu_os.CreateResource("r1", 5);
  auto r2 = ecu_os.CreateResource("r2", 6);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.GetResource(*r1).ok());
  ASSERT_TRUE(ecu_os.GetResource(*r2).ok());
  // Releasing r1 while r2 is held violates LIFO.
  EXPECT_EQ(ecu_os.ReleaseResource(*r1).code(),
            support::ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(ecu_os.ReleaseResource(*r2).ok());
  ASSERT_TRUE(ecu_os.ReleaseResource(*r1).ok());
}

TEST_F(OsFixture, DoubleAcquireRejected) {
  auto r = ecu_os.CreateResource("r", 5);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(ecu_os.GetResource(*r).ok());
  EXPECT_EQ(ecu_os.GetResource(*r).code(), support::ErrorCode::kFailedPrecondition);
}

TEST_F(OsFixture, FindTaskByName) {
  auto task = MakeTask("needle", 1);
  auto found = ecu_os.FindTask("needle");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, task);
  EXPECT_FALSE(ecu_os.FindTask("haystack").ok());
}

TEST_F(OsFixture, TwoOsInstancesShareSimulatorIndependently) {
  Os other(simulator, "ECU2");
  auto t1 = MakeTask("t1", 1);
  TaskConfig config;
  config.name = "t2";
  config.body = [this](EventMask) { trace.push_back("t2"); };
  auto t2 = other.CreateTask(std::move(config));
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(ecu_os.StartOs().ok());
  ASSERT_TRUE(other.StartOs().ok());
  ASSERT_TRUE(ecu_os.ActivateTask(t1).ok());
  ASSERT_TRUE(other.ActivateTask(*t2).ok());
  simulator.Run();
  EXPECT_EQ(trace.size(), 2u);  // both ran; separate CPUs don't contend
}

}  // namespace
}  // namespace dacm::os
