// Telemetry core: the metrics registry (counters, gauges, log2
// histograms, Prometheus/JSON exports) and the sim-time tracer (bounded
// per-lane rings, Chrome trace-event export).
//
// The two integration bars from the observability PR:
//   * two identically seeded 1k-vehicle faulted campaigns (offline churn
//     + link flaps) must export byte-identical Chrome traces — the trace
//     stream carries sim-time only, never wall clock;
//   * a recovery run's trace holds exactly one `recovery.replay` span
//     whose record counts match the replayed log.
//
// The parallel-lane PR re-runs the faulted-campaign bar on the lane
// engine: the conservative windows preserve sim-time semantics exactly,
// so the fleet fingerprint must match across lane counts, and at a fixed
// lane count the trace (now carrying sim.window / sim.barrier events)
// must still be byte-identical between seeded runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fes/appgen.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "server/campaign.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"
#include "support/metrics.hpp"
#include "support/storage.hpp"
#include "support/trace.hpp"
#include "test_util.hpp"

namespace dacm {
namespace {

using support::Histogram;
using support::Metrics;
using support::Tracer;

std::size_t CountOccurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t at = text.find(what); at != std::string::npos;
       at = text.find(what, at + what.size())) {
    ++count;
  }
  return count;
}

// --- metrics ---------------------------------------------------------------------

TEST(MetricsTest, RegistryInternsByNameAndKeepsReferencesStable) {
  auto& registry = Metrics::Instance();
  support::Counter& a = registry.GetCounter("telemetry_test_interned_total");
  support::Counter& b = registry.GetCounter("telemetry_test_interned_total");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Inc();
  a.Inc(41);
  EXPECT_EQ(b.Value(), 42u);

  support::Gauge& gauge = registry.GetGauge("telemetry_test_gauge");
  gauge.Set(-7);
  gauge.Add(3);
  EXPECT_EQ(gauge.Value(), -4);
}

TEST(MetricsTest, HistogramLog2BucketsHoldExactRanges) {
  Histogram h;
  h.Observe(0);    // bucket 0: exactly the value 0
  h.Observe(1);    // bucket 1: [1, 1]
  h.Observe(2);    // bucket 2: [2, 3]
  h.Observe(3);
  h.Observe(1024); // bucket 11: [1024, 2047]
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1030u);
  EXPECT_EQ(h.Max(), 1024u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(11), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(11), 2047u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~std::uint64_t{0});
}

TEST(MetricsTest, QuantilesInterpolateAndClampToObservedMax) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Observe(10);
  h.Observe(1000);
  // p50 lands in the [8, 15] bucket holding the 99 tens.
  EXPECT_GE(h.Quantile(0.5), 8.0);
  EXPECT_LE(h.Quantile(0.5), 15.0);
  // The top rank lands in [512, 1023] but is clamped to the exact max.
  EXPECT_LE(h.Quantile(1.0), 1000.0);
  EXPECT_GT(h.Quantile(1.0), 512.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(MetricsTest, ExpositionAndJsonCarryEveryFamily) {
  auto& registry = Metrics::Instance();
  registry.GetCounter("telemetry_test_expo_total").Reset();
  registry.GetCounter("telemetry_test_expo_total").Inc(3);
  registry.GetGauge("telemetry_test_expo_gauge").Set(-2);
  Histogram& h = registry.GetHistogram("telemetry_test_expo_us");
  h.Reset();
  h.Observe(5);
  h.Observe(6);

  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE telemetry_test_expo_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_test_expo_total 3"), std::string::npos);
  EXPECT_NE(text.find("telemetry_test_expo_gauge -2"), std::string::npos);
  // Both observations live in the [4, 7] bucket; the cumulative +Inf
  // bucket and the _count line must agree.
  EXPECT_NE(text.find("telemetry_test_expo_us_bucket{le=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_test_expo_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("telemetry_test_expo_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("telemetry_test_expo_us_sum 11"), std::string::npos);

  const std::string json = registry.Json();
  EXPECT_NE(json.find("\"telemetry_test_expo_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry_test_expo_gauge\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"telemetry_test_expo_us\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// --- tracer ----------------------------------------------------------------------

TEST(TracerTest, ExportIsStableAndCarriesArgs) {
  auto& tracer = Tracer::Instance();
  tracer.Enable(/*events_per_lane=*/64);
  tracer.Span(0, "unit.span", "test", /*ts_us=*/100, /*dur_us=*/50,
              {"events", 7});
  tracer.Instant(1, "unit.instant", "test", /*ts_us=*/120, {"acks", 3}, {},
                 {}, "vin", "VIN-1");
  const std::string a = tracer.ChromeJson();
  const std::string b = tracer.ChromeJson();
  tracer.Disable();
  EXPECT_EQ(a, b);  // export is a pure read
  EXPECT_NE(a.find("\"name\":\"unit.span\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\":\"X\",\"ts\":100,\"dur\":50"), std::string::npos);
  EXPECT_NE(a.find("\"events\":7"), std::string::npos);
  EXPECT_NE(a.find("\"ph\":\"i\",\"ts\":120,\"s\":\"t\""), std::string::npos);
  EXPECT_NE(a.find("\"vin\":\"VIN-1\""), std::string::npos);
  // Lane metadata names the sim thread and the first shard worker.
  EXPECT_NE(a.find("\"args\":{\"name\":\"sim\"}"), std::string::npos);
  EXPECT_NE(a.find("\"args\":{\"name\":\"shard-0\"}"), std::string::npos);
}

TEST(TracerTest, RingWrapKeepsNewestEventsAndCountsDrops) {
  auto& tracer = Tracer::Instance();
  tracer.Enable(/*events_per_lane=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.Instant(0, "wrap", "test", /*ts_us=*/i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::string json = tracer.ChromeJson();
  tracer.Disable();
  EXPECT_EQ(json.find("\"ts\":5,"), std::string::npos);  // oldest overwritten
  EXPECT_NE(json.find("\"ts\":6,"), std::string::npos);  // newest four kept
  EXPECT_NE(json.find("\"ts\":9,"), std::string::npos);
}

TEST(TracerTest, DisabledTracerEmitsNothing) {
  auto& tracer = Tracer::Instance();
  tracer.Enable(/*events_per_lane=*/8);
  tracer.Disable();
  tracer.Span(0, "dead.span", "test", 1, 1);
  tracer.Instant(0, "dead.instant", "test", 2);
  EXPECT_EQ(tracer.size(), 0u);
}

// --- integration ------------------------------------------------------------------

/// A campaign world mirroring the bench fixture: sharded server, scripted
/// fleet, retrying engine.  1 µs links keep the 1k-vehicle runs cheap.
struct TelemetryRig {
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::TrustedServer server;
  server::CampaignEngine engine{simulator, server};
  server::UserId user = server::UserId::Invalid();
  std::unique_ptr<fes::ScriptedFleet> fleet;

  explicit TelemetryRig(std::size_t vehicles, std::size_t shards = 4,
                        support::RecordSink* status_sink = nullptr,
                        std::size_t lanes = 1)
      : server(network, "srv:443",
               server::ServerOptions{shards, status_sink}) {
    if (lanes > 1) {
      sim::LaneOptions lane_options;
      lane_options.lanes = lanes;
      // Real workers regardless of the core count — the TSan job replays
      // this rig at lanes=4.  The window lookahead comes from the
      // network's 1 µs latency clamp.
      lane_options.threads = lanes - 1;
      simulator.ConfigureLanes(lane_options);
    }
    EXPECT_TRUE(server.Start().ok());
    EXPECT_TRUE(server.UploadVehicleModel(fes::MakeRpiTestbedConf()).ok());
    user = *server.CreateUser("ops");
    fes::ScriptedFleetOptions options;
    options.vehicle_count = vehicles;
    fleet = std::make_unique<fes::ScriptedFleet>(simulator, network, server,
                                                 options);
    EXPECT_TRUE(fleet->BindAndConnect(user).ok());
  }

  void UploadApp(const std::string& name) {
    fes::SyntheticAppParams params;
    params.name = name;
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = 2;
    params.target_ecu = 1;
    EXPECT_TRUE(server.UploadApp(fes::MakeSyntheticApp(params)).ok());
  }
};

server::RetryPolicy RetryFast() {
  server::RetryPolicy policy;
  policy.max_waves = 8;
  policy.settle_delay = 50 * sim::kMillisecond;
  policy.initial_backoff = 200 * sim::kMillisecond;
  policy.max_backoff = 2 * sim::kSecond;
  return policy;
}

struct FaultedCampaignResult {
  std::string trace;           // Chrome trace export
  std::uint64_t fingerprint;   // terminal server-side fleet state
};

/// One seeded 1k-vehicle faulted campaign (20% offline churn + two link
/// flaps) run under an enabled tracer at `lanes` simulator lanes.
FaultedCampaignResult SeededFaultedCampaignTrace(std::size_t lanes) {
  auto& tracer = Tracer::Instance();
  tracer.Enable(/*events_per_lane=*/1u << 15);
  FaultedCampaignResult result;
  {
    TelemetryRig rig(/*vehicles=*/1000, /*shards=*/4, nullptr, lanes);
    rig.UploadApp("maps");
    rig.fleet->MarkCampaignEpoch();
    sim::FaultScenario faults(rig.simulator, rig.network, /*seed=*/0x7E1E);
    faults.AddOfflineChurn(*rig.fleet, 0.2, /*horizon=*/0,
                           100 * sim::kMillisecond, 400 * sim::kMillisecond);
    faults.AddRandomLinkFlaps(2, 600 * sim::kMillisecond,
                              20 * sim::kMillisecond, 80 * sim::kMillisecond);
    auto id = rig.engine.StartDeploy(rig.user, "maps", rig.fleet->vins(),
                                     RetryFast());
    EXPECT_TRUE(id.ok());
    rig.simulator.Run();
    EXPECT_TRUE(rig.engine.Finished(*id));
    EXPECT_EQ(rig.engine.Snapshot(*id)->status,
              server::CampaignStatus::kConverged);
    EXPECT_EQ(tracer.dropped(), 0u);
    result.trace = tracer.ChromeJson();
    result.fingerprint = rig.server.FleetFingerprint();
  }
  tracer.Disable();
  return result;
}

TEST(TelemetryIntegrationTest, SeededFaultedCampaignTracesAreByteIdentical) {
  // DACM_SIM_LANES (the TSan CI job exports 4) replays this bar on the
  // parallel engine.
  const std::size_t lanes = testutil::LanesFromEnvOr(1);
  const FaultedCampaignResult first = SeededFaultedCampaignTrace(lanes);
  const FaultedCampaignResult second = SeededFaultedCampaignTrace(lanes);
  ASSERT_FALSE(first.trace.empty());
  // The flight recorder covers every layer: the campaign track, the wave
  // instants, per-vehicle round trips on the shard lanes, ack flushes and
  // the sim run span.
  EXPECT_NE(first.trace.find("\"name\":\"campaign.run\""), std::string::npos);
  EXPECT_NE(first.trace.find("\"name\":\"campaign.wave\""), std::string::npos);
  EXPECT_NE(first.trace.find("\"name\":\"deploy.roundtrip\""),
            std::string::npos);
  EXPECT_NE(first.trace.find("\"name\":\"ack.flush\""), std::string::npos);
  EXPECT_NE(first.trace.find("\"name\":\"sim.run\""), std::string::npos);
  // The determinism contract: sim-time-only payloads make two identically
  // seeded runs export byte-identical traces.
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  // Converged vehicle-side deliveries feed the time-to-install histogram.
  EXPECT_GE(Metrics::Instance()
                .GetHistogram("dacm_fleet_time_to_install_us")
                .Count(),
            1000u);
}

TEST(TelemetryIntegrationTest, SeededFaultedCampaignDeterministicAtFourLanes) {
  const FaultedCampaignResult first = SeededFaultedCampaignTrace(4);
  const FaultedCampaignResult second = SeededFaultedCampaignTrace(4);
  ASSERT_FALSE(first.trace.empty());
  // The lane engine adds its own flight-recorder tracks: per-lane
  // conservative-window spans and merge-barrier instants.
  EXPECT_NE(first.trace.find("\"name\":\"sim.window\""), std::string::npos);
  EXPECT_NE(first.trace.find("\"name\":\"sim.barrier\""), std::string::npos);
  // Byte-identical at a fixed lane count: window composition is a pure
  // function of sim state, and window spans carry sim time only.
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
}

TEST(TelemetryIntegrationTest,
     SeededFaultedCampaignFingerprintMatchesAcrossLaneCounts) {
  // Conservative windows never reorder same-timestamp work across the
  // serial ordering key, so the terminal fleet state cannot depend on the
  // lane count.
  const std::uint64_t serial = SeededFaultedCampaignTrace(1).fingerprint;
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(SeededFaultedCampaignTrace(lanes).fingerprint, serial)
        << "lanes=" << lanes;
  }
}

TEST(TelemetryIntegrationTest, RecoveryTraceHasExactlyOneReplaySpan) {
  support::MemorySink status_log;
  {
    TelemetryRig rig(/*vehicles=*/64, /*shards=*/4, &status_log);
    rig.UploadApp("maps");
    auto report = rig.server.DeployCampaign(rig.user, "maps",
                                            rig.fleet->vins());
    ASSERT_TRUE(report.ok());
    rig.simulator.Run();
    ASSERT_EQ(*rig.server.AppState(rig.fleet->vins().back(), "maps"),
              server::InstallState::kInstalled);
  }  // the crash: the server dies, the log survives

  auto& tracer = Tracer::Instance();
  tracer.Enable(/*events_per_lane=*/1u << 12);
  sim::Simulator simulator;
  sim::Network network{simulator, sim::kMicrosecond};
  server::ServerOptions options;
  options.shard_count = 4;
  server::TrustedServer fresh(network, "srv-recovered:1", options);
  ASSERT_TRUE(fresh.RecoverInstallDb(status_log.bytes()).ok());
  const std::string json = tracer.ChromeJson();
  tracer.Disable();

  EXPECT_EQ(CountOccurrences(json, "\"name\":\"recovery.replay\""), 1u);
  // One live paragraph, one rebuilt row and one catalog binding per
  // vehicle.
  EXPECT_NE(json.find("\"paragraphs\":64"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":64"), std::string::npos);
  EXPECT_NE(json.find("\"catalog_bindings\":64"), std::string::npos);
}

TEST(TelemetryIntegrationTest, ServerCountersFoldIntoRegistry) {
  auto& registry = Metrics::Instance();
  TelemetryRig rig(/*vehicles=*/16);
  rig.UploadApp("maps");
  auto report = rig.server.DeployCampaign(rig.user, "maps",
                                          rig.fleet->vins());
  ASSERT_TRUE(report.ok());
  rig.simulator.Run();

  // The ack-flush barrier folded the per-shard aggregates into the
  // registry: the exported counters agree with the accessor snapshot.
  const auto stats = rig.server.stats();
  EXPECT_EQ(registry.GetCounter("dacm_server_deploys_ok_total").Value(),
            stats.deploys_ok);
  EXPECT_EQ(registry.GetCounter("dacm_server_acks_received_total").Value(),
            stats.acks_received);
  EXPECT_EQ(stats.deploys_ok, 16u);
  EXPECT_GE(registry.GetHistogram("dacm_deploy_roundtrip_us").Count(), 16u);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("dacm_server_deploys_ok_total"), std::string::npos);
  EXPECT_NE(text.find("dacm_sim_events_total"), std::string::npos);
}

}  // namespace
}  // namespace dacm
