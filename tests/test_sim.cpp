// Unit tests for the simulation substrate: event kernel, CAN bus model,
// network channels, deterministic RNG.
#include <gtest/gtest.h>

#include "sim/can_bus.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace dacm::sim {
namespace {

// --- Simulator ------------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&]() { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30u);
}

TEST(SimulatorTest, EqualTimestampsFireFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(10, [&]() { ++fired; });
  simulator.ScheduleAt(20, [&]() { ++fired; });
  simulator.ScheduleAt(21, [&]() { ++fired; });
  simulator.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now(), 20u);
  simulator.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeEvenWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(500);
  EXPECT_EQ(simulator.Now(), 500u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator simulator;
  int depth = 0;
  simulator.ScheduleAt(1, [&]() {
    ++depth;
    simulator.ScheduleAfter(1, [&]() { ++depth; });
  });
  simulator.Run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(simulator.Now(), 2u);
}

TEST(SimulatorTest, LateSchedulingClampsToNow) {
  Simulator simulator;
  SimTime seen = 12345;
  simulator.ScheduleAt(100, [&]() {
    simulator.ScheduleAt(50, [&]() { seen = simulator.Now(); });  // in the past
  });
  simulator.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, RunLimitBoundsEventCount) {
  Simulator simulator;
  int fired = 0;
  for (int i = 0; i < 10; ++i) simulator.ScheduleAt(i, [&]() { ++fired; });
  EXPECT_EQ(simulator.Run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(simulator.PendingEvents(), 6u);
}

// --- CAN bus -----------------------------------------------------------------------

struct BusFixture : ::testing::Test {
  Simulator simulator;
  CanBus bus{simulator, 500'000};
  std::vector<std::pair<CanNodeId, CanFrame>> received;

  CanNodeId Attach(const std::string& name) {
    const CanNodeId id = bus.AttachNode(
        name, [this, idx = next_idx_](const CanFrame& f) {
          received.emplace_back(idx, f);
        });
    ++next_idx_;
    return id;
  }

  static CanFrame Frame(std::uint32_t can_id, std::initializer_list<std::uint8_t> data) {
    CanFrame frame;
    frame.can_id = can_id;
    frame.dlc = static_cast<std::uint8_t>(data.size());
    std::size_t i = 0;
    for (std::uint8_t b : data) frame.data[i++] = b;
    return frame;
  }

 private:
  CanNodeId next_idx_ = 0;
};

TEST_F(BusFixture, BroadcastExcludesSender) {
  auto a = Attach("a");
  Attach("b");
  Attach("c");
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {1, 2, 3})).ok());
  simulator.Run();
  ASSERT_EQ(received.size(), 2u);  // b and c, not a
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[1].first, 2u);
  EXPECT_EQ(received[0].second.data[2], 3);
}

TEST_F(BusFixture, LowerIdWinsArbitration) {
  auto a = Attach("a");
  auto b = Attach("b");
  Attach("sink");
  // Queue both before running: the lower identifier must transmit first.
  ASSERT_TRUE(bus.Send(a, Frame(0x300, {1})).ok());
  ASSERT_TRUE(bus.Send(b, Frame(0x100, {2})).ok());
  simulator.Run(1);  // only the first transmission completes
  // Once the 0x300 frame grabbed the idle bus it finishes, but every send
  // after that point arbitrates: queue two more while busy.
  received.clear();
  ASSERT_TRUE(bus.Send(a, Frame(0x250, {3})).ok());
  ASSERT_TRUE(bus.Send(b, Frame(0x110, {4})).ok());
  simulator.Run();
  std::vector<std::uint32_t> sink_ids;
  for (const auto& [node, frame] : received) {
    if (node == 2) sink_ids.push_back(frame.can_id);
  }
  ASSERT_GE(sink_ids.size(), 2u);
  // 0x110 must beat 0x250.
  auto it_110 = std::find(sink_ids.begin(), sink_ids.end(), 0x110u);
  auto it_250 = std::find(sink_ids.begin(), sink_ids.end(), 0x250u);
  ASSERT_NE(it_110, sink_ids.end());
  ASSERT_NE(it_250, sink_ids.end());
  EXPECT_LT(it_110 - sink_ids.begin(), it_250 - sink_ids.begin());
}

TEST_F(BusFixture, RejectsMalformedFrames) {
  auto a = Attach("a");
  CanFrame too_long;
  too_long.can_id = 1;
  too_long.dlc = 9;
  EXPECT_FALSE(bus.Send(a, too_long).ok());
  CanFrame bad_id;
  bad_id.can_id = 0x800;  // 12 bits
  bad_id.dlc = 1;
  EXPECT_FALSE(bus.Send(a, bad_id).ok());
  EXPECT_FALSE(bus.Send(999, Frame(1, {})).ok());
}

TEST_F(BusFixture, FrameTimeScalesWithPayloadAndBitrate) {
  const SimTime t0 = bus.FrameTime(0);
  const SimTime t8 = bus.FrameTime(8);
  EXPECT_GT(t8, t0);
  // 8 data bytes at 500 kbit/s with stuffing: on the order of 200-300 us.
  EXPECT_GT(t8, 150u);
  EXPECT_LT(t8, 400u);
  CanBus slow_bus(simulator, 125'000);
  EXPECT_GT(slow_bus.FrameTime(8), t8);
}

TEST_F(BusFixture, DropRateLosesFrames) {
  auto a = Attach("a");
  Attach("b");
  bus.SetDropRate(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Send(a, Frame(0x100, {static_cast<std::uint8_t>(i)})).ok());
  }
  simulator.Run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(bus.frames_dropped(), 10u);
  EXPECT_EQ(bus.frames_transmitted(), 10u);
}

TEST_F(BusFixture, CorruptionFlipsOneBitAndFlagsFrame) {
  auto a = Attach("a");
  Attach("b");
  bus.SetCorruptRate(1.0);
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {0x00, 0x00, 0x00, 0x00})).ok());
  simulator.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_TRUE(received[0].second.corrupted);
  int set_bits = 0;
  for (int i = 0; i < 4; ++i) {
    set_bits += __builtin_popcount(received[0].second.data[i]);
  }
  EXPECT_EQ(set_bits, 1);
}

TEST_F(BusFixture, BackToBackFramesSerializeOnTheBus) {
  auto a = Attach("a");
  Attach("b");
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {1})).ok());
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {2})).ok());
  simulator.Run(1);
  EXPECT_EQ(received.size(), 1u);  // second still in flight
  simulator.Run();
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].second.data[0], 2);
}

// --- Network ------------------------------------------------------------------------

TEST(NetworkTest, ConnectAcceptAndExchange) {
  Simulator simulator;
  Network network(simulator, 10 * kMillisecond);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network
                  .Listen("srv:1", [&](std::shared_ptr<NetPeer> peer) {
                    server_side = std::move(peer);
                  })
                  .ok());
  auto client = network.Connect("srv:1");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  ASSERT_NE(server_side, nullptr);

  std::string got;
  server_side->SetReceiveHandler(
      [&](const support::Bytes& data) { got = support::ToString(data); });
  ASSERT_TRUE((*client)->Send(support::ToBytes("ping")).ok());
  simulator.Run();
  EXPECT_EQ(got, "ping");
}

TEST(NetworkTest, LatencyIsApplied) {
  Simulator simulator;
  Network network(simulator, 25 * kMillisecond);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv:1", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv:1");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  SimTime arrival = 0;
  server_side->SetReceiveHandler([&](const support::Bytes&) { arrival = simulator.Now(); });
  const SimTime sent_at = simulator.Now();
  ASSERT_TRUE((*client)->Send(support::ToBytes("x")).ok());
  simulator.Run();
  EXPECT_EQ(arrival - sent_at, 25 * kMillisecond);
}

TEST(NetworkTest, ConnectToUnknownAddressFails) {
  Simulator simulator;
  Network network(simulator);
  EXPECT_EQ(network.Connect("nowhere").status().code(),
            support::ErrorCode::kNotFound);
}

TEST(NetworkTest, DuplicateListenerRejected) {
  Simulator simulator;
  Network network(simulator);
  ASSERT_TRUE(network.Listen("a", [](auto) {}).ok());
  EXPECT_EQ(network.Listen("a", [](auto) {}).code(),
            support::ErrorCode::kAlreadyExists);
}

TEST(NetworkTest, LinkDownDropsSendsAndBlocksConnects) {
  Simulator simulator;
  Network network(simulator);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  network.SetLinkUp(false);
  EXPECT_EQ((*client)->Send(support::ToBytes("x")).code(),
            support::ErrorCode::kUnavailable);
  EXPECT_FALSE(network.Connect("srv").ok());
  network.SetLinkUp(true);
  EXPECT_TRUE((*client)->Send(support::ToBytes("x")).ok());
}

TEST(NetworkTest, CloseMakesRemoteUnavailable) {
  Simulator simulator;
  Network network(simulator);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  server_side->Close();
  EXPECT_FALSE(server_side->connected());
  EXPECT_EQ((*client)->Send(support::ToBytes("x")).code(),
            support::ErrorCode::kUnavailable);
}

// --- Rng -----------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    const auto v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

}  // namespace
}  // namespace dacm::sim
