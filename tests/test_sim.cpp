// Unit tests for the simulation substrate: event kernel, CAN bus model,
// network channels, deterministic RNG.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "sim/can_bus.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace dacm::sim {
namespace {

// --- Simulator ------------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&]() { order.push_back(3); });
  simulator.ScheduleAt(10, [&]() { order.push_back(1); });
  simulator.ScheduleAt(20, [&]() { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30u);
}

TEST(SimulatorTest, EqualTimestampsFireFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(10, [&]() { ++fired; });
  simulator.ScheduleAt(20, [&]() { ++fired; });
  simulator.ScheduleAt(21, [&]() { ++fired; });
  simulator.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.Now(), 20u);
  simulator.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilAdvancesTimeEvenWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(500);
  EXPECT_EQ(simulator.Now(), 500u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator simulator;
  int depth = 0;
  simulator.ScheduleAt(1, [&]() {
    ++depth;
    simulator.ScheduleAfter(1, [&]() { ++depth; });
  });
  simulator.Run();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(simulator.Now(), 2u);
}

TEST(SimulatorTest, LateSchedulingClampsToNow) {
  Simulator simulator;
  SimTime seen = 12345;
  simulator.ScheduleAt(100, [&]() {
    simulator.ScheduleAt(50, [&]() { seen = simulator.Now(); });  // in the past
  });
  simulator.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(SimulatorTest, RunLimitBoundsEventCount) {
  Simulator simulator;
  int fired = 0;
  for (int i = 0; i < 10; ++i) simulator.ScheduleAt(i, [&]() { ++fired; });
  EXPECT_EQ(simulator.Run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(simulator.PendingEvents(), 6u);
}

TEST(SimulatorTest, RunLimitMidStormKeepsFifoForLateSchedules) {
  // Stop inside a same-timestamp storm, append more events at that
  // timestamp, and verify the combined FIFO order survives.
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  EXPECT_EQ(simulator.Run(2), 2u);
  for (int i = 4; i < 6; ++i) {
    simulator.ScheduleAt(100, [&order, i]() { order.push_back(i); });
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SimulatorTest, FarFutureEventsBeyondWheelHorizonFire) {
  // Past the timer wheel's 2^36 us horizon, events wait in the overflow
  // heap; ordering against near events must be unaffected.
  Simulator simulator;
  const SimTime far = (SimTime{1} << 40) + 123;  // ~13 days
  std::vector<int> order;
  simulator.ScheduleAt(far, [&]() { order.push_back(2); });
  simulator.ScheduleAt(far, [&]() { order.push_back(3); });  // FIFO at far
  simulator.ScheduleAt(10, [&]() { order.push_back(1); });
  EXPECT_EQ(simulator.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), far);
}

TEST(SimulatorTest, HorizonBoundaryLandsInOverflowNotSlotZero) {
  // at = cursor + 2^36 is the first time the wheel cannot hold: the slot
  // index would wrap onto slot 0 of the *current* window and fire 2^36 us
  // early.  Both the exact horizon and horizon + 1 must be parked in the
  // overflow heap and fire at their true time, in order.
  Simulator simulator;
  const SimTime horizon = SimTime{1} << 36;
  std::vector<SimTime> fired;
  auto record = [&]() { fired.push_back(simulator.Now()); };
  // Anchor events defeat the single-event solo fast path, so the horizon
  // events actually exercise Place() routing.
  simulator.ScheduleAt(1, record);
  simulator.ScheduleAt(horizon - 1, record);  // last representable slot
  simulator.ScheduleAt(horizon, record);      // exactly at the boundary
  simulator.ScheduleAt(horizon + 1, record);
  EXPECT_EQ(simulator.OverflowEvents(), 2u);  // horizon and horizon + 1
  EXPECT_EQ(simulator.Run(), 4u);
  EXPECT_EQ(fired, (std::vector<SimTime>{1, horizon - 1, horizon, horizon + 1}));
  EXPECT_EQ(simulator.Now(), horizon + 1);

  // Same check from a nonzero cursor: the boundary is relative to Now().
  const SimTime base = simulator.Now();
  simulator.ScheduleAt(base + 5, record);
  simulator.ScheduleAt(base + horizon, record);
  EXPECT_EQ(simulator.OverflowEvents(), 1u);
  EXPECT_EQ(simulator.Run(), 2u);
  EXPECT_EQ(simulator.Now(), base + horizon);
}

TEST(SimulatorTest, RunUntilAcrossWheelWindowsInterleavesCorrectly) {
  // Events straddling several 64 us / 4096 us wheel windows, run in
  // bounded slices: every slice boundary must preserve global order.
  Simulator simulator;
  std::vector<SimTime> fired;
  const SimTime times[] = {1, 63, 64, 65, 127, 128, 4095, 4096, 4097, 40000};
  for (SimTime t : times) {
    simulator.ScheduleAt(t, [&fired, &simulator]() {
      fired.push_back(simulator.Now());
    });
  }
  for (SimTime until = 0; until <= 40000; until += 61) {
    simulator.RunUntil(until);
  }
  simulator.Run();
  EXPECT_EQ(fired, std::vector<SimTime>(std::begin(times), std::end(times)));
}

TEST(SimulatorTest, EventNodePoolStopsGrowingUnderChurn) {
  // Steady-state schedule/fire churn must recycle event nodes instead of
  // allocating: a ping-pong chain of 10k events fits one pool block.
  Simulator simulator;
  int remaining = 10000;
  std::function<void()> ping = [&]() {
    if (--remaining > 0) simulator.ScheduleAfter(7, ping);
  };
  simulator.ScheduleAfter(1, ping);
  simulator.Run();
  EXPECT_EQ(remaining, 0);
  // One event in flight at a time: a single 256-node pool block suffices.
  EXPECT_EQ(simulator.AllocatedEventNodes(), 256u);
}

// --- drain hooks ---------------------------------------------------------------

TEST(SimulatorTest, DrainHookRemovalDuringDrainIsSafe) {
  // A hook that removes itself (and a peer) mid-drain must not derail the
  // pass: remaining hooks still run, and later drains skip the removed.
  Simulator simulator;
  int a_runs = 0, b_runs = 0, c_runs = 0;
  std::uint64_t a = 0, b = 0;
  a = simulator.AddDrainHook([&]() { ++a_runs; });
  b = simulator.AddDrainHook([&]() {
    ++b_runs;
    simulator.RemoveDrainHook(b);  // self-removal
    simulator.RemoveDrainHook(a);  // peer removal, already-visited slot
  });
  simulator.AddDrainHook([&]() { ++c_runs; });
  simulator.DrainStaged();
  EXPECT_EQ(a_runs, 1);
  EXPECT_EQ(b_runs, 1);
  EXPECT_EQ(c_runs, 1);
  simulator.DrainStaged();
  EXPECT_EQ(a_runs, 1);  // removed
  EXPECT_EQ(b_runs, 1);  // removed
  EXPECT_EQ(c_runs, 2);  // survived the compaction
}

TEST(SimulatorTest, DrainHookAddingHooksMidDrainIsSafe) {
  // A hook that registers more hooks while a pass runs must not invalidate
  // its own captures (additions are deferred, so the hook vector cannot
  // reallocate under the executing closure).  The capture is heap-backed
  // so ASan would flag a relocation-induced use-after-free.
  Simulator simulator;
  auto tag = std::make_shared<std::string>("still-alive");
  int added_runs = 0;
  std::string observed;
  simulator.AddDrainHook([&, tag]() {
    if (!observed.empty()) return;  // only seed on the first pass
    for (int i = 0; i < 64; ++i) {
      simulator.AddDrainHook([&added_runs]() { ++added_runs; });
    }
    observed = *tag;  // reads the capture after the additions
  });
  simulator.DrainStaged();
  EXPECT_EQ(observed, "still-alive");
  EXPECT_EQ(added_runs, 0);  // deferred: new hooks join from the next pass
  simulator.DrainStaged();
  EXPECT_EQ(added_runs, 64);
}

TEST(SimulatorTest, DrainHookAddedAndRemovedWithinOnePassNeverRuns) {
  Simulator simulator;
  int runs = 0;
  std::uint64_t doomed = 0;
  bool seeded = false;
  simulator.AddDrainHook([&]() {
    if (seeded) return;
    seeded = true;
    doomed = simulator.AddDrainHook([&runs]() { ++runs; });
    simulator.RemoveDrainHook(doomed);  // still pending; must be dropped
  });
  simulator.DrainStaged();
  simulator.DrainStaged();
  EXPECT_EQ(runs, 0);
}

TEST(SimulatorTest, DrainHookSwapAndPopKeepsHandlesValid) {
  // Removal swaps the last hook into the vacated slot; the moved hook's
  // handle must keep resolving (the O(1) index map follows the swap).
  Simulator simulator;
  int runs[3] = {0, 0, 0};
  const std::uint64_t h0 = simulator.AddDrainHook([&]() { ++runs[0]; });
  simulator.AddDrainHook([&]() { ++runs[1]; });
  const std::uint64_t h2 = simulator.AddDrainHook([&]() { ++runs[2]; });
  simulator.RemoveDrainHook(h0);  // moves h2 into slot 0
  simulator.DrainStaged();
  EXPECT_EQ(runs[0], 0);
  EXPECT_EQ(runs[1], 1);
  EXPECT_EQ(runs[2], 1);
  simulator.RemoveDrainHook(h2);  // must remove the *moved* hook
  simulator.DrainStaged();
  EXPECT_EQ(runs[1], 2);
  EXPECT_EQ(runs[2], 1);
  simulator.RemoveDrainHook(h2);  // double-removal is a no-op
}

TEST(SimulatorTest, DrainHookSchedulingBehindAdvancedCursorStaysOrdered) {
  // A bounded run can advance the wheel cursor past Now() (outer-level
  // cascade) before the post-run drain stages new work near Now(); such
  // events land in the backlog and must still fire in global time order.
  Simulator simulator;
  std::vector<SimTime> fired;
  simulator.ScheduleAt(70, [&]() { fired.push_back(simulator.Now()); });
  simulator.ScheduleAt(74, [&]() { fired.push_back(simulator.Now()); });
  int drains = 0;
  const std::uint64_t hook = simulator.AddDrainHook([&]() {
    // Stage on the second pass only: the first runs before any cursor
    // advance (at the head of RunUntil), the second after the cascade.
    if (++drains != 2) return;
    simulator.ScheduleAt(simulator.Now() + 1,
                         [&]() { fired.push_back(simulator.Now()); });
  });
  // RunUntil(66) cascades the [64,127] window (cursor -> 64) but fires
  // nothing; the drain hook then schedules at time 1 — behind the cursor.
  simulator.RunUntil(66);
  simulator.Run();
  simulator.RemoveDrainHook(hook);
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 70, 74}));
}

// --- CAN bus -----------------------------------------------------------------------

struct BusFixture : ::testing::Test {
  Simulator simulator;
  CanBus bus{simulator, 500'000};
  std::vector<std::pair<CanNodeId, CanFrame>> received;

  CanNodeId Attach(const std::string& name) {
    const CanNodeId id = bus.AttachNode(
        name, [this, idx = next_idx_](const CanFrame& f) {
          received.emplace_back(idx, f);
        });
    ++next_idx_;
    return id;
  }

  static CanFrame Frame(std::uint32_t can_id, std::initializer_list<std::uint8_t> data) {
    CanFrame frame;
    frame.can_id = can_id;
    frame.dlc = static_cast<std::uint8_t>(data.size());
    std::size_t i = 0;
    for (std::uint8_t b : data) frame.data[i++] = b;
    return frame;
  }

 private:
  CanNodeId next_idx_ = 0;
};

TEST_F(BusFixture, BroadcastExcludesSender) {
  auto a = Attach("a");
  Attach("b");
  Attach("c");
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {1, 2, 3})).ok());
  simulator.Run();
  ASSERT_EQ(received.size(), 2u);  // b and c, not a
  EXPECT_EQ(received[0].first, 1u);
  EXPECT_EQ(received[1].first, 2u);
  EXPECT_EQ(received[0].second.data[2], 3);
}

TEST_F(BusFixture, LowerIdWinsArbitration) {
  auto a = Attach("a");
  auto b = Attach("b");
  Attach("sink");
  // Queue both before running: the lower identifier must transmit first.
  ASSERT_TRUE(bus.Send(a, Frame(0x300, {1})).ok());
  ASSERT_TRUE(bus.Send(b, Frame(0x100, {2})).ok());
  simulator.Run(1);  // only the first transmission completes
  // Once the 0x300 frame grabbed the idle bus it finishes, but every send
  // after that point arbitrates: queue two more while busy.
  received.clear();
  ASSERT_TRUE(bus.Send(a, Frame(0x250, {3})).ok());
  ASSERT_TRUE(bus.Send(b, Frame(0x110, {4})).ok());
  simulator.Run();
  std::vector<std::uint32_t> sink_ids;
  for (const auto& [node, frame] : received) {
    if (node == 2) sink_ids.push_back(frame.can_id);
  }
  ASSERT_GE(sink_ids.size(), 2u);
  // 0x110 must beat 0x250.
  auto it_110 = std::find(sink_ids.begin(), sink_ids.end(), 0x110u);
  auto it_250 = std::find(sink_ids.begin(), sink_ids.end(), 0x250u);
  ASSERT_NE(it_110, sink_ids.end());
  ASSERT_NE(it_250, sink_ids.end());
  EXPECT_LT(it_110 - sink_ids.begin(), it_250 - sink_ids.begin());
}

TEST_F(BusFixture, RejectsMalformedFrames) {
  auto a = Attach("a");
  CanFrame too_long;
  too_long.can_id = 1;
  too_long.dlc = 9;
  EXPECT_FALSE(bus.Send(a, too_long).ok());
  CanFrame bad_id;
  bad_id.can_id = 0x800;  // 12 bits
  bad_id.dlc = 1;
  EXPECT_FALSE(bus.Send(a, bad_id).ok());
  EXPECT_FALSE(bus.Send(999, Frame(1, {})).ok());
}

TEST_F(BusFixture, FrameTimeScalesWithPayloadAndBitrate) {
  const SimTime t0 = bus.FrameTime(0);
  const SimTime t8 = bus.FrameTime(8);
  EXPECT_GT(t8, t0);
  // 8 data bytes at 500 kbit/s with stuffing: on the order of 200-300 us.
  EXPECT_GT(t8, 150u);
  EXPECT_LT(t8, 400u);
  CanBus slow_bus(simulator, 125'000);
  EXPECT_GT(slow_bus.FrameTime(8), t8);
}

TEST_F(BusFixture, DropRateLosesFrames) {
  auto a = Attach("a");
  Attach("b");
  bus.SetDropRate(1.0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Send(a, Frame(0x100, {static_cast<std::uint8_t>(i)})).ok());
  }
  simulator.Run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(bus.frames_dropped(), 10u);
  EXPECT_EQ(bus.frames_transmitted(), 10u);
}

TEST_F(BusFixture, CorruptionFlipsOneBitAndFlagsFrame) {
  auto a = Attach("a");
  Attach("b");
  bus.SetCorruptRate(1.0);
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {0x00, 0x00, 0x00, 0x00})).ok());
  simulator.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_TRUE(received[0].second.corrupted);
  int set_bits = 0;
  for (int i = 0; i < 4; ++i) {
    set_bits += __builtin_popcount(received[0].second.data[i]);
  }
  EXPECT_EQ(set_bits, 1);
}

TEST_F(BusFixture, BackToBackFramesSerializeOnTheBus) {
  auto a = Attach("a");
  Attach("b");
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {1})).ok());
  ASSERT_TRUE(bus.Send(a, Frame(0x100, {2})).ok());
  simulator.Run(1);
  EXPECT_EQ(received.size(), 1u);  // second still in flight
  simulator.Run();
  EXPECT_EQ(received.size(), 2u);
  EXPECT_EQ(received[1].second.data[0], 2);
}

// --- Network ------------------------------------------------------------------------

TEST(NetworkTest, ConnectAcceptAndExchange) {
  Simulator simulator;
  Network network(simulator, 10 * kMillisecond);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network
                  .Listen("srv:1", [&](std::shared_ptr<NetPeer> peer) {
                    server_side = std::move(peer);
                  })
                  .ok());
  auto client = network.Connect("srv:1");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  ASSERT_NE(server_side, nullptr);

  std::string got;
  server_side->SetReceiveHandler(
      [&](const support::Bytes& data) { got = support::ToString(data); });
  ASSERT_TRUE((*client)->Send(support::ToBytes("ping")).ok());
  simulator.Run();
  EXPECT_EQ(got, "ping");
}

TEST(NetworkTest, LatencyIsApplied) {
  Simulator simulator;
  Network network(simulator, 25 * kMillisecond);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv:1", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv:1");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  SimTime arrival = 0;
  server_side->SetReceiveHandler([&](const support::Bytes&) { arrival = simulator.Now(); });
  const SimTime sent_at = simulator.Now();
  ASSERT_TRUE((*client)->Send(support::ToBytes("x")).ok());
  simulator.Run();
  EXPECT_EQ(arrival - sent_at, 25 * kMillisecond);
}

TEST(NetworkTest, ConnectToUnknownAddressFails) {
  Simulator simulator;
  Network network(simulator);
  EXPECT_EQ(network.Connect("nowhere").status().code(),
            support::ErrorCode::kNotFound);
}

TEST(NetworkTest, DuplicateListenerRejected) {
  Simulator simulator;
  Network network(simulator);
  ASSERT_TRUE(network.Listen("a", [](auto) {}).ok());
  EXPECT_EQ(network.Listen("a", [](auto) {}).code(),
            support::ErrorCode::kAlreadyExists);
}

TEST(NetworkTest, LinkDownDropsSendsAndBlocksConnects) {
  Simulator simulator;
  Network network(simulator);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  network.SetLinkUp(false);
  EXPECT_EQ((*client)->Send(support::ToBytes("x")).code(),
            support::ErrorCode::kUnavailable);
  EXPECT_FALSE(network.Connect("srv").ok());
  network.SetLinkUp(true);
  EXPECT_TRUE((*client)->Send(support::ToBytes("x")).ok());
}

TEST(NetworkTest, CloseMakesRemoteUnavailable) {
  Simulator simulator;
  Network network(simulator);
  std::shared_ptr<NetPeer> server_side;
  ASSERT_TRUE(network.Listen("srv", [&](auto peer) { server_side = peer; }).ok());
  auto client = network.Connect("srv");
  ASSERT_TRUE(client.ok());
  simulator.Run();
  server_side->Close();
  EXPECT_FALSE(server_side->connected());
  EXPECT_EQ((*client)->Send(support::ToBytes("x")).code(),
            support::ErrorCode::kUnavailable);
}

// --- Rng -----------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    const auto v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2600);
  EXPECT_LT(hits, 3400);
}

}  // namespace
}  // namespace dacm::sim
