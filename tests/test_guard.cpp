// Fault protection of the exposed plug-in API (paper §3.1.1): the
// SignalGuard's length / value / rate policies, Dem integration, translator
// composition, and the system-level guarantee that a guarded drop is
// diagnosed but never faults the plug-in.
#include <gtest/gtest.h>

#include <memory>

#include "bsw/nvm.hpp"
#include "fes/appgen.hpp"
#include "fes/ecu.hpp"
#include "pirte/guard.hpp"
#include "pirte/pirte.hpp"
#include "test_util.hpp"

namespace dacm::pirte {
namespace {

support::Bytes I32(std::int32_t value) {
  support::ByteWriter writer;
  writer.WriteI32(value);
  return writer.Take();
}

std::int32_t AsI32(const support::Bytes& data) {
  support::ByteReader reader(data);
  return *reader.ReadI32();
}

struct GuardHarness {
  sim::Simulator simulator;
  bsw::Dem dem{simulator};
  bsw::DemEventId event;
  std::shared_ptr<SignalGuard> guard;
  Translator translator;

  explicit GuardHarness(GuardPolicy policy, Translator inner = {}) {
    event = *dem.DefineEvent("guard." + policy.name, /*failure_threshold=*/1);
    guard = SignalGuard::Create(simulator, std::move(policy), &dem, event);
    translator = guard->MakeTranslator(std::move(inner));
  }
};

// --- value range ------------------------------------------------------------------

TEST(GuardValue, InRangePassesUnchanged) {
  GuardPolicy policy;
  policy.name = "Wheels";
  policy.check_value = true;
  policy.min_value = -45;
  policy.max_value = 45;
  GuardHarness harness(policy);
  auto out = harness.translator(I32(30));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(AsI32(*out), 30);
  EXPECT_EQ(harness.guard->stats().passed, 1u);
  EXPECT_FALSE(*harness.dem.IsEventConfirmed(harness.event));
}

TEST(GuardValue, ClampSaturatesToNearestBound) {
  GuardPolicy policy;
  policy.name = "Wheels";
  policy.check_value = true;
  policy.min_value = -45;
  policy.max_value = 45;
  policy.on_range_violation = GuardAction::kClamp;
  GuardHarness harness(policy);
  auto high = harness.translator(I32(90));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(AsI32(*high), 45);
  auto low = harness.translator(I32(-1000));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(AsI32(*low), -45);
  EXPECT_EQ(harness.guard->stats().clamped, 2u);
  // Clamping is still a diagnosed violation.
  EXPECT_TRUE(*harness.dem.IsEventConfirmed(harness.event));
}

TEST(GuardValue, DropRejectsWithOutOfRange) {
  GuardPolicy policy;
  policy.name = "Speed";
  policy.check_value = true;
  policy.min_value = 0;
  policy.max_value = 100;
  policy.on_range_violation = GuardAction::kDrop;
  GuardHarness harness(policy);
  auto out = harness.translator(I32(9000));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), support::ErrorCode::kOutOfRange);
  EXPECT_EQ(harness.guard->stats().dropped_range, 1u);
}

TEST(GuardValue, NonControlPayloadSkipsValueCheck) {
  GuardPolicy policy;
  policy.name = "Blob";
  policy.check_value = true;  // but payload is not 4 bytes
  policy.min_value = 0;
  policy.max_value = 1;
  GuardHarness harness(policy);
  const support::Bytes blob{1, 2, 3, 4, 5, 6};
  auto out = harness.translator(blob);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, blob);
}

// --- length -----------------------------------------------------------------------------

TEST(GuardLength, BoundsEnforcedBothSides) {
  GuardPolicy policy;
  policy.name = "Frame";
  policy.min_len = 2;
  policy.max_len = 4;
  GuardHarness harness(policy);
  EXPECT_FALSE(harness.translator(support::Bytes{1}).ok());
  EXPECT_TRUE(harness.translator(support::Bytes{1, 2}).ok());
  EXPECT_TRUE(harness.translator(support::Bytes{1, 2, 3, 4}).ok());
  EXPECT_FALSE(harness.translator(support::Bytes{1, 2, 3, 4, 5}).ok());
  EXPECT_EQ(harness.guard->stats().dropped_len, 2u);
}

// --- rate ------------------------------------------------------------------------------------

TEST(GuardRate, MessagesFasterThanIntervalAreDropped) {
  GuardPolicy policy;
  policy.name = "Throttle";
  policy.min_interval = 10 * sim::kMillisecond;
  GuardHarness harness(policy);
  EXPECT_TRUE(harness.translator(I32(1)).ok());   // first always passes
  EXPECT_FALSE(harness.translator(I32(2)).ok());  // same instant: too fast
  harness.simulator.RunUntil(harness.simulator.Now() + 11 * sim::kMillisecond);
  EXPECT_TRUE(harness.translator(I32(3)).ok());
  EXPECT_EQ(harness.guard->stats().dropped_rate, 1u);
  EXPECT_EQ(harness.guard->stats().passed, 2u);
}

TEST(GuardRate, RejectedMessagesDoNotResetTheWindow) {
  GuardPolicy policy;
  policy.name = "Throttle";
  policy.min_interval = 10 * sim::kMillisecond;
  GuardHarness harness(policy);
  EXPECT_TRUE(harness.translator(I32(1)).ok());
  harness.simulator.RunUntil(harness.simulator.Now() + 6 * sim::kMillisecond);
  EXPECT_FALSE(harness.translator(I32(2)).ok());  // at 6 ms: dropped
  harness.simulator.RunUntil(harness.simulator.Now() + 5 * sim::kMillisecond);
  // 11 ms since the last *accepted* message: must pass even though only
  // 5 ms passed since the rejected one.
  EXPECT_TRUE(harness.translator(I32(3)).ok());
}

// --- composition -------------------------------------------------------------------------------

TEST(GuardCompose, InnerTranslatorRunsBeforePolicy) {
  // Inner translation: 1-byte plug-in format -> 4-byte control value.
  Translator widen = [](std::span<const std::uint8_t> data)
      -> support::Result<support::Bytes> {
    if (data.size() != 1) return support::InvalidArgument("want 1 byte");
    return I32(static_cast<std::int8_t>(data[0]));
  };
  GuardPolicy policy;
  policy.name = "Wheels";
  policy.check_value = true;
  policy.min_value = -45;
  policy.max_value = 45;
  GuardHarness harness(policy, widen);
  auto ok = harness.translator(support::Bytes{42});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(AsI32(*ok), 42);
  // 0x7F = 127 as signed -> clamped to 45: the policy saw the *converted* value.
  auto clamped = harness.translator(support::Bytes{0x7F});
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(AsI32(*clamped), 45);
  // Inner translator failures pass through as-is (not guard violations).
  auto bad = harness.translator(support::Bytes{1, 2});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), support::ErrorCode::kInvalidArgument);
  EXPECT_EQ(harness.guard->stats().violations(), 1u);
}

// --- system level: guarded PIRTE ------------------------------------------------------------------

struct GuardedStack {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  fes::Ecu ecu{simulator, bus, 1, "ECU1"};
  bsw::Nvm nvm;
  std::shared_ptr<SignalGuard> guard;
  std::unique_ptr<Pirte> pirte;
  rte::PortId mon_act = rte::PortId::Invalid();

  GuardedStack() {
    rte::Rte& rte = ecu.ecu_rte();
    auto plug_swc = *rte.AddSwc("Plug");
    auto harness_swc = *rte.AddSwc("Harness");
    rte::PortConfig act_config;
    act_config.name = "ActReq";
    act_config.direction = rte::PortDirection::kProvided;
    act_config.max_len = 64;
    auto act_out = *rte.AddPort(plug_swc, std::move(act_config));
    rte::PortConfig mon_config;
    mon_config.name = "mon.act";
    mon_config.direction = rte::PortDirection::kRequired;
    mon_config.max_len = 64;
    mon_act = *rte.AddPort(harness_swc, std::move(mon_config));
    EXPECT_TRUE(rte.ConnectLocal(act_out, mon_act).ok());

    auto event = *ecu.dem().DefineEvent("guard.ActReq");
    GuardPolicy policy;
    policy.name = "ActReq";
    policy.check_value = true;
    policy.min_value = 0;
    policy.max_value = 100;
    policy.on_range_violation = GuardAction::kDrop;
    guard = SignalGuard::Create(simulator, policy, &ecu.dem(), event);

    PirteConfig config;
    config.name = "P1";
    config.ecu_id = 1;
    config.swc = plug_swc;
    VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    v4.translate_out = guard->MakeTranslator();
    config.virtual_ports.push_back(v4);

    pirte = std::make_unique<Pirte>(rte, &nvm, &ecu.dem(), std::move(config));
    EXPECT_TRUE(pirte->Init().ok());
    EXPECT_TRUE(ecu.Start().ok());
    simulator.Run();

    // A pass-through plug-in: writes its 4-byte input to the guarded port.
    // Forwards exactly the 4-byte control value (the guard checks i32
    // payloads only when they are exactly 4 bytes long).
    auto package = testutil::MakeCannedPackage(
        "writer",
        fes::AssembleOrDie(R"(
      .entry on_data h
      h:
        READP 0
        POP
        WRITEP 1 4
        HALT
    )"),
        {{0, "in", 0, PluginPortDirection::kRequired},
         {1, "out", 1, PluginPortDirection::kProvided}},
        {{1, PlcKind::kVirtual, 4, 0, "", 0}});
    EXPECT_TRUE(pirte->Install(package).ok());
    simulator.Run();
  }

  void Write(std::int32_t value) {
    (void)pirte->DeliverToPluginPortByUnique(0, I32(value));
    simulator.Run();
  }

  support::Result<std::int32_t> Actuator() {
    auto data = ecu.ecu_rte().Read(mon_act);
    if (!data.ok()) return data.status();
    return AsI32(*data);
  }
};

TEST(GuardSystem, OutOfRangeWriteIsDroppedDiagnosedAndNonFatal) {
  GuardedStack stack;
  stack.Write(50);
  ASSERT_TRUE(stack.Actuator().ok());
  EXPECT_EQ(*stack.Actuator(), 50);

  stack.Write(5000);  // hostile value
  EXPECT_EQ(*stack.Actuator(), 50) << "actuator must keep the last safe value";
  EXPECT_EQ(stack.pirte->stats().guard_drops, 1u);
  EXPECT_TRUE(*stack.ecu.dem().IsEventConfirmed(
      *stack.ecu.dem().FindEvent("guard.ActReq")));
  // The plug-in itself is alive — guarded drops are not plug-in faults.
  EXPECT_EQ(stack.pirte->FindPlugin("writer")->state(), PluginState::kRunning);
  EXPECT_EQ(stack.pirte->stats().vm_faults, 0u);

  stack.Write(70);  // back in range: traffic continues
  EXPECT_EQ(*stack.Actuator(), 70);
}

TEST(GuardSystem, GuardStatsCountEveryVerdict) {
  GuardedStack stack;
  for (std::int32_t value : {10, 200, 20, -5, 30}) stack.Write(value);
  EXPECT_EQ(stack.guard->stats().passed, 3u);
  EXPECT_EQ(stack.guard->stats().dropped_range, 2u);
  EXPECT_EQ(stack.pirte->stats().guard_drops, 2u);
}

// --- seeded policy fuzz ---------------------------------------------------------
//
// Random policies x random message streams (lengths, values, inter-arrival
// times) checked step-by-step against an exact reference model of the
// guard's decision order: length -> rate -> value, with only accepted
// (passed or clamped) messages advancing the rate window.  Set
// DACM_TEST_SEED to replay.
TEST(GuardFuzz, RandomPoliciesAndStreamsMatchReferenceModel) {
  DACM_PROPERTY_RNG(rng);
  for (int round = 0; round < 24; ++round) {
    GuardPolicy policy;
    policy.name = "fuzz" + std::to_string(round);
    policy.min_len = rng.NextBelow(4);
    policy.max_len = policy.min_len + rng.NextBelow(12);
    policy.check_value = rng.NextBool(0.7);
    if (policy.check_value) {
      policy.min_value = static_cast<std::int32_t>(rng.NextBelow(200)) - 100;
      policy.max_value =
          policy.min_value + static_cast<std::int32_t>(rng.NextBelow(150));
      policy.on_range_violation =
          rng.NextBool(0.5) ? GuardAction::kClamp : GuardAction::kDrop;
    }
    if (rng.NextBool(0.6)) {
      policy.min_interval = (1 + rng.NextBelow(50)) * sim::kMillisecond;
    }
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << " len [" << policy.min_len << ", "
                 << policy.max_len << "] value " << policy.check_value << " ["
                 << policy.min_value << ", " << policy.max_value << "] "
                 << (policy.on_range_violation == GuardAction::kClamp ? "clamp"
                                                                      : "drop")
                 << " interval " << policy.min_interval);
    GuardHarness harness(policy);

    GuardStats expected;
    bool saw_accept = false;
    sim::SimTime last_accept = 0;
    for (int step = 0; step < 200; ++step) {
      SCOPED_TRACE(::testing::Message() << "step " << step);
      harness.simulator.RunFor(rng.NextBelow(20) * sim::kMillisecond);
      const sim::SimTime now = harness.simulator.Now();

      // Mostly 4-byte control values; sometimes arbitrary-length noise
      // (which the guard still value-checks when it happens to be 4 bytes).
      support::Bytes payload;
      if (rng.NextBool(0.75)) {
        payload = I32(static_cast<std::int32_t>(rng.NextBelow(400)) - 200);
      } else {
        payload.resize(rng.NextBelow(14));
        for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.NextU64());
      }
      const std::int32_t value = payload.size() == 4 ? AsI32(payload) : 0;

      // Reference verdict.
      enum class Verdict { kPass, kClamp, kDropLen, kDropRate, kDropRange };
      Verdict verdict;
      std::int32_t clamped = value;
      if (payload.size() < policy.min_len || payload.size() > policy.max_len) {
        verdict = Verdict::kDropLen;
      } else if (policy.min_interval > 0 && saw_accept &&
                 now - last_accept < policy.min_interval) {
        verdict = Verdict::kDropRate;
      } else if (policy.check_value && payload.size() == 4 &&
                 (value < policy.min_value || value > policy.max_value)) {
        if (policy.on_range_violation == GuardAction::kDrop) {
          verdict = Verdict::kDropRange;
        } else {
          verdict = Verdict::kClamp;
          clamped = value < policy.min_value ? policy.min_value : policy.max_value;
        }
      } else {
        verdict = Verdict::kPass;
      }
      switch (verdict) {
        case Verdict::kPass: ++expected.passed; break;
        case Verdict::kClamp: ++expected.clamped; break;
        case Verdict::kDropLen: ++expected.dropped_len; break;
        case Verdict::kDropRate: ++expected.dropped_rate; break;
        case Verdict::kDropRange: ++expected.dropped_range; break;
      }

      auto out = harness.translator(payload);
      if (verdict == Verdict::kPass) {
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        EXPECT_EQ(*out, payload);
        saw_accept = true;
        last_accept = now;
      } else if (verdict == Verdict::kClamp) {
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        EXPECT_EQ(AsI32(*out), clamped);
        saw_accept = true;
        last_accept = now;
      } else {
        EXPECT_FALSE(out.ok());
        EXPECT_EQ(out.status().code(), support::ErrorCode::kOutOfRange);
      }
    }

    EXPECT_EQ(harness.guard->stats().passed, expected.passed);
    EXPECT_EQ(harness.guard->stats().clamped, expected.clamped);
    EXPECT_EQ(harness.guard->stats().dropped_len, expected.dropped_len);
    EXPECT_EQ(harness.guard->stats().dropped_rate, expected.dropped_rate);
    EXPECT_EQ(harness.guard->stats().dropped_range, expected.dropped_range);
  }
}

}  // namespace
}  // namespace dacm::pirte
