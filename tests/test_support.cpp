// Unit tests for the support library: Status/Result, byte serialization,
// CRC, fixed-capacity containers, string utilities, strong ids, and the
// deploy worker pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "support/fixed_vector.hpp"
#include "support/ids.hpp"
#include "support/inplace_function.hpp"
#include "support/log.hpp"
#include "support/shared_bytes.hpp"
#include "support/status.hpp"
#include "support/string_util.hpp"
#include "support/thread_pool.hpp"

namespace dacm::support {
namespace {

// --- Status / Result ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFound("the thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "the thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: the thing");
}

TEST(StatusTest, EveryErrorCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 41;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 41);
  EXPECT_EQ(result.value_or(0), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = InvalidArgument("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  auto owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Status FailsThrough() {
  DACM_RETURN_IF_ERROR(Timeout("inner"));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), ErrorCode::kTimeout);
}

Result<int> Doubles(Result<int> input) {
  DACM_ASSIGN_OR_RETURN(int v, std::move(input));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesBothWays) {
  EXPECT_EQ(*Doubles(21), 42);
  EXPECT_EQ(Doubles(Corrupted("x")).status().code(), ErrorCode::kCorrupted);
}

Result<int> ParseDigit(char c) {
  if (c < '0' || c > '9') return InvalidArgument(std::string("not a digit: ") + c);
  return c - '0';
}

Result<int> SumDigits(const std::string& text) {
  int total = 0;
  for (char c : text) {
    DACM_ASSIGN_OR_RETURN(int digit, ParseDigit(c));
    total += digit;
  }
  return total;
}

Status ValidateDigits(const std::string& text) {
  DACM_RETURN_IF_ERROR(SumDigits(text).status());
  return OkStatus();
}

TEST(ResultTest, ErrorsPropagateThroughMultipleFrames) {
  EXPECT_EQ(*SumDigits("123"), 6);
  // The innermost diagnostic survives two propagation hops untouched.
  const Status status = ValidateDigits("12x3");
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "not a digit: x");
}

TEST(ResultTest, ValueOrFallsBackOnlyOnError) {
  EXPECT_EQ(Result<int>(7).value_or(-1), 7);
  EXPECT_EQ(Result<int>(Timeout("late")).value_or(-1), -1);
}

// --- bytes -----------------------------------------------------------------------

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(-1234567890123ll);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(*reader.ReadU8(), 0xAB);
  EXPECT_EQ(*reader.ReadU16(), 0xBEEF);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*reader.ReadI32(), -42);
  EXPECT_EQ(*reader.ReadI64(), -1234567890123ll);
  EXPECT_TRUE(reader.exhausted());
}

TEST(BytesTest, StringAndBlobRoundTrip) {
  ByteWriter writer;
  writer.WriteString("hello");
  writer.WriteString("");
  writer.WriteBlob(ToBytes("raw\0data"));

  ByteReader reader(writer.bytes());
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadString(), "");
  EXPECT_FALSE(reader.exhausted());
  EXPECT_TRUE(reader.ReadBlob().ok());
}

TEST(BytesTest, TruncationDetected) {
  ByteWriter writer;
  writer.WriteU32(7);
  ByteReader reader(std::span<const std::uint8_t>(writer.bytes().data(), 2));
  auto result = reader.ReadU32();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kCorrupted);
}

TEST(BytesTest, StringLengthBeyondBufferDetected) {
  ByteWriter writer;
  writer.WriteU32(1000);  // claims 1000 chars, none follow
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(reader.ReadString().ok());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  ByteWriter writer;
  writer.WriteVarU32(GetParam());
  ByteReader reader(writer.bytes());
  EXPECT_EQ(*reader.ReadVarU32(), GetParam());
  EXPECT_TRUE(reader.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0u, 1u, 127u, 128u, 129u, 16383u, 16384u,
                                           0xFFFFu, 0xFFFFFFu, 0xFFFFFFFFu));

TEST(BytesTest, VarintOverlongRejected) {
  Bytes overlong = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};  // 6 continuation bytes
  ByteReader reader(overlong);
  EXPECT_FALSE(reader.ReadVarU32().ok());
}

TEST(BytesTest, ZeroCopyViewsAliasTheBuffer) {
  ByteWriter writer;
  writer.WriteString("view me");
  writer.WriteBlob(ToBytes("blob"));
  ByteReader reader(writer.bytes());

  auto s = reader.ReadStringView();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "view me");
  EXPECT_EQ(reinterpret_cast<const std::uint8_t*>(s->data()),
            writer.bytes().data() + 4);  // no copy: points into the buffer

  auto b = reader.ReadBlobView();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToString(*b), "blob");
  EXPECT_TRUE(reader.exhausted());
}

TEST(BytesTest, ViewTruncationDetected) {
  ByteWriter writer;
  writer.WriteU32(100);  // claims 100 bytes, none follow
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(reader.ReadStringView().ok());
  ByteReader reader2(writer.bytes());
  EXPECT_FALSE(reader2.ReadBlobView().ok());
}

TEST(BytesTest, ReserveDoesNotChangeContents) {
  ByteWriter writer;
  writer.WriteU16(0xABCD);
  writer.Reserve(1000);
  writer.WriteU16(0x1234);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(*reader.ReadU16(), 0xABCD);
  EXPECT_EQ(*reader.ReadU16(), 0x1234);
  EXPECT_TRUE(reader.exhausted());
}

TEST(BytesTest, LittleEndianScalarHelpersRoundTrip) {
  std::uint8_t buf[8];
  StoreLeU16(buf, 0xBEEF);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(LoadLeU16(buf), 0xBEEF);
  StoreLeU32(buf, 0xDEADBEEFu);
  EXPECT_EQ(buf[3], 0xDE);
  EXPECT_EQ(LoadLeU32(buf), 0xDEADBEEFu);
  StoreLeU64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(LoadLeU64(buf), 0x0123456789ABCDEFull);
}

// --- crc ------------------------------------------------------------------------------

TEST(CrcTest, KnownVector) {
  // CRC-32/ISO-HDLC("123456789") = 0xCBF43926.
  const Bytes data = ToBytes("123456789");
  EXPECT_EQ(Crc32(data), 0xCBF43926u);
  EXPECT_EQ(Crc32Bytewise(data), 0xCBF43926u);
}

TEST(CrcTest, EmptyIsZero) { EXPECT_EQ(Crc32({}), 0u); }

TEST(CrcTest, IncrementalMatchesOneShot) {
  const Bytes data = ToBytes("hello crc world");
  std::uint32_t crc = 0;
  crc = Crc32Update(crc, std::span<const std::uint8_t>(data.data(), 5));
  crc = Crc32Update(crc, std::span<const std::uint8_t>(data.data() + 5, data.size() - 5));
  // Incremental with the reflected algorithm composes through the inverted
  // register; the helper folds that in, so the results must agree.
  EXPECT_EQ(crc, Crc32(data));
}

TEST(CrcTest, StandardKnownAnswerVectors) {
  // Published CRC-32/ISO-HDLC check values.
  EXPECT_EQ(Crc32(ToBytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(ToBytes("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32(ToBytes("message digest")), 0x20159D7Fu);
  EXPECT_EQ(Crc32(ToBytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
  const Bytes zeros(32, 0x00);
  EXPECT_EQ(Crc32(zeros), 0x190A55ADu);
  const Bytes ones(32, 0xFF);
  EXPECT_EQ(Crc32(ones), 0xFF6CAB0Bu);
}

TEST(CrcTest, IncrementalIgnoresEmptyChunks) {
  const Bytes data = ToBytes("chunked");
  std::uint32_t crc = Crc32Update(0, {});
  crc = Crc32Update(crc, data);
  crc = Crc32Update(crc, {});
  EXPECT_EQ(crc, Crc32(data));
}

TEST(CrcTest, SingleBitFlipChangesCrc) {
  Bytes data = ToBytes("payload payload payload");
  const std::uint32_t original = Crc32(data);
  for (std::size_t bit = 0; bit < data.size() * 8; bit += 17) {
    Bytes mutated = data;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(mutated), original) << "bit " << bit;
  }
}

// --- FixedVector ------------------------------------------------------------------------

TEST(FixedVectorTest, PushPopWithinCapacity) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.push_back(1));
  EXPECT_TRUE(v.push_back(2));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
}

TEST(FixedVectorTest, RejectsGrowthPastCapacity) {
  FixedVector<int, 2> v;
  EXPECT_TRUE(v.push_back(1));
  EXPECT_TRUE(v.push_back(2));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.push_back(3));
  EXPECT_EQ(v.size(), 2u);
}

TEST(FixedVectorTest, DestroysElements) {
  int alive = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) { ++*counter; }
    Probe(const Probe& other) : counter(other.counter) { ++*counter; }
    ~Probe() { --*counter; }
  };
  {
    FixedVector<Probe, 4> v;
    v.emplace_back(&alive);
    v.emplace_back(&alive);
    EXPECT_EQ(alive, 2);
    v.pop_back();
    EXPECT_EQ(alive, 1);
  }
  EXPECT_EQ(alive, 0);
}

TEST(FixedVectorTest, EmplaceBackReturnsNullWhenFull) {
  FixedVector<std::string, 2> v;
  ASSERT_NE(v.emplace_back("a"), nullptr);
  ASSERT_NE(v.emplace_back("b"), nullptr);
  EXPECT_EQ(v.emplace_back("c"), nullptr);
  // The failed emplace leaves size and contents untouched.
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
}

TEST(FixedVectorTest, OverflowingPushConstructsNothing) {
  int alive = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) { ++*counter; }
    Probe(const Probe& other) : counter(other.counter) { ++*counter; }
    ~Probe() { --*counter; }
  };
  FixedVector<Probe, 2> v;
  v.emplace_back(&alive);
  v.emplace_back(&alive);
  ASSERT_EQ(alive, 2);
  Probe extra(&alive);
  EXPECT_FALSE(v.push_back(extra));
  EXPECT_EQ(v.emplace_back(&alive), nullptr);
  // No stray construction or destruction from the rejected inserts.
  EXPECT_EQ(alive, 3);
}

TEST(FixedVectorTest, ClearAllowsRefillToFullCapacity) {
  FixedVector<int, 3> v;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(v.push_back(i));
  v.clear();
  EXPECT_TRUE(v.empty());
  for (int i = 10; i < 13; ++i) ASSERT_TRUE(v.push_back(i));
  EXPECT_TRUE(v.full());
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v.back(), 12);
}

TEST(FixedVectorTest, MoveDrainsTheSource) {
  FixedVector<std::string, 2> v;
  v.push_back("payload");
  FixedVector<std::string, 2> moved = std::move(v);
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): specified behaviour
  EXPECT_TRUE(v.push_back("reusable"));
}

TEST(FixedVectorTest, CopyAndMove) {
  FixedVector<std::string, 3> v;
  v.push_back("a");
  v.push_back("b");
  FixedVector<std::string, 3> copy = v;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[1], "b");
  FixedVector<std::string, 3> moved = std::move(v);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], "a");
}

// --- string_util -------------------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  auto fields = SplitWhitespace("  one \t two\nthree  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "three");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("pirte.vm", "pirte"));
  EXPECT_FALSE(StartsWith("pi", "pirte"));
}

struct VersionCase {
  const char* a;
  const char* b;
  int expected;  // sign
};

class VersionCompare : public ::testing::TestWithParam<VersionCase> {};

TEST_P(VersionCompare, Ordering) {
  const auto& param = GetParam();
  const int result = CompareVersions(param.a, param.b);
  if (param.expected < 0) {
    EXPECT_LT(result, 0);
  } else if (param.expected == 0) {
    EXPECT_EQ(result, 0);
  } else {
    EXPECT_GT(result, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VersionCompare,
    ::testing::Values(VersionCase{"1.0", "1.0", 0}, VersionCase{"1.0", "1.1", -1},
                      VersionCase{"2.0", "1.9", 1}, VersionCase{"1.0", "1.0.1", -1},
                      VersionCase{"1.10", "1.9", 1}, VersionCase{"1", "1.0", 0},
                      VersionCase{"0.9", "1.0", -1}));

// --- StrongId ---------------------------------------------------------------------------

struct FooTag {};
struct BarTag {};
using FooId = StrongId<FooTag>;
using BarId = StrongId<BarTag>;

TEST(StrongIdTest, DefaultIsInvalid) {
  FooId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FooId::Invalid());
}

TEST(StrongIdTest, ComparesWithinType) {
  EXPECT_LT(FooId(1), FooId(2));
  EXPECT_EQ(FooId(3), FooId(3));
  static_assert(!std::is_convertible_v<FooId, BarId>,
                "distinct id spaces must not convert");
}

TEST(StrongIdTest, Hashable) {
  std::unordered_map<FooId, int> map;
  map[FooId(5)] = 50;
  EXPECT_EQ(map.at(FooId(5)), 50);
}

// --- ThreadPool -------------------------------------------------------------------

TEST(ThreadPoolTest, ZeroWorkersRunInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<int> hits(16, 0);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(hits.size(), [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    hits[i] = 1;
  });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1), 16);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(17);
    pool.ParallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    // The barrier has returned: results must be fully visible.
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, UnevenWorkStillCompletes) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(64, [&](std::size_t i) {
    // One straggler among cheap tasks exercises the drain wait.
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 64u * 63u / 2);
}

TEST(ThreadPoolTest, EmptyAndSingleItemJobs) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "must not run"; });
  int runs = 0;
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

// --- InplaceFunction ------------------------------------------------------------

TEST(InplaceFunctionTest, InvokesSmallCapturesInline) {
  int hits = 0;
  InplaceFunction<void()> fn([&hits]() { ++hits; });
  ASSERT_TRUE(fn);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  // A reference capture is well under the budget.
  using F = InplaceFunction<void()>;
  struct Small {
    void* a;
    void* b;
    void operator()() const {}
  };
  static_assert(F::fits_inline<Small>);
}

TEST(InplaceFunctionTest, ReturnsValuesAndTakesArguments) {
  InplaceFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InplaceFunctionTest, LargeCapturesTakeHeapEscapeHatch) {
  std::array<std::uint64_t, 16> big{};  // 128 B: past the inline budget
  big[15] = 42;
  InplaceFunction<std::uint64_t()> fn([big]() { return big[15]; });
  using F = InplaceFunction<std::uint64_t()>;
  static_assert(!F::fits_inline<decltype([big]() { return big[15]; })>);
  EXPECT_EQ(fn(), 42u);
  // Heap payload survives moves.
  InplaceFunction<std::uint64_t()> moved(std::move(fn));
  EXPECT_EQ(moved(), 42u);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): emptied, by contract
}

TEST(InplaceFunctionTest, MoveTransfersOwnershipExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    InplaceFunction<void()> a([counter]() { ++*counter; });
    EXPECT_EQ(counter.use_count(), 2);
    InplaceFunction<void()> b(std::move(a));
    EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
    EXPECT_FALSE(a);                    // NOLINT(bugprone-use-after-move)
    b();
    InplaceFunction<void()> c;
    c = std::move(b);
    c();
  }
  EXPECT_EQ(counter.use_count(), 1);  // all wrappers released their capture
  EXPECT_EQ(*counter, 2);
}

TEST(InplaceFunctionTest, CapturesMoveOnlyState) {
  auto owned = std::make_unique<int>(7);
  InplaceFunction<int()> fn([owned = std::move(owned)]() { return *owned; });
  EXPECT_EQ(fn(), 7);
}

// --- SharedBytes ----------------------------------------------------------------

TEST(SharedBytesTest, AdoptsBufferWithoutCopyAndSharesByRefcount) {
  Bytes original = ToBytes("payload");
  const std::uint8_t* storage = original.data();
  SharedBytes shared(std::move(original));
  EXPECT_EQ(shared.data(), storage);  // adopted, not copied
  EXPECT_EQ(shared.size(), 7u);
  SharedBytes alias = shared;
  EXPECT_EQ(alias.data(), storage);
  EXPECT_EQ(shared.use_count(), 2);
}

TEST(SharedBytesTest, ConvertsToPlainBufferViewsForLegacyHandlers) {
  SharedBytes shared(ToBytes("abc"));
  // The two implicit conversions receive handlers rely on.
  const Bytes& as_bytes = shared;
  std::span<const std::uint8_t> as_span = shared;
  EXPECT_EQ(as_bytes.size(), 3u);
  EXPECT_EQ(as_span.data(), shared.data());
  EXPECT_EQ(ToString(shared), "abc");  // span conversion at a call site
}

TEST(SharedBytesTest, EmptyHandleIsSafe) {
  SharedBytes empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  const Bytes& as_bytes = empty;
  EXPECT_TRUE(as_bytes.empty());
  SharedBytes from_empty_vector((Bytes()));
  EXPECT_TRUE(from_empty_vector.empty());
}

TEST(SharedBytesTest, CopyFactoryDeepCopies) {
  Bytes original = ToBytes("xyz");
  SharedBytes copy = SharedBytes::Copy(original);
  EXPECT_NE(copy.data(), original.data());
  original[0] = '!';
  EXPECT_EQ(ToString(copy), "xyz");
}

// --- Log ----------------------------------------------------------------------

TEST(LogTest, EnabledIsALevelThresholdCheck) {
  Log::SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(Log::Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::Enabled(LogLevel::kError));
  Log::SetLevel(LogLevel::kOff);
  EXPECT_FALSE(Log::Enabled(LogLevel::kError));
}

// Enabled() is a single relaxed atomic load (deploy workers hit disabled
// DACM_LOG sites in their hot loops), so level changes and sink swaps
// must be safe while other threads are logging.  Under TSan this test is
// the race detector for the logger's level/sink paths.
TEST(LogTest, SinkSwapsAreSafeWhileWorkersLog) {
  Log::SetLevel(LogLevel::kInfo);
  std::atomic<std::uint64_t> sink_a_lines{0};
  std::atomic<std::uint64_t> sink_b_lines{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&stop, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        DACM_LOG_INFO("log-test") << "worker " << w << " line";
        DACM_LOG_DEBUG("log-test") << "suppressed";  // below the level
      }
    });
  }
  // Swap sinks (and flip the level) under live traffic; every line lands
  // in whichever sink was installed when Write took the sink mutex.
  for (int swap = 0; swap < 50; ++swap) {
    Log::SetSink([&sink_a_lines](LogLevel, std::string_view component,
                                 std::string_view) {
      if (component == "log-test") {
        sink_a_lines.fetch_add(1, std::memory_order_relaxed);
      }
    });
    Log::SetSink([&sink_b_lines](LogLevel, std::string_view component,
                                 std::string_view) {
      if (component == "log-test") {
        sink_b_lines.fetch_add(1, std::memory_order_relaxed);
      }
    });
    Log::SetLevel(swap % 2 == 0 ? LogLevel::kInfo : LogLevel::kWarn);
  }
  Log::SetLevel(LogLevel::kInfo);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
  Log::SetSink(nullptr);
  Log::SetLevel(LogLevel::kOff);
  // The b-sink was installed last and kept running for 20 ms of live
  // logging, so it must have seen traffic.
  EXPECT_GT(sink_b_lines.load(), 0u);
}

}  // namespace
}  // namespace dacm::support
