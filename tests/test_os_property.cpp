// Scheduling and alarm properties of the OSEK-style kernel: drift-free
// periodicity across period sweeps, priority-order execution under every
// activation permutation, bounded pending activations, and the stopped
// callback alarm used by the PIRTE's lazily armed step scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "os/os.hpp"
#include "test_util.hpp"

namespace dacm::os {
namespace {

struct Kernel {
  sim::Simulator simulator;
  Os os{simulator, "ECU"};
};

// --- periodic alarms are drift-free ------------------------------------------------------

class PeriodSweep : public ::testing::TestWithParam<sim::SimTime> {};

TEST_P(PeriodSweep, FiringCountIsExactOverALongHorizon) {
  const sim::SimTime period = GetParam();
  Kernel kernel;
  std::vector<sim::SimTime> fire_times;
  ASSERT_TRUE(kernel.os
                  .CreateCallbackAlarm(
                      "tick",
                      [&]() { fire_times.push_back(kernel.simulator.Now()); },
                      period, period)
                  .ok());
  ASSERT_TRUE(kernel.os.StartOs().ok());
  const sim::SimTime horizon = 10 * sim::kSecond;
  kernel.simulator.RunUntil(horizon);
  // Fires at period, 2*period, ..., floor(horizon/period)*period: exact.
  ASSERT_EQ(fire_times.size(), static_cast<std::size_t>(horizon / period));
  for (std::size_t i = 0; i < fire_times.size(); ++i) {
    EXPECT_EQ(fire_times[i], (i + 1) * period) << "firing " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep,
                         ::testing::Values(sim::kMillisecond,
                                           7 * sim::kMillisecond,
                                           10 * sim::kMillisecond,
                                           333 * sim::kMillisecond,
                                           sim::kSecond));

// --- priority order under activation permutations -------------------------------------------

class PriorityPermutation
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(PriorityPermutation, ExecutionOrderFollowsPriorityNotActivationOrder) {
  const std::vector<int> activation_order = GetParam();
  Kernel kernel;
  std::vector<int> executed;
  std::vector<TaskId> tasks;
  for (int i = 0; i < static_cast<int>(activation_order.size()); ++i) {
    TaskConfig config;
    config.name = "t" + std::to_string(i);
    config.priority = static_cast<std::uint8_t>(10 + i);  // t0 lowest
    config.body = [&executed, i](EventMask) { executed.push_back(i); };
    tasks.push_back(*kernel.os.CreateTask(std::move(config)));
  }
  ASSERT_TRUE(kernel.os.StartOs().ok());
  // Queue every activation before any dispatch happens (same timestamp).
  for (int index : activation_order) {
    ASSERT_TRUE(kernel.os.ActivateTask(tasks[static_cast<std::size_t>(index)]).ok());
  }
  kernel.simulator.Run();
  // Highest priority first, regardless of who was activated first.
  std::vector<int> expected(activation_order.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<int>(expected.size()) - 1 - static_cast<int>(i);
  }
  EXPECT_EQ(executed, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, PriorityPermutation,
    ::testing::Values(std::vector<int>{0, 1, 2, 3}, std::vector<int>{3, 2, 1, 0},
                      std::vector<int>{1, 3, 0, 2}, std::vector<int>{2, 0, 3, 1},
                      std::vector<int>{0, 2, 1}, std::vector<int>{1, 0}));

// --- bounded pending activations ----------------------------------------------------------------

class ActivationBound : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(ActivationBound, PendingActivationsNeverExceedTheDeclaredBound) {
  const std::uint8_t bound = GetParam();
  Kernel kernel;
  int runs = 0;
  TaskConfig config;
  config.name = "bounded";
  config.max_activations = bound;
  config.body = [&runs](EventMask) { ++runs; };
  auto task = *kernel.os.CreateTask(std::move(config));
  ASSERT_TRUE(kernel.os.StartOs().ok());
  int accepted = 0;
  for (int i = 0; i < 3 * bound; ++i) {
    if (kernel.os.ActivateTask(task).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, bound);  // the rest hit E_OS_LIMIT
  kernel.simulator.Run();
  EXPECT_EQ(runs, bound);
  // After draining, the task accepts activations again.
  EXPECT_TRUE(kernel.os.ActivateTask(task).ok());
  kernel.simulator.Run();
  EXPECT_EQ(runs, bound + 1);
}

INSTANTIATE_TEST_SUITE_P(Bounds, ActivationBound,
                         ::testing::Values(1, 2, 5, 8));

// --- stopped callback alarms (the PIRTE step scheduler's primitive) ------------------------------

TEST(StoppedAlarm, NeverFiresUntilArmed) {
  Kernel kernel;
  int fired = 0;
  auto alarm = kernel.os.CreateStoppedCallbackAlarm("idle", [&]() { ++fired; });
  ASSERT_TRUE(alarm.ok());
  ASSERT_TRUE(kernel.os.StartOs().ok());
  kernel.simulator.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(kernel.simulator.Empty()) << "a stopped alarm must not occupy the queue";
}

TEST(StoppedAlarm, ArmedLaterFiresPeriodically) {
  Kernel kernel;
  int fired = 0;
  auto alarm = kernel.os.CreateStoppedCallbackAlarm("lazy", [&]() { ++fired; });
  ASSERT_TRUE(kernel.os.StartOs().ok());
  kernel.simulator.RunUntil(sim::kSecond);
  ASSERT_TRUE(kernel.os.SetRelAlarm(*alarm, 10 * sim::kMillisecond,
                                    10 * sim::kMillisecond)
                  .ok());
  kernel.simulator.RunUntil(kernel.simulator.Now() + 100 * sim::kMillisecond);
  EXPECT_EQ(fired, 10);
}

TEST(StoppedAlarm, SelfCancelInsideCallbackStopsTheSeries) {
  Kernel kernel;
  int fired = 0;
  AlarmId id = AlarmId::Invalid();
  auto alarm = kernel.os.CreateStoppedCallbackAlarm("self-stop", [&]() {
    if (++fired == 3) (void)kernel.os.CancelAlarm(id);
  });
  ASSERT_TRUE(alarm.ok());
  id = *alarm;
  ASSERT_TRUE(kernel.os.StartOs().ok());
  ASSERT_TRUE(
      kernel.os.SetRelAlarm(id, sim::kMillisecond, sim::kMillisecond).ok());
  kernel.simulator.Run();  // terminates because the alarm cancels itself
  EXPECT_EQ(fired, 3);
}

TEST(StoppedAlarm, CancelAndReArmCycles) {
  Kernel kernel;
  int fired = 0;
  auto alarm = kernel.os.CreateStoppedCallbackAlarm("cycle", [&]() { ++fired; });
  ASSERT_TRUE(kernel.os.StartOs().ok());
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(kernel.os
                    .SetRelAlarm(*alarm, 10 * sim::kMillisecond,
                                 10 * sim::kMillisecond)
                    .ok());
    kernel.simulator.RunUntil(kernel.simulator.Now() + 35 * sim::kMillisecond);
    ASSERT_TRUE(kernel.os.CancelAlarm(*alarm).ok());
    const int after_cancel = fired;
    kernel.simulator.RunUntil(kernel.simulator.Now() + 50 * sim::kMillisecond);
    EXPECT_EQ(fired, after_cancel) << "cancelled alarm fired in cycle " << cycle;
  }
  EXPECT_EQ(fired, 12);  // 3 firings per 35 ms window, 4 cycles
}

TEST(StoppedAlarm, ReArmWhileArmedIsRejected) {
  Kernel kernel;
  auto alarm = kernel.os.CreateStoppedCallbackAlarm("dup", []() {});
  ASSERT_TRUE(kernel.os.StartOs().ok());
  ASSERT_TRUE(kernel.os.SetRelAlarm(*alarm, sim::kSecond, sim::kSecond).ok());
  EXPECT_FALSE(kernel.os.SetRelAlarm(*alarm, sim::kSecond, sim::kSecond).ok());
}

// --- cross-cutting: alarms + tasks -----------------------------------------------------------------

TEST(AlarmTaskInterplay, PeriodicTaskKeepsCadenceWhileLowPriorityFloods) {
  Kernel kernel;
  int control_runs = 0;
  TaskConfig control;
  control.name = "control";
  control.priority = 10;
  control.execution_time = 100 * sim::kMicrosecond;
  control.body = [&](EventMask) { ++control_runs; };
  auto control_task = *kernel.os.CreateTask(std::move(control));

  TaskConfig noise;
  noise.name = "noise";
  noise.priority = 1;
  noise.max_activations = 8;
  noise.execution_time = 400 * sim::kMicrosecond;
  noise.body = [](EventMask) {};
  auto noise_task = *kernel.os.CreateTask(std::move(noise));

  ASSERT_TRUE(kernel.os
                  .CreateTaskAlarm("control.tick", control_task,
                                   10 * sim::kMillisecond, 10 * sim::kMillisecond)
                  .ok());
  ASSERT_TRUE(kernel.os
                  .CreateCallbackAlarm(
                      "noise.flood",
                      [&]() { (void)kernel.os.ActivateTask(noise_task); },
                      sim::kMillisecond, sim::kMillisecond)
                  .ok());
  ASSERT_TRUE(kernel.os.StartOs().ok());
  kernel.simulator.RunUntil(sim::kSecond);
  // 100 control periods in 1 s; allow one lost to end-of-horizon dispatch.
  EXPECT_GE(control_runs, 99);
}

// --- randomized scheduling fuzz ---------------------------------------------------------------

TEST(SchedulerFuzz, RandomPrioritiesAndActivationOrdersAlwaysDispatchByPriority) {
  DACM_PROPERTY_RNG(rng);
  for (int round = 0; round < 24; ++round) {
    SCOPED_TRACE(::testing::Message() << "round " << round);
    const int count = static_cast<int>(rng.NextInRange(2, 8));
    // A random permutation of distinct priorities 10..10+count-1.
    std::vector<std::uint8_t> priorities;
    for (int i = 0; i < count; ++i) {
      priorities.push_back(static_cast<std::uint8_t>(10 + i));
    }
    testutil::Shuffle(rng, priorities);
    Kernel kernel;
    std::vector<std::uint8_t> executed;
    std::vector<TaskId> tasks;
    for (int i = 0; i < count; ++i) {
      TaskConfig config;
      config.name = "t" + std::to_string(i);
      config.priority = priorities[static_cast<std::size_t>(i)];
      config.body = [&executed, priority = priorities[static_cast<std::size_t>(i)]](
                        EventMask) { executed.push_back(priority); };
      tasks.push_back(*kernel.os.CreateTask(std::move(config)));
    }
    ASSERT_TRUE(kernel.os.StartOs().ok());
    // Activate everyone at the same timestamp, in a second random order.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < tasks.size(); ++i) order.push_back(i);
    testutil::Shuffle(rng, order);
    for (std::size_t index : order) {
      ASSERT_TRUE(kernel.os.ActivateTask(tasks[index]).ok());
    }
    kernel.simulator.Run();
    std::vector<std::uint8_t> expected = executed;
    std::sort(expected.rbegin(), expected.rend());
    EXPECT_EQ(executed, expected);
    EXPECT_EQ(executed.size(), static_cast<std::size_t>(count));
  }
}

}  // namespace
}  // namespace dacm::os
