// System-level integration tests: multi-vehicle federations, plug-in
// isolation under load, fault injection on the CAN bus, watchdog
// supervision of the VM task, and the update (uninstall + reinstall)
// workflow of the paper.
#include <gtest/gtest.h>

#include "bsw/watchdog.hpp"
#include "fes/appgen.hpp"
#include "fes/device.hpp"
#include "fes/fleet.hpp"
#include "fes/testbed.hpp"
#include "support/log.hpp"

namespace dacm::fes {
namespace {

struct FesTest : ::testing::Test {
  std::unique_ptr<Figure3Testbed> testbed;

  void SetUp() override {
    auto created = Figure3Testbed::Create();
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    testbed = std::move(*created);
    ASSERT_TRUE(testbed->SetUp().ok());
  }
};

// --- update workflow ----------------------------------------------------------------------

TEST_F(FesTest, UpdateIsUninstallThenFreshInstall) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  ASSERT_TRUE(testbed->SendWheels(1).ok());

  // Paper: "mandating a plug-in to be stopped before being updated, and
  // then restarted fresh" — modelled as uninstall + deploy of v2.
  ASSERT_TRUE(testbed->server()
                  .UninstallApp(testbed->user(), "VIN-0001", "remote-car")
                  .ok());
  testbed->RunUntil(
      [&]() {
        return !testbed->server().AppState("VIN-0001", "remote-car").ok();
      },
      5 * sim::kSecond);

  auto v2 = MakeRemoteCarApp(testbed->options().phone_address);
  v2.version = "2.0";
  ASSERT_TRUE(testbed->server().UploadApp(v2).ok());
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  auto latency = testbed->SendWheels(7);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(testbed->last_wheels(), 7);
  EXPECT_EQ(testbed->vehicle().ecm()->FindPlugin("COM")->version(), "2.0");
}

// --- isolation ------------------------------------------------------------------------------

TEST_F(FesTest, MisbehavingSecondAppDoesNotBreakControlPath) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());

  // A hostile app on ECU2 that spins forever on every step tick.
  server::App hostile;
  hostile.name = "hog";
  hostile.version = "1.0";
  server::PluginDecl plugin;
  plugin.name = "hog.p0";
  plugin.binary = AssembleOrDie(R"(
    .entry step spin
    spin:
    loop: JMP loop
  )");
  plugin.ports = {{0, "out", pirte::PluginPortDirection::kProvided}};
  hostile.plugins.push_back(std::move(plugin));
  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.placements = {{"hog.p0", 2}};
  hostile.confs.push_back(std::move(conf));
  ASSERT_TRUE(testbed->server().UploadApp(hostile).ok());
  ASSERT_TRUE(testbed->server().Deploy(testbed->user(), "VIN-0001", "hog").ok());
  testbed->RunUntil(
      [&]() {
        auto state = testbed->server().AppState("VIN-0001", "hog");
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      5 * sim::kSecond);

  // The fuel budget confines the hog; control commands still flow.
  for (int i = 1; i <= 5; ++i) {
    auto latency = testbed->SendWheels(i);
    ASSERT_TRUE(latency.ok()) << "command " << i;
  }
  EXPECT_EQ(testbed->last_wheels(), 5);
  auto* pirte2 = testbed->vehicle().FindPirte("PIRTE2");
  EXPECT_GE(pirte2->stats().vm_fuel_exhaustions, 1u);
  // The hog is still "running" — budget enforcement, not quarantine.
  EXPECT_EQ(pirte2->FindPlugin("hog.p0")->state(), pirte::PluginState::kRunning);
}

TEST_F(FesTest, BuiltInRunnablesKeepTheirCadenceUnderPluginLoad) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  auto* ecu2 = testbed->vehicle().FindEcu(2);
  auto task = ecu2->ecu_os().FindTask("rte.MotorControl.MeasureSpeed");
  ASSERT_TRUE(task.ok());
  const auto before = ecu2->ecu_os().task_activations(*task);
  // Hammer the control path for one simulated second.
  for (int i = 0; i < 10; ++i) (void)testbed->SendWheels(i);
  const sim::SimTime horizon = testbed->simulator().Now() + sim::kSecond;
  testbed->simulator().RunUntil(horizon);
  const auto after = ecu2->ecu_os().task_activations(*task);
  // MeasureSpeed has a 100 ms period: ~10 activations per second regardless
  // of plug-in traffic (allow scheduling slack).
  EXPECT_GE(after - before, 8u);
}

TEST_F(FesTest, HostileValuesStopAtTheCriticalSignalGuards) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  ASSERT_TRUE(testbed->SendWheels(10).ok());
  ASSERT_TRUE(testbed->SendSpeed(50).ok());

  // Out-of-range wheel angle: the guard clamps, the motor sees the bound.
  ASSERT_TRUE(testbed->SendWheels(9000).ok());
  EXPECT_EQ(testbed->last_wheels(), 45);
  EXPECT_GE(testbed->wheels_guard()->stats().clamped, 1u);

  // Out-of-range speed: the guard drops, the motor keeps the last safe value.
  (void)testbed->phone().Send("Speed", EncodeControl(-200));
  testbed->simulator().RunFor(200 * sim::kMillisecond);
  EXPECT_EQ(testbed->last_speed(), 50);
  EXPECT_GE(testbed->speed_guard()->stats().dropped_range, 1u);

  // Both violations are diagnosed on ECU2; the OP plug-in is not faulted.
  auto* ecu2 = testbed->vehicle().FindEcu(2);
  EXPECT_TRUE(*ecu2->dem().IsEventConfirmed(*ecu2->dem().FindEvent("guard.WheelsReq")));
  EXPECT_TRUE(*ecu2->dem().IsEventConfirmed(*ecu2->dem().FindEvent("guard.SpeedReq")));
  EXPECT_EQ(testbed->vehicle().FindPirte("PIRTE2")->FindPlugin("OP")->state(),
            pirte::PluginState::kRunning);

  // In-range traffic continues unharmed.
  ASSERT_TRUE(testbed->SendSpeed(80).ok());
  EXPECT_EQ(testbed->last_speed(), 80);
}

TEST_F(FesTest, GuardsCanBeDisabledByTheOem) {
  auto open = Figure3Testbed::Create([] {
    Figure3Options options;
    options.guard_critical_signals = false;
    return options;
  }());
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE((*open)->SetUp().ok());
  ASSERT_TRUE((*open)->DeployRemoteCar().ok());
  ASSERT_TRUE((*open)->SendWheels(9000).ok());
  EXPECT_EQ((*open)->last_wheels(), 9000);  // nothing in the way
  EXPECT_EQ((*open)->wheels_guard(), nullptr);
}

// --- CAN fault injection -------------------------------------------------------------------

TEST_F(FesTest, InstallationSurvivesCorruptBusOnlyWhenCrcHolds) {
  testbed->vehicle().bus().SetCorruptRate(0.05);
  // Deployment may or may not complete depending on which frames got hit;
  // what must never happen is a corrupted package being installed.
  (void)testbed->server().Deploy(testbed->user(), "VIN-0001", "remote-car");
  testbed->simulator().RunFor(10 * sim::kSecond);
  auto* op = testbed->vehicle().FindPirte("PIRTE2")->FindPlugin("OP");
  if (op != nullptr) {
    // If it made it through, the binary was intact and the plug-in runs.
    EXPECT_EQ(op->state(), pirte::PluginState::kRunning);
  }
  auto state = testbed->server().AppState("VIN-0001", "remote-car");
  ASSERT_TRUE(state.ok());
  // Either fully acknowledged or still pending/failed — never a half state.
  EXPECT_TRUE(*state == server::InstallState::kInstalled ||
              *state == server::InstallState::kPending ||
              *state == server::InstallState::kFailed);
}

TEST_F(FesTest, CleanBusDeliversDespitePriorFaults) {
  testbed->vehicle().bus().SetCorruptRate(0.5);
  (void)testbed->server().Deploy(testbed->user(), "VIN-0001", "remote-car");
  testbed->simulator().RunFor(5 * sim::kSecond);
  testbed->vehicle().bus().SetCorruptRate(0.0);
  // Repair: restore re-pushes the identical packages.
  auto install_state = testbed->server().AppState("VIN-0001", "remote-car");
  ASSERT_TRUE(install_state.ok());
  if (*install_state != server::InstallState::kInstalled) {
    // Re-push to the possibly half-provisioned ECUs; duplicates nack but
    // the missing plug-in lands.
    (void)testbed->server().Restore(testbed->user(), "VIN-0001", 1);
    (void)testbed->server().Restore(testbed->user(), "VIN-0001", 2);
    testbed->simulator().RunFor(5 * sim::kSecond);
  }
  EXPECT_NE(testbed->vehicle().FindPirte("PIRTE2")->FindPlugin("OP"), nullptr);
}

// --- watchdog supervision ----------------------------------------------------------------------

TEST_F(FesTest, WatchdogSupervisesTheVmTask) {
  auto* ecu2 = testbed->vehicle().FindEcu(2);
  auto event = ecu2->dem().DefineEvent("wd.vm");
  ASSERT_TRUE(event.ok());
  bsw::Watchdog watchdog(testbed->simulator(), ecu2->dem(), 500 * sim::kMillisecond);
  // The VM only runs when plug-ins have work, so supervise with min_alive 0
  // inverted: here we demand at least one activation per cycle and feed it
  // via the step scheduler — absence of plug-ins must trip the watchdog.
  auto entity = watchdog.Register("PIRTE2.vm", 1, 1, *event);
  ASSERT_TRUE(entity.ok());
  testbed->vehicle().FindPirte("PIRTE2")->SetAliveHook(
      [&]() { (void)watchdog.ReportAlive(*entity); });
  watchdog.Start();

  // No plug-ins installed -> no VM activity -> supervision expires.
  testbed->simulator().RunFor(3 * sim::kSecond);
  EXPECT_TRUE(*watchdog.Expired(*entity));
  EXPECT_TRUE(*ecu2->dem().IsEventConfirmed(*event));
}

// --- multi-vehicle federation ----------------------------------------------------------------------

TEST(FleetTest, TwoVehiclesShareOneServerIndependently) {
  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);
  server::TrustedServer server(network, "fleet-server:443");
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.UploadVehicleModel(MakeRpiTestbedConf()).ok());

  auto build_vehicle = [&](const std::string& vin) {
    auto vehicle = std::make_unique<Vehicle>(
        simulator, network, VehicleParams{vin, "rpi-testbed", 500'000});
    Ecu& ecu1 = vehicle->AddEcu(1, vin + ".ECU1");
    auto p1 = vehicle->AddPluginSwc(ecu1, "PIRTE1");
    EXPECT_TRUE(p1.ok());
    EXPECT_TRUE(vehicle->DesignateEcm(**p1, "fleet-server:443").ok());
    EXPECT_TRUE(vehicle->Finalize().ok());
    return vehicle;
  };
  auto car_a = build_vehicle("VIN-A");
  auto car_b = build_vehicle("VIN-B");
  simulator.RunFor(2 * sim::kSecond);
  ASSERT_TRUE(server.VehicleOnline("VIN-A"));
  ASSERT_TRUE(server.VehicleOnline("VIN-B"));

  auto alice = server.CreateUser("alice");
  auto bob = server.CreateUser("bob");
  ASSERT_TRUE(server.BindVehicle(*alice, "VIN-A", "rpi-testbed").ok());
  ASSERT_TRUE(server.BindVehicle(*bob, "VIN-B", "rpi-testbed").ok());

  SyntheticAppParams params;
  params.name = "fleet-app";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 1;
  ASSERT_TRUE(server.UploadApp(MakeSyntheticApp(params)).ok());

  // Deploy only to A.
  ASSERT_TRUE(server.Deploy(*alice, "VIN-A", "fleet-app").ok());
  simulator.RunFor(2 * sim::kSecond);
  EXPECT_EQ(*server.AppState("VIN-A", "fleet-app"), server::InstallState::kInstalled);
  EXPECT_FALSE(server.AppState("VIN-B", "fleet-app").ok());
  EXPECT_NE(car_a->ecm()->FindPlugin("fleet-app.p0"), nullptr);
  EXPECT_EQ(car_b->ecm()->FindPlugin("fleet-app.p0"), nullptr);

  // Then to B; both run independently.
  ASSERT_TRUE(server.Deploy(*bob, "VIN-B", "fleet-app").ok());
  simulator.RunFor(2 * sim::kSecond);
  EXPECT_EQ(*server.AppState("VIN-B", "fleet-app"), server::InstallState::kInstalled);
  EXPECT_NE(car_b->ecm()->FindPlugin("fleet-app.p0"), nullptr);
}

TEST(FleetTest, CampaignBatchReachesRealEcmsAndInstalls) {
  // A sharded campaign against *real* vehicles: the kInstallBatch arrives
  // at each ECM, is unpacked into per-plug-in installs, routed, executed
  // and acknowledged plug-in by plug-in — the server's row must converge
  // to kInstalled exactly as with individual pushes.
  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);
  server::TrustedServer server(network, "fleet-server:443",
                               server::ServerOptions{2});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.UploadVehicleModel(MakeRpiTestbedConf()).ok());

  auto build_vehicle = [&](const std::string& vin) {
    auto vehicle = std::make_unique<Vehicle>(
        simulator, network, VehicleParams{vin, "rpi-testbed", 500'000});
    Ecu& ecu1 = vehicle->AddEcu(1, vin + ".ECU1");
    auto p1 = vehicle->AddPluginSwc(ecu1, "PIRTE1");
    EXPECT_TRUE(p1.ok());
    EXPECT_TRUE(vehicle->DesignateEcm(**p1, "fleet-server:443").ok());
    EXPECT_TRUE(vehicle->Finalize().ok());
    return vehicle;
  };
  std::vector<std::unique_ptr<Vehicle>> cars;
  std::vector<std::string> vins = {"VIN-CA", "VIN-CB", "VIN-CC"};
  for (const std::string& vin : vins) cars.push_back(build_vehicle(vin));
  simulator.RunFor(2 * sim::kSecond);

  auto alice = server.CreateUser("alice");
  ASSERT_TRUE(alice.ok());
  for (const std::string& vin : vins) {
    ASSERT_TRUE(server.BindVehicle(*alice, vin, "rpi-testbed").ok());
    ASSERT_TRUE(server.VehicleOnline(vin));
  }

  SyntheticAppParams params;
  params.name = "campaign-app";
  params.vehicle_model = "rpi-testbed";
  params.plugin_count = 2;
  params.target_ecu = 1;
  ASSERT_TRUE(server.UploadApp(MakeSyntheticApp(params)).ok());

  auto report = server.DeployCampaign(*alice, "campaign-app", vins);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->deployed, 3u);
  EXPECT_EQ(report->rejected, 0u);
  simulator.RunFor(2 * sim::kSecond);

  for (std::size_t i = 0; i < vins.size(); ++i) {
    EXPECT_EQ(*server.AppState(vins[i], "campaign-app"),
              server::InstallState::kInstalled)
        << vins[i];
    EXPECT_NE(cars[i]->ecm()->FindPlugin("campaign-app.p0"), nullptr);
    EXPECT_NE(cars[i]->ecm()->FindPlugin("campaign-app.p1"), nullptr);
  }
  // One batched push per vehicle.
  EXPECT_EQ(server.stats().packages_pushed, 3u);
}

TEST(FleetTest, ShardedCampaignIsDeterministicAcrossRuns) {
  // Two identical sharded campaigns must produce identical event traces:
  // worker scheduling may differ, but the drain barrier canonicalizes the
  // network order, so delivered-message counts and final states match a
  // fresh run exactly.
  auto run_once = [](std::size_t shards) {
    sim::Simulator simulator;
    sim::Network network(simulator, sim::kMillisecond);
    server::TrustedServer server(network, "srv:443",
                                 server::ServerOptions{shards});
    EXPECT_TRUE(server.Start().ok());
    EXPECT_TRUE(server.UploadVehicleModel(MakeRpiTestbedConf()).ok());
    auto user = *server.CreateUser("u");
    ScriptedFleetOptions options;
    options.vehicle_count = 32;
    ScriptedFleet fleet(simulator, network, server, options);
    EXPECT_TRUE(fleet.BindAndConnect(user).ok());
    SyntheticAppParams params;
    params.name = "det-app";
    params.vehicle_model = "rpi-testbed";
    params.plugin_count = 2;
    params.target_ecu = 1;
    EXPECT_TRUE(server.UploadApp(MakeSyntheticApp(params)).ok());

    // Record the *order* acknowledgements complete on the simulation
    // thread — aggregate counters alone would not notice a reordering.
    std::vector<std::string> ack_order;
    support::Log::SetSink([&ack_order](support::LogLevel, std::string_view,
                                       std::string_view message) {
      if (message.find("fully acknowledged") != std::string_view::npos) {
        ack_order.emplace_back(message);
      }
    });
    support::Log::SetLevel(support::LogLevel::kInfo);
    EXPECT_TRUE(server.DeployCampaign(user, "det-app", fleet.vins()).ok());
    simulator.Run();
    support::Log::SetLevel(support::LogLevel::kOff);
    support::Log::SetSink(nullptr);
    EXPECT_EQ(ack_order.size(), 32u);
    return std::tuple(network.messages_delivered(), simulator.Now(),
                      server.stats().acks_received, server.stats().deploys_ok,
                      ack_order);
  };
  const auto a = run_once(4);
  const auto b = run_once(4);
  EXPECT_EQ(a, b);
  // And the shard count must not change the observable protocol at all —
  // including the completion order.
  const auto c = run_once(1);
  EXPECT_EQ(std::get<0>(a), std::get<0>(c));
  EXPECT_EQ(std::get<2>(a), std::get<2>(c));
  EXPECT_EQ(std::get<3>(a), std::get<3>(c));
  EXPECT_EQ(std::get<4>(a), std::get<4>(c));
}

TEST(FleetTest, FederatedTelemetryFlowsVehicleToDevice) {
  // A vehicle-resident plug-in publishes a counter outbound to an external
  // FES participant — the reverse direction of the remote-control demo.
  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);
  server::TrustedServer server(network, "srv:443");
  ASSERT_TRUE(server.Start().ok());
  ExternalDevice dashboard(network, "dash:80");
  ASSERT_TRUE(dashboard.Start().ok());
  std::vector<std::int32_t> readings;
  dashboard.SetFrameHandler([&](const std::string& id, const support::Bytes& payload) {
    if (id == "Telemetry" && !payload.empty()) readings.push_back(payload[0]);
  });

  auto model = MakeRpiTestbedConf();
  ASSERT_TRUE(server.UploadVehicleModel(model).ok());

  Vehicle vehicle(simulator, network, VehicleParams{"VIN-T", "rpi-testbed", 500'000});
  Ecu& ecu1 = vehicle.AddEcu(1, "ECU1");
  auto p1 = vehicle.AddPluginSwc(ecu1, "PIRTE1");
  ASSERT_TRUE(p1.ok());
  (*p1)->SetStepPeriod(100 * sim::kMillisecond);
  ASSERT_TRUE(vehicle.DesignateEcm(**p1, "srv:443").ok());
  ASSERT_TRUE(vehicle.Finalize().ok());
  simulator.RunFor(sim::kSecond);
  ASSERT_TRUE(server.VehicleOnline("VIN-T"));

  server::App app;
  app.name = "telemetry";
  app.version = "1.0";
  server::PluginDecl plugin;
  plugin.name = "reporter";
  plugin.binary = MakeCounterPluginBinary();  // step: counter -> port 0
  plugin.ports = {{0, "count", pirte::PluginPortDirection::kProvided}};
  app.plugins.push_back(std::move(plugin));
  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.placements = {{"reporter", 1}};
  server::ConnectionDecl out;
  out.plugin = "reporter";
  out.local_port = 0;
  out.target = server::ConnectionDecl::Target::kExternalOut;
  out.endpoint = "dash:80";
  out.message_id = "Telemetry";
  conf.connections.push_back(out);
  app.confs.push_back(std::move(conf));
  ASSERT_TRUE(server.UploadApp(app).ok());

  auto user = server.CreateUser("carol");
  ASSERT_TRUE(server.BindVehicle(*user, "VIN-T", "rpi-testbed").ok());
  ASSERT_TRUE(server.Deploy(*user, "VIN-T", "telemetry").ok());
  simulator.RunFor(3 * sim::kSecond);

  ASSERT_GE(readings.size(), 3u);
  // Monotone counter values prove ordered outbound delivery.
  for (std::size_t i = 1; i < readings.size(); ++i) {
    EXPECT_GT(readings[i], readings[i - 1]);
  }
  EXPECT_GE(vehicle.ecm()->ecm_stats().external_out, readings.size());
}

}  // namespace
}  // namespace dacm::fes
