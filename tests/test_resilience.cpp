// Connectivity resilience of the vehicle <-> server federation: the ECM's
// periodic reconnect when the trusted server is not up yet, dead-link
// detection and re-dial, offline deployment rejection followed by
// successful retry, and WAN outage during operation.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/testbed.hpp"
#include "fes/vehicle.hpp"

namespace dacm::fes {
namespace {

struct Federation {
  sim::Simulator simulator;
  sim::Network network{simulator, 10 * sim::kMillisecond};
  std::unique_ptr<server::TrustedServer> server;
  std::unique_ptr<Vehicle> vehicle;

  void StartServer() {
    server = std::make_unique<server::TrustedServer>(network, "srv:443");
    ASSERT_TRUE(server->Start().ok());
    ASSERT_TRUE(server->UploadVehicleModel(MakeRpiTestbedConf()).ok());
  }

  void BuildVehicle() {
    vehicle = std::make_unique<Vehicle>(
        simulator, network, VehicleParams{"VIN-R", "rpi-testbed", 500'000});
    Ecu& ecu1 = vehicle->AddEcu(1, "ECU1");
    auto p1 = vehicle->AddPluginSwc(ecu1, "PIRTE1");
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(vehicle->DesignateEcm(**p1, "srv:443").ok());
    ASSERT_TRUE(vehicle->Finalize().ok());
  }
};

TEST(Resilience, EcmKeepsDialingUntilTheServerExists) {
  Federation fed;
  // The vehicle boots into a world with no server listening.
  fed.BuildVehicle();
  fed.simulator.RunFor(3 * sim::kSecond);
  EXPECT_FALSE(fed.vehicle->ecm()->connected_to_server());

  // The server comes up late; the periodic re-dial finds it.
  fed.StartServer();
  fed.simulator.RunFor(2 * sim::kSecond);
  EXPECT_TRUE(fed.vehicle->ecm()->connected_to_server());
  EXPECT_TRUE(fed.server->VehicleOnline("VIN-R"));
}

TEST(Resilience, DeployToOfflineVehicleFailsCleanlyThenSucceeds) {
  Federation fed;
  fed.StartServer();
  auto user = fed.server->CreateUser("u");
  ASSERT_TRUE(fed.server->BindVehicle(*user, "VIN-R", "rpi-testbed").ok());

  SyntheticAppParams params;
  params.name = "app";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 1;
  ASSERT_TRUE(fed.server->UploadApp(MakeSyntheticApp(params)).ok());

  // No vehicle yet: rejected with kUnavailable, no InstalledAPP row.
  EXPECT_EQ(fed.server->Deploy(*user, "VIN-R", "app").code(),
            support::ErrorCode::kUnavailable);
  EXPECT_FALSE(fed.server->AppState("VIN-R", "app").ok());

  fed.BuildVehicle();
  fed.simulator.RunFor(2 * sim::kSecond);
  ASSERT_TRUE(fed.server->VehicleOnline("VIN-R"));
  ASSERT_TRUE(fed.server->Deploy(*user, "VIN-R", "app").ok());
  fed.simulator.RunFor(2 * sim::kSecond);
  EXPECT_EQ(*fed.server->AppState("VIN-R", "app"),
            server::InstallState::kInstalled);
}

TEST(Resilience, WanOutageDelaysButDoesNotLoseTheFederation) {
  auto testbed = Figure3Testbed::Create();
  ASSERT_TRUE(testbed.ok());
  ASSERT_TRUE((*testbed)->SetUp().ok());
  ASSERT_TRUE((*testbed)->DeployRemoteCar().ok());
  ASSERT_TRUE((*testbed)->SendWheels(5).ok());

  // The WAN goes dark: commands are lost while down (best-effort FES
  // traffic), but nothing breaks.
  (*testbed)->network().SetLinkUp(false);
  auto lost = (*testbed)->SendWheels(10, 500 * sim::kMillisecond);
  EXPECT_FALSE(lost.ok());
  EXPECT_EQ((*testbed)->last_wheels(), 5);

  // Link restored: traffic resumes on the existing connections.
  (*testbed)->network().SetLinkUp(true);
  auto latency = (*testbed)->SendWheels(15);
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ((*testbed)->last_wheels(), 15);
}

}  // namespace
}  // namespace dacm::fes
