// Unit tests for the PIRTE: installation validation and acknowledgement,
// the three PLC routing kinds, Type II multiplexing, Type III translation,
// plug-in lifecycle, fault containment, fuel budgeting, the step
// scheduler, and NvM persistence across ECU reboots.
#include <gtest/gtest.h>

#include <memory>

#include "bsw/nvm.hpp"
#include "fes/appgen.hpp"
#include "fes/ecu.hpp"
#include "pirte/pirte.hpp"
#include "test_util.hpp"
#include "vm/assembler.hpp"

namespace dacm::pirte {
namespace {

using fes::AssembleOrDie;

/// One "boot" of a single-ECU stack hosting a PIRTE whose Type I ports loop
/// back into a test-harness SW-C, whose Type II channel loops back to
/// itself, and whose Type III virtual ports face harness ports:
///
///   V1: Type II   (t2.out -> t2.in loopback)
///   V4: Type III out "ActReq"     -> harness mon_act
///   V6: Type III in  "SensorProv" <- harness drv_sensor
///
/// The external Nvm survives stack destruction, so tests can "reboot" by
/// building a second stack over the same Nvm.
struct PirteStack {
  sim::Simulator simulator;
  sim::CanBus bus{simulator, 500'000};
  fes::Ecu ecu{simulator, bus, 1, "ECU1"};
  std::unique_ptr<Pirte> pirte;
  std::vector<PirteMessage> acks;
  rte::PortId drv_t1, mon_act, drv_sensor;

  explicit PirteStack(bsw::Nvm& nvm, PirteConfig overrides = {}) {
    rte::Rte& ecu_rte = ecu.ecu_rte();
    auto plug_swc = *ecu_rte.AddSwc("Plug");
    auto harness_swc = *ecu_rte.AddSwc("Harness");

    auto add_port = [&](rte::SwcId swc, const std::string& name,
                        rte::PortDirection dir, std::size_t max_len = 4096) {
      rte::PortConfig config;
      config.name = name;
      config.direction = dir;
      config.max_len = max_len;
      return *ecu_rte.AddPort(swc, std::move(config));
    };

    auto t1_out = add_port(plug_swc, "t1.out", rte::PortDirection::kProvided);
    auto t1_in = add_port(plug_swc, "t1.in", rte::PortDirection::kRequired);
    auto t2_out = add_port(plug_swc, "t2.out", rte::PortDirection::kProvided, 256);
    auto t2_in = add_port(plug_swc, "t2.in", rte::PortDirection::kRequired, 256);
    auto act_out = add_port(plug_swc, "ActReq", rte::PortDirection::kProvided, 256);
    auto sensor_in = add_port(plug_swc, "SensorProv", rte::PortDirection::kRequired, 256);

    auto mon_t1 = add_port(harness_swc, "mon.t1", rte::PortDirection::kRequired);
    drv_t1 = add_port(harness_swc, "drv.t1", rte::PortDirection::kProvided);
    mon_act = add_port(harness_swc, "mon.act", rte::PortDirection::kRequired, 256);
    drv_sensor = add_port(harness_swc, "drv.sensor", rte::PortDirection::kProvided, 256);

    EXPECT_TRUE(ecu_rte.ConnectLocal(t1_out, mon_t1).ok());
    EXPECT_TRUE(ecu_rte.ConnectLocal(drv_t1, t1_in).ok());
    EXPECT_TRUE(ecu_rte.ConnectLocal(t2_out, t2_in).ok());
    EXPECT_TRUE(ecu_rte.ConnectLocal(act_out, mon_act).ok());
    EXPECT_TRUE(ecu_rte.ConnectLocal(drv_sensor, sensor_in).ok());

    EXPECT_TRUE(ecu_rte.SetPortListener(mon_t1, [this](std::span<const std::uint8_t> d) {
      auto message = PirteMessage::Deserialize(d);
      if (message.ok()) acks.push_back(*message);
    }).ok());

    PirteConfig config = std::move(overrides);
    config.name = "P1";
    config.ecu_id = 1;
    config.swc = plug_swc;
    config.type1_out = t1_out;
    config.type1_in = t1_in;
    config.nv_block = [&nvm]() {
      auto existing = nvm.FindBlock("pirte.P1");
      if (existing.ok()) return *existing;
      return *nvm.DefineBlock("pirte.P1", 1 << 20);
    }();

    VirtualPortConfig v1;
    v1.id = 1;
    v1.name = "t2.loop";
    v1.kind = VirtualPortKind::kTypeII;
    v1.swc_out = t2_out;
    v1.swc_in = t2_in;
    config.virtual_ports.push_back(v1);

    VirtualPortConfig v4;
    v4.id = 4;
    v4.name = "ActReq";
    v4.kind = VirtualPortKind::kTypeIII;
    v4.swc_out = act_out;
    if (act_translate) v4.translate_out = act_translate;
    config.virtual_ports.push_back(v4);

    VirtualPortConfig v6;
    v6.id = 6;
    v6.name = "SensorProv";
    v6.kind = VirtualPortKind::kTypeIII;
    v6.swc_in = sensor_in;
    if (sensor_translate) sensor_translate_applied = true, v6.translate_in = sensor_translate;
    config.virtual_ports.push_back(v6);

    pirte = std::make_unique<Pirte>(ecu_rte, &nvm, &ecu.dem(), std::move(config));
    EXPECT_TRUE(pirte->Init().ok());
    EXPECT_TRUE(ecu.Start().ok());
    simulator.Run();
  }

  /// Injects a Type I message as if it came from the ECM.  Settling uses a
  /// bounded run: with a step-scheduled plug-in installed the event queue
  /// never drains, so Run() would not return.
  void SendTypeI(const PirteMessage& message) {
    EXPECT_TRUE(ecu.ecu_rte().Write(drv_t1, message.Serialize()).ok());
    simulator.RunFor(5 * sim::kMillisecond);
  }

  void InstallExpectOk(const InstallationPackage& package) {
    PirteMessage message;
    message.type = MessageType::kInstallPackage;
    message.plugin_name = package.plugin_name;
    message.payload = package.Serialize();
    const std::size_t acks_before = acks.size();
    SendTypeI(message);
    ASSERT_EQ(acks.size(), acks_before + 1);
    ASSERT_TRUE(acks.back().ok) << acks.back().detail;
  }

  support::Result<support::Bytes> ActValue() { return ecu.ecu_rte().Read(mon_act); }
  void DriveSensor(std::span<const std::uint8_t> data) {
    EXPECT_TRUE(ecu.ecu_rte().Write(drv_sensor, data).ok());
    simulator.RunFor(5 * sim::kMillisecond);
  }

  static Translator act_translate;
  static Translator sensor_translate;
  bool sensor_translate_applied = false;
};

Translator PirteStack::act_translate;
Translator PirteStack::sensor_translate;

/// Package builder used throughout (the shared canned-package helper).
using testutil::MakeCannedPackage;

struct PirteTest : ::testing::Test {
  bsw::Nvm nvm;
  std::unique_ptr<PirteStack> stack;

  void SetUp() override {
    PirteStack::act_translate = {};
    PirteStack::sensor_translate = {};
    stack = std::make_unique<PirteStack>(nvm);
  }
};

// --- installation -----------------------------------------------------------------------

TEST_F(PirteTest, InstallViaTypeIMessageAcksOk) {
  auto package = MakeCannedPackage("echo", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  ASSERT_NE(stack->pirte->FindPlugin("echo"), nullptr);
  EXPECT_EQ(stack->pirte->FindPlugin("echo")->state(), PluginState::kRunning);
  EXPECT_EQ(stack->pirte->stats().installs, 1u);
  EXPECT_EQ(stack->pirte->InstalledPluginNames(),
            (std::vector<std::string>{"echo"}));
}

TEST_F(PirteTest, CorruptPackageNacksWithReason) {
  auto package = MakeCannedPackage("bad", fes::MakeEchoPluginBinary(), {});
  auto bytes = package.Serialize();
  bytes[bytes.size() / 2] ^= 0x40;
  PirteMessage message;
  message.type = MessageType::kInstallPackage;
  message.plugin_name = "bad";
  message.payload = bytes;
  stack->SendTypeI(message);
  ASSERT_EQ(stack->acks.size(), 1u);
  EXPECT_FALSE(stack->acks[0].ok);
  EXPECT_NE(stack->acks[0].detail.find("CORRUPTED"), std::string::npos);
  EXPECT_EQ(stack->pirte->FindPlugin("bad"), nullptr);
}

TEST_F(PirteTest, MalformedBinaryRejected) {
  auto package = MakeCannedPackage("bad", support::Bytes{1, 2, 3}, {});
  EXPECT_FALSE(stack->pirte->Install(package).ok());
}

TEST_F(PirteTest, DuplicateInstallRejected) {
  auto package = MakeCannedPackage("dup", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  ASSERT_TRUE(stack->pirte->Install(package).ok());
  EXPECT_EQ(stack->pirte->Install(package).code(),
            support::ErrorCode::kAlreadyExists);
}

TEST_F(PirteTest, PluginQuotaEnforced) {
  PirteConfig overrides;
  overrides.max_plugins = 2;
  bsw::Nvm fresh;
  PirteStack limited(fresh, std::move(overrides));
  for (int i = 0; i < 2; ++i) {
    auto package =
        MakeCannedPackage("p" + std::to_string(i), fes::MakeEchoPluginBinary(),
                    {{0, "in", static_cast<std::uint8_t>(i),
                      PluginPortDirection::kRequired}});
    ASSERT_TRUE(limited.pirte->Install(package).ok());
  }
  auto extra = MakeCannedPackage("p2", fes::MakeEchoPluginBinary(),
                           {{0, "in", 9, PluginPortDirection::kRequired}});
  EXPECT_EQ(limited.pirte->Install(extra).code(),
            support::ErrorCode::kResourceExhausted);
}

TEST_F(PirteTest, BinarySizeQuotaEnforced) {
  PirteConfig overrides;
  overrides.max_binary_size = 8;
  bsw::Nvm fresh;
  PirteStack limited(fresh, std::move(overrides));
  auto package = MakeCannedPackage("big", fes::MakeEchoPluginBinary(), {});
  EXPECT_EQ(limited.pirte->Install(package).code(),
            support::ErrorCode::kCapacityExceeded);
}

TEST_F(PirteTest, UniqueIdClashRejected) {
  auto first = MakeCannedPackage("a", fes::MakeEchoPluginBinary(),
                           {{0, "in", 5, PluginPortDirection::kRequired}});
  ASSERT_TRUE(stack->pirte->Install(first).ok());
  auto second = MakeCannedPackage("b", fes::MakeEchoPluginBinary(),
                            {{0, "in", 5, PluginPortDirection::kRequired}});
  EXPECT_EQ(stack->pirte->Install(second).code(), support::ErrorCode::kIncompatible);
}

TEST_F(PirteTest, PlcReferencingUnknownVirtualPortRejected) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "out", 0, PluginPortDirection::kProvided}},
                             {{0, PlcKind::kVirtual, 99, 0, "", 0}});
  EXPECT_EQ(stack->pirte->Install(package).code(), support::ErrorCode::kIncompatible);
}

TEST_F(PirteTest, PlcPortMissingFromPicRejected) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "out", 0, PluginPortDirection::kProvided}},
                             {{3, PlcKind::kVirtual, 4, 0, "", 0}});
  EXPECT_EQ(stack->pirte->Install(package).code(), support::ErrorCode::kIncompatible);
}

TEST_F(PirteTest, OnInstallEntryRunsOnce) {
  // A plug-in that writes a marker to its port during on_install.
  auto binary = AssembleOrDie(R"(
    .entry on_install init
    init:
      PUSH 77
      STORE 128
      WRITEP 0 1
      HALT
  )");
  auto package = MakeCannedPackage("greeter", binary,
                             {{0, "marker", 0, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  stack->simulator.Run();
  auto value = stack->pirte->ReadPluginPortByUnique(0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ((*value)[0], 77);
}

// --- routing ---------------------------------------------------------------------------------

TEST_F(PirteTest, TypeIIIOutReachesBuiltInSoftware) {
  // Echo plug-in: data on P0 is forwarded to P1; P1 is PLC-linked to V4.
  auto package = MakeCannedPackage("fwd", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}},
                             {{1, PlcKind::kVirtual, 4, 0, "", 0}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(
                       0, support::Bytes{5, 6, 7}).ok());
  stack->simulator.Run();
  auto act = stack->ActValue();
  ASSERT_TRUE(act.ok());
  EXPECT_EQ((*act)[0], 5);
  EXPECT_EQ((*act)[1], 6);
}

TEST_F(PirteTest, TypeIIIOutTranslationApplied) {
  PirteStack::act_translate =
      [](std::span<const std::uint8_t> in) -> support::Result<support::Bytes> {
    support::Bytes out(in.begin(), in.end());
    for (auto& byte : out) byte = static_cast<std::uint8_t>(byte + 1);
    return out;
  };
  bsw::Nvm fresh;
  PirteStack translated(fresh);
  auto package = MakeCannedPackage("fwd", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}},
                             {{1, PlcKind::kVirtual, 4, 0, "", 0}});
  translated.InstallExpectOk(package);
  ASSERT_TRUE(
      translated.pirte->DeliverToPluginPortByUnique(0, support::Bytes{10}).ok());
  translated.simulator.Run();
  auto act = translated.ActValue();
  ASSERT_TRUE(act.ok());
  EXPECT_EQ((*act)[0], 11);  // translated on the way out
}

TEST_F(PirteTest, TypeIIIInFansOutToSubscribedPlugins) {
  // Plug-in whose P0 is PLC-linked (kVirtual) to V6; arrivals there fan in,
  // and the echo forwards to P1 which we read back.
  auto package = MakeCannedPackage("sub", fes::MakeEchoPluginBinary(),
                             {{0, "sensor", 0, PluginPortDirection::kRequired},
                              {1, "copy", 1, PluginPortDirection::kProvided}},
                             {{0, PlcKind::kVirtual, 6, 0, "", 0}});
  stack->InstallExpectOk(package);
  stack->DriveSensor(support::Bytes{42});
  stack->simulator.Run();
  auto copy = stack->pirte->ReadPluginPortByUnique(1);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ((*copy)[0], 42);
  EXPECT_GE(stack->pirte->stats().type3_rx, 1u);
}

TEST_F(PirteTest, TypeIIMultiplexingRoundTrip) {
  // writer.P1 -- V1 (Type II loopback) --> reader.P0 (uid 10).
  auto reader = MakeCannedPackage("reader", fes::MakeEchoPluginBinary(),
                            {{0, "in", 10, PluginPortDirection::kRequired},
                             {1, "out", 11, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(reader);
  auto writer = MakeCannedPackage("writer", fes::MakeEchoPluginBinary(),
                            {{0, "in", 0, PluginPortDirection::kRequired},
                             {1, "out", 1, PluginPortDirection::kProvided}},
                            {{1, PlcKind::kVirtualRemote, 1, 10, "", 0}});
  stack->InstallExpectOk(writer);

  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(
                       0, support::Bytes{1, 2, 3}).ok());
  stack->simulator.Run();
  // writer echoed to P1 -> tagged with uid 10 -> V1 -> demuxed to reader.P0
  // -> reader echoed to its own P1 (uid 11).
  auto result = stack->pirte->ReadPluginPortByUnique(11);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0], 1);
  EXPECT_GE(stack->pirte->stats().type2_rx, 1u);
}

TEST_F(PirteTest, TypeIIUnknownRecipientDropsSafely) {
  auto writer = MakeCannedPackage("writer", fes::MakeEchoPluginBinary(),
                            {{0, "in", 0, PluginPortDirection::kRequired},
                             {1, "out", 1, PluginPortDirection::kProvided}},
                            {{1, PlcKind::kVirtualRemote, 1, 200, "", 0}});
  stack->InstallExpectOk(writer);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();  // recipient uid 200 does not exist; no crash
  EXPECT_EQ(stack->pirte->FindPlugin("writer")->state(), PluginState::kRunning);
}

TEST_F(PirteTest, LocalPluginDirectLink) {
  auto sink = MakeCannedPackage("sink", fes::MakeEchoPluginBinary(),
                          {{0, "in", 20, PluginPortDirection::kRequired},
                           {1, "out", 21, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(sink);
  auto source = MakeCannedPackage("source", fes::MakeEchoPluginBinary(),
                            {{0, "in", 0, PluginPortDirection::kRequired},
                             {1, "out", 1, PluginPortDirection::kProvided}},
                            {{1, PlcKind::kLocalPlugin, 0, 0, "sink", 0}});
  stack->InstallExpectOk(source);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{9}).ok());
  stack->simulator.Run();
  auto out = stack->pirte->ReadPluginPortByUnique(21);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], 9);
}

TEST_F(PirteTest, LocalLinkToMissingPeerFaultsTheWriter) {
  auto source = MakeCannedPackage("source", fes::MakeEchoPluginBinary(),
                            {{0, "in", 0, PluginPortDirection::kRequired},
                             {1, "out", 1, PluginPortDirection::kProvided}},
                            {{1, PlcKind::kLocalPlugin, 0, 0, "ghost", 0}});
  stack->InstallExpectOk(source);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  // The write syscall failed -> VM fault -> plug-in quarantined.
  EXPECT_EQ(stack->pirte->FindPlugin("source")->state(), PluginState::kFaulted);
}

TEST_F(PirteTest, ExternalDataMessageDeliversToPluginPort) {
  auto package = MakeCannedPackage("com", fes::MakeEchoPluginBinary(),
                             {{0, "ext", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  PirteMessage external;
  external.type = MessageType::kExternalData;
  external.dest_port = 0;
  external.payload = {13};
  stack->SendTypeI(external);
  stack->simulator.Run();
  auto out = stack->pirte->ReadPluginPortByUnique(1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], 13);
}

// --- lifecycle --------------------------------------------------------------------------------

TEST_F(PirteTest, StopPreventsReactionsStartResumes) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->Stop("p").ok());
  EXPECT_EQ(stack->pirte->FindPlugin("p")->state(), PluginState::kStopped);

  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  EXPECT_FALSE(stack->pirte->ReadPluginPortByUnique(1).ok());  // no reaction

  ASSERT_TRUE(stack->pirte->Start("p").ok());
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{2}).ok());
  stack->simulator.Run();
  auto out = stack->pirte->ReadPluginPortByUnique(1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], 2);
}

TEST_F(PirteTest, LifecycleViaTypeIMessages) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  PirteMessage stop;
  stop.type = MessageType::kStop;
  stop.plugin_name = "p";
  stack->SendTypeI(stop);
  EXPECT_EQ(stack->pirte->FindPlugin("p")->state(), PluginState::kStopped);
  ASSERT_GE(stack->acks.size(), 2u);
  EXPECT_TRUE(stack->acks.back().ok);

  PirteMessage start;
  start.type = MessageType::kStart;
  start.plugin_name = "p";
  stack->SendTypeI(start);
  EXPECT_EQ(stack->pirte->FindPlugin("p")->state(), PluginState::kRunning);
}

TEST_F(PirteTest, UninstallViaTypeIRemovesPlugin) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  PirteMessage uninstall;
  uninstall.type = MessageType::kUninstall;
  uninstall.plugin_name = "p";
  stack->SendTypeI(uninstall);
  EXPECT_EQ(stack->pirte->FindPlugin("p"), nullptr);
  EXPECT_TRUE(stack->acks.back().ok);
  EXPECT_EQ(stack->pirte->stats().uninstalls, 1u);
}

TEST_F(PirteTest, UninstallUnknownNacks) {
  PirteMessage uninstall;
  uninstall.type = MessageType::kUninstall;
  uninstall.plugin_name = "ghost";
  stack->SendTypeI(uninstall);
  ASSERT_EQ(stack->acks.size(), 1u);
  EXPECT_FALSE(stack->acks[0].ok);
}

TEST_F(PirteTest, OnStopEntryRunsBeforeStopping) {
  auto binary = AssembleOrDie(R"(
    .entry on_stop bye
    bye:
      PUSH 99
      STORE 128
      WRITEP 0 1
      HALT
  )");
  auto package = MakeCannedPackage("p", binary,
                             {{0, "marker", 0, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->Stop("p").ok());
  auto marker = stack->pirte->ReadPluginPortByUnique(0);
  ASSERT_TRUE(marker.ok());
  EXPECT_EQ((*marker)[0], 99);
}

// --- fault containment -----------------------------------------------------------------------

TEST_F(PirteTest, TrappingPluginIsQuarantined) {
  auto package = MakeCannedPackage("bomb", fes::MakeTrapPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  auto* plugin = stack->pirte->FindPlugin("bomb");
  EXPECT_EQ(plugin->state(), PluginState::kFaulted);
  EXPECT_EQ(plugin->faults(), 1u);
  EXPECT_NE(plugin->last_fault().find("42"), std::string::npos);
  EXPECT_EQ(stack->pirte->stats().vm_faults, 1u);

  // Dem recorded the confirmed fault.
  auto event = stack->ecu.dem().FindEvent("P1.plugin_fault");
  ASSERT_TRUE(event.ok());
  EXPECT_TRUE(*stack->ecu.dem().IsEventConfirmed(*event));
}

TEST_F(PirteTest, FaultedPluginIgnoresFurtherData) {
  auto package = MakeCannedPackage("bomb", fes::MakeTrapPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{2}).ok());
  stack->simulator.Run();
  EXPECT_EQ(stack->pirte->FindPlugin("bomb")->faults(), 1u);  // no second run
}

TEST_F(PirteTest, FaultedPluginCannotBeStarted) {
  auto package = MakeCannedPackage("bomb", fes::MakeTrapPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  EXPECT_EQ(stack->pirte->Start("bomb").code(),
            support::ErrorCode::kFailedPrecondition);
}

TEST_F(PirteTest, FaultedPluginCanBeReinstalledFresh) {
  auto package = MakeCannedPackage("bomb", fes::MakeTrapPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  // Paper's update rule: stop/remove, then install fresh.
  ASSERT_TRUE(stack->pirte->Uninstall("bomb").ok());
  auto healthy = MakeCannedPackage("bomb", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}});
  ASSERT_TRUE(stack->pirte->Install(healthy).ok());
  EXPECT_EQ(stack->pirte->FindPlugin("bomb")->state(), PluginState::kRunning);
}

TEST_F(PirteTest, FuelExhaustionIsCountedButNonFatal) {
  PirteConfig overrides;
  overrides.vm_limits.fuel_per_activation = 100;
  bsw::Nvm fresh;
  PirteStack limited(fresh, std::move(overrides));
  auto package = MakeCannedPackage("spinner", fes::MakeSpinPluginBinary(100'000),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  limited.InstallExpectOk(package);
  ASSERT_TRUE(limited.pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  limited.simulator.Run();
  EXPECT_EQ(limited.pirte->stats().vm_fuel_exhaustions, 1u);
  EXPECT_EQ(limited.pirte->FindPlugin("spinner")->state(), PluginState::kRunning);
}

// --- step scheduler / supervision ---------------------------------------------------------------

TEST_F(PirteTest, StepEntryRunsPeriodically) {
  PirteConfig overrides;
  overrides.step_period = 10 * sim::kMillisecond;
  bsw::Nvm fresh;
  PirteStack stepping(fresh, std::move(overrides));
  auto package = MakeCannedPackage("counter", fes::MakeCounterPluginBinary(),
                             {{0, "count", 0, PluginPortDirection::kProvided}});
  stepping.InstallExpectOk(package);
  stepping.simulator.RunFor(55 * sim::kMillisecond);
  auto count = stepping.pirte->ReadPluginPortByUnique(0);
  ASSERT_TRUE(count.ok());
  EXPECT_GE((*count)[0], 4);
  EXPECT_LE((*count)[0], 6);
}

TEST_F(PirteTest, AliveHookFiresOnVmActivity) {
  int alive = 0;
  stack->pirte->SetAliveHook([&]() { ++alive; });
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->DeliverToPluginPortByUnique(0, support::Bytes{1}).ok());
  stack->simulator.Run();
  EXPECT_GE(alive, 1);
}

// --- persistence --------------------------------------------------------------------------------

TEST_F(PirteTest, InstalledPluginsSurviveReboot) {
  auto package = MakeCannedPackage("survivor", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired},
                              {1, "out", 1, PluginPortDirection::kProvided}},
                             {{1, PlcKind::kVirtual, 4, 0, "", 0}});
  stack->InstallExpectOk(package);
  stack.reset();  // power off

  PirteStack rebooted(nvm);  // power on: same NvM
  ASSERT_NE(rebooted.pirte->FindPlugin("survivor"), nullptr);
  EXPECT_EQ(rebooted.pirte->FindPlugin("survivor")->state(), PluginState::kRunning);
  // Routing still works after the reboot.
  ASSERT_TRUE(rebooted.pirte->DeliverToPluginPortByUnique(0, support::Bytes{3}).ok());
  rebooted.simulator.Run();
  auto act = rebooted.ActValue();
  ASSERT_TRUE(act.ok());
  EXPECT_EQ((*act)[0], 3);
}

TEST_F(PirteTest, UninstallAlsoRemovesFromPersistence) {
  auto package = MakeCannedPackage("gone", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  ASSERT_TRUE(stack->pirte->Uninstall("gone").ok());
  stack.reset();
  PirteStack rebooted(nvm);
  EXPECT_EQ(rebooted.pirte->FindPlugin("gone"), nullptr);
}

TEST_F(PirteTest, CorruptedNvmBlockYieldsCleanBoot) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  stack.reset();
  auto block = nvm.FindBlock("pirte.P1");
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(nvm.CorruptBlockForTest(*block, 42).ok());
  PirteStack rebooted(nvm);  // must not crash; starts empty
  EXPECT_TRUE(rebooted.pirte->InstalledPluginNames().empty());
}

TEST_F(PirteTest, ReplacedEcuStartsEmpty) {
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(),
                             {{0, "in", 0, PluginPortDirection::kRequired}});
  stack->InstallExpectOk(package);
  stack.reset();
  bsw::Nvm factory_fresh;  // physically new ECU
  PirteStack replaced(factory_fresh);
  EXPECT_TRUE(replaced.pirte->InstalledPluginNames().empty());
}

// --- misc ---------------------------------------------------------------------------------------

TEST_F(PirteTest, ReadUnknownUniqueIdFails) {
  EXPECT_FALSE(stack->pirte->ReadPluginPortByUnique(77).ok());
  EXPECT_FALSE(
      stack->pirte->DeliverToPluginPortByUnique(77, support::Bytes{1}).ok());
}

TEST_F(PirteTest, InstallBeforeInitRejected) {
  bsw::Nvm fresh;
  sim::Simulator simulator;
  sim::CanBus bus(simulator, 500'000);
  fes::Ecu ecu(simulator, bus, 9, "X");
  PirteConfig config;
  config.name = "uninit";
  config.swc = *ecu.ecu_rte().AddSwc("S");
  Pirte pirte(ecu.ecu_rte(), &fresh, nullptr, std::move(config));
  auto package = MakeCannedPackage("p", fes::MakeEchoPluginBinary(), {});
  EXPECT_EQ(pirte.Install(package).code(), support::ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dacm::pirte
