// Unit tests for the basic software: CanIf demultiplexing, CanTp
// segmentation/reassembly (with fault injection), COM signal packing, NvM
// persistence, Dem debounce, watchdog supervision.
#include <gtest/gtest.h>

#include "bsw/can_if.hpp"
#include "bsw/can_tp.hpp"
#include "bsw/com.hpp"
#include "bsw/dem.hpp"
#include "bsw/nvm.hpp"
#include "bsw/watchdog.hpp"
#include "test_util.hpp"

namespace dacm::bsw {
namespace {

struct TwoNodeBus : ::testing::Test, testutil::TwoNodeCanBus {};

// --- CanIf ---------------------------------------------------------------------

TEST_F(TwoNodeBus, RoutesById) {
  std::vector<std::uint32_t> seen;
  ASSERT_TRUE(if_b.BindRx(0x100, [&](const sim::CanFrame& f) {
    seen.push_back(f.can_id);
  }).ok());
  sim::CanFrame frame;
  frame.can_id = 0x100;
  frame.dlc = 1;
  ASSERT_TRUE(if_a.Transmit(frame).ok());
  frame.can_id = 0x200;  // unbound
  ASSERT_TRUE(if_a.Transmit(frame).ok());
  simulator.Run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0x100}));
  EXPECT_EQ(if_b.frames_received(), 2u);
  EXPECT_EQ(if_b.frames_unroutable(), 1u);
}

TEST_F(TwoNodeBus, DuplicateBindingRejected) {
  ASSERT_TRUE(if_a.BindRx(5, [](const sim::CanFrame&) {}).ok());
  EXPECT_EQ(if_a.BindRx(5, [](const sim::CanFrame&) {}).code(),
            support::ErrorCode::kAlreadyExists);
}

// --- CanTp ---------------------------------------------------------------------------

struct TpFixture : ::testing::Test, testutil::ScriptedTpLink {};

TEST_F(TpFixture, SingleFrameMessage) {
  const support::Bytes payload = {1, 2, 3};
  ASSERT_TRUE(tx.Send(payload).ok());
  simulator.Run();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0], payload);
}

TEST_F(TpFixture, EmptyMessage) {
  ASSERT_TRUE(tx.Send(support::Bytes{}).ok());
  simulator.Run();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_TRUE(messages[0].empty());
}

class TpSizeSweep : public TpFixture,
                    public ::testing::WithParamInterface<std::size_t> {};

TEST_P(TpSizeSweep, RoundTripsAnySize) {
  support::Bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  ASSERT_TRUE(tx.Send(payload).ok());
  simulator.Run();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0], payload);
  EXPECT_TRUE(errors.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TpSizeSweep,
                         ::testing::Values(1u, 3u, 7u, 8u, 14u, 15u, 100u, 1000u,
                                           4095u, 4096u, 65537u));

TEST_F(TpFixture, BackToBackMessagesStaySeparate) {
  ASSERT_TRUE(tx.Send(support::Bytes(100, 0xAA)).ok());
  ASSERT_TRUE(tx.Send(support::Bytes(50, 0xBB)).ok());
  simulator.Run();
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].size(), 100u);
  EXPECT_EQ(messages[1].size(), 50u);
}

TEST_F(TpFixture, CorruptionDetectedByCrc) {
  bus.SetCorruptRate(1.0);
  ASSERT_TRUE(tx.Send(support::Bytes(40, 0x55)).ok());
  simulator.Run();
  EXPECT_TRUE(messages.empty());
  EXPECT_GE(rx.reassembly_errors(), 1u);
  ASSERT_FALSE(errors.empty());
}

TEST_F(TpFixture, LostFrameDetectedBySequenceGap) {
  bus.SetDropRate(0.3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tx.Send(support::Bytes(60, static_cast<std::uint8_t>(i))).ok());
  }
  simulator.Run();
  // With 30% frame loss most multi-frame messages die; whatever is
  // delivered must be intact, and losses must be flagged.
  for (const auto& message : messages) {
    EXPECT_EQ(message.size(), 60u);
  }
  EXPECT_LT(messages.size(), 20u);
  EXPECT_GE(rx.reassembly_errors(), 1u);
}

TEST_F(TpFixture, OversizeSendRejected) {
  CanTp small(if_a, 0x300, 0x301, /*max_message=*/64);
  EXPECT_EQ(small.Send(support::Bytes(100, 0)).code(),
            support::ErrorCode::kCapacityExceeded);
}

// --- Com ------------------------------------------------------------------------------

struct ComFixture : TwoNodeBus {
  Com com_a{if_a};
  Com com_b{if_b};
};

TEST_F(ComFixture, SignalTransmissionAndNotification) {
  auto tx_pdu = com_a.DefinePdu("p", 0x200, 4, PduDirection::kTx);
  auto tx_sig = com_a.DefineSignal("s", *tx_pdu, 0, 4);
  auto rx_pdu = com_b.DefinePdu("p", 0x200, 4, PduDirection::kRx);
  auto rx_sig = com_b.DefineSignal("s", *rx_pdu, 0, 4);
  ASSERT_TRUE(com_a.Init().ok());
  ASSERT_TRUE(com_b.Init().ok());

  support::Bytes seen;
  ASSERT_TRUE(com_b.SetRxNotification(*rx_sig, [&](std::span<const std::uint8_t> v) {
    seen.assign(v.begin(), v.end());
  }).ok());

  const support::Bytes value = {9, 8, 7, 6};
  ASSERT_TRUE(com_a.SendSignal(*tx_sig, value).ok());
  simulator.Run();
  EXPECT_EQ(seen, value);

  support::Bytes read(4);
  ASSERT_TRUE(com_b.ReadSignal(*rx_sig, read).ok());
  EXPECT_EQ(read, value);
}

TEST_F(ComFixture, MultipleSignalsSharePdu) {
  auto tx_pdu = com_a.DefinePdu("p", 0x200, 8, PduDirection::kTx);
  auto sig1 = com_a.DefineSignal("s1", *tx_pdu, 0, 2);
  auto sig2 = com_a.DefineSignal("s2", *tx_pdu, 2, 2);
  auto rx_pdu = com_b.DefinePdu("p", 0x200, 8, PduDirection::kRx);
  auto r1 = com_b.DefineSignal("s1", *rx_pdu, 0, 2);
  auto r2 = com_b.DefineSignal("s2", *rx_pdu, 2, 2);
  ASSERT_TRUE(com_a.Init().ok());
  ASSERT_TRUE(com_b.Init().ok());

  ASSERT_TRUE(com_a.SendSignal(*sig1, support::Bytes{1, 2}).ok());
  ASSERT_TRUE(com_a.SendSignal(*sig2, support::Bytes{3, 4}).ok());
  simulator.Run();
  support::Bytes v1(2), v2(2);
  ASSERT_TRUE(com_b.ReadSignal(*r1, v1).ok());
  ASSERT_TRUE(com_b.ReadSignal(*r2, v2).ok());
  EXPECT_EQ(v1, (support::Bytes{1, 2}));
  EXPECT_EQ(v2, (support::Bytes{3, 4}));
}

TEST_F(ComFixture, ConfigValidation) {
  EXPECT_FALSE(com_a.DefinePdu("big", 1, 9, PduDirection::kTx).ok());  // > CAN frame
  auto pdu = com_a.DefinePdu("p", 1, 4, PduDirection::kTx);
  EXPECT_FALSE(com_a.DefineSignal("s", *pdu, 3, 2).ok());  // overflows PDU
  ASSERT_TRUE(com_a.Init().ok());
  EXPECT_FALSE(com_a.DefinePdu("late", 2, 4, PduDirection::kTx).ok());
  EXPECT_EQ(com_a.Init().code(), support::ErrorCode::kFailedPrecondition);
}

TEST_F(ComFixture, SendOnRxSignalRejected) {
  auto pdu = com_a.DefinePdu("p", 1, 4, PduDirection::kRx);
  auto sig = com_a.DefineSignal("s", *pdu, 0, 4);
  ASSERT_TRUE(com_a.Init().ok());
  EXPECT_EQ(com_a.SendSignal(*sig, support::Bytes{1, 2, 3, 4}).code(),
            support::ErrorCode::kInvalidArgument);
}

TEST_F(ComFixture, SizeMismatchRejected) {
  auto pdu = com_a.DefinePdu("p", 1, 4, PduDirection::kTx);
  auto sig = com_a.DefineSignal("s", *pdu, 0, 4);
  ASSERT_TRUE(com_a.Init().ok());
  EXPECT_FALSE(com_a.SendSignal(*sig, support::Bytes{1}).ok());
}

TEST_F(ComFixture, FindSignalByName) {
  auto pdu = com_a.DefinePdu("p", 1, 4, PduDirection::kTx);
  auto sig = com_a.DefineSignal("needle", *pdu, 0, 4);
  EXPECT_EQ(*com_a.FindSignal("needle"), *sig);
  EXPECT_FALSE(com_a.FindSignal("nope").ok());
}

// --- NvM --------------------------------------------------------------------------------

TEST(NvmTest, WriteReadRoundTrip) {
  Nvm nvm;
  auto block = nvm.DefineBlock("b", 128);
  ASSERT_TRUE(block.ok());
  const support::Bytes data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(nvm.WriteBlock(*block, data).ok());
  auto read = nvm.ReadBlock(*block);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST(NvmTest, NeverWrittenBlockIsNotFound) {
  Nvm nvm;
  auto block = nvm.DefineBlock("b", 16);
  EXPECT_EQ(nvm.ReadBlock(*block).status().code(), support::ErrorCode::kNotFound);
}

TEST(NvmTest, OverflowRejected) {
  Nvm nvm;
  auto block = nvm.DefineBlock("b", 4);
  EXPECT_EQ(nvm.WriteBlock(*block, support::Bytes(5, 0)).code(),
            support::ErrorCode::kCapacityExceeded);
}

TEST(NvmTest, CorruptionDetectedOnRead) {
  Nvm nvm;
  auto block = nvm.DefineBlock("b", 64);
  ASSERT_TRUE(nvm.WriteBlock(*block, support::Bytes(32, 0x5A)).ok());
  ASSERT_TRUE(nvm.CorruptBlockForTest(*block, 13).ok());
  EXPECT_EQ(nvm.ReadBlock(*block).status().code(), support::ErrorCode::kCorrupted);
}

TEST(NvmTest, EraseResetsToNeverWritten) {
  Nvm nvm;
  auto block = nvm.DefineBlock("b", 16);
  ASSERT_TRUE(nvm.WriteBlock(*block, support::Bytes{1}).ok());
  ASSERT_TRUE(nvm.EraseBlock(*block).ok());
  EXPECT_EQ(nvm.ReadBlock(*block).status().code(), support::ErrorCode::kNotFound);
}

TEST(NvmTest, DuplicateBlockNameRejected) {
  Nvm nvm;
  ASSERT_TRUE(nvm.DefineBlock("b", 16).ok());
  EXPECT_FALSE(nvm.DefineBlock("b", 16).ok());
  EXPECT_TRUE(nvm.FindBlock("b").ok());
  EXPECT_FALSE(nvm.FindBlock("c").ok());
}

// --- Dem ---------------------------------------------------------------------------------

TEST(DemTest, ImmediateConfirmationAtThresholdOne) {
  sim::Simulator simulator;
  Dem dem(simulator);
  auto event = dem.DefineEvent("e");
  ASSERT_TRUE(event.ok());
  EXPECT_FALSE(*dem.IsEventConfirmed(*event));
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  EXPECT_TRUE(*dem.IsEventConfirmed(*event));
  EXPECT_EQ(*dem.OccurrenceCount(*event), 1u);
}

TEST(DemTest, DebounceRequiresConsecutiveFailures) {
  sim::Simulator simulator;
  Dem dem(simulator);
  auto event = dem.DefineEvent("e", 3);
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  EXPECT_FALSE(*dem.IsEventConfirmed(*event));
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kPassed).ok());  // resets
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  EXPECT_FALSE(*dem.IsEventConfirmed(*event));
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  EXPECT_TRUE(*dem.IsEventConfirmed(*event));
}

TEST(DemTest, OccurrenceCountsEpisodes) {
  sim::Simulator simulator;
  Dem dem(simulator);
  auto event = dem.DefineEvent("e");
  for (int episode = 0; episode < 3; ++episode) {
    ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
    ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kPassed).ok());
  }
  EXPECT_EQ(*dem.OccurrenceCount(*event), 3u);
}

TEST(DemTest, ConfirmationTimestampUsesSimClock) {
  sim::Simulator simulator;
  Dem dem(simulator);
  auto event = dem.DefineEvent("e");
  simulator.RunUntil(777);
  ASSERT_TRUE(dem.ReportEvent(*event, DemEventStatus::kFailed).ok());
  EXPECT_EQ(*dem.LastConfirmedAt(*event), 777u);
}

TEST(DemTest, ClearAllAndReadout) {
  sim::Simulator simulator;
  Dem dem(simulator);
  auto e1 = dem.DefineEvent("first");
  auto e2 = dem.DefineEvent("second");
  ASSERT_TRUE(dem.ReportEvent(*e1, DemEventStatus::kFailed).ok());
  ASSERT_TRUE(dem.ReportEvent(*e2, DemEventStatus::kFailed).ok());
  EXPECT_EQ(dem.ConfirmedEventNames().size(), 2u);
  dem.ClearAll();
  EXPECT_TRUE(dem.ConfirmedEventNames().empty());
  EXPECT_EQ(*dem.OccurrenceCount(*e1), 0u);
}

// --- Watchdog ---------------------------------------------------------------------------

TEST(WatchdogTest, HealthyEntityNeverExpires) {
  sim::Simulator simulator;
  Dem dem(simulator);
  Watchdog watchdog(simulator, dem, 100);
  auto event = dem.DefineEvent("wd");
  auto entity = watchdog.Register("vm", 1, 0, *event);
  ASSERT_TRUE(entity.ok());
  watchdog.Start();
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE(watchdog.ReportAlive(*entity).ok());
    simulator.RunFor(100);
  }
  EXPECT_FALSE(*watchdog.Expired(*entity));
  EXPECT_FALSE(*dem.IsEventConfirmed(*event));
}

TEST(WatchdogTest, SilentEntityExpiresAfterTolerance) {
  sim::Simulator simulator;
  Dem dem(simulator);
  Watchdog watchdog(simulator, dem, 100);
  auto event = dem.DefineEvent("wd");
  auto entity = watchdog.Register("vm", 1, /*tolerance=*/2, *event);
  watchdog.Start();
  simulator.RunFor(250);  // cycles at 100, 200: 2 failures <= tolerance
  EXPECT_FALSE(*watchdog.Expired(*entity));
  simulator.RunFor(100);  // third failed cycle exceeds tolerance
  EXPECT_TRUE(*watchdog.Expired(*entity));
  EXPECT_TRUE(*dem.IsEventConfirmed(*event));
}

TEST(WatchdogTest, RecoveryBeforeToleranceResets) {
  sim::Simulator simulator;
  Dem dem(simulator);
  Watchdog watchdog(simulator, dem, 100);
  auto event = dem.DefineEvent("wd");
  auto entity = watchdog.Register("vm", 1, 1, *event);
  watchdog.Start();
  simulator.RunFor(150);  // one failed cycle
  ASSERT_TRUE(watchdog.ReportAlive(*entity).ok());
  simulator.RunFor(100);  // healthy cycle resets the count
  simulator.RunFor(100);  // one more failed cycle, still within tolerance
  EXPECT_FALSE(*watchdog.Expired(*entity));
}

TEST(WatchdogTest, MinAliveEnforced) {
  sim::Simulator simulator;
  Dem dem(simulator);
  Watchdog watchdog(simulator, dem, 100);
  auto event = dem.DefineEvent("wd");
  auto entity = watchdog.Register("vm", /*min_alive=*/3, 0, *event);
  watchdog.Start();
  ASSERT_TRUE(watchdog.ReportAlive(*entity).ok());
  ASSERT_TRUE(watchdog.ReportAlive(*entity).ok());  // only 2 of 3
  simulator.RunFor(100);
  EXPECT_TRUE(*watchdog.Expired(*entity));
}

}  // namespace
}  // namespace dacm::bsw
