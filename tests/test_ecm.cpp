// Unit/integration tests for the ECM gateway, run on a reduced two-ECU
// vehicle: server connection management, package routing vs. local
// handling, ECC extraction, inbound/outbound external traffic, ack
// forwarding, and behaviour while the server or network is unreachable.
#include <gtest/gtest.h>

#include "fes/appgen.hpp"
#include "fes/device.hpp"
#include "fes/testbed.hpp"

namespace dacm::pirte {
namespace {

using fes::Figure3Options;
using fes::Figure3Testbed;

struct EcmTest : ::testing::Test {
  std::unique_ptr<Figure3Testbed> testbed;

  void SetUp() override {
    auto created = Figure3Testbed::Create();
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    testbed = std::move(*created);
    ASSERT_TRUE(testbed->SetUp().ok());
  }
};

TEST_F(EcmTest, LocalAndRemotePackagesSplitCorrectly) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  const auto& stats = testbed->vehicle().ecm()->ecm_stats();
  EXPECT_EQ(stats.packages_local, 1u);   // COM on the ECM's own ECU
  EXPECT_EQ(stats.packages_routed, 1u);  // OP forwarded to ECU2
  EXPECT_EQ(stats.acks_forwarded, 1u);   // OP's ack relayed to the server
}

TEST_F(EcmTest, EccIsExtractedAndStrippedInFlight) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  // The phone link must be up (the ECM consumed the ECC and connected).
  EXPECT_EQ(testbed->phone().connections(), 1u);
  // The plug-in SW-C on ECU2 stored a package; its ECC must be empty —
  // verify via the persisted NvM image on ECU2.
  auto* ecu2 = testbed->vehicle().FindEcu(2);
  ASSERT_NE(ecu2, nullptr);
  auto block = ecu2->nvm().FindBlock("pirte.PIRTE2");
  ASSERT_TRUE(block.ok());
  auto image = ecu2->nvm().ReadBlock(*block);
  ASSERT_TRUE(image.ok());
  support::ByteReader reader(*image);
  auto count = reader.ReadVarU32();
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, 1u);
  auto blob = reader.ReadBlob();
  ASSERT_TRUE(blob.ok());
  auto package = InstallationPackage::Deserialize(*blob);
  ASSERT_TRUE(package.ok());
  EXPECT_TRUE(package->ecc.empty());
}

TEST_F(EcmTest, InboundExternalDataRoutedToLocalPlugin) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  // 'Wheels' targets COM on the ECM's own ECU: delivered directly.
  const auto before = testbed->vehicle().ecm()->ecm_stats().external_in;
  ASSERT_TRUE(testbed->SendWheels(5).ok());
  EXPECT_EQ(testbed->vehicle().ecm()->ecm_stats().external_in, before + 1);
}

TEST_F(EcmTest, UnknownMessageIdIsIgnoredSafely) {
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  ASSERT_TRUE(testbed->phone().Send("Horn", fes::EncodeControl(1)).ok());
  testbed->simulator().RunFor(sim::kSecond);
  // Nothing crashes; no actuator change.
  EXPECT_EQ(testbed->wheels_commands(), 0u);
  EXPECT_EQ(testbed->last_wheels(), 0);
}

TEST_F(EcmTest, ExternalDataBeforeInstallIsDropped) {
  // No ECC registered yet: the frame has no matching entry.
  ASSERT_TRUE(testbed->phone().connections() == 0u);
  // Phone can't even deliver without a connection; send after deploy of a
  // *different* app would be needed. Simply verify no crash on deploy-less
  // traffic attempt.
  EXPECT_EQ(testbed->phone().Send("Wheels", fes::EncodeControl(1)).code(),
            support::ErrorCode::kUnavailable);
}

TEST_F(EcmTest, RouteFailureNacksToServer) {
  // Upload an app whose SW conf places its plug-in on an ECU that has a
  // plug-in SW-C per the *model conf lie*, but for which the vehicle has
  // no Type I route: fabricate by uploading a model that lists a ghost ECU.
  auto model = fes::MakeRpiTestbedConf();
  model.model = "ghost-model";
  model.hw.ecus.push_back(server::EcuInfo{3, "ECU3", true, false, 8, 65536});
  ASSERT_TRUE(testbed->server().UploadVehicleModel(model).ok());
  ASSERT_TRUE(testbed->server()
                  .BindVehicle(testbed->user(), "VIN-GHOST", "ghost-model")
                  .ok());
  // VIN-GHOST is offline though; use the real vehicle's model instead:
  // target ECU 3 does not exist on the real vehicle but we must trick the
  // compatibility check — reupload the real model with the ghost ECU.
  auto patched = fes::MakeRpiTestbedConf();
  patched.hw.ecus.push_back(server::EcuInfo{3, "ECU3", true, false, 8, 65536});
  ASSERT_TRUE(testbed->server().UploadVehicleModel(patched).ok());

  fes::SyntheticAppParams params;
  params.name = "ghost-app";
  params.vehicle_model = "rpi-testbed";
  params.target_ecu = 3;
  ASSERT_TRUE(testbed->server().UploadApp(fes::MakeSyntheticApp(params)).ok());
  ASSERT_TRUE(testbed->server().Deploy(testbed->user(), "VIN-0001", "ghost-app").ok());
  testbed->RunUntil(
      [&]() {
        auto state = testbed->server().AppState("VIN-0001", "ghost-app");
        return state.ok() && *state == server::InstallState::kFailed;
      },
      5 * sim::kSecond);
  auto state = testbed->server().AppState("VIN-0001", "ghost-app");
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, server::InstallState::kFailed);
}

TEST_F(EcmTest, EcmHostsPluginsItself) {
  // The ECM "inherits from the plug-in SW-C": COM runs inside it.
  ASSERT_TRUE(testbed->DeployRemoteCar().ok());
  auto* ecm = testbed->vehicle().ecm();
  ASSERT_NE(ecm->FindPlugin("COM"), nullptr);
  EXPECT_EQ(ecm->FindPlugin("COM")->state(), PluginState::kRunning);
  EXPECT_EQ(ecm->stats().installs, 1u);
}

struct OfflineServerTest : ::testing::Test {};

TEST_F(OfflineServerTest, EcmReconnectsWhenServerComesUpLate) {
  // Build the vehicle while no server is listening; the ECM must retry and
  // connect once the server starts.
  sim::Simulator simulator;
  sim::Network network(simulator, 10 * sim::kMillisecond);

  fes::Vehicle vehicle(simulator, network,
                       fes::VehicleParams{"VIN-L", "rpi-testbed", 500'000});
  fes::Ecu& ecu1 = vehicle.AddEcu(1, "ECU1");
  auto p1 = vehicle.AddPluginSwc(ecu1, "PIRTE1");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(vehicle.DesignateEcm(**p1, "late-server:443").ok());
  ASSERT_TRUE(vehicle.Finalize().ok());

  simulator.RunFor(2 * sim::kSecond);
  EXPECT_FALSE(vehicle.ecm()->connected_to_server());

  server::TrustedServer server(network, "late-server:443");
  ASSERT_TRUE(server.Start().ok());
  simulator.RunFor(2 * sim::kSecond);
  EXPECT_TRUE(vehicle.ecm()->connected_to_server());
  EXPECT_TRUE(server.VehicleOnline("VIN-L"));
}

}  // namespace
}  // namespace dacm::pirte
