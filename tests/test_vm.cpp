// Unit tests for the PVM: assembler, binary format, interpreter semantics,
// sandboxing (fuel, stacks, register bounds), and the port syscalls.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "test_util.hpp"
#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"

namespace dacm::vm {
namespace {

/// The shared scripted environment under its historical suite-local name.
using FakeEnv = testutil::ScriptedVmEnv;

Program MustAssemble(const std::string& source) {
  auto program = Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return std::move(*program);
}

ExecResult RunProgram(const std::string& source, FakeEnv& env,
                      const std::string& entry = "main", VmLimits limits = {},
                      VmInstance** out_vm = nullptr) {
  static std::vector<std::unique_ptr<VmInstance>> keep_alive;
  auto vm = std::make_unique<VmInstance>(MustAssemble(source), env, limits);
  auto result = vm->Run(entry);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (out_vm != nullptr) *out_vm = vm.get();
  keep_alive.push_back(std::move(vm));
  return *result;
}

// --- assembler --------------------------------------------------------------------

TEST(AssemblerTest, RejectsUnknownMnemonic) {
  EXPECT_FALSE(Assemble(".entry main a\na:\nFROB\n").ok());
}

TEST(AssemblerTest, RejectsUndefinedLabel) {
  auto result = Assemble(".entry main a\na:\nJMP missing\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("missing"), std::string::npos);
}

TEST(AssemblerTest, RejectsDuplicateLabel) {
  EXPECT_FALSE(Assemble(".entry main a\na:\na:\nHALT\n").ok());
}

TEST(AssemblerTest, RejectsMissingEntry) {
  EXPECT_FALSE(Assemble("a:\nHALT\n").ok());
}

TEST(AssemblerTest, RejectsBadRegister) {
  EXPECT_FALSE(Assemble(".entry main a\na:\nLOAD 256\nHALT\n").ok());
}

TEST(AssemblerTest, RejectsBadImmediate) {
  EXPECT_FALSE(Assemble(".entry main a\na:\nPUSH zz\nHALT\n").ok());
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto result = Assemble(".entry main a\na:\nNOP\nBROKEN\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos);
}

TEST(AssemblerTest, CommentsAndBlankLinesIgnored) {
  auto program = Assemble("; header\n\n.entry main a ; trailing\na:\n  HALT ; done\n");
  EXPECT_TRUE(program.ok());
}

TEST(AssemblerTest, HexImmediatesAccepted) {
  FakeEnv env;
  auto result = RunProgram(".entry main m\nm:\nPUSH 0xFF\nSTORE 1\nHALT\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
}

TEST(AssemblerTest, MultipleEntryPoints) {
  auto program = MustAssemble(R"(
    .entry alpha a
    .entry beta b
    a: HALT
    b: HALT
  )");
  EXPECT_TRUE(program.FindEntry("alpha").ok());
  EXPECT_TRUE(program.FindEntry("beta").ok());
  EXPECT_FALSE(program.FindEntry("gamma").ok());
}

// --- binary format ---------------------------------------------------------------------

TEST(ProgramTest, SerializeDeserializeRoundTrip) {
  Program program = MustAssemble(".entry main a\na:\nPUSH 1\nSTORE 5\nHALT\n");
  auto bytes = program.Serialize();
  auto restored = Program::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->code, program.code);
  EXPECT_EQ(restored->entries.size(), 1u);
  EXPECT_EQ(restored->entries[0].name, "main");
}

TEST(ProgramTest, BadMagicRejected) {
  Program program = MustAssemble(".entry main a\na:\nHALT\n");
  auto bytes = program.Serialize();
  bytes[0] = 'X';
  EXPECT_FALSE(Program::Deserialize(bytes).ok());
}

TEST(ProgramTest, EntryOutsideCodeRejected) {
  Program program = MustAssemble(".entry main a\na:\nHALT\n");
  program.entries[0].pc = 10'000;
  auto bytes = program.Serialize();
  EXPECT_FALSE(Program::Deserialize(bytes).ok());
}

TEST(ProgramTest, TruncatedBinaryRejected) {
  Program program = MustAssemble(".entry main a\na:\nHALT\n");
  auto bytes = program.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(Program::Deserialize(bytes).ok());
}

// --- interpreter: arithmetic and control -------------------------------------------------

struct BinOpCase {
  const char* op;
  std::int32_t a, b, expected;
};

class BinOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinOpTest, ComputesExpectedValue) {
  const auto& param = GetParam();
  FakeEnv env;
  VmInstance* vm = nullptr;
  const std::string source = ".entry main m\nm:\nPUSH " + std::to_string(param.a) +
                             "\nPUSH " + std::to_string(param.b) + "\n" + param.op +
                             "\nSTORE 1\nHALT\n";
  auto result = RunProgram(source, env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(1), param.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinOpTest,
    ::testing::Values(BinOpCase{"ADD", 2, 3, 5}, BinOpCase{"ADD", -2, 3, 1},
                      BinOpCase{"SUB", 10, 4, 6}, BinOpCase{"SUB", 4, 10, -6},
                      BinOpCase{"MUL", -3, 7, -21}, BinOpCase{"DIV", 42, 6, 7},
                      BinOpCase{"DIV", -7, 2, -3}, BinOpCase{"MOD", 17, 5, 2},
                      BinOpCase{"AND", 0xF0F0, 0xFF00, 0xF000},
                      BinOpCase{"OR", 0x0F00, 0x00F0, 0x0FF0},
                      BinOpCase{"XOR", 0xFF, 0x0F, 0xF0},
                      BinOpCase{"SHL", 1, 4, 16}, BinOpCase{"SHR", -16, 2, -4},
                      BinOpCase{"CMPEQ", 3, 3, 1}, BinOpCase{"CMPEQ", 3, 4, 0},
                      BinOpCase{"CMPLT", 2, 3, 1}, BinOpCase{"CMPLT", 3, 2, 0},
                      BinOpCase{"CMPGT", 5, 1, 1}, BinOpCase{"CMPGT", 1, 5, 0}));

TEST(InterpreterTest, AddWrapsLikeTwoComplement) {
  FakeEnv env;
  VmInstance* vm = nullptr;
  auto result = RunProgram(
      ".entry main m\nm:\nPUSH 2147483647\nPUSH 1\nADD\nSTORE 1\nHALT\n", env, "main",
      {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(1), INT32_MIN);
}

TEST(InterpreterTest, DivisionByZeroFaults) {
  FakeEnv env;
  auto result =
      RunProgram(".entry main m\nm:\nPUSH 1\nPUSH 0\nDIV\nHALT\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
  EXPECT_NE(result.fault.find("zero"), std::string::npos);
}

TEST(InterpreterTest, DivisionOverflowFaults) {
  FakeEnv env;
  auto result = RunProgram(
      ".entry main m\nm:\nPUSH -2147483648\nPUSH -1\nDIV\nHALT\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
}

TEST(InterpreterTest, LoopComputesSum) {
  // sum 1..10 = 55
  FakeEnv env;
  VmInstance* vm = nullptr;
  auto result = RunProgram(R"(
    .entry main m
    m:
      PUSH 10
      STORE 1
      PUSH 0
      STORE 2
    loop:
      LOAD 1
      JZ end
      LOAD 2
      LOAD 1
      ADD
      STORE 2
      LOAD 1
      PUSH 1
      SUB
      STORE 1
      JMP loop
    end:
      HALT
  )",
                           env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(2), 55);
}

TEST(InterpreterTest, CallAndRet) {
  FakeEnv env;
  VmInstance* vm = nullptr;
  auto result = RunProgram(R"(
    .entry main m
    m:
      PUSH 20
      CALL double
      STORE 1
      HALT
    double:
      PUSH 2
      MUL
      RET
  )",
                           env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(1), 40);
}

TEST(InterpreterTest, RetWithEmptyCallStackHalts) {
  FakeEnv env;
  auto result = RunProgram(".entry main m\nm:\nRET\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
}

// --- sandbox limits ---------------------------------------------------------------

TEST(SandboxTest, FuelBudgetStopsInfiniteLoop) {
  FakeEnv env;
  VmLimits limits;
  limits.fuel_per_activation = 1000;
  auto result =
      RunProgram(".entry main m\nm:\nloop:\nJMP loop\n", env, "main", limits);
  EXPECT_EQ(result.outcome, ExecOutcome::kFuelExhausted);
  EXPECT_EQ(result.fuel_used, 1000u);
}

TEST(SandboxTest, RegistersSurviveFuelExhaustion) {
  FakeEnv env;
  VmLimits limits;
  limits.fuel_per_activation = 50;
  VmInstance* vm = nullptr;
  RunProgram(R"(
    .entry main m
    m:
      PUSH 7
      STORE 1
    loop:
      JMP loop
  )",
             env, "main", limits, &vm);
  EXPECT_EQ(vm->Register(1), 7);
}

TEST(SandboxTest, OperandStackOverflowFaults) {
  FakeEnv env;
  VmLimits limits;
  limits.max_operand_stack = 4;
  auto result = RunProgram(
      ".entry main m\nm:\nloop:\nPUSH 1\nJMP loop\n", env, "main", limits);
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
  EXPECT_NE(result.fault.find("overflow"), std::string::npos);
}

TEST(SandboxTest, StackUnderflowFaults) {
  FakeEnv env;
  auto result = RunProgram(".entry main m\nm:\nPOP\nHALT\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
}

TEST(SandboxTest, CallDepthBounded) {
  FakeEnv env;
  VmLimits limits;
  limits.max_call_depth = 8;
  auto result = RunProgram(".entry main m\nm:\nCALL m\n", env, "main", limits);
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
  EXPECT_NE(result.fault.find("call stack"), std::string::npos);
}

TEST(SandboxTest, TrapReportsCode) {
  FakeEnv env;
  auto result = RunProgram(".entry main m\nm:\nTRAP 99\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kTrap);
  EXPECT_EQ(result.trap_code, 99);
}

TEST(SandboxTest, RunningOffCodeEndFaults) {
  FakeEnv env;
  auto result = RunProgram(".entry main m\nm:\nNOP\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
}

TEST(SandboxTest, UnknownEntryIsError) {
  FakeEnv env;
  VmInstance vm(MustAssemble(".entry main m\nm:\nHALT\n"), env);
  EXPECT_FALSE(vm.Run("nonexistent").ok());
}

// --- port syscalls ----------------------------------------------------------------------

TEST(PortIoTest, ReadPortFillsIoWindow) {
  FakeEnv env;
  env.port_data[3] = {0x11, 0x22, 0x33};
  VmInstance* vm = nullptr;
  auto result = RunProgram(
      ".entry main m\nm:\nREADP 3\nSTORE 1\nHALT\n", env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(1), 3);  // length
  EXPECT_EQ(vm->Register(kIoWindowBase + 0), 0x11);
  EXPECT_EQ(vm->Register(kIoWindowBase + 1), 0x22);
  EXPECT_EQ(vm->Register(kIoWindowBase + 2), 0x33);
}

TEST(PortIoTest, WritePortTakesBytesFromIoWindow) {
  FakeEnv env;
  VmInstance* vm = nullptr;
  auto result = RunProgram(R"(
    .entry main m
    m:
      PUSH 65
      STORE 128
      PUSH 66
      STORE 129
      WRITEP 7 2
      HALT
  )",
                           env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  ASSERT_EQ(env.writes.size(), 1u);
  EXPECT_EQ(env.writes[0].first, 7);
  EXPECT_EQ(env.writes[0].second, (support::Bytes{65, 66}));
}

TEST(PortIoTest, AvailPReflectsEnvironment) {
  FakeEnv env;
  env.available.insert(2);
  VmInstance* vm = nullptr;
  auto result = RunProgram(R"(
    .entry main m
    m:
      AVAILP 2
      STORE 1
      AVAILP 3
      STORE 2
      HALT
  )",
                           env, "main", {}, &vm);
  EXPECT_EQ(result.outcome, ExecOutcome::kHalted);
  EXPECT_EQ(vm->Register(1), 1);
  EXPECT_EQ(vm->Register(2), 0);
}

TEST(PortIoTest, ClockReadsEnvironment) {
  FakeEnv env;
  env.clock_ms = 123456;
  VmInstance* vm = nullptr;
  RunProgram(".entry main m\nm:\nCLOCK\nSTORE 1\nHALT\n", env, "main", {}, &vm);
  EXPECT_EQ(vm->Register(1), 123456);
}

TEST(PortIoTest, FailedPortAccessBecomesFault) {
  class RefusingEnv : public FakeEnv {
   public:
    support::Result<support::Bytes> ReadPort(std::uint8_t) override {
      return support::PermissionDenied("not your port");
    }
  };
  RefusingEnv env;
  auto result = RunProgram(".entry main m\nm:\nREADP 0\nHALT\n", env, "main");
  EXPECT_EQ(result.outcome, ExecOutcome::kFault);
  EXPECT_NE(result.fault.find("PERMISSION_DENIED"), std::string::npos);
}

TEST(PortIoTest, OversizeReadClampsToWindow) {
  FakeEnv env;
  env.port_data[0] = support::Bytes(1000, 0xAA);
  VmInstance* vm = nullptr;
  RunProgram(".entry main m\nm:\nREADP 0\nSTORE 1\nHALT\n", env, "main", {}, &vm);
  EXPECT_EQ(vm->Register(1), static_cast<std::int32_t>(kIoWindowSize));
}

// --- accounting -----------------------------------------------------------------------

TEST(AccountingTest, FuelAndActivationCountersAccumulate) {
  FakeEnv env;
  VmInstance vm(MustAssemble(".entry main m\nm:\nNOP\nNOP\nHALT\n"), env);
  ASSERT_TRUE(vm.Run("main").ok());
  ASSERT_TRUE(vm.Run("main").ok());
  EXPECT_EQ(vm.activations(), 2u);
  EXPECT_EQ(vm.total_fuel_used(), 6u);  // 3 instructions per run
}

TEST(AccountingTest, RegistersPersistAcrossActivations) {
  FakeEnv env;
  VmInstance vm(MustAssemble(R"(
    .entry main m
    m:
      LOAD 1
      PUSH 1
      ADD
      STORE 1
      HALT
  )"),
                env);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(vm.Run("main").ok());
  EXPECT_EQ(vm.Register(1), 5);
}

}  // namespace
}  // namespace dacm::vm
