// Property tests for the support serialization hot paths.
//
// The slice-by-8 CRC is validated differentially against the retained
// bytewise reference: one-shot, incremental over random chunkings, and at
// unaligned offsets, so any slicing-table or tail-handling bug shows up as
// a disagreement with the simple loop.  The ByteWriter/ByteReader pair is
// fuzzed with random typed field sequences, read back through both the
// owned and the zero-copy view APIs.
//
// Set DACM_TEST_SEED to replay a failing run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "test_util.hpp"

namespace dacm::support {
namespace {

Bytes RandomBytes(sim::Rng& rng, std::size_t size) {
  Bytes data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::uint8_t>(rng.NextU64());
  }
  return data;
}

// --- CRC: sliced vs bytewise ------------------------------------------------------

TEST(CrcDifferential, OneShotMatchesBytewiseOnRandomBuffers) {
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 64; ++iter) {
    // Sizes hammer the 8-byte boundary: 0..16 exhaustively-ish, then large.
    const std::size_t size = iter < 32 ? static_cast<std::size_t>(iter) / 2
                                       : rng.NextBelow(64 * 1024);
    const Bytes data = RandomBytes(rng, size);
    SCOPED_TRACE(::testing::Message() << "size=" << size);
    EXPECT_EQ(Crc32(data), Crc32Bytewise(data));
  }
}

TEST(CrcDifferential, UnalignedOffsetsMatchBytewise) {
  DACM_PROPERTY_RNG(rng);
  const Bytes data = RandomBytes(rng, 4096);
  for (std::size_t offset = 0; offset < 16; ++offset) {
    for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 1024u}) {
      SCOPED_TRACE(::testing::Message() << "offset=" << offset << " size=" << size);
      const auto window = std::span<const std::uint8_t>(data).subspan(offset, size);
      EXPECT_EQ(Crc32(window), Crc32Bytewise(window));
    }
  }
}

TEST(CrcDifferential, IncrementalOverRandomChunkingsMatchesOneShot) {
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 48; ++iter) {
    const std::size_t size = 1 + rng.NextBelow(8 * 1024);
    const Bytes data = RandomBytes(rng, size);
    const std::uint32_t expected = Crc32Bytewise(data);

    std::uint32_t crc = 0;
    std::uint32_t crc_ref = 0;
    std::size_t pos = 0;
    while (pos < size) {
      // Chunk lengths biased small so boundaries land mid-slice often;
      // occasional empty chunks must be no-ops.
      const std::size_t chunk =
          rng.NextBool(0.1) ? 0 : std::min<std::size_t>(1 + rng.NextBelow(37), size - pos);
      const auto piece = std::span<const std::uint8_t>(data).subspan(pos, chunk);
      crc = Crc32Update(crc, piece);
      crc_ref = Crc32UpdateBytewise(crc_ref, piece);
      pos += chunk;
    }
    SCOPED_TRACE(::testing::Message() << "size=" << size);
    EXPECT_EQ(crc, expected);
    EXPECT_EQ(crc_ref, expected);
  }
}

// The dispatched path (hardware where the CPU has it), the slice-by-8
// path, and the bytewise reference must agree byte-for-byte.  Sizes
// straddle the 64-byte threshold below which the hardware rung defers to
// the sliced loop, and the 16-byte folding granule above it.
TEST(CrcDifferential, HardwareRungMatchesBothReferences) {
  DACM_PROPERTY_RNG(rng);
  SCOPED_TRACE(::testing::Message() << "backend=" << Crc32Backend());
  const Bytes data = RandomBytes(rng, 128 * 1024);
  for (int iter = 0; iter < 96; ++iter) {
    // First sweep pins the dispatch/fold boundaries; then random windows.
    const std::size_t size =
        iter < 40 ? static_cast<std::size_t>(48 + iter)
                  : (iter < 64 ? 16 * (iter - 40) + rng.NextBelow(16)
                               : 1 + rng.NextBelow(data.size() - 16));
    const std::size_t offset = rng.NextBelow(data.size() - size + 1);
    const auto window = std::span<const std::uint8_t>(data).subspan(offset, size);
    SCOPED_TRACE(::testing::Message() << "offset=" << offset << " size=" << size);
    const std::uint32_t reference = Crc32Bytewise(window);
    EXPECT_EQ(Crc32(window), reference);
    EXPECT_EQ(Crc32UpdateSliced(0, window), reference);
  }
}

TEST(CrcDifferential, HardwareRungIncrementalAcrossFoldBoundaries) {
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 24; ++iter) {
    const std::size_t size = 64 + rng.NextBelow(16 * 1024);
    const Bytes data = RandomBytes(rng, size);
    const std::uint32_t expected = Crc32Bytewise(data);
    std::uint32_t crc = 0;
    std::size_t pos = 0;
    while (pos < size) {
      // Chunks biased large so most updates enter the >= 64-byte body with
      // tails landing at every alignment.
      const std::size_t chunk = std::min<std::size_t>(
          rng.NextBool(0.3) ? 1 + rng.NextBelow(15) : 64 + rng.NextBelow(512),
          size - pos);
      crc = Crc32Update(crc, std::span<const std::uint8_t>(data).subspan(pos, chunk));
      pos += chunk;
    }
    SCOPED_TRACE(::testing::Message() << "size=" << size);
    EXPECT_EQ(crc, expected);
  }
}

// --- ByteWriter / ByteReader fuzz -------------------------------------------------

enum class Field : std::uint8_t { kU8, kU16, kU32, kU64, kVar, kString, kBlob };

TEST(BytesFuzz, RandomFieldSequencesRoundTripThroughBothReadApis) {
  DACM_PROPERTY_RNG(rng);
  for (int iter = 0; iter < 32; ++iter) {
    const std::size_t fields = 1 + rng.NextBelow(64);
    std::vector<Field> plan;
    std::vector<std::uint64_t> scalars;
    std::vector<std::string> strings;
    std::vector<Bytes> blobs;

    ByteWriter writer;
    for (std::size_t i = 0; i < fields; ++i) {
      const Field field = static_cast<Field>(rng.NextBelow(7));
      plan.push_back(field);
      switch (field) {
        case Field::kU8: {
          const auto v = static_cast<std::uint8_t>(rng.NextU64());
          writer.WriteU8(v);
          scalars.push_back(v);
          break;
        }
        case Field::kU16: {
          const auto v = static_cast<std::uint16_t>(rng.NextU64());
          writer.WriteU16(v);
          scalars.push_back(v);
          break;
        }
        case Field::kU32: {
          const auto v = static_cast<std::uint32_t>(rng.NextU64());
          writer.WriteU32(v);
          scalars.push_back(v);
          break;
        }
        case Field::kU64: {
          const std::uint64_t v = rng.NextU64();
          writer.WriteU64(v);
          scalars.push_back(v);
          break;
        }
        case Field::kVar: {
          const auto v = static_cast<std::uint32_t>(rng.NextU64());
          writer.WriteVarU32(v);
          scalars.push_back(v);
          break;
        }
        case Field::kString: {
          std::string s(rng.NextBelow(200), '\0');
          for (char& c : s) c = static_cast<char>(rng.NextU64());
          writer.WriteString(s);
          strings.push_back(std::move(s));
          break;
        }
        case Field::kBlob: {
          Bytes b = RandomBytes(rng, rng.NextBelow(500));
          writer.WriteBlob(b);
          blobs.push_back(std::move(b));
          break;
        }
      }
    }

    ByteReader owned(writer.bytes());
    ByteReader viewed(writer.bytes());
    std::size_t scalar_at = 0, string_at = 0, blob_at = 0;
    for (Field field : plan) {
      switch (field) {
        case Field::kU8:
          EXPECT_EQ(*owned.ReadU8(), scalars[scalar_at]);
          EXPECT_EQ(*viewed.ReadU8(), scalars[scalar_at]);
          ++scalar_at;
          break;
        case Field::kU16:
          EXPECT_EQ(*owned.ReadU16(), scalars[scalar_at]);
          EXPECT_EQ(*viewed.ReadU16(), scalars[scalar_at]);
          ++scalar_at;
          break;
        case Field::kU32:
          EXPECT_EQ(*owned.ReadU32(), scalars[scalar_at]);
          EXPECT_EQ(*viewed.ReadU32(), scalars[scalar_at]);
          ++scalar_at;
          break;
        case Field::kU64:
          EXPECT_EQ(*owned.ReadU64(), scalars[scalar_at]);
          EXPECT_EQ(*viewed.ReadU64(), scalars[scalar_at]);
          ++scalar_at;
          break;
        case Field::kVar:
          EXPECT_EQ(*owned.ReadVarU32(), scalars[scalar_at]);
          EXPECT_EQ(*viewed.ReadVarU32(), scalars[scalar_at]);
          ++scalar_at;
          break;
        case Field::kString: {
          EXPECT_EQ(*owned.ReadString(), strings[string_at]);
          EXPECT_EQ(*viewed.ReadStringView(), strings[string_at]);
          ++string_at;
          break;
        }
        case Field::kBlob: {
          EXPECT_EQ(*owned.ReadBlob(), blobs[blob_at]);
          const auto view = *viewed.ReadBlobView();
          EXPECT_TRUE(std::equal(view.begin(), view.end(), blobs[blob_at].begin(),
                                 blobs[blob_at].end()));
          ++blob_at;
          break;
        }
      }
    }
    EXPECT_TRUE(owned.exhausted());
    EXPECT_TRUE(viewed.exhausted());
  }
}

TEST(BytesFuzz, TruncatedBuffersNeverReadOutOfRange) {
  DACM_PROPERTY_RNG(rng);
  ByteWriter writer;
  writer.WriteU64(rng.NextU64());
  writer.WriteString("truncation victim");
  writer.WriteBlob(RandomBytes(rng, 64));
  const Bytes& wire = writer.bytes();
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    ByteReader reader(std::span<const std::uint8_t>(wire.data(), cut));
    // Whatever parses must stop cleanly at the cut; errors, not overreads.
    (void)reader.ReadU64();
    auto s = reader.ReadStringView();
    auto b = reader.ReadBlobView();
    if (cut < wire.size()) {
      EXPECT_TRUE(!s.ok() || !b.ok()) << "cut=" << cut;
    } else {
      // The untruncated buffer parses fully.
      EXPECT_TRUE(s.ok() && b.ok() && reader.exhausted());
    }
  }
}

}  // namespace
}  // namespace dacm::support
