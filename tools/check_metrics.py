#!/usr/bin/env python3
"""Metrics-smoke gate: assert the required metric families are exposed.

Reads a Prometheus text exposition (a file argument, or stdin with "-")
— typically the output of `example_telemetry_flight_report` or any bench
binary's `--metrics` dump — and fails if a required family is missing or
was never observed.  This catches the regression class where a refactor
silently drops an instrumentation point: the code still builds, the
campaign still converges, but the family vanishes from the exposition.

Usage:
  check_metrics.py EXPOSITION_FILE [--require extra_family ...]
  some_binary --metrics 2>&1 | check_metrics.py -
"""

import argparse
import sys

# Families every campaign run must expose.  Counters must be present;
# entries marked nonzero must also have been observed at least once.
REQUIRED_FAMILIES = [
    # (family, kind, must_be_nonzero)
    ("dacm_server_packages_pushed_total", "counter", True),
    ("dacm_server_acks_received_total", "counter", True),
    ("dacm_server_deploys_ok_total", "counter", True),
    ("dacm_campaigns_started_total", "counter", True),
    ("dacm_campaign_waves_total", "counter", True),
    ("dacm_sim_events_total", "counter", True),
    # Lane-engine families: present on every run (they register at first
    # ConfigureLanes/first window), observed only when lanes > 1.
    ("dacm_sim_lane_events_total", "counter", False),
    ("dacm_sim_barrier_stall_nanos", "histogram", False),
    ("dacm_server_durability_degraded", "gauge", False),
    ("dacm_deploy_roundtrip_us", "histogram", True),
    ("dacm_ack_flush_nanos", "histogram", True),
    ("dacm_wal_append_bytes", "histogram", False),
    ("dacm_wal_fsync_nanos", "histogram", False),
    ("dacm_fleet_time_to_install_us", "histogram", False),
]


def parse_exposition(text):
    """{family: (declared_kind, observed)} from Prometheus text format."""
    families = {}
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            families[name] = kind
            continue
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        # Histogram series carry the family name plus a suffix; fold
        # `<family>_count` into the family's observed total.
        if name.endswith("_count"):
            name = name[: -len("_count")]
        name = name.split("{", 1)[0]
        try:
            values[name] = values.get(name, 0.0) + abs(float(value))
        except ValueError:
            continue
    return {
        name: (kind, values.get(name, 0.0)) for name, kind in families.items()
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("exposition", help="file path, or - for stdin")
    parser.add_argument("--require", action="append", default=[],
                        help="additional family that must be present")
    args = parser.parse_args()

    if args.exposition == "-":
        text = sys.stdin.read()
    else:
        with open(args.exposition) as f:
            text = f.read()

    found = parse_exposition(text)
    failures = 0
    required = [(name, kind, nonzero)
                for name, kind, nonzero in REQUIRED_FAMILIES]
    required += [(name, None, False) for name in args.require]
    for name, kind, nonzero in required:
        if name not in found:
            print(f"MISSING  {name} (family absent from exposition)")
            failures += 1
            continue
        declared, observed = found[name]
        if kind is not None and declared != kind:
            print(f"BADKIND  {name}: declared {declared}, expected {kind}")
            failures += 1
            continue
        if nonzero and observed == 0:
            print(f"ZERO     {name}: family present but never observed")
            failures += 1
            continue
        print(f"ok       {name} ({declared}, observed {observed:g})")

    if failures:
        print(f"\n{failures} required metric famil"
              f"{'y' if failures == 1 else 'ies'} missing or unobserved")
        return 1
    print(f"\nall {len(required)} required metric families exposed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
