#!/usr/bin/env python3
"""Warn-only perf-regression gate over bench_all aggregates.

Compares a current BENCH_results.json (the { "<binary>": <google-benchmark
document>, ... } aggregate written by the bench_all target) against the
committed BENCH_baseline.json and reports every tracked metric that moved
by more than the tolerance (default +-15%).

The step is advisory by design: CI runners vary wildly, so a regression
prints GitHub warning annotations and a table, and the exit code is 0
unless --strict is given.  The point is that the perf trajectory is
*visible* on every PR, not that noise blocks merges.

Usage:
  bench_compare.py BASELINE CURRENT [--tolerance 0.15] [--strict]
"""

import argparse
import json
import sys

# Metrics tracked across PRs: (bench binary, benchmark name regex-free
# prefix, field, human label[, baseline name]).  A missing benchmark on
# either side is reported but never fatal (matrices evolve).  The optional
# fifth element compares the current benchmark against a *different*
# benchmark in the baseline file — used to hold a new variant (e.g. the
# durable campaign) to the committed numbers of the path it wraps.
KEY_METRICS = [
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:1/real_time",
     "items_per_second", "campaign deploys/s (1 shard, 1k fleet)"),
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:1/real_time",
     "serial_sim_fraction", "serial sim fraction (1 shard, 1k fleet)"),
    # The parallel lane engine: deploys/s with the simulator split across
    # four conservative-window lanes, and the wall-clock p99 a worker lane
    # spends waiting at the merge barrier.  The stall quantile is runner
    # wall time (the one deliberately nondeterministic sim metric), so the
    # warn-only tolerance is doing real work here.
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:4/real_time",
     "items_per_second", "campaign deploys/s (1 shard, 1k, 4 lanes)"),
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:4/real_time",
     "barrier_stall_p99_us", "lane barrier-stall p99 µs (1 shard, 4 lanes)"),
    # Journal overhead: the durable campaign (write-ahead status DB +
    # campaign journal) tracked against its own committed numbers.  It
    # used to be paired against the memory-only campaign, but the
    # content-addressed package cache made the memory-only path cheaper
    # than the WAL append itself, so "within 5% of memory-only" stopped
    # being a meaningful bar — what must not regress is the durable
    # path's absolute throughput.
    ("bench_fleet", "BM_FleetDurableCampaign/shards:1/fleet:1000/real_time",
     "items_per_second", "durable campaign deploys/s (1 shard, 1k)"),
    # Memory scaling of the SoA fleet store + content-addressed package
    # cache: the converged resident-set cost per VIN at the bench-smoke
    # shape (100k vehicles, 24 model cohorts).  Lower is better.
    ("bench_fleet",
     "BM_FleetMegaCampaign/shards:1/fleet:100000/models:24/"
     "iterations:1/real_time",
     "bytes_per_vehicle", "fleet memory bytes/vehicle (100k, 24 models)"),
    ("bench_fleet",
     "BM_FleetMegaCampaign/shards:1/fleet:100000/models:24/"
     "iterations:1/real_time",
     "deploys_per_s", "mega campaign deploys/s (100k, 24 models)"),
    # Restart cost: replay throughput over the raw multi-campaign log,
    # and the absolute time a checkpointed restart takes to become
    # serviceable (lower is better).
    ("bench_fleet", "BM_RecoveryReplay/fleet:1000/checkpoint:0/real_time",
     "bytes_per_second", "recovery replay bytes/s (1k fleet, raw log)"),
    ("bench_fleet", "BM_RecoveryReplay/fleet:1000/checkpoint:1/real_time",
     "time_to_serviceable_ms", "time-to-serviceable ms (1k, checkpointed)"),
    # Tail latencies from the log2 histograms (the telemetry PR): the
    # sim-time push->ack round trip and vehicle deploy p99 at the tracked
    # shape, the wall-time parallel ack-flush and WAL-fsync p99, and the
    # faulted convergence tail.  The sim-time ones are deterministic, so
    # any drift is a real pipeline change, not runner noise.
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:1/real_time",
     "vehicle_p99_us", "per-vehicle deploy p99 µs (1 shard, 1k)"),
    ("bench_fleet", "BM_FleetCampaign/shards:1/fleet:1000/lanes:1/real_time",
     "roundtrip_p99_ms", "push->ack round-trip p99 sim-ms (1 shard, 1k)"),
    ("bench_fleet", "BM_FleetCampaign/shards:4/fleet:1000/lanes:1/real_time",
     "ack_flush_p99_us", "parallel ack-flush p99 µs (4 shards, 1k)"),
    ("bench_fleet", "BM_FleetDurableCampaign/shards:1/fleet:1000/real_time",
     "wal_fsync_p99_us", "WAL fsync p99 µs (1 shard, 1k, sync=64)"),
    ("bench_fleet",
     "BM_FleetFaultCampaign/shards:4/fleet:1000/churn_pct:20/flaps:2/"
     "nack_pct:10/real_time",
     "time_to_installed_p99_ms",
     "faulted time-to-installed p99 sim-ms (full matrix)"),
    ("bench_sim", "BM_WheelScheduleFire/1024",
     "items_per_second", "event schedule+fire/s (wheel)"),
    ("bench_sim", "BM_WheelStorm/4096",
     "items_per_second", "same-timestamp storm events/s"),
    ("bench_sim", "BM_StagedSendDrain/4096/real_time",
     "items_per_second", "staged-send drain msgs/s"),
    ("bench_wire_codec", "BM_Crc32/16384",
     "bytes_per_second", "CRC-32 GB/s (16 KiB)"),
    ("bench_fig1_vm", "BM_VmSpinLoop/10000",
     "items_per_second", "VM spin-loop instr/s"),
]

# Absolute invariants checked against the CURRENT results alone — bars the
# design must clear on every run, independent of the committed baseline:
# (bench binary, benchmark name, field, max value, human label).
ABSOLUTE_BOUNDS = [
    # The compaction contract: after five consecutive campaigns and a
    # checkpoint, the status log holds at most 2x the live-paragraph
    # bytes (it is exactly 1x when the final rotation is the last write).
    ("bench_fleet", "BM_RecoveryReplay/fleet:1000/checkpoint:1/real_time",
     "log_to_live_ratio", 2.0, "post-compaction log/live bytes (<= 2x)"),
]


def find_benchmark(doc, name):
    for bench in doc.get("benchmarks", []):
        if bench.get("name") == name:
            return bench
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on regression (default: warn only)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.current) as f:
            current = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        # The step is advisory: a missing or half-written results file must
        # warn, not fail the job.
        print(f"::warning title=bench-compare::could not load inputs: {err}")
        return 1 if args.strict else 0

    regressions = 0
    print(f"{'metric':<46} {'baseline':>12} {'current':>12} {'delta':>8}")
    for entry in KEY_METRICS:
        binary, name, field, label = entry[:4]
        baseline_name = entry[4] if len(entry) > 4 else name
        base_bench = find_benchmark(baseline.get(binary, {}), baseline_name)
        cur_bench = find_benchmark(current.get(binary, {}), name)
        if base_bench is None or cur_bench is None:
            side = "baseline" if base_bench is None else "current"
            print(f"{label:<46} {'—':>12} {'—':>12}   (missing in {side})")
            continue
        base = base_bench.get(field)
        cur = cur_bench.get(field)
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)) or base == 0:
            print(f"{label:<46} {'—':>12} {'—':>12}   (field {field} unusable)")
            continue
        delta = (cur - base) / base
        # Fractions, per-vehicle footprints, restart latencies, log-size
        # ratios and the histogram latency quantiles (*_us / *_ms) are
        # better when *lower*; throughputs when higher.
        lower_is_better = field in ("serial_sim_fraction", "bytes_per_vehicle",
                                    "log_to_live_ratio") \
            or field.endswith(("_us", "_ms"))
        worse = delta > args.tolerance if lower_is_better \
            else delta < -args.tolerance
        marker = "  <-- regressed" if worse else ""
        print(f"{label:<46} {base:>12.4g} {cur:>12.4g} {delta:>+7.1%}{marker}")
        if worse:
            regressions += 1
            print(f"::warning title=bench-compare::{label} moved {delta:+.1%} "
                  f"(baseline {base:.4g}, current {cur:.4g}, "
                  f"tolerance ±{args.tolerance:.0%})")

    for binary, name, field, bound, label in ABSOLUTE_BOUNDS:
        bench = find_benchmark(current.get(binary, {}), name)
        value = bench.get(field) if bench is not None else None
        if not isinstance(value, (int, float)):
            print(f"{label:<46} {'—':>12} {'—':>12}   (missing in current)")
            continue
        worse = value > bound
        marker = "  <-- bound exceeded" if worse else ""
        print(f"{label:<46} {bound:>12.4g} {value:>12.4g} {'':>8}{marker}")
        if worse:
            regressions += 1
            print(f"::warning title=bench-compare::{label}: {value:.4g} "
                  f"exceeds the absolute bound {bound:.4g}")

    if regressions:
        print(f"\n{regressions} metric(s) beyond ±{args.tolerance:.0%} "
              f"of the committed baseline (warn-only).")
        return 1 if args.strict else 0
    print("\nAll tracked metrics within tolerance of the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
