#!/usr/bin/env python3
"""Peak-RSS budget gate for the CI big-fleet smoke.

Parses the `Maximum resident set size (kbytes): N` line that
`/usr/bin/time -v <cmd>` writes to its log and fails when the peak
exceeds --budget-mb.  The budget is the acceptance bar for the SoA fleet
store + content-addressed package cache: a 100k-VIN campaign must fit a
fixed resident-set envelope, so a per-vehicle memory regression (a
reintroduced heap row, an unshared package envelope) fails the smoke
instead of silently inflating the fleet's footprint.

Usage:
  /usr/bin/time -v ./bench_fleet --benchmark_filter=Mega 2> time.log
  check_rss.py time.log --budget-mb 2048
"""

import argparse
import re
import sys

PEAK_RE = re.compile(r"Maximum resident set size \(kbytes\):\s*(\d+)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("log", help="stderr capture of /usr/bin/time -v")
    parser.add_argument("--budget-mb", type=float, required=True,
                        help="fail when peak RSS exceeds this many MiB")
    args = parser.parse_args()

    try:
        with open(args.log) as f:
            text = f.read()
    except OSError as err:
        print(f"::error title=check-rss::could not read {args.log}: {err}")
        return 1

    match = PEAK_RE.search(text)
    if match is None:
        print(f"::error title=check-rss::no 'Maximum resident set size' "
              f"line in {args.log} (was the command run under "
              f"/usr/bin/time -v?)")
        return 1

    peak_mb = int(match.group(1)) / 1024.0
    headroom = args.budget_mb - peak_mb
    print(f"peak RSS {peak_mb:.1f} MiB, budget {args.budget_mb:.0f} MiB "
          f"({headroom:+.1f} MiB headroom)")
    if peak_mb > args.budget_mb:
        print(f"::error title=check-rss::peak RSS {peak_mb:.1f} MiB exceeds "
              f"the {args.budget_mb:.0f} MiB budget")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
