// Fixed-capacity vector.
//
// The AUTOSAR-flavoured substrates (os, bsw, rte) follow the standard's
// static-configuration discipline: all capacities are fixed at design /
// init time and no allocation happens on the hot path.  FixedVector stores
// elements inline and refuses growth past its compile-time capacity.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dacm::support {

template <typename T, std::size_t Capacity>
class FixedVector {
 public:
  FixedVector() = default;

  FixedVector(const FixedVector& other) { CopyFrom(other); }
  FixedVector& operator=(const FixedVector& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }
  FixedVector(FixedVector&& other) noexcept { MoveFrom(std::move(other)); }
  FixedVector& operator=(FixedVector&& other) noexcept {
    if (this != &other) {
      clear();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~FixedVector() { clear(); }

  static constexpr std::size_t capacity() { return Capacity; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == Capacity; }

  /// Appends a copy; returns false (and does nothing) when full.
  bool push_back(const T& value) {
    if (full()) return false;
    new (Slot(size_)) T(value);
    ++size_;
    return true;
  }

  bool push_back(T&& value) {
    if (full()) return false;
    new (Slot(size_)) T(std::move(value));
    ++size_;
    return true;
  }

  template <typename... Args>
  T* emplace_back(Args&&... args) {
    if (full()) return nullptr;
    T* p = new (Slot(size_)) T(std::forward<Args>(args)...);
    ++size_;
    return p;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    Get(size_)->~T();
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) Get(i)->~T();
    size_ = 0;
  }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return *Get(i);
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return *Get(i);
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* begin() { return Get(0); }
  T* end() { return Get(size_); }
  const T* begin() const { return Get(0); }
  const T* end() const { return Get(size_); }

 private:
  void CopyFrom(const FixedVector& other) {
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }
  void MoveFrom(FixedVector&& other) {
    for (std::size_t i = 0; i < other.size_; ++i) push_back(std::move(other[i]));
    other.clear();
  }

  void* Slot(std::size_t i) { return &storage_[i]; }
  T* Get(std::size_t i) { return std::launder(reinterpret_cast<T*>(&storage_[i])); }
  const T* Get(std::size_t i) const {
    return std::launder(reinterpret_cast<const T*>(&storage_[i]));
  }

  alignas(T) std::array<std::aligned_storage_t<sizeof(T), alignof(T)>, Capacity> storage_;
  std::size_t size_ = 0;
};

}  // namespace dacm::support
