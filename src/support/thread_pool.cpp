#include "support/thread_pool.hpp"

namespace dacm::support {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_index_ = 0;
    completed_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return completed_ == job_count_; });
  job_ = nullptr;
}

std::size_t ThreadPool::RunIndices() {
  std::size_t ran = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job;
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == nullptr || next_index_ >= job_count_) return ran;
      job = job_;
      index = next_index_++;
    }
    (*job)(index);
    ++ran;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++completed_ == job_count_) {
        work_done_.notify_all();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation &&
                             next_index_ < job_count_);
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunIndices();
  }
}

}  // namespace dacm::support
