#include "support/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <mutex>

namespace dacm::support {
namespace {

void AppendU64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

void AppendI64(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

// Shortest round-trip representation (std::to_chars), so exports are
// byte-stable across runs for identical values.
void AppendDouble(std::string& out, double value) {
  char buffer[40];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Anything else
// (dots, dashes from caller-composed names) folds to '_'.
std::string Sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out += (alpha || (digit && i > 0)) ? c : '_';
  }
  if (out.empty()) out.push_back('_');
  return out;
}

}  // namespace

double Histogram::Quantile(double q) const {
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(1.0, q * static_cast<double>(total));
  const double observed_max = static_cast<double>(Max());
  double cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lo =
          i == 0 ? 0.0
                 : static_cast<double>(std::uint64_t{1} << (i - 1));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double position =
          (target - cumulative) / static_cast<double>(counts[i]);
      return std::min(lo + position * (hi - lo), observed_max);
    }
    cumulative = next;
  }
  return observed_max;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// std::map nodes never move, so the references Get* hands out stay valid
// for the process lifetime, and iteration is already name-sorted for the
// deterministic exports.
struct Metrics::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Metrics& Metrics::Instance() {
  static Metrics instance;
  return instance;
}

Metrics::Impl& Metrics::impl() const {
  static Impl impl;
  return impl;
}

Counter& Metrics::GetCounter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.counters.try_emplace(Sanitize(name)).first->second;
}

Gauge& Metrics::GetGauge(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.gauges.try_emplace(Sanitize(name)).first->second;
}

Histogram& Metrics::GetHistogram(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.histograms.try_emplace(Sanitize(name)).first->second;
}

void Metrics::WriteExposition(std::string& out) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& [name, counter] : state.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name;
    out += ' ';
    AppendU64(out, counter.Value());
    out += '\n';
  }
  for (const auto& [name, gauge] : state.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name;
    out += ' ';
    AppendI64(out, gauge.Value());
    out += '\n';
  }
  for (const auto& [name, histogram] : state.histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t in_bucket = histogram.BucketCount(i);
      if (in_bucket == 0) continue;  // elide empty buckets, keep cumulatives
      cumulative += in_bucket;
      out += name;
      out += "_bucket{le=\"";
      AppendU64(out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendU64(out, cumulative);
      out += '\n';
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    AppendU64(out, histogram.Count());
    out += '\n';
    out += name;
    out += "_sum ";
    AppendU64(out, histogram.Sum());
    out += '\n';
    out += name;
    out += "_count ";
    AppendU64(out, histogram.Count());
    out += '\n';
  }
}

void Metrics::WriteJson(std::string& out) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : state.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    AppendU64(out, counter.Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : state.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    AppendI64(out, gauge.Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : state.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":";
    AppendU64(out, histogram.Count());
    out += ",\"sum\":";
    AppendU64(out, histogram.Sum());
    out += ",\"max\":";
    AppendU64(out, histogram.Max());
    out += ",\"mean\":";
    AppendDouble(out, histogram.Mean());
    out += ",\"p50\":";
    AppendDouble(out, histogram.Quantile(0.50));
    out += ",\"p95\":";
    AppendDouble(out, histogram.Quantile(0.95));
    out += ",\"p99\":";
    AppendDouble(out, histogram.Quantile(0.99));
    out += '}';
  }
  out += "}}";
}

void Metrics::ResetAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter.Reset();
  for (auto& [name, gauge] : state.gauges) gauge.Reset();
  for (auto& [name, histogram] : state.histograms) histogram.Reset();
}

}  // namespace dacm::support
