// Sim-time flight recorder: bounded per-lane rings of spans and instant
// events, exportable as Chrome trace-event JSON (chrome://tracing,
// Perfetto).
//
// Determinism is the contract: a trace event may carry ONLY values that
// are themselves deterministic under the simulator's replay guarantee —
// sim-time timestamps/durations (the caller passes them explicitly; the
// tracer has no clock of its own), VINs, wave numbers, record counts.
// Wall-clock durations (fsync latency, ack-flush wall time) belong in
// support::Metrics histograms, never in a trace event.  Two seeded runs
// of the same scenario therefore export byte-identical JSON, which makes
// traces diffable regression artifacts.
//
// Threading: one ring per *lane*, exactly one writer per lane at any
// moment.  Lane 0 is the simulation thread; lane (shard + 1) is whichever
// pool worker currently owns that shard index inside a ParallelFor (each
// index is handed to one worker, and the pool's barrier orders successive
// ParallelFors).  Writers never lock: recording is a bounds-checked slot
// store plus a lane-local sequence bump.  When a ring wraps, the oldest
// events are overwritten (newest are kept) and the loss is reported via
// dropped().
//
// Export merges all lanes by (timestamp, lane, per-lane sequence) — a
// total order that is stable across runs because every component is.
// Events are rendered with pid 1 and tid = lane, so Perfetto shows the
// sim thread and each shard worker as separate tracks; the upcoming
// parallel-simulator-lanes work gets its merge-barrier visualization
// from the same mechanism.
//
// Enabled state is one relaxed atomic bool checked at every record site:
// spans can be globally disabled (the acceptance kill switch), and a
// disabled tracer costs one load + branch per site.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dacm::support {

/// Named u64 payload on a trace event; name must be a string literal (or
/// otherwise outlive the tracer).
struct TraceArg {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// POD event record.  `name`/`cat` must be string literals; the one
/// inline string argument (VINs) is copied, capped at 23 bytes.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts = 0;   // sim-time microseconds
  std::uint64_t dur = 0;  // sim-time microseconds ('X' spans only)
  TraceArg args[3] = {};
  const char* str_name = nullptr;
  char str_value[24] = {};
  std::uint8_t str_len = 0;
  char ph = 'i';  // 'X' complete span, 'i' instant
};

class Tracer {
 public:
  static constexpr std::size_t kMaxLanes = 64;
  static constexpr std::size_t kDefaultEventsPerLane = std::size_t{1} << 15;

  static Tracer& Instance();

  /// Starts recording: drops any previous rings, sets the per-lane ring
  /// capacity and flips the enabled flag.  Call only while no workers
  /// are tracing (setup, between campaigns).
  void Enable(std::size_t events_per_lane = kDefaultEventsPerLane);
  /// Stops recording; recorded events stay exportable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Rewinds every lane to empty without freeing rings (back-to-back
  /// deterministic runs).  Same quiescence requirement as Enable.
  void Clear();

  /// Total events lost to ring wrap-around across all lanes.
  std::uint64_t dropped() const;
  /// Total events currently held (post-wrap) across all lanes.
  std::uint64_t size() const;

  /// Records a complete span: [ts_us, ts_us + dur_us] in sim time.
  void Span(std::uint32_t lane, const char* name, const char* cat,
            std::uint64_t ts_us, std::uint64_t dur_us, TraceArg a0 = {},
            TraceArg a1 = {}, TraceArg a2 = {}, const char* str_name = nullptr,
            std::string_view str_value = {});

  /// Records an instant event at ts_us.
  void Instant(std::uint32_t lane, const char* name, const char* cat,
               std::uint64_t ts_us, TraceArg a0 = {}, TraceArg a1 = {},
               TraceArg a2 = {}, const char* str_name = nullptr,
               std::string_view str_value = {});

  /// Merges every lane by (ts, lane, seq) and appends Chrome trace-event
  /// JSON ({"traceEvents":[...]}).  Byte-identical across identical
  /// seeded runs.  Call only from the simulation thread at a barrier.
  void ExportChromeJson(std::string& out) const;
  std::string ChromeJson() const {
    std::string out;
    ExportChromeJson(out);
    return out;
  }

  ~Tracer();

 private:
  struct Lane;

  Tracer() = default;
  void Emit(std::uint32_t lane, const TraceEvent& event);
  void FreeLanes();

  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = kDefaultEventsPerLane;
  std::atomic<Lane*> lanes_[kMaxLanes] = {};
};

}  // namespace dacm::support
