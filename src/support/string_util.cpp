#include "support/string_util.hpp"

#include <cctype>
#include <charconv>

namespace dacm::support {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

int CompareVersions(std::string_view a, std::string_view b) {
  auto fields_a = Split(a, '.');
  auto fields_b = Split(b, '.');
  std::size_t n = std::max(fields_a.size(), fields_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::string fa = i < fields_a.size() ? fields_a[i] : "0";
    std::string fb = i < fields_b.size() ? fields_b[i] : "0";
    int va = 0, vb = 0;
    auto ra = std::from_chars(fa.data(), fa.data() + fa.size(), va);
    auto rb = std::from_chars(fb.data(), fb.data() + fb.size(), vb);
    bool num_a = ra.ec == std::errc() && ra.ptr == fa.data() + fa.size();
    bool num_b = rb.ec == std::errc() && rb.ptr == fb.data() + fb.size();
    if (num_a && num_b) {
      if (va != vb) return va < vb ? -1 : 1;
    } else {
      if (fa != fb) return fa < fb ? -1 : 1;
    }
  }
  return 0;
}

}  // namespace dacm::support
