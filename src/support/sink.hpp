// Streaming text sinks for the Describe()/Fingerprint() formatter pair.
//
// The campaign engine and the server both format deterministic state
// descriptions through a single templated formatter that emits
// string_view fragments into a sink.  StringSink materializes the text
// (Describe); HashSink folds the identical byte stream into an FNV-1a
// hash without allocating (Fingerprint) — the comparison handle at fleet
// scale, where a million-row description would be tens of megabytes.
// Because both sinks consume the same fragments from the same formatter,
// the string and its hash can never drift apart.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace dacm::support {

/// Collects formatter fragments into a string.
struct StringSink {
  std::string out;
  void Append(std::string_view text) { out += text; }
};

/// Hashes formatter fragments instead of storing them: `hash` ends up as
/// FNV-1a over exactly the bytes StringSink would have accumulated.
struct HashSink {
  std::uint64_t hash = 1469598103934665603ull;
  void Append(std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<std::uint8_t>(c);
      hash *= 1099511628211ull;
    }
  }
};

/// Formats `value` with to_chars and appends it — no locale, no alloc.
template <typename Sink, typename Integer>
void AppendNumber(Sink& sink, Integer value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  sink.Append(std::string_view(
      buffer, static_cast<std::size_t>(result.ptr - buffer)));
}

}  // namespace dacm::support
