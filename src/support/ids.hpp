// Strong id types.
//
// The system juggles many integer id spaces (ECUs, SW-Cs, SW-C ports,
// plug-in ports, virtual ports, apps, users, vehicles, ...).  A strongly
// typed wrapper prevents mixing them; each id space instantiates StrongId
// with a distinct tag type.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace dacm::support {

/// Integer id with a phantom `Tag` so distinct id spaces cannot be mixed.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  /// Sentinel distinct from every valid id.
  static constexpr StrongId Invalid() { return StrongId(static_cast<Rep>(-1)); }
  constexpr bool valid() const { return value_ != static_cast<Rep>(-1); }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_ = static_cast<Rep>(-1);
};

}  // namespace dacm::support

namespace std {
template <typename Tag, typename Rep>
struct hash<dacm::support::StrongId<Tag, Rep>> {
  size_t operator()(dacm::support::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
