// Byte-level serialization.
//
// ByteWriter appends little-endian scalars, length-prefixed strings and
// blobs to a growable buffer; ByteReader consumes them with bounds checking.
// All wire formats in the repo (contexts, installation packages, server
// protocol, CAN transport) are built on these two.
//
// The free Load/Store helpers are the single place the repo converts
// between wire (little-endian) and host scalars; on little-endian hosts
// they compile to one unaligned load/store.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace dacm::support {

using Bytes = std::vector<std::uint8_t>;

// --- little-endian scalar access ------------------------------------------

inline std::uint16_t LoadLeU16(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint16_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
  } else {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }
}

inline std::uint32_t LoadLeU32(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
  } else {
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
  }
}

inline std::uint64_t LoadLeU64(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
  } else {
    return static_cast<std::uint64_t>(LoadLeU32(p)) |
           static_cast<std::uint64_t>(LoadLeU32(p + 4)) << 32;
  }
}

inline void StoreLeU16(std::uint8_t* p, std::uint16_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, sizeof v);
  } else {
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
  }
}

inline void StoreLeU32(std::uint8_t* p, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, sizeof v);
  } else {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

inline void StoreLeU64(std::uint8_t* p, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(p, &v, sizeof v);
  } else {
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Appends little-endian encoded fields to an internal buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(std::uint8_t v) { buffer_.push_back(v); }
  void WriteU16(std::uint16_t v) { AppendScalar(v); }
  void WriteU32(std::uint32_t v) { AppendScalar(v); }
  void WriteU64(std::uint64_t v) { AppendScalar(v); }
  void WriteI32(std::int32_t v) { WriteU32(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }

  // The bulk writers are inline: profiles of the fleet pipeline show the
  // per-field call overhead of an out-of-line codec on par with the field
  // copies themselves (millions of calls per campaign).

  /// Unsigned LEB128 (varint); compact encoding for counts.
  void WriteVarU32(std::uint32_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<std::uint8_t>(v | 0x80));
      v >>= 7;
    }
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  /// u32 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    Reserve(4 + s.size());
    WriteU32(static_cast<std::uint32_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }
  void WriteBlob(std::span<const std::uint8_t> blob) {
    Reserve(4 + blob.size());
    WriteU32(static_cast<std::uint32_t>(blob.size()));
    buffer_.insert(buffer_.end(), blob.begin(), blob.end());
  }

  void WriteRaw(std::span<const std::uint8_t> raw) {
    buffer_.insert(buffer_.end(), raw.begin(), raw.end());
  }

  /// Pre-allocates room for `additional` more bytes, so a burst of writes
  /// whose total size is known up front pays for at most one growth.
  /// Capacity at least doubles whenever a larger buffer is needed, so a
  /// sequence of small Reserve+write rounds (e.g. WriteString in a loop
  /// with no covering outer Reserve) stays amortized-linear instead of
  /// reallocating per call.
  void Reserve(std::size_t additional) {
    const std::size_t need = buffer_.size() + additional;
    if (need > buffer_.capacity()) {
      const std::size_t doubled = buffer_.capacity() * 2;
      buffer_.reserve(need > doubled ? need : doubled);
    }
  }

  const Bytes& bytes() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void AppendScalar(T v) {
    const std::size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    if constexpr (sizeof(T) == 2) {
      StoreLeU16(buffer_.data() + at, v);
    } else if constexpr (sizeof(T) == 4) {
      StoreLeU32(buffer_.data() + at, v);
    } else {
      StoreLeU64(buffer_.data() + at, v);
    }
  }

  Bytes buffer_;
};

/// Consumes fields written by ByteWriter; every read is bounds-checked and
/// returns an error Status on truncation instead of reading out of range.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  // Scalar reads are inline for the same reason the writers are: the
  // view-based parsers issue several per message, and the bounds check is
  // a compare the caller's loop can fold.

  Result<std::uint8_t> ReadU8() {
    DACM_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }
  Result<std::uint16_t> ReadU16() {
    DACM_RETURN_IF_ERROR(Need(2));
    const std::uint16_t v = LoadLeU16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> ReadU32() {
    DACM_RETURN_IF_ERROR(Need(4));
    const std::uint32_t v = LoadLeU32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> ReadU64() {
    DACM_RETURN_IF_ERROR(Need(8));
    const std::uint64_t v = LoadLeU64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  Result<std::int32_t> ReadI32() {
    DACM_ASSIGN_OR_RETURN(std::uint32_t v, ReadU32());
    return static_cast<std::int32_t>(v);
  }
  Result<std::int64_t> ReadI64() {
    DACM_ASSIGN_OR_RETURN(std::uint64_t v, ReadU64());
    return static_cast<std::int64_t>(v);
  }
  Result<std::uint32_t> ReadVarU32();
  Result<std::string> ReadString();
  Result<Bytes> ReadBlob();

  /// Zero-copy variants: the returned view aliases the reader's underlying
  /// buffer and is valid only as long as that buffer outlives it.  Use at
  /// dispatch sites that inspect a field and drop it before returning.
  Result<std::string_view> ReadStringView() {
    DACM_ASSIGN_OR_RETURN(std::uint32_t len, ReadU32());
    DACM_RETURN_IF_ERROR(Need(len));
    std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  Result<std::span<const std::uint8_t>> ReadBlobView() {
    DACM_ASSIGN_OR_RETURN(std::uint32_t len, ReadU32());
    DACM_RETURN_IF_ERROR(Need(len));
    std::span<const std::uint8_t> b = data_.subspan(pos_, len);
    pos_ += len;
    return b;
  }

  /// Number of unconsumed bytes.
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status Need(std::size_t n) const {
    // The error branch stays out of line so the hot check is a compare.
    if (remaining() < n) [[unlikely]] return TruncatedError(n);
    return OkStatus();
  }
  Status TruncatedError(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: copy a string's characters into a byte vector.
Bytes ToBytes(std::string_view s);

/// Convenience: interpret bytes as text (for tests/logging).
std::string ToString(std::span<const std::uint8_t> b);

}  // namespace dacm::support
