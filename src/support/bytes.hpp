// Byte-level serialization.
//
// ByteWriter appends little-endian scalars, length-prefixed strings and
// blobs to a growable buffer; ByteReader consumes them with bounds checking.
// All wire formats in the repo (contexts, installation packages, server
// protocol, CAN transport) are built on these two.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace dacm::support {

using Bytes = std::vector<std::uint8_t>;

/// Appends little-endian encoded fields to an internal buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(std::uint8_t v) { buffer_.push_back(v); }
  void WriteU16(std::uint16_t v);
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI32(std::int32_t v) { WriteU32(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }

  /// Unsigned LEB128 (varint); compact encoding for counts.
  void WriteVarU32(std::uint32_t v);

  /// u32 length prefix + raw bytes.
  void WriteString(std::string_view s);
  void WriteBlob(std::span<const std::uint8_t> blob);

  void WriteRaw(std::span<const std::uint8_t> raw);

  const Bytes& bytes() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Consumes fields written by ByteWriter; every read is bounds-checked and
/// returns an error Status on truncation instead of reading out of range.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int32_t> ReadI32();
  Result<std::int64_t> ReadI64();
  Result<std::uint32_t> ReadVarU32();
  Result<std::string> ReadString();
  Result<Bytes> ReadBlob();

  /// Number of unconsumed bytes.
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status Need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: copy a string's characters into a byte vector.
Bytes ToBytes(std::string_view s);

/// Convenience: interpret bytes as text (for tests/logging).
std::string ToString(std::span<const std::uint8_t> b);

}  // namespace dacm::support
