// Status / Result error-handling primitives.
//
// The library does not throw exceptions across module boundaries (the
// AUTOSAR-flavoured substrates follow a static-allocation, no-exception
// discipline).  Fallible operations return support::Status or
// support::Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dacm::support {

/// Coarse error taxonomy shared by all modules.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCapacityExceeded,
  kPermissionDenied,
  kFailedPrecondition,
  kUnavailable,
  kTimeout,
  kCorrupted,
  kUnimplemented,
  kIncompatible,
  kDependencyViolation,
  kResourceExhausted,
  kProtocolError,
  kInternal,
};

/// Human-readable name of an ErrorCode (stable, used in logs and tests).
std::string_view ErrorCodeName(ErrorCode code);

/// A success-or-error outcome with an optional diagnostic message.
class [[nodiscard]] Status {
 public:
  /// Successful status.
  Status() = default;

  /// Error status; `code` must not be kOk.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status CapacityExceeded(std::string msg) {
  return {ErrorCode::kCapacityExceeded, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {ErrorCode::kPermissionDenied, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status Timeout(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Status Corrupted(std::string msg) {
  return {ErrorCode::kCorrupted, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status Incompatible(std::string msg) {
  return {ErrorCode::kIncompatible, std::move(msg)};
}
inline Status DependencyViolation(std::string msg) {
  return {ErrorCode::kDependencyViolation, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status ProtocolError(std::string msg) {
  return {ErrorCode::kProtocolError, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// A value-or-error outcome.  Accessing value() on an error aborts in debug
/// builds; call ok() first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dacm::support

// Propagate an error Status from an expression returning Status.
#define DACM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::dacm::support::Status dacm_status__ = (expr); \
    if (!dacm_status__.ok()) return dacm_status__;  \
  } while (false)

// Evaluate an expression returning Result<T>; on success bind the value to
// `lhs`, otherwise propagate the error Status.
#define DACM_ASSIGN_OR_RETURN(lhs, expr)            \
  auto DACM_CONCAT_(result__, __LINE__) = (expr);   \
  if (!DACM_CONCAT_(result__, __LINE__).ok())       \
    return DACM_CONCAT_(result__, __LINE__).status(); \
  lhs = std::move(DACM_CONCAT_(result__, __LINE__)).value()

#define DACM_CONCAT_INNER_(a, b) a##b
#define DACM_CONCAT_(a, b) DACM_CONCAT_INNER_(a, b)
