// Process-wide metrics registry: named counters, gauges and log2-bucketed
// histograms with allocation- and lock-free hot paths.
//
// The hot-path contract mirrors the server's threading model: a Counter
// increment or Histogram observation is one (histogram: a handful of)
// relaxed atomic RMW — no locks, no allocation, no branches on registry
// state.  The registry mutex is taken only at *registration* (name →
// instrument lookup); callers bind `Counter&` / `Histogram&` references
// once at construction and hold them forever — instruments are never
// destroyed or relocated while the process lives.
//
// Aggregates that already exist as per-shard plain fields (ServerStats)
// are not duplicated on the hot path: the server folds them into registry
// counters with Counter::Set at the ack-flush barrier, where the worker
// pool's condition-variable handshake has already published every shard's
// writes.  Hence Counter supports both styles: Inc (owned by the metric)
// and Set (folded snapshot of an external aggregate).
//
// Histograms use 65 fixed log2 buckets — bucket 0 holds exactly the value
// 0 and bucket i (i >= 1) holds [2^(i-1), 2^i - 1] — so any u64
// observation lands with one std::bit_width and one fetch_add.  Quantile()
// interpolates linearly inside the chosen bucket and clamps to the exact
// observed maximum, which keeps p99 honest even when the tail bucket is
// wide.
//
// Exports: WriteExposition emits Prometheus text format (families sorted
// by name, empty buckets elided, +Inf always present); WriteJson emits a
// sorted single-object snapshot {counters, gauges, histograms} whose
// histogram entries carry count/sum/max and p50/p95/p99 so
// tools/bench_compare.py can diff distributions, not just means.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dacm::support {

/// Monotonic (or folded-snapshot) u64 metric.  Inc from any thread;
/// Set only from a fold point where the source aggregate is quiescent.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Overwrites with an externally-aggregated snapshot (ack-flush fold).
  void Set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed point-in-time metric (queue depths, degraded flags).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-size log2 histogram over u64 observations.  Observe is four
/// relaxed RMWs (bucket, count, sum, max); quantile/summary reads are
/// meant for barriers and exports, not hot paths.
class Histogram {
 public:
  /// Bucket i < 1 holds the value 0; bucket i >= 1 holds
  /// [2^(i-1), 2^i - 1]; index = std::bit_width(value).
  static constexpr std::size_t kBuckets = 65;

  void Observe(std::uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (2^i - 1; saturates at u64 max).
  static std::uint64_t BucketUpperBound(std::size_t i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  double Mean() const {
    const std::uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  /// Linear interpolation inside the log2 bucket holding rank q*count,
  /// clamped to the exact observed maximum.  q in [0, 1].
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide registry.  Get* interns by name (mutex held only there)
/// and returns a reference that stays valid for the process lifetime.
class Metrics {
 public:
  static Metrics& Instance();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Prometheus text exposition: families sorted by name, histogram
  /// buckets cumulative with empty buckets elided and `+Inf` terminal.
  void WriteExposition(std::string& out) const;
  std::string TextExposition() const {
    std::string out;
    WriteExposition(out);
    return out;
  }

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with sorted keys; histograms carry count/sum/max/mean/p50/p95/p99.
  void WriteJson(std::string& out) const;
  std::string Json() const {
    std::string out;
    WriteJson(out);
    return out;
  }

  /// Zeroes every registered instrument (registrations and bound
  /// references survive).  For back-to-back deterministic runs in tests
  /// and benches; not thread-safe against concurrent observers.
  void ResetAll();

 private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace dacm::support
