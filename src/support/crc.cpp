#include "support/crc.hpp"

#include <array>

namespace dacm::support {
namespace {

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = Table()[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Update(0, data);
}

}  // namespace dacm::support
