#include "support/crc.hpp"

#include <array>
#include <atomic>

#include "support/bytes.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define DACM_CRC_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__linux__)
#define DACM_CRC_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace dacm::support {
namespace {

using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr CrcTables BuildTables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  // tables[s][b] = crc of byte b followed by s zero bytes; XOR-ing the
  // eight per-lane lookups advances the register eight bytes at once.
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = tables[0][c & 0xffu] ^ (c >> 8);
      tables[s][i] = c;
    }
  }
  return tables;
}

// constexpr: baked into .rodata at compile time, so Crc32Update pays no
// initialization guard on entry.
constexpr CrcTables kTables = BuildTables();

// Every implementation below operates on the *internal* register state
// (already inverted); Crc32Update applies the ~ conditioning at the rim.
using CrcBodyFn = std::uint32_t (*)(std::uint32_t state, const std::uint8_t* p,
                                    std::size_t n);

std::uint32_t CrcBodySliced(std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  while (n >= 8) {
    // The slicing identity is over the little-endian view of the input;
    // LoadLeU32 keeps it correct on any host.
    const std::uint32_t one = crc ^ LoadLeU32(p);
    const std::uint32_t two = LoadLeU32(p + 4);
    crc = kTables[7][one & 0xffu] ^ kTables[6][(one >> 8) & 0xffu] ^
          kTables[5][(one >> 16) & 0xffu] ^ kTables[4][one >> 24] ^
          kTables[3][two & 0xffu] ^ kTables[2][(two >> 8) & 0xffu] ^
          kTables[1][(two >> 16) & 0xffu] ^ kTables[0][two >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#ifdef DACM_CRC_X86

// The SSE4.2 crc32 instruction evaluates the Castagnoli polynomial, not
// IEEE 802.3, so the x86 hardware rung is PCLMULQDQ folding instead: fold
// 64 input bytes per round with carry-less multiplies, then Barrett-reduce
// (Gopal et al., "Fast CRC Computation for Generic Polynomials Using
// PCLMULQDQ", folding constants for the reflected 0xEDB88320 polynomial).
__attribute__((target("pclmul,sse4.1"))) std::uint32_t CrcBodyClmul(
    std::uint32_t state, const std::uint8_t* p, std::size_t n) {
  if (n < 64) return CrcBodySliced(state, p, n);

  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
  const __m128i poly_mu = _mm_set_epi64x(0x01f7011641, 0x01db710641);
  const __m128i mask32 = _mm_setr_epi32(-1, 0, -1, 0);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(state)));
  p += 64;
  n -= 64;

  // Four independent 128-bit lanes folded forward 64 bytes per round.
  while (n >= 64) {
    __m128i lo1 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i lo2 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i lo3 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i lo4 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, lo1),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x00)));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, lo2),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x10)));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, lo3),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x20)));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, lo4),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0x30)));
    p += 64;
    n -= 64;
  }

  // Fold the four lanes into one.
  __m128i lo = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, lo), x2);
  lo = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, lo), x3);
  lo = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, lo), x4);

  // Single-lane folds over the remaining 16-byte blocks.
  while (n >= 16) {
    lo = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, lo),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }

  // 128 -> 64 bits.
  __m128i fold = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), fold);
  fold = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, fold);

  // Barrett reduction 64 -> 32 bits.
  fold = _mm_and_si128(x1, mask32);
  fold = _mm_clmulepi64_si128(fold, poly_mu, 0x10);
  fold = _mm_and_si128(fold, mask32);
  fold = _mm_clmulepi64_si128(fold, poly_mu, 0x00);
  x1 = _mm_xor_si128(x1, fold);
  state = static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));

  return n != 0 ? CrcBodySliced(state, p, n) : state;
}

bool ClmulAvailable() { return __builtin_cpu_supports("pclmul") != 0; }

#endif  // DACM_CRC_X86

#ifdef DACM_CRC_ARM

// ARMv8's optional CRC32 extension evaluates the IEEE polynomial directly
// (the CRC32C variants are the separate __crc32c* instructions).
__attribute__((target("+crc"))) std::uint32_t CrcBodyArm(std::uint32_t state,
                                                         const std::uint8_t* p,
                                                         std::size_t n) {
  while (n >= 8) {
    state = __crc32d(state, LoadLeU64(p));
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    state = __crc32b(state, *p++);
  }
  return state;
}

bool ArmCrcAvailable() { return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0; }

#endif  // DACM_CRC_ARM

const char* ResolveBackendName() {
#ifdef DACM_CRC_X86
  if (ClmulAvailable()) return "pclmul";
#endif
#ifdef DACM_CRC_ARM
  if (ArmCrcAvailable()) return "armv8-crc";
#endif
  return "slice8";
}

CrcBodyFn ResolveBody() {
#ifdef DACM_CRC_X86
  if (ClmulAvailable()) return &CrcBodyClmul;
#endif
#ifdef DACM_CRC_ARM
  if (ArmCrcAvailable()) return &CrcBodyArm;
#endif
  return &CrcBodySliced;
}

std::uint32_t CrcBodyResolveFirst(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n);

// One-time runtime dispatch: the pointer starts at a resolver trampoline
// that detects the CPU, installs the best body, and tail-runs it.  Atomic
// (relaxed) because concurrent first calls from deploy workers may both
// store the — identical — resolved pointer.
std::atomic<CrcBodyFn> g_crc_body{&CrcBodyResolveFirst};

std::uint32_t CrcBodyResolveFirst(std::uint32_t state, const std::uint8_t* p,
                                  std::size_t n) {
  CrcBodyFn body = ResolveBody();
  g_crc_body.store(body, std::memory_order_relaxed);
  return body(state, p, n);
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  return ~g_crc_body.load(std::memory_order_relaxed)(~crc, data.data(), data.size());
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Update(0, data);
}

const char* Crc32Backend() { return ResolveBackendName(); }

std::uint32_t Crc32UpdateSliced(std::uint32_t crc,
                                std::span<const std::uint8_t> data) {
  return ~CrcBodySliced(~crc, data.data(), data.size());
}

std::uint32_t Crc32UpdateBytewise(std::uint32_t crc,
                                  std::span<const std::uint8_t> data) {
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = kTables[0][(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32Bytewise(std::span<const std::uint8_t> data) {
  return Crc32UpdateBytewise(0, data);
}

}  // namespace dacm::support
