#include "support/crc.hpp"

#include <array>

#include "support/bytes.hpp"

namespace dacm::support {
namespace {

using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr CrcTables BuildTables() {
  CrcTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  // tables[s][b] = crc of byte b followed by s zero bytes; XOR-ing the
  // eight per-lane lookups advances the register eight bytes at once.
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = tables[0][c & 0xffu] ^ (c >> 8);
      tables[s][i] = c;
    }
  }
  return tables;
}

// constexpr: baked into .rodata at compile time, so Crc32Update pays no
// initialization guard on entry.
constexpr CrcTables kTables = BuildTables();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    // The slicing identity is over the little-endian view of the input;
    // LoadLeU32 keeps it correct on any host.
    const std::uint32_t one = crc ^ LoadLeU32(p);
    const std::uint32_t two = LoadLeU32(p + 4);
    crc = kTables[7][one & 0xffu] ^ kTables[6][(one >> 8) & 0xffu] ^
          kTables[5][(one >> 16) & 0xffu] ^ kTables[4][one >> 24] ^
          kTables[3][two & 0xffu] ^ kTables[2][(two >> 8) & 0xffu] ^
          kTables[1][(two >> 16) & 0xffu] ^ kTables[0][two >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32Update(0, data);
}

std::uint32_t Crc32UpdateBytewise(std::uint32_t crc,
                                  std::span<const std::uint8_t> data) {
  crc = ~crc;
  for (std::uint8_t byte : data) {
    crc = kTables[0][(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32Bytewise(std::span<const std::uint8_t> data) {
  return Crc32UpdateBytewise(0, data);
}

}  // namespace dacm::support
