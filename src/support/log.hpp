// Minimal leveled logger.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// examples can raise the level or install a capturing sink.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dacm::support {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
// Inline so Enabled() compiles down to a single relaxed load at every
// DACM_LOG site — deploy workers hit disabled sites in their hot loops,
// and an out-of-line accessor call there is pure overhead.
inline std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace log_detail

/// Global log configuration (process-wide).  Write() is thread-safe —
/// deploy workers log too — and sink invocations are serialized.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static LogLevel level() {
    return log_detail::g_level.load(std::memory_order_relaxed);
  }
  static void SetLevel(LogLevel level) {
    log_detail::g_level.store(level, std::memory_order_relaxed);
  }

  /// Replaces the sink (default writes to stderr).  Pass nullptr to restore.
  static void SetSink(Sink sink);

  static void Write(LogLevel level, std::string_view component,
                    std::string_view message);

  static bool Enabled(LogLevel level) { return level >= Log::level(); }
};

namespace log_detail {
class LineBuilder {
 public:
  LineBuilder(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LineBuilder() { Log::Write(level_, component_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace log_detail

}  // namespace dacm::support

#define DACM_LOG(level, component)                                   \
  if (!::dacm::support::Log::Enabled(level)) {                       \
  } else                                                             \
    ::dacm::support::log_detail::LineBuilder(level, component)

#define DACM_LOG_TRACE(c) DACM_LOG(::dacm::support::LogLevel::kTrace, c)
#define DACM_LOG_DEBUG(c) DACM_LOG(::dacm::support::LogLevel::kDebug, c)
#define DACM_LOG_INFO(c) DACM_LOG(::dacm::support::LogLevel::kInfo, c)
#define DACM_LOG_WARN(c) DACM_LOG(::dacm::support::LogLevel::kWarn, c)
#define DACM_LOG_ERROR(c) DACM_LOG(::dacm::support::LogLevel::kError, c)
