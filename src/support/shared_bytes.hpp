// Refcounted immutable byte buffers.
//
// A SharedBytes adopts a serialized buffer once and then travels by
// refcount bump: the network layer hands the same buffer from sender to
// per-peer FIFO to receive handler, a fan-out send to N peers shares one
// allocation, and the server's recorded campaign batches are re-pushed on
// retry waves without reserializing.  The payload is immutable for the
// lifetime of the handle, which is what makes cross-thread sharing safe
// (the refcount itself is atomic via shared_ptr).
//
// Interop: SharedBytes converts implicitly to `const Bytes&` and to
// `std::span<const uint8_t>`, so existing parse/serialize code and receive
// handlers written against plain buffers keep working unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "support/bytes.hpp"

namespace dacm::support {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Adopts `bytes` (move in the buffer you just serialized — this is the
  /// zero-copy entry point; passing an lvalue copies, like the plain-Bytes
  /// APIs it replaces did).
  SharedBytes(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : owned_(bytes.empty()
                   ? nullptr
                   : std::make_shared<const Bytes>(std::move(bytes))) {}

  /// Explicit deep copy of a view (for callers that only have a span).
  static SharedBytes Copy(std::span<const std::uint8_t> data) {
    return SharedBytes(Bytes(data.begin(), data.end()));
  }

  const std::uint8_t* data() const { return bytes().data(); }
  std::size_t size() const { return owned_ ? owned_->size() : 0; }
  bool empty() const { return size() == 0; }

  std::span<const std::uint8_t> span() const {
    return {bytes().data(), size()};
  }

  /// The underlying buffer (an empty sentinel when unset); valid as long
  /// as any handle to it lives.
  const Bytes& bytes() const { return owned_ ? *owned_ : EmptyBytes(); }

  operator const Bytes&() const { return bytes(); }  // NOLINT
  operator std::span<const std::uint8_t>() const { return span(); }  // NOLINT

  /// Number of handles sharing the buffer (diagnostics/tests).
  long use_count() const { return owned_.use_count(); }

 private:
  static const Bytes& EmptyBytes() {
    static const Bytes empty;
    return empty;
  }

  std::shared_ptr<const Bytes> owned_;
};

}  // namespace dacm::support
