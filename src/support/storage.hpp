// Crash-consistent record storage primitives.
//
// The durable-server layer (server/status_db, server/journal) appends
// CRC-framed records to an abstract RecordSink and replays them at
// startup.  The sink abstraction exists so tests can run the exact
// production framing against an in-memory buffer, snapshot it at an
// arbitrary "crash" point, and inject write faults that produce the torn
// tails the replay path must tolerate.
//
// Frame layout (all little-endian):
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// A frame is appended with a single sink write, so a crash (or a
// FaultingSink budget) tears at most the trailing frame.  Replay walks
// frames front to back and stops — without error — at the first short
// header, short payload or CRC mismatch: everything after a torn frame
// is unreachable by construction and is reported as truncated so the
// recovering writer can rewind to the last durable prefix.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::support {

/// Destination for framed record appends.  Implementations must make
/// each Append atomic with respect to snapshots a test takes between
/// calls; durability (Flush) semantics are implementation-defined.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Appends `bytes` at the end of the sink.
  virtual Status Append(std::span<const std::uint8_t> bytes) = 0;

  /// Pushes buffered bytes toward stable storage.
  virtual Status Flush() { return OkStatus(); }

  /// Pushes buffered bytes all the way to the device (for files: fsync).
  /// Defaults to Flush() for sinks with no stronger durability tier.
  virtual Status Sync() { return Flush(); }
};

/// In-memory sink: the test-injectable stand-in for a file.  bytes() is
/// the exact byte sequence a file would hold, so a test can snapshot it
/// as the "surviving" image at any crash point, or TruncateTo() an
/// arbitrary prefix to fabricate a torn tail.
class MemorySink : public RecordSink {
 public:
  Status Append(std::span<const std::uint8_t> bytes) override {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    return OkStatus();
  }

  const Bytes& bytes() const { return buffer_; }

  /// Drops everything past `size` (no-op if already shorter).
  void TruncateTo(std::size_t size) {
    if (size < buffer_.size()) buffer_.resize(size);
  }

  void Clear() { buffer_.clear(); }

 private:
  Bytes buffer_;
};

/// Appends to a file on disk.  Writes go through stdio buffering;
/// Flush() fflushes (the crash model most tests exercise is process
/// death, via MemorySink snapshots and FaultingSink budgets).  Sync()
/// additionally fsyncs, for deployments whose crash model includes
/// power loss — opt in per writer via RecordWriter's
/// `sync_every_n_frames`.
class FileSink : public RecordSink {
 public:
  /// Opens `path` for appending; `truncate` starts the log fresh.
  static Result<std::unique_ptr<FileSink>> Open(const std::string& path,
                                                bool truncate = false);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  Status Append(std::span<const std::uint8_t> bytes) override;
  Status Flush() override;
  Status Sync() override;

 private:
  explicit FileSink(std::FILE* file) : file_(file) {}

  std::FILE* file_;
};

/// Fault-injecting sink: forwards writes to `inner` until `fail_after`
/// total bytes have been accepted, then writes whatever partial prefix
/// of the current append still fits and fails — the storage-level model
/// of a crash landing mid-write, producing exactly the torn tail replay
/// must truncate.  Once torn, every later append fails without writing.
class FaultingSink : public RecordSink {
 public:
  FaultingSink(RecordSink& inner, std::size_t fail_after)
      : inner_(inner), budget_(fail_after) {}

  Status Append(std::span<const std::uint8_t> bytes) override;

  bool torn() const { return torn_; }

 private:
  RecordSink& inner_;
  std::size_t budget_;
  bool torn_ = false;
};

/// Frames payloads into a RecordSink ([len][crc][payload], one sink
/// Append per record).  Thread-safe: the status DB appends from shard
/// workers concurrently.
///
/// `sync_every_n_frames` is the durability knob: every Nth successfully
/// appended frame is followed by a RecordSink::Sync() (for FileSink:
/// fflush + fsync), bounding how many acknowledged frames a power loss
/// can lose to N-1.  0 (the default) never syncs explicitly.
class RecordWriter {
 public:
  explicit RecordWriter(RecordSink& sink, std::size_t sync_every_n_frames = 0)
      : sink_(sink), sync_every_n_frames_(sync_every_n_frames) {}

  Status Append(std::span<const std::uint8_t> payload);
  Status Flush();

 private:
  RecordSink& sink_;
  const std::size_t sync_every_n_frames_;
  std::size_t frames_since_sync_ = 0;  // guarded by mutex_
  std::mutex mutex_;
  Bytes frame_;  // reused scratch for the header+payload copy
};

/// Replay statistics: how much of the log was durable.
struct ReplayStats {
  std::size_t records = 0;      // frames decoded and delivered to fn
  std::size_t valid_bytes = 0;  // byte length of the durable prefix
  bool truncated = false;       // a torn tail was dropped
};

/// Walks the frames in `data`, calling `fn` with each payload in append
/// order.  Stops cleanly (truncated=true) at a torn tail; an error from
/// `fn` aborts the replay with that error.
Result<ReplayStats> ReplayRecords(
    std::span<const std::uint8_t> data,
    const std::function<Status(std::span<const std::uint8_t>)>& fn);

/// Reads a whole file into memory (NotFound if it does not exist).
Result<Bytes> ReadFileBytes(const std::string& path);

}  // namespace dacm::support
