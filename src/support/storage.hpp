// Crash-consistent record storage primitives.
//
// The durable-server layer (server/status_db, server/journal) appends
// CRC-framed records to an abstract RecordSink and replays them at
// startup.  The sink abstraction exists so tests can run the exact
// production framing against an in-memory buffer, snapshot it at an
// arbitrary "crash" point, and inject write faults that produce the torn
// tails the replay path must tolerate.
//
// Frame layout (all little-endian):
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// A frame is appended with a single sink write, so a crash (or a
// FaultingSink budget) tears at most the trailing frame.  Replay walks
// frames front to back and stops — without error — at the first short
// header, short payload or CRC mismatch: everything after a torn frame
// is unreachable by construction and is reported as truncated so the
// recovering writer can rewind to the last durable prefix.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::support {

/// Destination for framed record appends.  Implementations must make
/// each Append atomic with respect to snapshots a test takes between
/// calls; durability (Flush) semantics are implementation-defined.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Appends `bytes` at the end of the sink.
  virtual Status Append(std::span<const std::uint8_t> bytes) = 0;

  /// Pushes buffered bytes toward stable storage.
  virtual Status Flush() { return OkStatus(); }

  /// Pushes buffered bytes all the way to the device (for files: fsync).
  /// Defaults to Flush() for sinks with no stronger durability tier.
  virtual Status Sync() { return Flush(); }

  /// Atomically replaces the sink's entire contents with `image` — the
  /// checkpoint handoff.  After a successful Rotate the sink holds
  /// exactly `image` and later Appends extend it; a failed or
  /// crash-interrupted Rotate leaves the previous contents untouched
  /// (FileSink: write-temp + fsync + rename, so there is never a moment
  /// where a reader can observe a half-written log).
  virtual Status Rotate(std::span<const std::uint8_t> image) {
    (void)image;
    return Unimplemented("sink does not support rotation");
  }
};

/// In-memory sink: the test-injectable stand-in for a file.  bytes() is
/// the exact byte sequence a file would hold, so a test can snapshot it
/// as the "surviving" image at any crash point, or TruncateTo() an
/// arbitrary prefix to fabricate a torn tail.
class MemorySink : public RecordSink {
 public:
  Status Append(std::span<const std::uint8_t> bytes) override {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    return OkStatus();
  }

  Status Rotate(std::span<const std::uint8_t> image) override {
    buffer_.assign(image.begin(), image.end());
    return OkStatus();
  }

  const Bytes& bytes() const { return buffer_; }

  /// Drops everything past `size` (no-op if already shorter).
  void TruncateTo(std::size_t size) {
    if (size < buffer_.size()) buffer_.resize(size);
  }

  void Clear() { buffer_.clear(); }

 private:
  Bytes buffer_;
};

/// Appends to a file on disk.  Writes go through stdio buffering;
/// Flush() fflushes (the crash model most tests exercise is process
/// death, via MemorySink snapshots and FaultingSink budgets).  Sync()
/// additionally fsyncs, for deployments whose crash model includes
/// power loss — opt in per writer via RecordWriter's
/// `sync_every_n_frames`.
class FileSink : public RecordSink {
 public:
  /// Opens `path` for appending; `truncate` starts the log fresh.
  static Result<std::unique_ptr<FileSink>> Open(const std::string& path,
                                                bool truncate = false);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  Status Append(std::span<const std::uint8_t> bytes) override;
  Status Flush() override;
  Status Sync() override;
  /// Write-temp + fsync + rename: the checkpoint image lands in
  /// `<path>.rotate`, is synced, and atomically renamed over the log, so
  /// a crash at any point leaves either the old log or the new image —
  /// never a mix.  The append handle is reopened on the new file.
  Status Rotate(std::span<const std::uint8_t> image) override;

 private:
  FileSink(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
};

/// Fault-injecting sink: forwards writes to `inner` until `fail_after`
/// total bytes have been accepted, then writes whatever partial prefix
/// of the current append still fits and fails — the storage-level model
/// of a crash landing mid-write, producing exactly the torn tail replay
/// must truncate.  Once torn, every later append fails without writing.
class FaultingSink : public RecordSink {
 public:
  FaultingSink(RecordSink& inner, std::size_t fail_after)
      : inner_(inner), budget_(fail_after) {}

  Status Append(std::span<const std::uint8_t> bytes) override;
  /// Rotation is all-or-nothing (rename atomicity): within budget it
  /// forwards and costs the image size; past it, the swap never happens
  /// and the inner sink keeps its previous contents.
  Status Rotate(std::span<const std::uint8_t> image) override;

  bool torn() const { return torn_; }

 private:
  RecordSink& inner_;
  std::size_t budget_;
  bool torn_ = false;
};

/// Shared operation counter for the crash-point sweep harness.  Every
/// Append / Sync / Rotate issued through a CrashPointSink advances one
/// clock, across however many sinks (status log + campaign journal)
/// share it.  Two modes:
///
///  * recording — the clock counts and, when a now-fn is set, remembers
///    each op's timestamp, so a recording pass over a seeded scenario
///    yields the full list of reachable write boundaries and when each
///    one happens;
///  * armed — Arm(n, tear) makes the n-th op the crash point: an Append
///    writes only its first `tear` bytes, a Sync never reaches the
///    device, a Rotate never swaps, and the clock goes dead — every
///    later op fails without touching the inner sink, modelling power
///    loss at exactly that boundary until the harness kills the server.
///
/// Thread-safe: status paragraphs are appended from shard workers.
class CrashClock {
 public:
  /// Timestamp source for op-time recording (e.g. the simulator clock).
  void SetNowFn(std::function<std::uint64_t()> fn) {
    std::lock_guard lock(mutex_);
    now_fn_ = std::move(fn);
  }

  /// Makes op number `crash_at` (1-based) the crash point; an armed
  /// Append first leaks a `tear_bytes` torn prefix into the inner sink.
  void Arm(std::uint64_t crash_at, std::size_t tear_bytes = 0) {
    std::lock_guard lock(mutex_);
    crash_at_ = crash_at;
    tear_bytes_ = tear_bytes;
  }

  std::uint64_t ops() const {
    std::lock_guard lock(mutex_);
    return ops_;
  }
  bool dead() const {
    std::lock_guard lock(mutex_);
    return dead_;
  }
  /// One timestamp per op, in op order (recording mode with a now-fn).
  std::vector<std::uint64_t> op_times() const {
    std::lock_guard lock(mutex_);
    return op_times_;
  }

 private:
  friend class CrashPointSink;

  /// Advances the clock for one op.  Returns the torn-prefix length an
  /// armed Append may still write (SIZE_MAX = not the crash point, op
  /// proceeds normally); sets `*dead` when the op must fail.
  std::size_t Tick(bool* dead) {
    std::lock_guard lock(mutex_);
    ++ops_;
    if (now_fn_) op_times_.push_back(now_fn_());
    if (dead_) {
      *dead = true;
      return 0;
    }
    if (crash_at_ != 0 && ops_ == crash_at_) {
      dead_ = true;
      *dead = true;
      return tear_bytes_;
    }
    *dead = false;
    return SIZE_MAX;
  }

  mutable std::mutex mutex_;
  std::uint64_t ops_ = 0;
  std::uint64_t crash_at_ = 0;  // 0 = recording mode, never crashes
  std::size_t tear_bytes_ = 0;
  bool dead_ = false;
  std::function<std::uint64_t()> now_fn_;
  std::vector<std::uint64_t> op_times_;
};

/// The sweep harness's sink wrapper: forwards to `inner` while advancing
/// the shared CrashClock on every Append / Sync / Rotate (Flush is not a
/// durability boundary and is not counted).  See CrashClock for the
/// crash semantics at the armed op.
class CrashPointSink : public RecordSink {
 public:
  CrashPointSink(RecordSink& inner, CrashClock& clock)
      : inner_(inner), clock_(clock) {}

  Status Append(std::span<const std::uint8_t> bytes) override;
  Status Flush() override;
  Status Sync() override;
  Status Rotate(std::span<const std::uint8_t> image) override;

 private:
  RecordSink& inner_;
  CrashClock& clock_;
};

/// Frames payloads into a RecordSink ([len][crc][payload], one sink
/// Append per record).  Thread-safe: the status DB appends from shard
/// workers concurrently.
///
/// `sync_every_n_frames` is the durability knob: every Nth successfully
/// appended frame is followed by a RecordSink::Sync() (for FileSink:
/// fflush + fsync), bounding how many acknowledged frames a power loss
/// can lose to N-1.  0 (the default) never syncs explicitly.
class RecordWriter {
 public:
  explicit RecordWriter(RecordSink& sink, std::size_t sync_every_n_frames = 0)
      : sink_(sink), sync_every_n_frames_(sync_every_n_frames) {}

  Status Append(std::span<const std::uint8_t> payload);
  Status Flush();

  /// Frame bytes (headers included) successfully appended since
  /// construction or the last ResetByteCount() — the compaction
  /// watermark's input.
  std::uint64_t bytes_appended() const;
  /// Restarts the byte accounting (call after a checkpoint rotation).
  void ResetByteCount();

 private:
  RecordSink& sink_;
  const std::size_t sync_every_n_frames_;
  std::size_t frames_since_sync_ = 0;   // guarded by mutex_
  std::uint64_t bytes_appended_ = 0;    // guarded by mutex_
  mutable std::mutex mutex_;
  Bytes frame_;  // reused scratch for the header+payload copy
};

/// Builds a checkpoint image: payloads are framed exactly like
/// RecordWriter appends ([len][crc][payload]), accumulated in memory, and
/// atomically swapped into a sink with Commit() (RecordSink::Rotate).  A
/// replayer cannot tell a checkpointed log from an appended one — the
/// compaction fold is invisible to recovery by construction.
class CheckpointWriter {
 public:
  Status Append(std::span<const std::uint8_t> payload);

  /// Swaps the accumulated image into `sink`.  The image is kept on
  /// failure so a retry against a healthy sink can still commit.
  Status Commit(RecordSink& sink);

  std::size_t image_bytes() const { return image_.size(); }
  std::size_t records() const { return records_; }
  const Bytes& image() const { return image_; }

 private:
  Bytes image_;
  std::size_t records_ = 0;
};

/// Replay statistics: how much of the log was durable.
struct ReplayStats {
  std::size_t records = 0;      // frames decoded and delivered to fn
  std::size_t valid_bytes = 0;  // byte length of the durable prefix
  bool truncated = false;       // a torn tail was dropped
};

/// Walks the frames in `data`, calling `fn` with each payload in append
/// order.  Stops cleanly (truncated=true) at a torn tail; an error from
/// `fn` aborts the replay with that error.
Result<ReplayStats> ReplayRecords(
    std::span<const std::uint8_t> data,
    const std::function<Status(std::span<const std::uint8_t>)>& fn);

/// Reads a whole file into memory (NotFound if it does not exist).
Result<Bytes> ReadFileBytes(const std::string& path);

}  // namespace dacm::support
