// Fixed-size worker pool for data-parallel fan-out.
//
// Built for the trusted server's sharded deploy pipeline: the owner thread
// calls ParallelFor, the pool's workers pull indices off a shared counter,
// and the call returns only when every index has been processed — a full
// barrier, so the caller may touch the workers' results without further
// synchronization (the condition-variable handshake publishes them).
//
// The caller deliberately does NOT execute indices when workers exist:
// work that runs on the calling (simulation) thread would take the
// network's immediate-send fast path instead of the staged drain barrier,
// and which indices the caller grabbed would depend on OS scheduling —
// breaking the deterministic event order the barrier exists to provide.
//
// A pool of size 0 (or a single-index job) degrades to a plain loop on the
// calling thread; the single-shard server uses that to keep its
// synchronous path free of any threading overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dacm::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is valid: everything runs inline).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(count - 1) on the workers (inline on the caller
  /// only when the pool is empty or count is 1); returns when all have
  /// completed.  Not reentrant: one ParallelFor at a time per pool.
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();
  /// Pulls indices until the current job is drained; returns the number
  /// this thread completed.
  std::size_t RunIndices();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<std::thread> workers_;

  // Job state, all guarded by mutex_.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace dacm::support
