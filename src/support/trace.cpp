#include "support/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <vector>

namespace dacm::support {
namespace {

void AppendU64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, static_cast<std::size_t>(result.ptr - buffer));
}

// Minimal JSON string escape; VINs and literals are almost always clean,
// but a stray quote must not corrupt the document.
void AppendEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct Tracer::Lane {
  explicit Lane(std::size_t capacity) : ring(capacity) {}
  std::vector<TraceEvent> ring;
  // Total events ever emitted on this lane; slot = next % ring.size().
  // Written only by the lane's single writer; read at export barriers.
  std::uint64_t next = 0;
};

Tracer& Tracer::Instance() {
  static Tracer instance;
  return instance;
}

Tracer::~Tracer() { FreeLanes(); }

void Tracer::FreeLanes() {
  for (auto& slot : lanes_) {
    delete slot.load(std::memory_order_acquire);
    slot.store(nullptr, std::memory_order_release);
  }
}

void Tracer::Enable(std::size_t events_per_lane) {
  enabled_.store(false, std::memory_order_relaxed);
  FreeLanes();
  capacity_ = events_per_lane == 0 ? 1 : events_per_lane;
  // The sim thread's lane always exists; shard lanes materialize on
  // first use so an 8-shard bench does not pay for 64 rings.
  lanes_[0].store(new Lane(capacity_), std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  for (auto& slot : lanes_) {
    Lane* lane = slot.load(std::memory_order_acquire);
    if (lane != nullptr) lane->next = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t lost = 0;
  for (const auto& slot : lanes_) {
    const Lane* lane = slot.load(std::memory_order_acquire);
    if (lane != nullptr && lane->next > lane->ring.size()) {
      lost += lane->next - lane->ring.size();
    }
  }
  return lost;
}

std::uint64_t Tracer::size() const {
  std::uint64_t held = 0;
  for (const auto& slot : lanes_) {
    const Lane* lane = slot.load(std::memory_order_acquire);
    if (lane != nullptr) held += std::min<std::uint64_t>(lane->next, lane->ring.size());
  }
  return held;
}

void Tracer::Emit(std::uint32_t lane_index, const TraceEvent& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (lane_index >= kMaxLanes) lane_index = kMaxLanes - 1;
  Lane* lane = lanes_[lane_index].load(std::memory_order_acquire);
  if (lane == nullptr) {
    lane = new Lane(capacity_);
    lanes_[lane_index].store(lane, std::memory_order_release);
  }
  lane->ring[lane->next % lane->ring.size()] = event;
  ++lane->next;
}

void Tracer::Span(std::uint32_t lane, const char* name, const char* cat,
                  std::uint64_t ts_us, std::uint64_t dur_us, TraceArg a0,
                  TraceArg a1, TraceArg a2, const char* str_name,
                  std::string_view str_value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'X';
  event.ts = ts_us;
  event.dur = dur_us;
  event.args[0] = a0;
  event.args[1] = a1;
  event.args[2] = a2;
  if (str_name != nullptr) {
    event.str_name = str_name;
    event.str_len = static_cast<std::uint8_t>(
        std::min(str_value.size(), sizeof event.str_value - 1));
    std::memcpy(event.str_value, str_value.data(), event.str_len);
  }
  Emit(lane, event);
}

void Tracer::Instant(std::uint32_t lane, const char* name, const char* cat,
                     std::uint64_t ts_us, TraceArg a0, TraceArg a1, TraceArg a2,
                     const char* str_name, std::string_view str_value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'i';
  event.ts = ts_us;
  event.args[0] = a0;
  event.args[1] = a1;
  event.args[2] = a2;
  if (str_name != nullptr) {
    event.str_name = str_name;
    event.str_len = static_cast<std::uint8_t>(
        std::min(str_value.size(), sizeof event.str_value - 1));
    std::memcpy(event.str_value, str_value.data(), event.str_len);
  }
  Emit(lane, event);
}

void Tracer::ExportChromeJson(std::string& out) const {
  struct Ref {
    std::uint64_t ts;
    std::uint32_t lane;
    std::uint64_t seq;
    const TraceEvent* event;
  };
  std::vector<Ref> refs;
  std::vector<std::uint32_t> live_lanes;
  for (std::uint32_t lane_index = 0; lane_index < kMaxLanes; ++lane_index) {
    const Lane* lane = lanes_[lane_index].load(std::memory_order_acquire);
    if (lane == nullptr || lane->next == 0) continue;
    live_lanes.push_back(lane_index);
    const std::uint64_t cap = lane->ring.size();
    const std::uint64_t first = lane->next > cap ? lane->next - cap : 0;
    for (std::uint64_t seq = first; seq < lane->next; ++seq) {
      const TraceEvent& event = lane->ring[seq % cap];
      refs.push_back(Ref{event.ts, lane_index, seq, &event});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.seq < b.seq;
  });

  out += "{\"traceEvents\":[";
  bool first = true;
  // Track names up front so Perfetto labels the sim thread and each
  // shard worker; deterministic because live_lanes is lane-ordered.
  for (std::uint32_t lane_index : live_lanes) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(out, lane_index);
    out += ",\"args\":{\"name\":\"";
    if (lane_index == 0) {
      out += "sim";
    } else {
      out += "shard-";
      AppendU64(out, lane_index - 1);
    }
    out += "\"}}";
  }
  for (const Ref& ref : refs) {
    const TraceEvent& event = *ref.event;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, event.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, event.cat);
    out += "\",\"ph\":\"";
    out += event.ph;
    out += "\",\"ts\":";
    AppendU64(out, event.ts);
    if (event.ph == 'X') {
      out += ",\"dur\":";
      AppendU64(out, event.dur);
    }
    if (event.ph == 'i') out += ",\"s\":\"t\"";
    out += ",\"pid\":1,\"tid\":";
    AppendU64(out, ref.lane);
    bool has_args = event.str_name != nullptr;
    for (const TraceArg& arg : event.args) has_args |= arg.name != nullptr;
    if (has_args) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& arg : event.args) {
        if (arg.name == nullptr) continue;
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        AppendEscaped(out, arg.name);
        out += "\":";
        AppendU64(out, arg.value);
      }
      if (event.str_name != nullptr) {
        if (!first_arg) out += ',';
        out += '"';
        AppendEscaped(out, event.str_name);
        out += "\":\"";
        AppendEscaped(out, std::string_view(event.str_value, event.str_len));
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
}

}  // namespace dacm::support
