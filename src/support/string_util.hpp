// Small string helpers used by the PVM assembler and server modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dacm::support {

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-sensitive semantic-version-ish comparison of "a.b.c" strings:
/// returns <0, 0, >0.  Non-numeric fields compare lexicographically.
int CompareVersions(std::string_view a, std::string_view b);

}  // namespace dacm::support
