#include "support/bytes.hpp"

namespace dacm::support {

Status ByteReader::TruncatedError(std::size_t n) const {
  return Corrupted("truncated buffer: need " + std::to_string(n) +
                   " bytes, have " + std::to_string(remaining()));
}

Result<std::uint32_t> ByteReader::ReadVarU32() {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    DACM_ASSIGN_OR_RETURN(std::uint8_t byte, ReadU8());
    if (shift >= 32) return Corrupted("varint too long");
    v |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::string> ByteReader::ReadString() {
  DACM_ASSIGN_OR_RETURN(std::string_view view, ReadStringView());
  return std::string(view);
}

Result<Bytes> ByteReader::ReadBlob() {
  DACM_ASSIGN_OR_RETURN(auto view, ReadBlobView());
  return Bytes(view.begin(), view.end());
}

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace dacm::support
