#include "support/bytes.hpp"

namespace dacm::support {

void ByteWriter::WriteVarU32(std::uint32_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteString(std::string_view s) {
  Reserve(4 + s.size());
  WriteU32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::WriteBlob(std::span<const std::uint8_t> blob) {
  Reserve(4 + blob.size());
  WriteU32(static_cast<std::uint32_t>(blob.size()));
  buffer_.insert(buffer_.end(), blob.begin(), blob.end());
}

void ByteWriter::WriteRaw(std::span<const std::uint8_t> raw) {
  buffer_.insert(buffer_.end(), raw.begin(), raw.end());
}

Status ByteReader::Need(std::size_t n) const {
  if (remaining() < n) {
    return Corrupted("truncated buffer: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(remaining()));
  }
  return OkStatus();
}

Result<std::uint8_t> ByteReader::ReadU8() {
  DACM_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::ReadU16() {
  DACM_RETURN_IF_ERROR(Need(2));
  const std::uint16_t v = LoadLeU16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU32() {
  DACM_RETURN_IF_ERROR(Need(4));
  const std::uint32_t v = LoadLeU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  DACM_RETURN_IF_ERROR(Need(8));
  const std::uint64_t v = LoadLeU64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<std::int32_t> ByteReader::ReadI32() {
  DACM_ASSIGN_OR_RETURN(std::uint32_t v, ReadU32());
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> ByteReader::ReadI64() {
  DACM_ASSIGN_OR_RETURN(std::uint64_t v, ReadU64());
  return static_cast<std::int64_t>(v);
}

Result<std::uint32_t> ByteReader::ReadVarU32() {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    DACM_ASSIGN_OR_RETURN(std::uint8_t byte, ReadU8());
    if (shift >= 32) return Corrupted("varint too long");
    v |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::string_view> ByteReader::ReadStringView() {
  DACM_ASSIGN_OR_RETURN(std::uint32_t len, ReadU32());
  DACM_RETURN_IF_ERROR(Need(len));
  std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::span<const std::uint8_t>> ByteReader::ReadBlobView() {
  DACM_ASSIGN_OR_RETURN(std::uint32_t len, ReadU32());
  DACM_RETURN_IF_ERROR(Need(len));
  std::span<const std::uint8_t> b = data_.subspan(pos_, len);
  pos_ += len;
  return b;
}

Result<std::string> ByteReader::ReadString() {
  DACM_ASSIGN_OR_RETURN(std::string_view view, ReadStringView());
  return std::string(view);
}

Result<Bytes> ByteReader::ReadBlob() {
  DACM_ASSIGN_OR_RETURN(auto view, ReadBlobView());
  return Bytes(view.begin(), view.end());
}

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace dacm::support
