// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Installation packages and CAN transport frames carry a CRC so that
// corruption faults injected in tests are detected the way a production
// stack would detect them.
//
// The production path is slice-by-8: eight constexpr-generated 256-entry
// tables consume 8 input bytes per iteration.  The classic single-table
// bytewise loop is kept as `Crc32Bytewise`/`Crc32UpdateBytewise` — it is
// the reference the differential fuzz suite checks the fast path against.
#pragma once

#include <cstdint>
#include <span>

namespace dacm::support {

/// CRC-32/ISO-HDLC over `data`.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// Incremental variant: feed `data` into a running crc (start with 0).
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);

/// Reference bytewise implementations (one table, one byte per step).
/// Slower; exists so tests can differentially validate the sliced path.
std::uint32_t Crc32Bytewise(std::span<const std::uint8_t> data);
std::uint32_t Crc32UpdateBytewise(std::uint32_t crc,
                                  std::span<const std::uint8_t> data);

}  // namespace dacm::support
