// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Installation packages and CAN transport frames carry a CRC so that
// corruption faults injected in tests are detected the way a production
// stack would detect them.
#pragma once

#include <cstdint>
#include <span>

namespace dacm::support {

/// CRC-32/ISO-HDLC over `data`.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// Incremental variant: feed `data` into a running crc (start with 0).
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);

}  // namespace dacm::support
