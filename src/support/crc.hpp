// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Installation packages and CAN transport frames carry a CRC so that
// corruption faults injected in tests are detected the way a production
// stack would detect them.
//
// Three rungs, selected once at runtime through a dispatch pointer:
//
//  * hardware — PCLMULQDQ folding on x86 (the SSE4.2 crc32 instruction is
//    CRC-32C, not IEEE, so carry-less-multiply folding is the hardware
//    path here) or the ARMv8 CRC32 extension;
//  * slice-by-8 — eight constexpr-generated 256-entry tables consuming 8
//    input bytes per iteration; the portable production path and the
//    tail/fallback of the hardware rung;
//  * bytewise — the classic single-table loop, kept as the reference the
//    differential fuzz suite checks both faster paths against.
#pragma once

#include <cstdint>
#include <span>

namespace dacm::support {

/// CRC-32/ISO-HDLC over `data` (hardware-accelerated where available).
std::uint32_t Crc32(std::span<const std::uint8_t> data);

/// Incremental variant: feed `data` into a running crc (start with 0).
std::uint32_t Crc32Update(std::uint32_t crc, std::span<const std::uint8_t> data);

/// Name of the implementation the dispatch pointer resolves to on this
/// machine: "pclmul", "armv8-crc" or "slice8" (bench/test diagnostics).
const char* Crc32Backend();

/// The portable slice-by-8 path, callable directly so the differential
/// suite can pin it against the hardware rung regardless of dispatch.
std::uint32_t Crc32UpdateSliced(std::uint32_t crc,
                                std::span<const std::uint8_t> data);

/// Reference bytewise implementations (one table, one byte per step).
/// Slower; exists so tests can differentially validate the fast paths.
std::uint32_t Crc32Bytewise(std::span<const std::uint8_t> data);
std::uint32_t Crc32UpdateBytewise(std::uint32_t crc,
                                  std::span<const std::uint8_t> data);

}  // namespace dacm::support
