// Small-callback storage without heap allocation.
//
// InplaceFunction is a move-only std::function replacement for hot paths
// that erase short-lived callables by the million (the simulator's event
// queue schedules one per event).  Callables whose captures fit the inline
// capacity are stored inside the object itself; larger ones fall back to a
// single heap allocation (the std::function-style escape hatch), so any
// callable is accepted — only the common case is allocation-free.
//
// Differences from std::function, on purpose:
//  * move-only (no copy): event callbacks are fired once and dropped, and
//    requiring copyability would forbid capturing move-only state;
//  * invoking an empty InplaceFunction is undefined (asserted in debug)
//    instead of throwing std::bad_function_call.  Note "empty" means no
//    callable was installed: wrapping an *empty std::function* yields a
//    non-empty InplaceFunction whose invocation throws at fire time, the
//    same way calling that std::function directly would.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace dacm::support {

inline constexpr std::size_t kInplaceFunctionCapacity = 48;

template <typename Signature, std::size_t Capacity = kInplaceFunctionCapacity>
class InplaceFunction;  // undefined; see the R(Args...) specialization

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InplaceFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Decayed = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      vtable_ = &kInlineVTable<Decayed>;
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      vtable_ = &kBoxedVTable<Decayed>;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { MoveFrom(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  R operator()(Args... args) const {
    assert(vtable_ != nullptr && "invoking an empty InplaceFunction");
    // Like std::function, invocation is const-qualified but may run a
    // mutable callable; storage is owned, so the cast is sound.
    return vtable_->invoke(const_cast<unsigned char*>(storage_),
                           std::forward<Args>(args)...);
  }

  /// True when a callable of type F (by value) avoids the heap fallback.
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs dst's payload from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr VTable kInlineVTable{
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<F*>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        F* from = static_cast<F*>(src);
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* storage) { static_cast<F*>(storage)->~F(); },
  };

  template <typename F>
  static constexpr VTable kBoxedVTable{
      [](void* storage, Args&&... args) -> R {
        return (**static_cast<F**>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) {
        ::new (dst) F*(*static_cast<F**>(src));
        *static_cast<F**>(src) = nullptr;
      },
      [](void* storage) { delete *static_cast<F**>(storage); },
  };

  void MoveFrom(InplaceFunction& other) noexcept {
    if (other.vtable_ == nullptr) return;
    other.vtable_->relocate(storage_, other.storage_);
    vtable_ = other.vtable_;
    other.vtable_ = nullptr;
  }

  void Reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace dacm::support
