#include "support/storage.hpp"

#include <chrono>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "support/crc.hpp"
#include "support/metrics.hpp"

namespace dacm::support {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
// Upper bound on a single payload: a status paragraph or journal record
// is a few KiB at most, so anything past this is framing corruption, not
// a real record.
constexpr std::uint32_t kMaxPayload = 1u << 28;

}  // namespace

// --- FileSink ----------------------------------------------------------------------

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path,
                                                 bool truncate) {
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) {
    return Unavailable("cannot open record sink " + path);
  }
  return std::unique_ptr<FileSink>(new FileSink(file, path));
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Append(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return OkStatus();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Unavailable("short write to record sink");
  }
  return OkStatus();
}

Status FileSink::Flush() {
  if (std::fflush(file_) != 0) return Unavailable("record sink flush failed");
  return OkStatus();
}

Status FileSink::Sync() {
  // fflush pushes the stdio buffer to the kernel; fsync pushes the page
  // cache to the device.  Both are needed for power-loss durability.
  DACM_RETURN_IF_ERROR(Flush());
#ifndef _WIN32
  if (::fsync(::fileno(file_)) != 0) {
    return Unavailable("record sink fsync failed");
  }
#endif
  return OkStatus();
}

Status FileSink::Rotate(std::span<const std::uint8_t> image) {
  // Write-temp + fsync + rename.  The image lands fully durable in a
  // side file before the rename makes it visible under the log's name,
  // so a crash anywhere in this sequence leaves either the complete old
  // log or the complete new image — never a mix.
  const std::string temp = path_ + ".rotate";
  std::FILE* side = std::fopen(temp.c_str(), "wb");
  if (side == nullptr) {
    return Unavailable("cannot open rotation file " + temp);
  }
  if (!image.empty() &&
      std::fwrite(image.data(), 1, image.size(), side) != image.size()) {
    std::fclose(side);
    std::remove(temp.c_str());
    return Unavailable("short write to rotation file");
  }
  if (std::fflush(side) != 0) {
    std::fclose(side);
    std::remove(temp.c_str());
    return Unavailable("rotation file flush failed");
  }
#ifndef _WIN32
  if (::fsync(::fileno(side)) != 0) {
    std::fclose(side);
    std::remove(temp.c_str());
    return Unavailable("rotation file fsync failed");
  }
#endif
  std::fclose(side);
#ifdef _WIN32
  // rename() does not replace an existing file on Windows.
  std::remove(path_.c_str());
#endif
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    std::remove(temp.c_str());
    return Unavailable("rotation rename failed for " + path_);
  }
  // Reopen the append handle on the swapped-in file; the old handle
  // points at the unlinked inode.
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Unavailable("cannot reopen record sink " + path_);
  }
  return OkStatus();
}

// --- FaultingSink ------------------------------------------------------------------

Status FaultingSink::Append(std::span<const std::uint8_t> bytes) {
  if (torn_) return Unavailable("sink torn by injected fault");
  if (bytes.size() <= budget_) {
    budget_ -= bytes.size();
    return inner_.Append(bytes);
  }
  // The crash lands mid-write: the first `budget_` bytes made it out.
  const Status partial = inner_.Append(bytes.first(budget_));
  budget_ = 0;
  torn_ = true;
  if (!partial.ok()) return partial;
  return Unavailable("injected torn write");
}

Status FaultingSink::Rotate(std::span<const std::uint8_t> image) {
  if (torn_) return Unavailable("sink torn by injected fault");
  if (image.size() <= budget_) {
    budget_ -= image.size();
    return inner_.Rotate(image);
  }
  // Rename atomicity: past the budget the swap simply never happens —
  // there is no torn-rotation state, the old contents survive intact.
  budget_ = 0;
  torn_ = true;
  return Unavailable("injected rotation failure");
}

// --- CrashPointSink ----------------------------------------------------------------

Status CrashPointSink::Append(std::span<const std::uint8_t> bytes) {
  bool dead = false;
  const std::size_t tear = clock_.Tick(&dead);
  if (!dead) return inner_.Append(bytes);
  if (tear != 0 && tear != SIZE_MAX) {
    // The crash landed mid-write: leak the torn prefix, then die.
    (void)inner_.Append(bytes.first(std::min(tear, bytes.size())));
  }
  return Unavailable("injected crash point");
}

Status CrashPointSink::Flush() {
  // Flush is not a durability boundary — uncounted, but a dead sink
  // stays dead.
  if (clock_.dead()) return Unavailable("injected crash point");
  return inner_.Flush();
}

Status CrashPointSink::Sync() {
  bool dead = false;
  (void)clock_.Tick(&dead);
  if (dead) return Unavailable("injected crash point");
  return inner_.Sync();
}

Status CrashPointSink::Rotate(std::span<const std::uint8_t> image) {
  bool dead = false;
  (void)clock_.Tick(&dead);
  // An armed Rotate never swaps: rename atomicity means the crash leaves
  // the previous contents intact.
  if (dead) return Unavailable("injected crash point");
  return inner_.Rotate(image);
}

// --- RecordWriter ------------------------------------------------------------------

Status RecordWriter::Append(std::span<const std::uint8_t> payload) {
  if (payload.size() >= kMaxPayload) {
    return InvalidArgument("record payload too large");
  }
  std::lock_guard lock(mutex_);
  frame_.resize(kFrameHeader + payload.size());
  StoreLeU32(frame_.data(), static_cast<std::uint32_t>(payload.size()));
  StoreLeU32(frame_.data() + 4, Crc32(payload));
  if (!payload.empty()) {
    std::memcpy(frame_.data() + kFrameHeader, payload.data(), payload.size());
  }
  DACM_RETURN_IF_ERROR(sink_.Append(frame_));
  bytes_appended_ += frame_.size();
  if (sync_every_n_frames_ != 0 &&
      ++frames_since_sync_ >= sync_every_n_frames_) {
    frames_since_sync_ = 0;
    // Wall-clock only and histogram-only: fsync latency is real time, so
    // it must never leak into the deterministic trace stream.
    static Histogram& fsync_nanos =
        Metrics::Instance().GetHistogram("dacm_wal_fsync_nanos");
    const auto started = std::chrono::steady_clock::now();
    const Status synced = sink_.Sync();
    fsync_nanos.Observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
    return synced;
  }
  return OkStatus();
}

Status RecordWriter::Flush() {
  std::lock_guard lock(mutex_);
  return sink_.Flush();
}

std::uint64_t RecordWriter::bytes_appended() const {
  std::lock_guard lock(mutex_);
  return bytes_appended_;
}

void RecordWriter::ResetByteCount() {
  std::lock_guard lock(mutex_);
  bytes_appended_ = 0;
}

// --- CheckpointWriter --------------------------------------------------------------

Status CheckpointWriter::Append(std::span<const std::uint8_t> payload) {
  if (payload.size() >= kMaxPayload) {
    return InvalidArgument("record payload too large");
  }
  const std::size_t base = image_.size();
  image_.resize(base + kFrameHeader + payload.size());
  StoreLeU32(image_.data() + base, static_cast<std::uint32_t>(payload.size()));
  StoreLeU32(image_.data() + base + 4, Crc32(payload));
  if (!payload.empty()) {
    std::memcpy(image_.data() + base + kFrameHeader, payload.data(),
                payload.size());
  }
  ++records_;
  return OkStatus();
}

Status CheckpointWriter::Commit(RecordSink& sink) {
  return sink.Rotate(image_);
}

// --- replay ------------------------------------------------------------------------

Result<ReplayStats> ReplayRecords(
    std::span<const std::uint8_t> data,
    const std::function<Status(std::span<const std::uint8_t>)>& fn) {
  ReplayStats stats;
  std::size_t offset = 0;
  while (data.size() - offset >= kFrameHeader) {
    const std::uint32_t length = LoadLeU32(data.data() + offset);
    const std::uint32_t crc = LoadLeU32(data.data() + offset + 4);
    if (length >= kMaxPayload ||
        data.size() - offset - kFrameHeader < length) {
      break;  // torn or garbage tail
    }
    const auto payload = data.subspan(offset + kFrameHeader, length);
    if (Crc32(payload) != crc) break;  // torn tail: partial payload flushed
    DACM_RETURN_IF_ERROR(fn(payload));
    offset += kFrameHeader + length;
    ++stats.records;
  }
  stats.valid_bytes = offset;
  stats.truncated = offset != data.size();
  return stats;
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return NotFound("no such file: " + path);
  Bytes bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

}  // namespace dacm::support
