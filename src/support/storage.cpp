#include "support/storage.hpp"

#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "support/crc.hpp"

namespace dacm::support {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc
// Upper bound on a single payload: a status paragraph or journal record
// is a few KiB at most, so anything past this is framing corruption, not
// a real record.
constexpr std::uint32_t kMaxPayload = 1u << 28;

}  // namespace

// --- FileSink ----------------------------------------------------------------------

Result<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path,
                                                 bool truncate) {
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) {
    return Unavailable("cannot open record sink " + path);
  }
  return std::unique_ptr<FileSink>(new FileSink(file));
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Append(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return OkStatus();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Unavailable("short write to record sink");
  }
  return OkStatus();
}

Status FileSink::Flush() {
  if (std::fflush(file_) != 0) return Unavailable("record sink flush failed");
  return OkStatus();
}

Status FileSink::Sync() {
  // fflush pushes the stdio buffer to the kernel; fsync pushes the page
  // cache to the device.  Both are needed for power-loss durability.
  DACM_RETURN_IF_ERROR(Flush());
#ifndef _WIN32
  if (::fsync(::fileno(file_)) != 0) {
    return Unavailable("record sink fsync failed");
  }
#endif
  return OkStatus();
}

// --- FaultingSink ------------------------------------------------------------------

Status FaultingSink::Append(std::span<const std::uint8_t> bytes) {
  if (torn_) return Unavailable("sink torn by injected fault");
  if (bytes.size() <= budget_) {
    budget_ -= bytes.size();
    return inner_.Append(bytes);
  }
  // The crash lands mid-write: the first `budget_` bytes made it out.
  const Status partial = inner_.Append(bytes.first(budget_));
  budget_ = 0;
  torn_ = true;
  if (!partial.ok()) return partial;
  return Unavailable("injected torn write");
}

// --- RecordWriter ------------------------------------------------------------------

Status RecordWriter::Append(std::span<const std::uint8_t> payload) {
  if (payload.size() >= kMaxPayload) {
    return InvalidArgument("record payload too large");
  }
  std::lock_guard lock(mutex_);
  frame_.resize(kFrameHeader + payload.size());
  StoreLeU32(frame_.data(), static_cast<std::uint32_t>(payload.size()));
  StoreLeU32(frame_.data() + 4, Crc32(payload));
  if (!payload.empty()) {
    std::memcpy(frame_.data() + kFrameHeader, payload.data(), payload.size());
  }
  DACM_RETURN_IF_ERROR(sink_.Append(frame_));
  if (sync_every_n_frames_ != 0 &&
      ++frames_since_sync_ >= sync_every_n_frames_) {
    frames_since_sync_ = 0;
    return sink_.Sync();
  }
  return OkStatus();
}

Status RecordWriter::Flush() {
  std::lock_guard lock(mutex_);
  return sink_.Flush();
}

// --- replay ------------------------------------------------------------------------

Result<ReplayStats> ReplayRecords(
    std::span<const std::uint8_t> data,
    const std::function<Status(std::span<const std::uint8_t>)>& fn) {
  ReplayStats stats;
  std::size_t offset = 0;
  while (data.size() - offset >= kFrameHeader) {
    const std::uint32_t length = LoadLeU32(data.data() + offset);
    const std::uint32_t crc = LoadLeU32(data.data() + offset + 4);
    if (length >= kMaxPayload ||
        data.size() - offset - kFrameHeader < length) {
      break;  // torn or garbage tail
    }
    const auto payload = data.subspan(offset + kFrameHeader, length);
    if (Crc32(payload) != crc) break;  // torn tail: partial payload flushed
    DACM_RETURN_IF_ERROR(fn(payload));
    offset += kFrameHeader + length;
    ++stats.records;
  }
  stats.valid_bytes = offset;
  stats.truncated = offset != data.size();
  return stats;
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return NotFound("no such file: " + path);
  Bytes bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

}  // namespace dacm::support
