#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dacm::support {
namespace {

// Deploy workers log too (the level lives in the header as an inline
// atomic so Enabled() is one relaxed load); the sink call is serialized —
// a capturing test sink must not see interleaved writes.
std::mutex g_sink_mutex;
Log::Sink g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::Write(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < Log::level()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << component << ": " << message
            << "\n";
}

}  // namespace dacm::support
