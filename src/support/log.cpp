#include "support/log.hpp"

#include <iostream>

namespace dacm::support {
namespace {

LogLevel g_level = LogLevel::kOff;
Log::Sink g_sink;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level; }
void Log::SetLevel(LogLevel level) { g_level = level; }
void Log::SetSink(Sink sink) { g_sink = std::move(sink); }

void Log::Write(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << component << ": " << message
            << "\n";
}

}  // namespace dacm::support
