#include "support/status.hpp"

namespace dacm::support {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kCorrupted: return "CORRUPTED";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kIncompatible: return "INCOMPATIBLE";
    case ErrorCode::kDependencyViolation: return "DEPENDENCY_VIOLATION";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kProtocolError: return "PROTOCOL_ERROR";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dacm::support
