// Deterministic pseudo-random number generator (splitmix64 core).
//
// Used by fault-injection tests and workload generators; seeded explicitly
// so every run is reproducible.
#pragma once

#include <cstdint>

namespace dacm::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return NextU64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dacm::sim
