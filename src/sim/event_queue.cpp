// Cold half of the EventQueue: pool growth and the per-slot advance /
// cascade machinery.  The per-event hot path (Push / PopDue / Place)
// lives inline in the header so Simulator's run loop folds it in.
#include "sim/event_queue.hpp"

#include <cassert>

namespace dacm::sim {

EventQueue::~EventQueue() = default;  // blocks_ own every node, pending or free

void EventQueue::RefillPool() {
  blocks_.push_back(std::make_unique<Node[]>(kBlockNodes));
  Node* block = blocks_.back().get();
  for (std::size_t i = 0; i < kBlockNodes; ++i) {
    block[i].next = free_;
    free_ = &block[i];
  }
}

void EventQueue::LinkScratchAsReady() {
  assert(ready_head_ == nullptr);
  // Slots fill in sequence order unless a cascade interleaved arrivals,
  // so the common case (a same-timestamp storm harvested from one slot)
  // is already sorted — an O(n) check dodges the O(n log n) sort.
  const auto by_seq = [](const Node* a, const Node* b) {
    return a->seq < b->seq;
  };
  if (!std::is_sorted(scratch_due_.begin(), scratch_due_.end(), by_seq)) {
    std::sort(scratch_due_.begin(), scratch_due_.end(), by_seq);
  }
  for (Node* node : scratch_due_) {
    node->next = nullptr;
    if (ready_tail_ == nullptr) {
      ready_head_ = ready_tail_ = node;
    } else {
      ready_tail_->next = node;
      ready_tail_ = node;
    }
  }
  scratch_due_.clear();
}

bool EventQueue::AdvanceToNext(SimTime limit) {
  assert(ready_head_ == nullptr);
  for (;;) {
    // Fold overflow events that came within the horizon of the cursor.
    while (!overflow_.empty()) {
      Node* top = overflow_.front();
      if (((top->at ^ cursor_) >> kWheelBits) != 0) break;
      std::pop_heap(overflow_.begin(), overflow_.end(), NodeLater{});
      overflow_.pop_back();
      if (top->at == cursor_) {
        scratch_due_.push_back(top);
      } else {
        InsertIntoWheel(top);
      }
    }
    if (!scratch_due_.empty()) {
      LinkScratchAsReady();
      return true;
    }

    // The earliest candidate window over all levels.  For level > 0 the
    // window start is a lower bound on its events' timestamps, which is
    // exactly what makes cascading below safe: the cursor never advances
    // past a pending event.
    int best_level = -1;
    std::size_t best_index = 0;
    SimTime best_time = 0;
    for (int level = 0; level < kLevels; ++level) {
      std::uint64_t occ = occupied_[level];
      if (occ == 0) continue;
      const auto cursor_index =
          static_cast<unsigned>((cursor_ >> (level * kSlotBits)) & (kSlots - 1));
      // Only slots strictly ahead of the cursor in this rotation can hold
      // events (insertion places same-slot times at a lower level).
      occ &= cursor_index == kSlots - 1 ? 0
                                        : ~std::uint64_t{0} << (cursor_index + 1);
      if (occ == 0) continue;
      const auto index = static_cast<std::size_t>(std::countr_zero(occ));
      const SimTime window = SimTime{1} << ((level + 1) * kSlotBits);
      const SimTime base = cursor_ & ~(window - 1);
      const SimTime time = base | (SimTime{index} << (level * kSlotBits));
      if (best_level < 0 || time < best_time) {
        best_level = level;
        best_index = index;
        best_time = time;
      }
    }

    if (best_level < 0) {
      // Wheel empty; only far-future overflow events (if any) remain.
      if (overflow_.empty()) return false;
      Node* top = overflow_.front();
      if (top->at > limit) return false;
      cursor_ = top->at;  // jump: nothing pending in between
      continue;
    }
    if (best_time > limit) return false;

    Slot& slot = slots_[best_level][best_index];
    Node* head = slot.head;
    slot.head = slot.tail = nullptr;
    occupied_[best_level] &= ~(std::uint64_t{1} << best_index);
    cursor_ = best_time;

    if (best_level == 0) {
      // A level-0 slot holds one exact timestamp: harvest it, restoring
      // sequence order (cascades may have interleaved arrivals).
      for (Node* node = head; node != nullptr;) {
        Node* next = node->next;
        assert(node->at == cursor_);
        scratch_due_.push_back(node);
        node = next;
      }
      LinkScratchAsReady();
      return true;
    }

    // Cascade the outer-level slot down relative to the advanced cursor.
    for (Node* node = head; node != nullptr;) {
      Node* next = node->next;
      node->next = nullptr;
      if (node->at == cursor_) {
        scratch_due_.push_back(node);
      } else {
        InsertIntoWheel(node);
      }
      node = next;
    }
    if (!scratch_due_.empty()) {
      LinkScratchAsReady();
      return true;
    }
  }
}

}  // namespace dacm::sim
