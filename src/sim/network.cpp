#include "sim/network.hpp"

#include <algorithm>
#include <cassert>

namespace dacm::sim {

Network::Network(Simulator& simulator, SimTime one_way_latency)
    : simulator_(simulator), latency_(one_way_latency) {
  drain_hook_ = simulator_.AddDrainHook([this] { DrainStagedSends(); });
  // The one-way latency is the minimum notice any lane gets of a
  // cross-lane message, so it bounds the conservative window width.
  simulator_.ClampLookahead(latency_);
}

void Network::SetLatency(SimTime latency) {
  latency_ = latency;
  simulator_.ClampLookahead(latency_);
}

Network::~Network() { simulator_.RemoveDrainHook(drain_hook_); }

std::string NetPeer::label() const {
  return (client_side_ ? "client->" : "accept@") + *address_;
}

support::Status NetPeer::Send(support::SharedBytes message) {
  if (!net_.link_up()) {
    return support::Unavailable("network link down");
  }
  auto remote = remote_.lock();
  if (!remote) {
    return support::Unavailable("remote endpoint closed");
  }
  if (std::this_thread::get_id() == net_.sim_thread_) {
    net_.ScheduleDelivery(std::move(remote), std::move(message));
  } else {
    std::lock_guard<std::mutex> lock(net_.staged_mutex_);
    net_.staged_.push_back(
        Network::StagedSend{seq_, std::move(remote), std::move(message)});
  }
  return support::OkStatus();
}

void NetPeer::Close() {
  if (auto remote = remote_.lock()) remote->remote_.reset();
  remote_.reset();
}

void Network::ScheduleDelivery(std::shared_ptr<NetPeer> remote,
                               support::SharedBytes message) {
  // Delivery fires on the receiving peer's lane (lane 0 unless the peer
  // set a vehicle lane), so a vehicle's receive handler always runs on
  // its own lane.  40 bytes of captures: stays in the event node's
  // inline storage.
  const std::uint32_t lane = remote->lane_;
  simulator_.ScheduleAfterLane(
      lane, latency_,
      [remote = std::move(remote), message = std::move(message), net = this]() {
        net->messages_delivered_.fetch_add(1, std::memory_order_relaxed);
        if (remote->on_receive_) remote->on_receive_(message);
      });
}

void Network::DrainStagedSends() {
  {
    std::lock_guard<std::mutex> lock(staged_mutex_);
    if (staged_.empty()) return;
    drain_batch_.swap(staged_);
    // Hand the producers a warm vector back (the one drained last time),
    // so the staging path reallocates only while the high-water mark grows.
    if (staged_.capacity() == 0) staged_.swap(staged_spare_);
  }
  // Workers interleave nondeterministically in the staging order; per-peer
  // FIFO order is intact (each connection is driven by one thread), so
  // sorting by the peer's creation sequence restores one canonical global
  // order.
  std::stable_sort(drain_batch_.begin(), drain_batch_.end(),
                   [](const StagedSend& a, const StagedSend& b) {
                     return a.peer_seq < b.peer_seq;
                   });
  for (StagedSend& send : drain_batch_) {
    ScheduleDelivery(std::move(send.remote), std::move(send.message));
  }
  drain_batch_.clear();
  {
    std::lock_guard<std::mutex> lock(staged_mutex_);
    if (staged_spare_.capacity() < drain_batch_.capacity()) {
      staged_spare_.swap(drain_batch_);
    }
  }
}

support::Status Network::Listen(const std::string& address, AcceptHandler on_accept) {
  auto [it, inserted] = listeners_.emplace(
      address, Listener{std::move(on_accept),
                        std::make_shared<const std::string>(address)});
  (void)it;
  if (!inserted) {
    return support::AlreadyExists("address already listening: " + address);
  }
  return support::OkStatus();
}

support::Status Network::Unlisten(const std::string& address) {
  if (listeners_.erase(address) == 0) {
    return support::NotFound("no listener at " + address);
  }
  return support::OkStatus();
}

support::Result<std::shared_ptr<NetPeer>> Network::Connect(const std::string& address) {
  // Connection setup mutates listener bookkeeping and peer cross-links;
  // it must never be driven from a worker lane.
  assert(simulator_.OnControlPlane());
  auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    return support::NotFound("no listener at " + address);
  }
  if (!link_up()) {
    return support::Unavailable("network link down");
  }
  auto client = std::shared_ptr<NetPeer>(new NetPeer(
      *this, next_peer_seq_++, it->second.address, /*client_side=*/true));
  auto server = std::shared_ptr<NetPeer>(new NetPeer(
      *this, next_peer_seq_++, it->second.address, /*client_side=*/false));
  client->remote_ = server;
  server->remote_ = client;
  // The accept handler owns the server-side peer; deliver it after one
  // latency like a SYN would take.
  simulator_.ScheduleAfter(latency_,
                           [handler = it->second.on_accept, server]() { handler(server); });
  return client;
}

}  // namespace dacm::sim
