#include "sim/network.hpp"

namespace dacm::sim {

support::Status NetPeer::Send(support::Bytes message) {
  if (!net_.link_up_) {
    return support::Unavailable("network link down");
  }
  auto remote = remote_.lock();
  if (!remote) {
    return support::Unavailable("remote endpoint closed");
  }
  net_.simulator_.ScheduleAfter(net_.latency_,
                                [remote, message = std::move(message), net = &net_]() {
                                  ++net->messages_delivered_;
                                  if (remote->on_receive_) remote->on_receive_(message);
                                });
  return support::OkStatus();
}

void NetPeer::Close() {
  if (auto remote = remote_.lock()) remote->remote_.reset();
  remote_.reset();
}

support::Status Network::Listen(const std::string& address, AcceptHandler on_accept) {
  auto [it, inserted] = listeners_.emplace(address, std::move(on_accept));
  (void)it;
  if (!inserted) {
    return support::AlreadyExists("address already listening: " + address);
  }
  return support::OkStatus();
}

support::Result<std::shared_ptr<NetPeer>> Network::Connect(const std::string& address) {
  auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    return support::NotFound("no listener at " + address);
  }
  if (!link_up_) {
    return support::Unavailable("network link down");
  }
  auto client = std::shared_ptr<NetPeer>(new NetPeer(*this, "client->" + address));
  auto server = std::shared_ptr<NetPeer>(new NetPeer(*this, "accept@" + address));
  client->remote_ = server;
  server->remote_ = client;
  // The accept handler owns the server-side peer; deliver it after one
  // latency like a SYN would take.
  simulator_.ScheduleAfter(latency_, [handler = it->second, server]() { handler(server); });
  return client;
}

}  // namespace dacm::sim
