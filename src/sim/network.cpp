#include "sim/network.hpp"

#include <algorithm>

namespace dacm::sim {

Network::Network(Simulator& simulator, SimTime one_way_latency)
    : simulator_(simulator), latency_(one_way_latency) {
  drain_hook_ = simulator_.AddDrainHook([this] { DrainStagedSends(); });
}

Network::~Network() { simulator_.RemoveDrainHook(drain_hook_); }

support::Status NetPeer::Send(support::Bytes message) {
  if (!net_.link_up()) {
    return support::Unavailable("network link down");
  }
  auto remote = remote_.lock();
  if (!remote) {
    return support::Unavailable("remote endpoint closed");
  }
  if (std::this_thread::get_id() == net_.sim_thread_) {
    net_.ScheduleDelivery(std::move(remote), std::move(message));
  } else {
    std::lock_guard<std::mutex> lock(net_.staged_mutex_);
    net_.staged_.push_back(
        Network::StagedSend{seq_, std::move(remote), std::move(message)});
  }
  return support::OkStatus();
}

void NetPeer::Close() {
  if (auto remote = remote_.lock()) remote->remote_.reset();
  remote_.reset();
}

void Network::ScheduleDelivery(std::shared_ptr<NetPeer> remote,
                               support::Bytes message) {
  simulator_.ScheduleAfter(latency_, [remote = std::move(remote),
                                      message = std::move(message), net = this]() {
    ++net->messages_delivered_;
    if (remote->on_receive_) remote->on_receive_(message);
  });
}

void Network::DrainStagedSends() {
  std::vector<StagedSend> staged;
  {
    std::lock_guard<std::mutex> lock(staged_mutex_);
    staged.swap(staged_);
  }
  if (staged.empty()) return;
  // Workers interleave nondeterministically in staged_; per-peer FIFO order
  // is intact (each connection is driven by one thread), so sorting by the
  // peer's creation sequence restores one canonical global order.
  std::stable_sort(staged.begin(), staged.end(),
                   [](const StagedSend& a, const StagedSend& b) {
                     return a.peer_seq < b.peer_seq;
                   });
  for (StagedSend& send : staged) {
    ScheduleDelivery(std::move(send.remote), std::move(send.message));
  }
}

support::Status Network::Listen(const std::string& address, AcceptHandler on_accept) {
  auto [it, inserted] = listeners_.emplace(address, std::move(on_accept));
  (void)it;
  if (!inserted) {
    return support::AlreadyExists("address already listening: " + address);
  }
  return support::OkStatus();
}

support::Result<std::shared_ptr<NetPeer>> Network::Connect(const std::string& address) {
  auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    return support::NotFound("no listener at " + address);
  }
  if (!link_up()) {
    return support::Unavailable("network link down");
  }
  auto client = std::shared_ptr<NetPeer>(
      new NetPeer(*this, next_peer_seq_++, "client->" + address));
  auto server = std::shared_ptr<NetPeer>(
      new NetPeer(*this, next_peer_seq_++, "accept@" + address));
  client->remote_ = server;
  server->remote_ = client;
  // The accept handler owns the server-side peer; deliver it after one
  // latency like a SYN would take.
  simulator_.ScheduleAfter(latency_, [handler = it->second, server]() { handler(server); });
  return client;
}

}  // namespace dacm::sim
