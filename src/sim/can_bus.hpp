// Simulated CAN bus.
//
// Frame-level model of a classic CAN 2.0A bus: 11-bit identifiers, up to 8
// data bytes, priority arbitration (numerically lowest pending identifier
// wins at each bus-idle point), broadcast delivery, and a configurable bit
// rate that yields realistic frame transmission times.  Multi-frame
// transport (for installation packages larger than 8 bytes) is layered on
// top in bsw::CanTp.
//
// Fault injection: a probabilistic frame-drop rate and a bit-corruption
// rate can be configured; corrupted frames are delivered with a flipped
// payload bit and `corrupted = true` so upper layers can exercise their CRC
// paths.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace dacm::sim {

/// One classic CAN data frame.
struct CanFrame {
  std::uint32_t can_id = 0;  // 11-bit identifier; lower value = higher priority
  std::uint8_t dlc = 0;      // data length code, 0..8
  std::array<std::uint8_t, 8> data{};
  bool corrupted = false;  // set by fault injection on delivery

  static constexpr std::uint32_t kMaxStandardId = 0x7FF;
};

/// Handle of an attached bus node.
using CanNodeId = std::size_t;

class CanBus {
 public:
  /// `bit_rate_bps`: nominal bit rate; 500 kbit/s is the common automotive
  /// backbone rate the model defaults to.
  explicit CanBus(Simulator& simulator, std::uint32_t bit_rate_bps = 500'000,
                  std::uint64_t fault_seed = 1);

  CanBus(const CanBus&) = delete;
  CanBus& operator=(const CanBus&) = delete;

  using ReceiveHandler = std::function<void(const CanFrame&)>;

  /// Attaches a node; `on_receive` fires for every frame transmitted by any
  /// *other* node (CAN is a broadcast medium; self-reception is filtered).
  CanNodeId AttachNode(std::string name, ReceiveHandler on_receive);

  /// Queues a frame for transmission from `node`.  Returns
  /// kInvalidArgument for malformed frames (dlc > 8, id out of range).
  support::Status Send(CanNodeId node, const CanFrame& frame);

  /// Fault injection: probability that a frame vanishes on the wire.
  void SetDropRate(double p) { drop_rate_ = p; }
  /// Fault injection: probability that a delivered frame has a payload bit
  /// flipped (delivered with corrupted = true).
  void SetCorruptRate(double p) { corrupt_rate_ = p; }

  /// Total frames that completed transmission (including dropped ones).
  std::uint64_t frames_transmitted() const { return frames_transmitted_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  /// Transmission time of one frame at the configured bit rate.  Uses the
  /// worst-case stuffed classic-CAN frame length approximation
  /// (44 + 10*dlc bits + stuffing ~ 20%).
  SimTime FrameTime(std::uint8_t dlc) const;

 private:
  struct Node {
    std::string name;
    ReceiveHandler on_receive;
    std::deque<CanFrame> tx_queue;
  };

  void TryStartTransmission();
  void FinishTransmission(CanNodeId sender, CanFrame frame);

  Simulator& simulator_;
  std::uint32_t bit_rate_bps_;
  std::vector<Node> nodes_;
  bool bus_busy_ = false;
  double drop_rate_ = 0.0;
  double corrupt_rate_ = 0.0;
  Rng fault_rng_;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace dacm::sim
