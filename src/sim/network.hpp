// Simulated wide-area network.
//
// Stands in for the TCP links of the paper's prototype: the ECM's socket
// client to the trusted server, and the smart phone's connection to the
// vehicle.  A connection is a pair of cross-linked NetPeer endpoints
// carrying ordered, reliable, length-delimited messages with a configurable
// one-way latency.  Link-down fault injection drops messages (the paper's
// installation protocol recovers via server-side acknowledgement tracking).
//
// Threading: Send() may be called from worker threads (the server's
// sharded deploy pipeline pushes from its pool).  Off-thread sends are
// staged into a per-peer FIFO under a lock and folded into the simulator's
// event queue by the drain barrier the Simulator owns — ordered by peer
// creation sequence, so the resulting event order is deterministic
// regardless of worker scheduling.  Sends from the simulation thread keep
// the classic immediate scheduling (delivery at Now() + latency), so
// single-threaded timing is unchanged.  Everything else (Listen, Connect,
// Close, SetLinkUp, handler installation, and message delivery itself)
// stays on the simulation thread.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::sim {

class Network;

/// One endpoint of an established duplex connection.
class NetPeer : public std::enable_shared_from_this<NetPeer> {
 public:
  using ReceiveHandler = std::function<void(const support::Bytes&)>;

  /// Sends one message to the remote endpoint.  Returns kUnavailable if the
  /// link is down or the remote endpoint is gone.  Safe to call from worker
  /// threads; delivery is scheduled at the next drain barrier.
  support::Status Send(support::Bytes message);

  /// Installs the receive callback (replaces any previous one).
  void SetReceiveHandler(ReceiveHandler handler) { on_receive_ = std::move(handler); }

  /// Local diagnostic label ("<local>-><remote>").
  const std::string& label() const { return label_; }

  bool connected() const { return !remote_.expired(); }

  /// Closes this side; the remote sees connected() == false.
  void Close();

 private:
  friend class Network;

  NetPeer(Network& net, std::uint64_t seq, std::string label)
      : net_(net), seq_(seq), label_(std::move(label)) {}

  Network& net_;
  std::uint64_t seq_;  // creation order; the drain sort key
  std::string label_;
  std::weak_ptr<NetPeer> remote_;
  ReceiveHandler on_receive_;
};

/// Connection factory + message scheduler.
class Network {
 public:
  explicit Network(Simulator& simulator, SimTime one_way_latency = 20 * kMillisecond);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using AcceptHandler = std::function<void(std::shared_ptr<NetPeer>)>;

  /// Registers a listener on `address` (e.g. "111.22.33.44:56789").
  support::Status Listen(const std::string& address, AcceptHandler on_accept);

  /// Connects to a listening address; on success the listener's accept
  /// handler fires (at connect time + latency) with the server-side peer,
  /// and the client-side peer is returned immediately.
  support::Result<std::shared_ptr<NetPeer>> Connect(const std::string& address);

  /// Fault injection: while down, Send() returns kUnavailable.
  void SetLinkUp(bool up) { link_up_.store(up, std::memory_order_relaxed); }
  bool link_up() const { return link_up_.load(std::memory_order_relaxed); }

  SimTime latency() const { return latency_; }
  void SetLatency(SimTime latency) { latency_ = latency; }

  /// The simulator driving this network (components that stage work for
  /// the simulation thread — e.g. the server's ack inboxes — schedule
  /// their flush events through it).
  Simulator& simulator() const { return simulator_; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  friend class NetPeer;

  struct StagedSend {
    std::uint64_t peer_seq;  // sending peer; deterministic drain order
    std::shared_ptr<NetPeer> remote;
    support::Bytes message;
  };

  /// Moves every staged send into the simulator's event queue (simulation
  /// thread only; registered as the simulator's drain hook).
  void DrainStagedSends();

  /// Schedules delivery of `message` into `remote` at Now() + latency
  /// (simulation thread only).
  void ScheduleDelivery(std::shared_ptr<NetPeer> remote, support::Bytes message);

  Simulator& simulator_;
  SimTime latency_;
  std::atomic<bool> link_up_{true};
  std::unordered_map<std::string, AcceptHandler> listeners_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t next_peer_seq_ = 0;
  std::uint64_t drain_hook_ = 0;
  std::thread::id sim_thread_ = std::this_thread::get_id();

  std::mutex staged_mutex_;
  std::vector<StagedSend> staged_;
};

}  // namespace dacm::sim
