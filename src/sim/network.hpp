// Simulated wide-area network.
//
// Stands in for the TCP links of the paper's prototype: the ECM's socket
// client to the trusted server, and the smart phone's connection to the
// vehicle.  A connection is a pair of cross-linked NetPeer endpoints
// carrying ordered, reliable, length-delimited messages with a configurable
// one-way latency.  Link-down fault injection drops messages (the paper's
// installation protocol recovers via server-side acknowledgement tracking).
//
// Delivery is zero-copy: a message is one refcounted immutable buffer
// (support::SharedBytes) handed from sender to staged-send FIFO to the
// receive handler — a campaign batch serialized once travels every hop,
// including re-pushes, by refcount bump.
//
// Threading: Send() may be called from worker threads (the server's
// sharded deploy pipeline pushes from its pool).  Off-thread sends are
// staged into a pooled FIFO under a lock and folded into the simulator's
// event queue by the drain barrier the Simulator owns — ordered by peer
// creation sequence, so the resulting event order is deterministic
// regardless of worker scheduling.  Sends from the simulation thread keep
// the classic immediate scheduling (delivery at Now() + latency), so
// single-threaded timing is unchanged.  Everything else (Listen, Connect,
// Close, SetLinkUp, handler installation, and message delivery itself)
// stays on the simulation thread.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "support/shared_bytes.hpp"
#include "support/status.hpp"

namespace dacm::sim {

class Network;

/// One endpoint of an established duplex connection.
class NetPeer : public std::enable_shared_from_this<NetPeer> {
 public:
  /// SharedBytes converts implicitly to `const support::Bytes&` and to a
  /// byte span, so handlers written against either keep working.
  using ReceiveHandler = std::function<void(const support::SharedBytes&)>;

  /// Sends one message to the remote endpoint.  Returns kUnavailable if the
  /// link is down or the remote endpoint is gone.  Safe to call from worker
  /// threads; delivery is scheduled at the next drain barrier.  Fanning the
  /// same SharedBytes to many peers shares one buffer.
  support::Status Send(support::SharedBytes message);

  /// Installs the receive callback (replaces any previous one).
  void SetReceiveHandler(ReceiveHandler handler) { on_receive_ = std::move(handler); }

  /// Simulator lane this endpoint's deliveries fire on (its receive
  /// handler's home lane).  Defaults to 0 (the control plane); vehicles
  /// set their VIN-hashed lane right after Connect.  Simulation thread
  /// only, and only while no delivery is in flight toward this peer.
  void SetLane(std::uint32_t lane) { lane_ = lane; }
  std::uint32_t lane() const { return lane_; }

  /// Diagnostic label ("client-><addr>" / "accept@<addr>"), built on
  /// demand — the connect path stays free of per-peer string assembly.
  std::string label() const;

  bool connected() const { return !remote_.expired(); }

  /// Closes this side; the remote sees connected() == false.
  void Close();

 private:
  friend class Network;

  NetPeer(Network& net, std::uint64_t seq,
          std::shared_ptr<const std::string> address, bool client_side)
      : net_(net),
        seq_(seq),
        address_(std::move(address)),
        client_side_(client_side) {}

  Network& net_;
  std::uint64_t seq_;  // creation order; the drain sort key
  std::shared_ptr<const std::string> address_;  // shared with the listener
  bool client_side_;
  std::uint32_t lane_ = 0;  // delivery lane (see SetLane)
  std::weak_ptr<NetPeer> remote_;
  ReceiveHandler on_receive_;
};

/// Connection factory + message scheduler.
class Network {
 public:
  explicit Network(Simulator& simulator, SimTime one_way_latency = 20 * kMillisecond);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using AcceptHandler = std::function<void(std::shared_ptr<NetPeer>)>;

  /// Registers a listener on `address` (e.g. "111.22.33.44:56789").
  support::Status Listen(const std::string& address, AcceptHandler on_accept);

  /// Connects to a listening address; on success the listener's accept
  /// handler fires (at connect time + latency) with the server-side peer,
  /// and the client-side peer is returned immediately.
  support::Result<std::shared_ptr<NetPeer>> Connect(const std::string& address);

  /// Removes the listener on `address` (kNotFound if absent).  Connects
  /// after this fail until somebody listens again — a killed server
  /// unbinds here so its restarted replacement can take the address over.
  /// SYNs already in flight still fire the handler they captured; accept
  /// handlers must therefore guard against their server dying first.
  support::Status Unlisten(const std::string& address);

  /// Fault injection: while down, Send() returns kUnavailable.
  void SetLinkUp(bool up) { link_up_.store(up, std::memory_order_relaxed); }
  bool link_up() const { return link_up_.load(std::memory_order_relaxed); }

  SimTime latency() const { return latency_; }
  /// Also re-clamps the simulator's conservative-window lookahead: the
  /// one-way latency is this network's minimum cross-lane notice.
  void SetLatency(SimTime latency);

  /// The simulator driving this network (components that stage work for
  /// the simulation thread — e.g. the server's ack inboxes — schedule
  /// their flush events through it).
  Simulator& simulator() const { return simulator_; }

  std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class NetPeer;

  struct StagedSend {
    std::uint64_t peer_seq;  // sending peer; deterministic drain order
    std::shared_ptr<NetPeer> remote;
    support::SharedBytes message;
  };

  struct Listener {
    AcceptHandler on_accept;
    /// Shared with every peer of this address, so Connect builds no
    /// per-peer strings.
    std::shared_ptr<const std::string> address;
  };

  /// Moves every staged send into the simulator's event queue (simulation
  /// thread only; registered as the simulator's drain hook).
  void DrainStagedSends();

  /// Schedules delivery of `message` into `remote` at Now() + latency
  /// (simulation thread only).
  void ScheduleDelivery(std::shared_ptr<NetPeer> remote, support::SharedBytes message);

  Simulator& simulator_;
  SimTime latency_;
  std::atomic<bool> link_up_{true};
  std::unordered_map<std::string, Listener> listeners_;
  /// Atomic: delivery events fire concurrently on worker lanes.
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::uint64_t next_peer_seq_ = 0;
  std::uint64_t drain_hook_ = 0;
  std::thread::id sim_thread_ = std::this_thread::get_id();

  std::mutex staged_mutex_;
  std::vector<StagedSend> staged_;
  /// Drained batches recycle their capacity through here, so steady-state
  /// staging allocates no vectors (the node pool of the send path).
  std::vector<StagedSend> staged_spare_;
  /// Reused drain-side batch (capacity persists across drains).
  std::vector<StagedSend> drain_batch_;
};

}  // namespace dacm::sim
