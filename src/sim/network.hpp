// Simulated wide-area network.
//
// Stands in for the TCP links of the paper's prototype: the ECM's socket
// client to the trusted server, and the smart phone's connection to the
// vehicle.  A connection is a pair of cross-linked NetPeer endpoints
// carrying ordered, reliable, length-delimited messages with a configurable
// one-way latency.  Link-down fault injection drops messages (the paper's
// installation protocol recovers via server-side acknowledgement tracking).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/simulator.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::sim {

class Network;

/// One endpoint of an established duplex connection.
class NetPeer : public std::enable_shared_from_this<NetPeer> {
 public:
  using ReceiveHandler = std::function<void(const support::Bytes&)>;

  /// Sends one message to the remote endpoint.  Returns kUnavailable if the
  /// link is down or the remote endpoint is gone.
  support::Status Send(support::Bytes message);

  /// Installs the receive callback (replaces any previous one).
  void SetReceiveHandler(ReceiveHandler handler) { on_receive_ = std::move(handler); }

  /// Local diagnostic label ("<local>-><remote>").
  const std::string& label() const { return label_; }

  bool connected() const { return !remote_.expired(); }

  /// Closes this side; the remote sees connected() == false.
  void Close();

 private:
  friend class Network;

  NetPeer(Network& net, std::string label) : net_(net), label_(std::move(label)) {}

  Network& net_;
  std::string label_;
  std::weak_ptr<NetPeer> remote_;
  ReceiveHandler on_receive_;
};

/// Connection factory + message scheduler.
class Network {
 public:
  explicit Network(Simulator& simulator, SimTime one_way_latency = 20 * kMillisecond)
      : simulator_(simulator), latency_(one_way_latency) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using AcceptHandler = std::function<void(std::shared_ptr<NetPeer>)>;

  /// Registers a listener on `address` (e.g. "111.22.33.44:56789").
  support::Status Listen(const std::string& address, AcceptHandler on_accept);

  /// Connects to a listening address; on success the listener's accept
  /// handler fires (at connect time + latency) with the server-side peer,
  /// and the client-side peer is returned immediately.
  support::Result<std::shared_ptr<NetPeer>> Connect(const std::string& address);

  /// Fault injection: while down, Send() returns kUnavailable.
  void SetLinkUp(bool up) { link_up_ = up; }
  bool link_up() const { return link_up_; }

  SimTime latency() const { return latency_; }
  void SetLatency(SimTime latency) { latency_ = latency; }

  std::uint64_t messages_delivered() const { return messages_delivered_; }

 private:
  friend class NetPeer;

  Simulator& simulator_;
  SimTime latency_;
  bool link_up_ = true;
  std::unordered_map<std::string, AcceptHandler> listeners_;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace dacm::sim
