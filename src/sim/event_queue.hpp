// Allocation-free pending-event store for the discrete-event kernel.
//
// The Simulator's schedule pattern is near-monotonic (latencies, alarm
// periods and backoffs are pushed a short, bounded distance into the
// future), which a comparison-based priority queue cannot exploit.  This
// EventQueue is a hierarchical timer wheel: six levels of 64 slots, level
// L covering 2^(6L) microseconds per slot, so any event within ~19 hours
// of the cursor is placed by two bit operations and popped by a bitmap
// scan — O(1) amortized schedule and fire, no comparisons on the hot path.
//
// The contract is *exact* replay equivalence with the classic
// priority-queue core it replaced: events fire in strictly increasing
// (timestamp, schedule-sequence) order — FIFO for equal timestamps — and
// the property suite diffs the two implementations under random
// interleavings.  The pieces that make the wheel exact:
//
//  * level-0 slots hold a single exact timestamp; when one is harvested,
//    its nodes are sorted by sequence (cascades from outer levels can
//    interleave arrival order, never ordering keys);
//  * events beyond the 2^36 us horizon wait in an overflow min-heap and
//    fold into the wheel as the cursor approaches;
//  * events scheduled *behind* the wheel cursor — possible only from
//    drain hooks that run after the cursor advanced past a RunUntil
//    bound — wait in a small backlog min-heap that always pops first.
//
// Event nodes (timestamp, sequence, intrusive link, inline callback) come
// from a chunked free list owned by the queue; a steady-state simulation
// allocates nothing per event after warm-up.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/inplace_function.hpp"

namespace dacm::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

class EventQueue {
 public:
  /// Captures up to 48 bytes inline; larger callables take the one-off
  /// heap escape hatch (see support/inplace_function.hpp).
  using Callback = support::InplaceFunction<void()>;

  static constexpr SimTime kMaxTime = ~SimTime{0};

  EventQueue() = default;
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `fn` at `at`.  FIFO among equal timestamps is defined by
  /// call order.  `at` may be anywhere (the caller clamps to Now()).
  /// Inline: this plus PopDue is the whole hot path of Simulator::Run.
  void Push(SimTime at, Callback fn) {
    Node* node = Alloc(at, std::move(fn));
    ++size_;
    if (size_ == 1) {
      // Only pending event: park it; no wheel bookkeeping.  Its timestamp
      // is >= cursor_ except for backlog-style stragglers, which Place
      // handles on demotion.
      solo_ = node;
      return;
    }
    if (solo_ != nullptr) {
      Node* demoted = solo_;
      solo_ = nullptr;
      Place(demoted);
    }
    Place(node);
  }

  /// Pops the earliest event if its timestamp is <= `limit`; false when
  /// the queue is empty or the next event lies beyond the limit.
  bool PopDue(SimTime limit, SimTime* at, Callback* fn) {
    if (solo_ != nullptr) {
      Node* node = solo_;
      if (node->at > limit) return false;
      solo_ = nullptr;
      // The lone event is the minimum; the cursor may follow it (never
      // backward: a backlog-style straggler can sit behind the cursor).
      if (node->at > cursor_) cursor_ = node->at;
      return TakeNode(node, at, fn);
    }
    // Backlog events are strictly earlier than everything else (they were
    // scheduled behind the cursor, and ready/wheel events sit at or
    // beyond it), so they drain first.
    if (!backlog_.empty()) {
      Node* top = backlog_.front();
      if (top->at > limit) return false;
      std::pop_heap(backlog_.begin(), backlog_.end(), NodeLater{});
      backlog_.pop_back();
      return TakeNode(top, at, fn);
    }
    if (ready_head_ == nullptr && !AdvanceToNext(limit)) return false;
    Node* node = ready_head_;
    if (node->at > limit) return false;
    ready_head_ = node->next;
    if (ready_head_ == nullptr) ready_tail_ = nullptr;
    return TakeNode(node, at, fn);
  }

  /// Timestamp of the earliest pending event, without popping it;
  /// kMaxTime when empty.  May cascade outer wheel levels to surface the
  /// next due slot — externally invisible (the following PopDue would do
  /// the same work), and later pushes behind the advanced cursor take the
  /// backlog heap, which still pops first.  The lane scheduler uses this
  /// to pick the next conservative window start across per-lane wheels.
  SimTime NextEventTime() {
    if (solo_ != nullptr) return solo_->at;
    if (!backlog_.empty()) return backlog_.front()->at;
    if (ready_head_ == nullptr && !AdvanceToNext(kMaxTime)) return kMaxTime;
    return ready_head_->at;
  }

  /// Advances the wheel cursor to `t`.  Caller contract: no pending event
  /// has timestamp <= `t` (i.e. PopDue(t, ...) just returned false).
  /// RunUntil uses this so a later Push relative to the new Now() lands
  /// in the right slot.
  void SyncCursor(SimTime t) {
    if (t > cursor_) cursor_ = t;
  }

  bool Empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Pool footprint in nodes (tests assert steady-state churn stops
  /// growing it).
  std::size_t allocated_nodes() const { return blocks_.size() * kBlockNodes; }

  /// Events parked beyond the 2^36 us wheel horizon.  The boundary
  /// regression tests pin that `cursor + horizon` routes here — the slot
  /// math would silently wrap it into the wheel's current rotation if
  /// the horizon comparison ever regressed to `>` instead of bit-window
  /// inequality.  (A lone event held in the solo fast path is not
  /// counted; it never touches wheel slots at all.)
  std::size_t overflow_size() const { return overflow_.size(); }

 private:
  struct Node {
    SimTime at = 0;
    std::uint64_t seq = 0;
    Node* next = nullptr;
    Callback fn;
  };
  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  /// Min-heap order over (timestamp, sequence).
  struct NodeLater {
    bool operator()(const Node* a, const Node* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;
  static constexpr int kLevels = 6;
  static constexpr int kWheelBits = kLevels * kSlotBits;  // 36: ~19 h horizon
  static constexpr std::size_t kBlockNodes = 256;

  Node* Alloc(SimTime at, Callback fn) {
    if (free_ == nullptr) RefillPool();
    Node* node = free_;
    free_ = node->next;
    node->at = at;
    node->seq = next_seq_++;
    node->next = nullptr;
    node->fn = std::move(fn);
    return node;
  }

  void Recycle(Node* node) {
    node->next = free_;
    free_ = node;
  }

  /// Moves the node's payload out, recycles it, and reports success (the
  /// tail of every PopDue branch).
  bool TakeNode(Node* node, SimTime* at, Callback* fn) {
    *at = node->at;
    *fn = std::move(node->fn);  // leaves the pooled callback empty
    Recycle(node);
    --size_;
    return true;
  }

  /// Grows the node pool by one block (the only allocation in the queue).
  void RefillPool();

  /// Routes a node into backlog / ready / wheel / overflow by its
  /// timestamp relative to the cursor.
  void Place(Node* node) {
    const SimTime at = node->at;
    if (at < cursor_) {
      // Scheduled behind the wheel cursor (a drain hook firing after a
      // bounded run advanced the cursor); the backlog heap pops first.
      backlog_.push_back(node);
      std::push_heap(backlog_.begin(), backlog_.end(), NodeLater{});
    } else if (at == cursor_) {
      // Due now.  Sequences are monotone, so appending keeps the ready
      // list sorted.
      if (ready_tail_ == nullptr) {
        ready_head_ = ready_tail_ = node;
      } else {
        ready_tail_->next = node;
        ready_tail_ = node;
      }
    } else if (((at ^ cursor_) >> kWheelBits) != 0) {
      overflow_.push_back(node);
      std::push_heap(overflow_.begin(), overflow_.end(), NodeLater{});
    } else {
      InsertIntoWheel(node);
    }
  }

  /// Places a node with at > cursor_ into its wheel slot (must be within
  /// the horizon).
  void InsertIntoWheel(Node* node) {
    const SimTime diff = node->at ^ cursor_;
    const int level = (63 - std::countl_zero(diff)) / kSlotBits;
    const auto index = static_cast<std::size_t>(
        (node->at >> (level * kSlotBits)) & (kSlots - 1));
    Slot& slot = slots_[level][index];
    if (slot.tail == nullptr) {
      slot.head = slot.tail = node;
    } else {
      slot.tail->next = node;
      slot.tail = node;
    }
    occupied_[level] |= std::uint64_t{1} << index;
  }

  /// Moves the next due slot's events into the ready list (sorted by
  /// sequence).  Requires the ready list to be empty; false when the next
  /// event lies beyond `limit`.
  bool AdvanceToNext(SimTime limit);
  /// Sorts scratch_due_ (all at == cursor_) by sequence and links it as
  /// the ready list.
  void LinkScratchAsReady();

  SimTime cursor_ = 0;        // wheel reference point; <= next wheel event
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;

  /// Fast path for the lone-timer pattern (a watchdog or OS tick alarm
  /// rescheduling itself): with exactly one pending event the wheel is
  /// pure overhead, so the single node parks here and pops directly.  A
  /// second Push demotes it onto the wheel.
  Node* solo_ = nullptr;

  Slot slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};  // bitmap of non-empty slots

  Node* ready_head_ = nullptr;  // due events (all at == cursor_), seq order
  Node* ready_tail_ = nullptr;

  std::vector<Node*> backlog_;   // at < cursor_ (drain-hook stragglers)
  std::vector<Node*> overflow_;  // beyond the wheel horizon
  std::vector<Node*> scratch_due_;

  Node* free_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> blocks_;
};

}  // namespace dacm::sim
