// Seeded, deterministic fault-injection scenarios.
//
// Campaign orchestration (server/campaign.hpp) is only worth anything if
// it converges fleets that misbehave — links that flap mid-push, vehicles
// that churn offline, ECUs that nack until a transient clears.  This file
// scripts those failure modes as simulator events so every run of a fault
// scenario is reproducible from its seed: the same flap windows, the same
// churned vehicles, the same nack cohort, in the same order.
//
// Two layers:
//  * scripted primitives (LinkFlapAfter, ChurnAfter, TransientNacks) pin
//    exact fault times — tests use these to hit a protocol window;
//  * seeded generators (AddRandomLinkFlaps, AddOfflineChurn,
//    AddNackCohort) draw a whole fault matrix from the scenario's Rng —
//    benches and soak tests use these to sweep severity.
//
// Every scheduled fault is recorded in timeline() (description + sim
// time), so a convergence report can print exactly what was injected.
//
// Layering: sim knows nothing about fes, so vehicle-level faults go
// through the FleetFaultTarget interface, implemented by
// fes::ScriptedFleet.  All methods must be called on the simulation
// thread; the scheduled fault callbacks run there too.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "support/status.hpp"

namespace dacm::sim {

/// Abstract fleet a scenario can disturb.  Indices are stable vehicle
/// positions (ScriptedFleet uses its vins() order).
class FleetFaultTarget {
 public:
  virtual ~FleetFaultTarget() = default;

  virtual std::size_t FleetSize() const = 0;
  /// Drops the vehicle's connection; pushes to it fail until BringOnline.
  virtual support::Status TakeOffline(std::size_t index) = 0;
  /// Re-dials and re-announces the vehicle (no-op when already online).
  virtual support::Status BringOnline(std::size_t index) = 0;
  /// The vehicle nacks every push it receives before sim time `until`.
  virtual void SetTransientNack(std::size_t index, SimTime until) = 0;
};

/// One injected fault, for reporting.
struct FaultEvent {
  SimTime at = 0;  // when the fault takes effect (absolute sim time)
  std::string description;
};

class FaultScenario {
 public:
  FaultScenario(Simulator& simulator, Network& network, std::uint64_t seed);

  FaultScenario(const FaultScenario&) = delete;
  FaultScenario& operator=(const FaultScenario&) = delete;

  // --- scripted primitives (delays are relative to Now()) -------------------

  /// Takes the WAN link down at Now() + `after` for `duration`.
  /// Overlapping flaps nest: the link comes back when the last one ends.
  void LinkFlapAfter(SimTime after, SimTime duration);

  /// Takes vehicle `index` offline at Now() + `after`, back after
  /// `offline_for`.
  void ChurnAfter(FleetFaultTarget& fleet, std::size_t index, SimTime after,
                  SimTime offline_for);

  /// Vehicle `index` nacks every push until Now() + `heal_after`.
  void TransientNacks(FleetFaultTarget& fleet, std::size_t index,
                      SimTime heal_after);

  /// Crash-recovery harness: at Now() + `after`, runs `kill` then
  /// `restart` inside ONE simulator event.  The test supplies the
  /// closures — typically destroying the TrustedServer/CampaignEngine
  /// (kill) and rebuilding them from status DB + journal (restart).
  /// Keeping both in one event means no churn-return redial or in-flight
  /// SYN can ever observe the gap where nobody listens on the server
  /// address; everything scheduled before the kill that lands after it
  /// must be absorbed by the restarted server (or the killed objects'
  /// alive-token guards).
  void KillAndRestartServer(SimTime after, std::function<void()> kill,
                            std::function<void()> restart);

  // --- seeded generators ----------------------------------------------------

  /// `count` link flaps starting uniformly within [Now(), Now() + horizon),
  /// each lasting uniformly within [min_duration, max_duration].
  void AddRandomLinkFlaps(std::size_t count, SimTime horizon,
                          SimTime min_duration, SimTime max_duration);

  /// Takes a `fraction` of the fleet (distinct vehicles, chosen by the
  /// seed) offline once each, starting within [Now(), Now() + horizon) and
  /// staying down within [min_offline, max_offline].
  void AddOfflineChurn(FleetFaultTarget& fleet, double fraction,
                       SimTime horizon, SimTime min_offline,
                       SimTime max_offline);

  /// A `fraction` cohort of distinct vehicles nacks every push until a
  /// per-vehicle heal time within (Now(), Now() + heal_horizon].
  void AddNackCohort(FleetFaultTarget& fleet, double fraction,
                     SimTime heal_horizon);

  // --- reporting ------------------------------------------------------------

  /// Every injected fault, in scheduling order.
  const std::vector<FaultEvent>& timeline() const { return timeline_; }
  std::size_t link_flaps() const { return link_flaps_; }
  std::size_t churn_events() const { return churn_events_; }
  std::size_t nacked_vehicles() const { return nacked_vehicles_; }

  Rng& rng() { return rng_; }

 private:
  /// Picks `count` distinct indices out of [0, size) — a seeded partial
  /// Fisher-Yates, so cohort membership is a pure function of the seed.
  std::vector<std::size_t> PickDistinct(std::size_t count, std::size_t size);

  void LinkDown();
  void LinkUp();

  Simulator& simulator_;
  Network& network_;
  Rng rng_;
  std::size_t active_link_downs_ = 0;
  std::size_t link_flaps_ = 0;
  std::size_t churn_events_ = 0;
  std::size_t nacked_vehicles_ = 0;
  std::vector<FaultEvent> timeline_;
};

}  // namespace dacm::sim
