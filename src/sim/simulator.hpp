// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the repo (OS tick, CAN frame timing,
// server<->vehicle network latency) is driven by one Simulator instance, so
// whole-system runs are reproducible down to the event ordering.  Events
// scheduled for the same timestamp fire in scheduling order (FIFO), which
// keeps test expectations stable.
//
// The pending set lives in a hierarchical timer wheel with pooled event
// nodes and inline callback storage (sim/event_queue.hpp): steady-state
// scheduling and firing allocates nothing and performs no comparisons, yet
// replays byte-identically against the classic priority-queue core (the
// property suite checks exactly that).
//
// The kernel itself stays single-threaded, but it owns the *drain barrier*
// that lets worker threads feed it: components that stage work off-thread
// (sim::Network's per-peer send queues) register a drain hook, and the run
// loop invokes every hook before processing events and again whenever the
// queue runs dry — so staged messages are folded into the deterministic
// event order without the workers ever touching the queue.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"

namespace dacm::sim {

/// Event-queue simulator.  Not thread-safe; the whole simulation is
/// single-threaded by design.
class Simulator {
 public:
  /// Inline up to 48 bytes of captures; larger callables heap-allocate
  /// once (see support/inplace_function.hpp).  Move-only.
  using Callback = EventQueue::Callback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after Now().
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `until` (inclusive); advances Now() to
  /// `until` even if the queue drains earlier.  Returns events processed.
  std::size_t RunUntil(SimTime until);

  /// Runs for `duration` of simulated time from Now().
  std::size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  bool Empty() const { return queue_.Empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }
  /// Event-node pool footprint (tests assert steady-state churn stops
  /// growing it; see EventQueue::allocated_nodes).
  std::size_t AllocatedEventNodes() const { return queue_.allocated_nodes(); }
  /// Events beyond the wheel horizon (see EventQueue::overflow_size).
  std::size_t OverflowEvents() const { return queue_.overflow_size(); }

  /// Registers a drain hook (see file comment) and returns a handle for
  /// RemoveDrainHook.  Hooks run on the simulation thread only.
  std::uint64_t AddDrainHook(Callback hook);
  /// O(1) (swap-and-pop).  Safe to call from inside a running hook: the
  /// entry is tombstoned for the rest of the pass and compacted after.
  void RemoveDrainHook(std::uint64_t handle);

  /// Runs every drain hook now.  Run/RunUntil call this before the first
  /// event and whenever the queue empties; explicit calls are only needed
  /// to observe staged work without running events.
  void DrainStaged();

 private:
  /// Folds locally-counted events and drain passes into the process
  /// metrics registry — called once per Run/RunUntil return so the event
  /// loop itself never touches an atomic per event.
  void FoldMetrics(std::size_t processed);

  struct DrainHook {
    std::uint64_t handle;
    Callback fn;
    /// Tombstone for removal during a drain pass.  The callback is left
    /// intact until the pass ends: destroying it in place would tear down
    /// the inline captures of a hook that is removing *itself* while its
    /// call frame still uses them.
    bool removed = false;
  };

  SimTime now_ = 0;
  EventQueue queue_;

  std::uint64_t next_drain_handle_ = 0;
  std::vector<DrainHook> drain_hooks_;
  /// Hooks added from inside a drain pass wait here until the pass ends:
  /// pushing into drain_hooks_ mid-iteration could reallocate the vector
  /// and relocate the inline captures of the hook currently executing.
  std::vector<DrainHook> pending_hooks_;
  /// handle -> index in drain_hooks_, maintained through swap-and-pop.
  /// Pending hooks are not indexed until installed (removal before then
  /// scans pending_hooks_ — a cold teardown-only path).
  std::unordered_map<std::uint64_t, std::size_t> drain_hook_index_;
  bool draining_ = false;
  bool drain_hooks_tombstoned_ = false;
  /// Outermost drain passes since the last FoldMetrics (see above).
  std::uint64_t drain_passes_since_fold_ = 0;
};

}  // namespace dacm::sim
