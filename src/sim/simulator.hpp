// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the repo (OS tick, CAN frame timing,
// server<->vehicle network latency) is driven by one Simulator instance, so
// whole-system runs are reproducible down to the event ordering.  Events
// scheduled for the same timestamp fire in scheduling order (FIFO), which
// keeps test expectations stable.
//
// The kernel itself stays single-threaded, but it owns the *drain barrier*
// that lets worker threads feed it: components that stage work off-thread
// (sim::Network's per-peer send queues) register a drain hook, and the run
// loop invokes every hook before processing events and again whenever the
// queue runs dry — so staged messages are folded into the deterministic
// event order without the workers ever touching the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dacm::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

/// Event-queue simulator.  Not thread-safe; the whole simulation is
/// single-threaded by design.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= Now()).
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after Now().
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `until` (inclusive); advances Now() to
  /// `until` even if the queue drains earlier.  Returns events processed.
  std::size_t RunUntil(SimTime until);

  /// Runs for `duration` of simulated time from Now().
  std::size_t RunFor(SimTime duration) { return RunUntil(now_ + duration); }

  bool Empty() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }

  /// Registers a drain hook (see file comment) and returns a handle for
  /// RemoveDrainHook.  Hooks run on the simulation thread only.
  std::uint64_t AddDrainHook(Callback hook);
  void RemoveDrainHook(std::uint64_t handle);

  /// Runs every drain hook now.  Run/RunUntil call this before the first
  /// event and whenever the queue empties; explicit calls are only needed
  /// to observe staged work without running events.
  void DrainStaged();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  struct DrainHook {
    std::uint64_t handle;
    Callback fn;
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_drain_handle_ = 0;
  std::vector<DrainHook> drain_hooks_;
};

}  // namespace dacm::sim
