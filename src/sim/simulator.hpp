// Deterministic discrete-event simulation kernel.
//
// Everything time-dependent in the repo (OS tick, CAN frame timing,
// server<->vehicle network latency) is driven by one Simulator instance, so
// whole-system runs are reproducible down to the event ordering.  Events
// scheduled for the same timestamp fire in scheduling order (FIFO), which
// keeps test expectations stable.
//
// The pending set lives in a hierarchical timer wheel with pooled event
// nodes and inline callback storage (sim/event_queue.hpp): steady-state
// scheduling and firing allocates nothing and performs no comparisons, yet
// replays byte-identically against the classic priority-queue core (the
// property suite checks exactly that).
//
// By default the kernel is single-threaded.  ConfigureLanes(N > 1) splits
// the pending set into N per-lane event wheels that execute concurrently
// inside conservative time windows (see the .cpp file comment for the
// window/barrier protocol and its determinism argument).  Lane 0 is the
// control plane — server, campaign engine, network bookkeeping — and runs
// first in every window on the calling thread; worker lanes run on a
// kernel-owned thread pool.  The replay contract generalizes from
// (timestamp, seq) to (timestamp, lane, lane-local seq); at lanes=1 the
// engine is bit-for-bit today's serial loop.
//
// The kernel also owns the *drain barrier* that lets worker threads feed
// it: components that stage work off-thread (sim::Network's per-peer send
// queues) register a drain hook, and the run loop invokes every hook
// before processing events and again whenever the queue runs dry — so
// staged messages are folded into the deterministic event order without
// the workers ever touching the queues.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"

namespace dacm::support {
class ThreadPool;
}  // namespace dacm::support

namespace dacm::sim {

/// Tuning for the parallel lane engine (Simulator::ConfigureLanes).
struct LaneOptions {
  /// Number of event lanes.  1 (default) keeps the serial engine;
  /// values are clamped to [1, kMaxSimLanes].
  std::size_t lanes = 1;
  /// Upper bound on the conservative window width in microseconds: a
  /// window starting at t may fire events up to t + lookahead - 1.
  /// Cross-lane interaction channels must clamp this to their minimum
  /// notice (sim::Network calls ClampLookahead(latency) for you); direct
  /// users of ScheduleAtLane across lanes must set it themselves.
  SimTime lookahead = EventQueue::kMaxTime;
  /// Worker threads for lanes 1..N-1; SIZE_MAX means lanes - 1.
  std::size_t threads = SIZE_MAX;
};

/// Event-queue simulator.  Single-threaded unless ConfigureLanes(N > 1)
/// is called, in which case worker lanes run on a kernel-owned pool but
/// all public entry points remain control-thread-only.
class Simulator {
 public:
  /// Inline up to 48 bytes of captures; larger callables heap-allocate
  /// once (see support/inplace_function.hpp).  Move-only.
  using Callback = EventQueue::Callback;

  /// Lane count ceiling — keeps the tracer lane block (kSimTraceLaneBase
  /// + lane) inside support::Tracer::kMaxLanes alongside the server
  /// shard lanes.
  static constexpr std::size_t kMaxSimLanes = 16;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Switches the kernel to `options.lanes` parallel event lanes.  Must
  /// be called before anything is scheduled (Now() == 0, empty queues).
  /// lanes <= 1 is a no-op: the serial engine stays.
  void ConfigureLanes(LaneOptions options);

  /// Lowers the conservative-window width to at most `notice` (floored
  /// at 1).  Cross-lane channels call this with their minimum delivery
  /// latency; the clamp is monotone (it never widens) and is honored
  /// whether it happens before or after ConfigureLanes.
  void ClampLookahead(SimTime notice);

  std::size_t lane_count() const { return multi_ ? lanes_.size() : 1; }

  /// Deterministic lane for a pre-hashed key (vehicles hash their VIN).
  /// Worker keys map to all lanes including 0; callers that want the
  /// control plane undisturbed can add 1 and mod over lanes-1 themselves.
  std::uint32_t LaneForKey(std::uint64_t key) const {
    return multi_ ? static_cast<std::uint32_t>(key % lanes_.size()) : 0;
  }

  /// Current simulated time.  Inside a lane event this is the lane-local
  /// clock (the timestamp of the event being fired); on the control
  /// thread between windows it is the global clock (max over lanes).
  SimTime Now() const { return multi_ ? LaneLocalNow() : now_; }

  /// Schedules `fn` to run at absolute time `at` (>= Now()).  From inside
  /// a lane event the target is the executing lane; from the control
  /// thread it is lane 0.
  void ScheduleAt(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after Now().
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(Now() + delay, std::move(fn));
  }

  /// Schedules `fn` on a specific lane.  Intra-lane schedules inside the
  /// current window are direct; anything else (cross-lane, or beyond the
  /// window) is staged and committed at the next merge barrier in global
  /// (parent timestamp, parent lane, program) order — which is what keeps
  /// per-lane sequence assignment identical to a serial merged-order run.
  void ScheduleAtLane(std::uint32_t lane, SimTime at, Callback fn);

  void ScheduleAfterLane(std::uint32_t lane, SimTime delay, Callback fn) {
    ScheduleAtLane(lane, Now() + delay, std::move(fn));
  }

  /// True when the caller may touch control-plane state: always in serial
  /// mode, and on lane 0 / between windows in lane mode.  Components that
  /// must not be driven from worker lanes (Network::Connect) assert this.
  bool OnControlPlane() const;

  /// Runs events until the queues are empty or `limit` events have fired.
  /// Returns the number of events processed.  A bounded limit at lanes>1
  /// takes a serialized merged-order path (exact but not parallel);
  /// unbounded runs use the windowed parallel engine.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `until` (inclusive); advances Now() to
  /// `until` even if the queues drain earlier.  Returns events processed.
  std::size_t RunUntil(SimTime until);

  /// Runs for `duration` of simulated time from Now().
  std::size_t RunFor(SimTime duration) { return RunUntil(Now() + duration); }

  bool Empty() const { return multi_ ? MultiPending() == 0 : queue_.Empty(); }
  std::size_t PendingEvents() const {
    return multi_ ? MultiPending() : queue_.size();
  }
  /// Event-node pool footprint (tests assert steady-state churn stops
  /// growing it; see EventQueue::allocated_nodes).
  std::size_t AllocatedEventNodes() const;
  /// Events beyond the wheel horizon, summed over lanes (see
  /// EventQueue::overflow_size).
  std::size_t OverflowEvents() const;
  /// Per-lane overflow census — the horizon regression tests pin that a
  /// far-future event scheduled from a worker lane waits in the *owning*
  /// lane's overflow heap, not lane 0's.
  std::size_t OverflowEvents(std::uint32_t lane) const;

  /// Registers a drain hook (see file comment) and returns a handle for
  /// RemoveDrainHook.  Hooks run on the control thread only.
  std::uint64_t AddDrainHook(Callback hook);
  /// O(1) (swap-and-pop).  Safe to call from inside a running hook: the
  /// entry is tombstoned for the rest of the pass and compacted after.
  void RemoveDrainHook(std::uint64_t handle);

  /// Runs every drain hook now.  Run/RunUntil call this before the first
  /// window and whenever the queues empty; explicit calls are only needed
  /// to observe staged work without running events.
  void DrainStaged();

 private:
  /// A schedule request made during lane execution that cannot be pushed
  /// directly (cross-lane target, or timestamp beyond the current
  /// window).  Committed at the merge barrier in (parent_at, parent lane,
  /// program) order.
  struct CrossRequest {
    SimTime parent_at;
    std::uint32_t target;
    SimTime at;
    Callback fn;
  };

  /// One event lane.  Cache-line aligned: during a window each lane is
  /// touched by exactly one thread, and false sharing between the hot
  /// `now`/queue headers of neighboring lanes would serialize them again.
  struct alignas(64) LaneState {
    EventQueue queue;
    SimTime now = 0;
    SimTime next = EventQueue::kMaxTime;  // per-window scratch
    std::vector<CrossRequest> staged;
    std::uint64_t window_fired = 0;
    std::uint64_t busy_ns = 0;
  };

  /// Folds locally-counted events and drain passes into the process
  /// metrics registry — called once per Run/RunUntil return so the event
  /// loop itself never touches an atomic per event.
  void FoldMetrics(std::size_t processed);

  SimTime LaneLocalNow() const;
  std::size_t MultiPending() const;
  /// Fires lane `lane_index`'s due events up to `window_end` on the
  /// calling thread, then syncs its wheel cursor to the window end.
  void RunLaneWindow(std::uint32_t lane_index, SimTime window_end);
  /// Merge barrier: commits every lane's staged requests in global
  /// (parent_at, parent lane, program) order.  Returns requests committed.
  std::size_t CommitWindow();
  /// Commits one lane's staged requests in program order (the serialized
  /// path commits after every event, so no sort is needed).
  void CommitLane(LaneState& lane);
  /// The windowed parallel engine behind Run(∞)/RunUntil at lanes>1.
  std::size_t RunLanes(SimTime until, bool pin_until);
  /// Exact merged-order engine behind bounded Run(limit) at lanes>1.
  std::size_t RunLanesSerialized(std::size_t limit);

  struct DrainHook {
    std::uint64_t handle;
    Callback fn;
    /// Tombstone for removal during a drain pass.  The callback is left
    /// intact until the pass ends: destroying it in place would tear down
    /// the inline captures of a hook that is removing *itself* while its
    /// call frame still uses them.
    bool removed = false;
  };

  SimTime now_ = 0;
  EventQueue queue_;

  bool multi_ = false;
  SimTime lookahead_ = EventQueue::kMaxTime;
  std::vector<std::unique_ptr<LaneState>> lanes_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<std::uint32_t> active_lanes_;  // per-window scratch

  std::uint64_t next_drain_handle_ = 0;
  std::vector<DrainHook> drain_hooks_;
  /// Hooks added from inside a drain pass wait here until the pass ends:
  /// pushing into drain_hooks_ mid-iteration could reallocate the vector
  /// and relocate the inline captures of the hook currently executing.
  std::vector<DrainHook> pending_hooks_;
  /// handle -> index in drain_hooks_, maintained through swap-and-pop.
  /// Pending hooks are not indexed until installed (removal before then
  /// scans pending_hooks_ — a cold teardown-only path).
  std::unordered_map<std::uint64_t, std::size_t> drain_hook_index_;
  bool draining_ = false;
  bool drain_hooks_tombstoned_ = false;
  /// Outermost drain passes since the last FoldMetrics (see above).
  std::uint64_t drain_passes_since_fold_ = 0;
};

}  // namespace dacm::sim
