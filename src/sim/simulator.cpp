// Serial event loop plus the parallel lane engine.
//
// Lane protocol (ConfigureLanes(N > 1)) — conservative time windows with
// deterministic merge barriers:
//
//   1. All queues quiescent?  Drain staged sends; find t0 = min over
//      lanes of the next pending timestamp.  The window is
//      [t0, b = min(until, t0 + lookahead - 1)].
//   2. Phase 1: lane 0 (control plane) fires its due events on the
//      control thread.  Phase 2: worker lanes with events <= b fire
//      concurrently on the kernel pool.  The phase split means control
//      mutations (link flaps, peer teardown, fleet columns) are ordered
//      before every worker read in the same window — the pool's
//      dispatch/join handshake provides the happens-before both ways, so
//      shared state needs no extra locks and the outcome is
//      thread-timing independent.
//   3. During lane execution, a schedule stays in-lane only if it
//      targets the executing lane at a timestamp <= b; *everything else*
//      — cross-lane, or in-lane beyond the window — is buffered as a
//      CrossRequest stamped with the parent event's timestamp.
//   4. Merge barrier: buffered requests are concatenated in lane order
//      and stable-sorted by parent timestamp, i.e. exactly the order in
//      which a serial merged-order run would have issued them, then
//      pushed (the target queue assigns the lane-local seq).  Lookahead
//      guarantees every committed timestamp is > b, so a committed
//      request can never tie on (at) with a window-direct push — which
//      is why per-lane seq assignment order only has to match the
//      serial reference among the committed set and among the direct
//      set, never across them.
//
// The replay contract generalizes to firing in (at, lane, lane-local
// seq) order; the differential property suite checks it against a flat
// reference kernel at lanes {1, 2, 4, 8}.  Bounded Run(limit) cannot use
// windows (a window fires an unpredictable number of events), so it
// falls back to an exact serialized engine that pops the globally
// minimal (at, lane) event and commits its requests immediately.
#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dacm::sim {
namespace {

// Bound once; the event loop folds locally-counted events in with one
// relaxed add per Run/RunUntil return, never per event.
support::Counter& EventsCounter() {
  static support::Counter& counter =
      support::Metrics::Instance().GetCounter("dacm_sim_events_total");
  return counter;
}

support::Counter& DrainPassCounter() {
  static support::Counter& counter =
      support::Metrics::Instance().GetCounter("dacm_sim_drain_passes_total");
  return counter;
}

// Events fired by the lane engine, folded once per merge barrier.
support::Counter& LaneEventsCounter() {
  static support::Counter& counter =
      support::Metrics::Instance().GetCounter("dacm_sim_lane_events_total");
  return counter;
}

// Wall-clock nanoseconds each participating worker lane spent waiting at
// the merge barrier for the window's slowest lane (wall wait, not sim
// time — the one deliberately nondeterministic sim metric).
support::Histogram& BarrierStallHistogram() {
  static support::Histogram& histogram =
      support::Metrics::Instance().GetHistogram("dacm_sim_barrier_stall_nanos");
  return histogram;
}

// One coarse span per kernel entry: [Now() at entry, Now() at return],
// args = events fired.  Every value is sim-derived, so seeded runs trace
// byte-identically.
void TraceRun(const char* name, SimTime start, SimTime end,
              std::size_t events) {
  auto& tracer = support::Tracer::Instance();
  if (!tracer.enabled() || events == 0) return;
  tracer.Span(0, name, "sim", start, end - start,
              {"events", static_cast<std::uint64_t>(events)});
}

// Tracer lanes [kSimTraceLaneBase, kSimTraceLaneBase + lanes) carry the
// per-sim-lane sim.window spans; the server shard lanes (shard + 1) stay
// below this block.  All window/barrier events are emitted from the
// control thread between phases, preserving the one-writer-per-lane ring
// contract.
constexpr std::uint32_t kSimTraceLaneBase = 32;

std::uint64_t ElapsedNanos(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

// Which lane (if any) the current thread is executing an event for.
// Thread-local rather than a member: phase-2 windows run lanes on pool
// threads, and a raw member would need synchronization the hot serial
// path should not pay for.
struct LaneContext {
  Simulator* sim = nullptr;
  std::uint32_t lane = 0;
  SimTime window_end = 0;
};
thread_local LaneContext tls_lane;

}  // namespace

Simulator::Simulator() = default;
Simulator::~Simulator() = default;  // joins the lane pool, if any

void Simulator::ConfigureLanes(LaneOptions options) {
  assert(!multi_ && now_ == 0 && queue_.Empty() &&
         "ConfigureLanes must run before any scheduling");
  if (options.lanes <= 1) return;
  const std::size_t lanes = std::min(options.lanes, kMaxSimLanes);
  ClampLookahead(options.lookahead);
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<LaneState>());
  }
  std::size_t threads = options.threads;
  if (threads == SIZE_MAX) {
    // One worker per non-control lane, capped at the cores left after
    // the control thread: oversubscribing only buys context-switch
    // thrash at every window barrier.  On a single-core host the cap is
    // zero and ParallelFor degrades to an inline loop — same windows,
    // same commit order, no handshake — because the window outcome is
    // pool-size independent (composition and commit order are pure
    // functions of sim state).  Tests that exist to race-check the
    // engine pass an explicit thread count instead of relying on this
    // default.
    const auto hw =
        static_cast<std::size_t>(std::thread::hardware_concurrency());
    threads = std::min(lanes - 1, hw > 1 ? hw - 1 : 0);
  }
  pool_ = std::make_unique<support::ThreadPool>(threads);
  multi_ = true;
}

void Simulator::ClampLookahead(SimTime notice) {
  if (notice < 1) notice = 1;
  if (notice < lookahead_) lookahead_ = notice;
}

SimTime Simulator::LaneLocalNow() const {
  if (tls_lane.sim == this) return lanes_[tls_lane.lane]->now;
  return now_;
}

bool Simulator::OnControlPlane() const {
  return !multi_ || tls_lane.sim != this || tls_lane.lane == 0;
}

std::size_t Simulator::MultiPending() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queue.size();
  return total;
}

std::size_t Simulator::AllocatedEventNodes() const {
  if (!multi_) return queue_.allocated_nodes();
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queue.allocated_nodes();
  return total;
}

std::size_t Simulator::OverflowEvents() const {
  if (!multi_) return queue_.overflow_size();
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->queue.overflow_size();
  return total;
}

std::size_t Simulator::OverflowEvents(std::uint32_t lane) const {
  if (!multi_) return lane == 0 ? queue_.overflow_size() : 0;
  assert(lane < lanes_.size());
  return lanes_[lane]->queue.overflow_size();
}

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  if (!multi_) {
    if (at < now_) at = now_;  // late scheduling clamps to "immediately"
    queue_.Push(at, std::move(fn));
    return;
  }
  const std::uint32_t lane =
      tls_lane.sim == this ? tls_lane.lane : std::uint32_t{0};
  ScheduleAtLane(lane, at, std::move(fn));
}

void Simulator::ScheduleAtLane(std::uint32_t lane_index, SimTime at,
                               Callback fn) {
  assert(fn);
  if (!multi_) {
    if (at < now_) at = now_;
    queue_.Push(at, std::move(fn));
    return;
  }
  assert(lane_index < lanes_.size());
  if (tls_lane.sim == this) {
    // Executing a lane event.  Direct push only for in-lane targets
    // inside the window; everything else waits for the merge barrier so
    // per-lane seq assignment matches the serial merged order (see file
    // comment, step 3/4).
    LaneState& self = *lanes_[tls_lane.lane];
    if (lane_index == tls_lane.lane && at <= tls_lane.window_end) {
      if (at < self.now) at = self.now;
      self.queue.Push(at, std::move(fn));
    } else {
      self.staged.push_back(
          CrossRequest{self.now, lane_index, at, std::move(fn)});
    }
    return;
  }
  // Control thread between windows (setup, drain hooks at a barrier):
  // push directly, clamped so the target lane's clock never runs back.
  if (at < now_) at = now_;
  LaneState& target = *lanes_[lane_index];
  if (at < target.now) at = target.now;
  target.queue.Push(at, std::move(fn));
}

std::uint64_t Simulator::AddDrainHook(Callback hook) {
  assert(hook);
  const std::uint64_t handle = next_drain_handle_++;
  if (draining_) {
    // Adding from inside a hook must not reallocate drain_hooks_ under
    // the running pass (that would relocate the executing closure's
    // inline captures); the hook joins from the next pass on.
    pending_hooks_.push_back(DrainHook{handle, std::move(hook), false});
    return handle;
  }
  drain_hook_index_.emplace(handle, drain_hooks_.size());
  drain_hooks_.push_back(DrainHook{handle, std::move(hook), false});
  return handle;
}

void Simulator::RemoveDrainHook(std::uint64_t handle) {
  auto it = drain_hook_index_.find(handle);
  if (it == drain_hook_index_.end()) {
    // Possibly added and removed within one drain pass (teardown from a
    // hook): still waiting in pending_hooks_.
    std::erase_if(pending_hooks_, [handle](const DrainHook& hook) {
      return hook.handle == handle;
    });
    return;
  }
  const std::size_t index = it->second;
  drain_hook_index_.erase(it);
  if (draining_) {
    // Mid-pass removal (a component tearing down from inside a hook):
    // swapping would disturb the iteration, and destroying the callback
    // here would tear down a possibly-executing closure, so only mark it
    // and compact when the pass finishes.
    drain_hooks_[index].removed = true;
    drain_hooks_tombstoned_ = true;
    return;
  }
  if (index != drain_hooks_.size() - 1) {
    drain_hooks_[index] = std::move(drain_hooks_.back());
    drain_hook_index_[drain_hooks_[index].handle] = index;
  }
  drain_hooks_.pop_back();
}

void Simulator::DrainStaged() {
  const bool outermost = !draining_;
  draining_ = true;
  drain_passes_since_fold_ += outermost ? 1 : 0;
  // drain_hooks_ cannot grow or shrink during the pass (additions are
  // deferred, removals tombstoned), so the closures stay put while they
  // execute.
  for (std::size_t i = 0; i < drain_hooks_.size(); ++i) {
    if (!drain_hooks_[i].removed) drain_hooks_[i].fn();
  }
  if (!outermost) return;
  draining_ = false;
  if (drain_hooks_tombstoned_) {
    drain_hooks_tombstoned_ = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < drain_hooks_.size(); ++i) {
      if (drain_hooks_[i].removed) continue;
      if (kept != i) drain_hooks_[kept] = std::move(drain_hooks_[i]);
      drain_hook_index_[drain_hooks_[kept].handle] = kept;
      ++kept;
    }
    drain_hooks_.resize(kept);
  }
  for (DrainHook& pending : pending_hooks_) {
    drain_hook_index_.emplace(pending.handle, drain_hooks_.size());
    drain_hooks_.push_back(std::move(pending));
  }
  pending_hooks_.clear();
}

std::size_t Simulator::Run(std::size_t limit) {
  if (multi_) {
    return limit == SIZE_MAX ? RunLanes(EventQueue::kMaxTime, false)
                             : RunLanesSerialized(limit);
  }
  std::size_t processed = 0;
  const SimTime started_at = now_;
  DrainStaged();
  SimTime at = 0;
  Callback fn;
  while (processed < limit) {
    if (!queue_.PopDue(EventQueue::kMaxTime, &at, &fn)) {
      // Handlers fired above may have staged follow-ups (e.g. a vehicle
      // acking a push); fold them in before declaring quiescence.
      DrainStaged();
      if (!queue_.PopDue(EventQueue::kMaxTime, &at, &fn)) break;
    }
    now_ = at;
    fn();
    fn = Callback();  // release captures before the next event fires
    ++processed;
  }
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

void Simulator::FoldMetrics(std::size_t processed) {
  if (processed != 0) EventsCounter().Inc(processed);
  if (drain_passes_since_fold_ != 0) {
    DrainPassCounter().Inc(drain_passes_since_fold_);
    drain_passes_since_fold_ = 0;
  }
  // Touch the lane families so even a lanes=1 process exposes them (the
  // CI metrics smoke requires the families to exist, not to be nonzero).
  (void)LaneEventsCounter();
  (void)BarrierStallHistogram();
}

std::size_t Simulator::RunUntil(SimTime until) {
  if (multi_) return RunLanes(until, true);
  std::size_t processed = 0;
  const SimTime started_at = now_;
  DrainStaged();
  SimTime at = 0;
  Callback fn;
  for (;;) {
    if (!queue_.PopDue(until, &at, &fn)) {
      DrainStaged();
      if (!queue_.PopDue(until, &at, &fn)) break;
    }
    now_ = at;
    fn();
    fn = Callback();
    ++processed;
  }
  if (now_ < until) now_ = until;
  // Nothing remains at or before `until` (checked just above), so the
  // wheel cursor can follow Now().
  queue_.SyncCursor(until);
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

void Simulator::RunLaneWindow(std::uint32_t lane_index, SimTime window_end) {
  LaneState& lane = *lanes_[lane_index];
  const auto wall0 = std::chrono::steady_clock::now();
  LaneContext saved = tls_lane;
  tls_lane = LaneContext{this, lane_index, window_end};
  SimTime at = 0;
  Callback fn;
  std::uint64_t fired = 0;
  while (lane.queue.PopDue(window_end, &at, &fn)) {
    if (at > lane.now) lane.now = at;
    fn();
    fn = Callback();
    ++fired;
  }
  // Nothing in this lane remains at or before the window end, so its
  // cursor can follow the barrier (later commits land beyond it).
  lane.queue.SyncCursor(window_end);
  tls_lane = saved;
  lane.window_fired = fired;
  lane.busy_ns = ElapsedNanos(wall0);
}

std::size_t Simulator::CommitWindow() {
  // Global commit order is (parent_at, parent lane, program order): the
  // order a serial merged-order run would have issued these schedules in.
  // Each lane's staged buffer is already nondecreasing in parent_at
  // (events fire in nondecreasing time within a window), so a k-way merge
  // — strictly-lower parent_at wins, ties go to the lowest lane —
  // reproduces that order while moving each callback exactly once,
  // straight from the staged buffer into the target queue.
  std::size_t cursor[kMaxSimLanes] = {};
  std::size_t committed = 0;
  for (;;) {
    CrossRequest* best = nullptr;
    std::size_t best_lane = 0;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      auto& staged = lanes_[i]->staged;
      if (cursor[i] == staged.size()) continue;
      CrossRequest& front = staged[cursor[i]];
      if (best == nullptr || front.parent_at < best->parent_at) {
        best = &front;
        best_lane = i;
      }
    }
    if (best == nullptr) break;
    ++cursor[best_lane];
    LaneState& target = *lanes_[best->target];
    SimTime at = best->at;
    if (at < target.now) at = target.now;
    target.queue.Push(at, std::move(best->fn));
    ++committed;
  }
  for (auto& lane : lanes_) lane->staged.clear();
  return committed;
}

void Simulator::CommitLane(LaneState& lane) {
  for (CrossRequest& request : lane.staged) {
    LaneState& target = *lanes_[request.target];
    SimTime at = request.at;
    if (at < target.now) at = target.now;
    target.queue.Push(at, std::move(request.fn));
  }
  lane.staged.clear();
}

std::size_t Simulator::RunLanes(SimTime until, bool pin_until) {
  std::size_t processed = 0;
  const SimTime started_at = now_;
  auto& tracer = support::Tracer::Instance();
  for (;;) {
    DrainStaged();
    SimTime t0 = EventQueue::kMaxTime;
    for (auto& lane : lanes_) {
      lane->next = lane->queue.NextEventTime();
      lane->window_fired = 0;
      if (lane->next < t0) t0 = lane->next;
    }
    if (t0 == EventQueue::kMaxTime || t0 > until) break;

    SimTime window_end = t0 + (lookahead_ - 1);
    if (window_end < t0) window_end = EventQueue::kMaxTime;  // saturate
    if (window_end > until) window_end = until;

    // Phase 1: control plane, on this thread.
    RunLaneWindow(0, window_end);

    // Phase 2: worker lanes with due events, concurrently.  Lanes with
    // nothing due are skipped entirely (their cursors catch up when they
    // next participate); a window that is control-only costs no pool
    // round-trip — the common case for campaign bookkeeping bursts.
    active_lanes_.clear();
    for (std::uint32_t i = 1; i < lanes_.size(); ++i) {
      if (lanes_[i]->next <= window_end) active_lanes_.push_back(i);
    }
    std::uint64_t window_wall_ns = 0;
    if (!active_lanes_.empty()) {
      const auto wall0 = std::chrono::steady_clock::now();
      pool_->ParallelFor(active_lanes_.size(),
                         [this, window_end](std::size_t i) {
                           RunLaneWindow(active_lanes_[i], window_end);
                         });
      window_wall_ns = ElapsedNanos(wall0);
    }

    // Merge barrier (control thread; the pool join ordered every lane's
    // writes before this point).
    std::size_t window_total = lanes_[0]->window_fired;
    for (std::uint32_t lane_index : active_lanes_) {
      window_total += lanes_[lane_index]->window_fired;
    }
    const std::size_t committed = CommitWindow();
    for (auto& lane : lanes_) {
      if (lane->now > now_) now_ = lane->now;
    }
    processed += window_total;

    if (window_total != 0) LaneEventsCounter().Inc(window_total);
    for (std::uint32_t lane_index : active_lanes_) {
      const std::uint64_t busy = lanes_[lane_index]->busy_ns;
      BarrierStallHistogram().Observe(
          window_wall_ns > busy ? window_wall_ns - busy : 0);
    }

    if (tracer.enabled()) {
      for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
        const std::uint64_t fired = lanes_[i]->window_fired;
        if (fired == 0) continue;
        tracer.Span(kSimTraceLaneBase + i, "sim.window", "sim", t0,
                    window_end - t0, {"events", fired},
                    {"lane", std::uint64_t{i}});
      }
      tracer.Instant(kSimTraceLaneBase, "sim.barrier", "sim", window_end,
                     {"events", static_cast<std::uint64_t>(window_total)},
                     {"committed", static_cast<std::uint64_t>(committed)});
    }
  }
  if (pin_until) {
    for (auto& lane : lanes_) {
      if (lane->now < until) lane->now = until;
      // Loop exit had every lane quiescent at or before `until` (checked
      // after a drain pass), so the cursors can follow.
      lane->queue.SyncCursor(until);
    }
    if (now_ < until) now_ = until;
  }
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

std::size_t Simulator::RunLanesSerialized(std::size_t limit) {
  std::size_t processed = 0;
  const SimTime started_at = now_;
  DrainStaged();
  SimTime at = 0;
  Callback fn;
  const auto next_lane = [this]() -> std::size_t {
    std::size_t best = lanes_.size();
    SimTime best_at = EventQueue::kMaxTime;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const SimTime t = lanes_[i]->queue.NextEventTime();
      if (t < best_at) {  // strict: ties resolve to the lowest lane
        best_at = t;
        best = i;
      }
    }
    return best;
  };
  while (processed < limit) {
    std::size_t best = next_lane();
    if (best == lanes_.size()) {
      DrainStaged();
      best = next_lane();
      if (best == lanes_.size()) break;
    }
    LaneState& lane = *lanes_[best];
    if (!lane.queue.PopDue(EventQueue::kMaxTime, &at, &fn)) break;
    if (at > lane.now) lane.now = at;
    if (at > now_) now_ = at;
    LaneContext saved = tls_lane;
    tls_lane =
        LaneContext{this, static_cast<std::uint32_t>(best), EventQueue::kMaxTime};
    fn();
    tls_lane = saved;
    fn = Callback();
    // Immediate commit keeps per-lane seq assignment in fired (merged)
    // order — the same order the windowed barrier reconstructs.
    CommitLane(lane);
    ++processed;
  }
  if (processed != 0) LaneEventsCounter().Inc(processed);
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

}  // namespace dacm::sim
