#include "sim/simulator.hpp"

#include <cassert>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace dacm::sim {
namespace {

// Bound once; the event loop folds locally-counted events in with one
// relaxed add per Run/RunUntil return, never per event.
support::Counter& EventsCounter() {
  static support::Counter& counter =
      support::Metrics::Instance().GetCounter("dacm_sim_events_total");
  return counter;
}

support::Counter& DrainPassCounter() {
  static support::Counter& counter =
      support::Metrics::Instance().GetCounter("dacm_sim_drain_passes_total");
  return counter;
}

// One coarse span per kernel entry: [Now() at entry, Now() at return],
// args = events fired.  Every value is sim-derived, so seeded runs trace
// byte-identically; these are the merge-barrier tracks the parallel-lanes
// roadmap item will extend.
void TraceRun(const char* name, SimTime start, SimTime end,
              std::size_t events) {
  auto& tracer = support::Tracer::Instance();
  if (!tracer.enabled() || events == 0) return;
  tracer.Span(0, name, "sim", start, end - start,
              {"events", static_cast<std::uint64_t>(events)});
}

}  // namespace

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;  // late scheduling clamps to "immediately"
  queue_.Push(at, std::move(fn));
}

std::uint64_t Simulator::AddDrainHook(Callback hook) {
  assert(hook);
  const std::uint64_t handle = next_drain_handle_++;
  if (draining_) {
    // Adding from inside a hook must not reallocate drain_hooks_ under
    // the running pass (that would relocate the executing closure's
    // inline captures); the hook joins from the next pass on.
    pending_hooks_.push_back(DrainHook{handle, std::move(hook), false});
    return handle;
  }
  drain_hook_index_.emplace(handle, drain_hooks_.size());
  drain_hooks_.push_back(DrainHook{handle, std::move(hook), false});
  return handle;
}

void Simulator::RemoveDrainHook(std::uint64_t handle) {
  auto it = drain_hook_index_.find(handle);
  if (it == drain_hook_index_.end()) {
    // Possibly added and removed within one drain pass (teardown from a
    // hook): still waiting in pending_hooks_.
    std::erase_if(pending_hooks_, [handle](const DrainHook& hook) {
      return hook.handle == handle;
    });
    return;
  }
  const std::size_t index = it->second;
  drain_hook_index_.erase(it);
  if (draining_) {
    // Mid-pass removal (a component tearing down from inside a hook):
    // swapping would disturb the iteration, and destroying the callback
    // here would tear down a possibly-executing closure, so only mark it
    // and compact when the pass finishes.
    drain_hooks_[index].removed = true;
    drain_hooks_tombstoned_ = true;
    return;
  }
  if (index != drain_hooks_.size() - 1) {
    drain_hooks_[index] = std::move(drain_hooks_.back());
    drain_hook_index_[drain_hooks_[index].handle] = index;
  }
  drain_hooks_.pop_back();
}

void Simulator::DrainStaged() {
  const bool outermost = !draining_;
  draining_ = true;
  drain_passes_since_fold_ += outermost ? 1 : 0;
  // drain_hooks_ cannot grow or shrink during the pass (additions are
  // deferred, removals tombstoned), so the closures stay put while they
  // execute.
  for (std::size_t i = 0; i < drain_hooks_.size(); ++i) {
    if (!drain_hooks_[i].removed) drain_hooks_[i].fn();
  }
  if (!outermost) return;
  draining_ = false;
  if (drain_hooks_tombstoned_) {
    drain_hooks_tombstoned_ = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < drain_hooks_.size(); ++i) {
      if (drain_hooks_[i].removed) continue;
      if (kept != i) drain_hooks_[kept] = std::move(drain_hooks_[i]);
      drain_hook_index_[drain_hooks_[kept].handle] = kept;
      ++kept;
    }
    drain_hooks_.resize(kept);
  }
  for (DrainHook& pending : pending_hooks_) {
    drain_hook_index_.emplace(pending.handle, drain_hooks_.size());
    drain_hooks_.push_back(std::move(pending));
  }
  pending_hooks_.clear();
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t processed = 0;
  const SimTime started_at = now_;
  DrainStaged();
  SimTime at = 0;
  Callback fn;
  while (processed < limit) {
    if (!queue_.PopDue(EventQueue::kMaxTime, &at, &fn)) {
      // Handlers fired above may have staged follow-ups (e.g. a vehicle
      // acking a push); fold them in before declaring quiescence.
      DrainStaged();
      if (!queue_.PopDue(EventQueue::kMaxTime, &at, &fn)) break;
    }
    now_ = at;
    fn();
    fn = Callback();  // release captures before the next event fires
    ++processed;
  }
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

void Simulator::FoldMetrics(std::size_t processed) {
  if (processed != 0) EventsCounter().Inc(processed);
  if (drain_passes_since_fold_ != 0) {
    DrainPassCounter().Inc(drain_passes_since_fold_);
    drain_passes_since_fold_ = 0;
  }
}

std::size_t Simulator::RunUntil(SimTime until) {
  std::size_t processed = 0;
  const SimTime started_at = now_;
  DrainStaged();
  SimTime at = 0;
  Callback fn;
  for (;;) {
    if (!queue_.PopDue(until, &at, &fn)) {
      DrainStaged();
      if (!queue_.PopDue(until, &at, &fn)) break;
    }
    now_ = at;
    fn();
    fn = Callback();
    ++processed;
  }
  if (now_ < until) now_ = until;
  // Nothing remains at or before `until` (checked just above), so the
  // wheel cursor can follow Now().
  queue_.SyncCursor(until);
  FoldMetrics(processed);
  TraceRun("sim.run", started_at, now_, processed);
  return processed;
}

}  // namespace dacm::sim
