#include "sim/simulator.hpp"

#include <cassert>

namespace dacm::sim {

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;  // late scheduling clamps to "immediately"
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t processed = 0;
  while (!queue_.empty() && processed < limit) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::RunUntil(SimTime until) {
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

}  // namespace dacm::sim
