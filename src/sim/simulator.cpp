#include "sim/simulator.hpp"

#include <cassert>

namespace dacm::sim {

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  assert(fn);
  if (at < now_) at = now_;  // late scheduling clamps to "immediately"
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::uint64_t Simulator::AddDrainHook(Callback hook) {
  assert(hook);
  const std::uint64_t handle = next_drain_handle_++;
  drain_hooks_.push_back(DrainHook{handle, std::move(hook)});
  return handle;
}

void Simulator::RemoveDrainHook(std::uint64_t handle) {
  for (std::size_t i = 0; i < drain_hooks_.size(); ++i) {
    if (drain_hooks_[i].handle == handle) {
      drain_hooks_.erase(drain_hooks_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void Simulator::DrainStaged() {
  for (const DrainHook& hook : drain_hooks_) hook.fn();
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t processed = 0;
  DrainStaged();
  while (processed < limit) {
    if (queue_.empty()) {
      // Handlers fired above may have staged follow-ups (e.g. a vehicle
      // acking a push); fold them in before declaring quiescence.
      DrainStaged();
      if (queue_.empty()) break;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::RunUntil(SimTime until) {
  std::size_t processed = 0;
  DrainStaged();
  for (;;) {
    if (queue_.empty() || queue_.top().at > until) {
      DrainStaged();
      if (queue_.empty() || queue_.top().at > until) break;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

}  // namespace dacm::sim
