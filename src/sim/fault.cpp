#include "sim/fault.hpp"

#include <numeric>

namespace dacm::sim {

FaultScenario::FaultScenario(Simulator& simulator, Network& network,
                             std::uint64_t seed)
    : simulator_(simulator), network_(network), rng_(seed) {}

void FaultScenario::LinkDown() {
  if (active_link_downs_++ == 0) network_.SetLinkUp(false);
}

void FaultScenario::LinkUp() {
  if (--active_link_downs_ == 0) network_.SetLinkUp(true);
}

void FaultScenario::LinkFlapAfter(SimTime after, SimTime duration) {
  const SimTime at = simulator_.Now() + after;
  ++link_flaps_;
  timeline_.push_back(FaultEvent{
      at, "link flap for " + std::to_string(duration / kMillisecond) + " ms"});
  simulator_.ScheduleAfter(after, [this] { LinkDown(); });
  simulator_.ScheduleAfter(after + duration, [this] { LinkUp(); });
}

void FaultScenario::ChurnAfter(FleetFaultTarget& fleet, std::size_t index,
                               SimTime after, SimTime offline_for) {
  const SimTime at = simulator_.Now() + after;
  ++churn_events_;
  timeline_.push_back(FaultEvent{
      at, "vehicle #" + std::to_string(index) + " offline for " +
              std::to_string(offline_for / kMillisecond) + " ms"});
  simulator_.ScheduleAfter(after,
                           [&fleet, index] { (void)fleet.TakeOffline(index); });
  simulator_.ScheduleAfter(after + offline_for,
                           [&fleet, index] { (void)fleet.BringOnline(index); });
}

void FaultScenario::TransientNacks(FleetFaultTarget& fleet, std::size_t index,
                                   SimTime heal_after) {
  const SimTime until = simulator_.Now() + heal_after;
  ++nacked_vehicles_;
  timeline_.push_back(FaultEvent{
      simulator_.Now(), "vehicle #" + std::to_string(index) + " nacks until " +
                            std::to_string(heal_after / kMillisecond) + " ms"});
  fleet.SetTransientNack(index, until);
}

void FaultScenario::KillAndRestartServer(SimTime after,
                                         std::function<void()> kill,
                                         std::function<void()> restart) {
  const SimTime at = simulator_.Now() + after;
  timeline_.push_back(FaultEvent{at, "server killed, restarted from journal"});
  // One event, not two: between `kill` and `restart` no other simulator
  // callback can run, so the fleet never observes an address nobody
  // listens on.
  simulator_.ScheduleAfter(
      after, [kill = std::move(kill), restart = std::move(restart)] {
        kill();
        restart();
      });
}

void FaultScenario::AddRandomLinkFlaps(std::size_t count, SimTime horizon,
                                       SimTime min_duration,
                                       SimTime max_duration) {
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime after = horizon == 0 ? 0 : rng_.NextBelow(horizon);
    const SimTime duration = rng_.NextInRange(min_duration, max_duration);
    LinkFlapAfter(after, duration);
  }
}

std::vector<std::size_t> FaultScenario::PickDistinct(std::size_t count,
                                                     std::size_t size) {
  std::vector<std::size_t> indices(size);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  count = std::min(count, size);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng_.NextBelow(size - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

void FaultScenario::AddOfflineChurn(FleetFaultTarget& fleet, double fraction,
                                    SimTime horizon, SimTime min_offline,
                                    SimTime max_offline) {
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(fleet.FleetSize()) + 0.5);
  for (std::size_t index : PickDistinct(count, fleet.FleetSize())) {
    const SimTime after = horizon == 0 ? 0 : rng_.NextBelow(horizon);
    const SimTime offline_for = rng_.NextInRange(min_offline, max_offline);
    ChurnAfter(fleet, index, after, offline_for);
  }
}

void FaultScenario::AddNackCohort(FleetFaultTarget& fleet, double fraction,
                                  SimTime heal_horizon) {
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(fleet.FleetSize()) + 0.5);
  for (std::size_t index : PickDistinct(count, fleet.FleetSize())) {
    TransientNacks(fleet, index,
                   heal_horizon == 0 ? 0 : rng_.NextInRange(1, heal_horizon));
  }
}

}  // namespace dacm::sim
