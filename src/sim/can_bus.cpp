#include "sim/can_bus.hpp"

#include <limits>

namespace dacm::sim {

CanBus::CanBus(Simulator& simulator, std::uint32_t bit_rate_bps,
               std::uint64_t fault_seed)
    : simulator_(simulator), bit_rate_bps_(bit_rate_bps), fault_rng_(fault_seed) {}

CanNodeId CanBus::AttachNode(std::string name, ReceiveHandler on_receive) {
  nodes_.push_back(Node{std::move(name), std::move(on_receive), {}});
  return nodes_.size() - 1;
}

support::Status CanBus::Send(CanNodeId node, const CanFrame& frame) {
  if (node >= nodes_.size()) {
    return support::InvalidArgument("unknown CAN node");
  }
  if (frame.dlc > 8) {
    return support::InvalidArgument("CAN dlc > 8");
  }
  if (frame.can_id > CanFrame::kMaxStandardId) {
    return support::InvalidArgument("CAN id exceeds 11 bits");
  }
  nodes_[node].tx_queue.push_back(frame);
  if (!bus_busy_) TryStartTransmission();
  return support::OkStatus();
}

SimTime CanBus::FrameTime(std::uint8_t dlc) const {
  // Classic CAN data frame: ~44 overhead bits + 8 per data byte, plus ~20%
  // worst-case bit stuffing.
  const std::uint64_t bits = (44 + 8ull * dlc) * 12 / 10;
  return bits * kSecond / bit_rate_bps_;
}

void CanBus::TryStartTransmission() {
  // Arbitration: among nodes with pending frames, the numerically lowest
  // identifier wins.  Ties (same id from two nodes) resolve by node index,
  // which mirrors the deterministic behaviour of real buses where equal
  // identifiers are a configuration error anyway.
  CanNodeId winner = std::numeric_limits<CanNodeId>::max();
  std::uint32_t best_id = std::numeric_limits<std::uint32_t>::max();
  for (CanNodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].tx_queue.empty()) continue;
    if (nodes_[i].tx_queue.front().can_id < best_id) {
      best_id = nodes_[i].tx_queue.front().can_id;
      winner = i;
    }
  }
  if (winner == std::numeric_limits<CanNodeId>::max()) return;

  bus_busy_ = true;
  CanFrame frame = nodes_[winner].tx_queue.front();
  nodes_[winner].tx_queue.pop_front();
  simulator_.ScheduleAfter(FrameTime(frame.dlc), [this, winner, frame]() {
    FinishTransmission(winner, frame);
  });
}

void CanBus::FinishTransmission(CanNodeId sender, CanFrame frame) {
  ++frames_transmitted_;
  bool dropped = drop_rate_ > 0.0 && fault_rng_.NextBool(drop_rate_);
  if (dropped) {
    ++frames_dropped_;
  } else {
    if (corrupt_rate_ > 0.0 && fault_rng_.NextBool(corrupt_rate_)) {
      if (frame.dlc > 0) {
        const auto byte = fault_rng_.NextBelow(frame.dlc);
        const auto bit = fault_rng_.NextBelow(8);
        frame.data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      }
      frame.corrupted = true;
    }
    for (CanNodeId i = 0; i < nodes_.size(); ++i) {
      if (i == sender) continue;  // no self-reception
      if (nodes_[i].on_receive) nodes_[i].on_receive(frame);
    }
  }
  bus_busy_ = false;
  TryStartTransmission();
}

}  // namespace dacm::sim
