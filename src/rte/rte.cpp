#include "rte/rte.hpp"

#include "support/log.hpp"

namespace dacm::rte {

Rte::Rte(os::Os& ecu_os, bsw::CanIf& can_if, bsw::Com& com)
    : os_(ecu_os), can_if_(can_if), com_(com) {}

support::Result<SwcId> Rte::AddSwc(std::string name) {
  if (finalized_) return support::FailedPrecondition("AddSwc after Finalize");
  for (const Swc& s : swcs_) {
    if (s.name == name) return support::AlreadyExists("SW-C: " + name);
  }
  swcs_.push_back(Swc{std::move(name), {}});
  return SwcId(static_cast<std::uint32_t>(swcs_.size() - 1));
}

support::Result<PortId> Rte::AddPort(SwcId swc, PortConfig config) {
  if (finalized_) return support::FailedPrecondition("AddPort after Finalize");
  if (swc.value() >= swcs_.size()) return support::NotFound("unknown SW-C");
  for (PortId pid : swcs_[swc.value()].ports) {
    if (ports_[pid.value()].config.name == config.name) {
      return support::AlreadyExists("port " + config.name + " on SW-C " +
                                    swcs_[swc.value()].name);
    }
  }
  Port port;
  port.swc = swc;
  port.config = std::move(config);
  port.cs_server = PortId::Invalid();
  ports_.push_back(std::move(port));
  const PortId id(static_cast<std::uint32_t>(ports_.size() - 1));
  swcs_[swc.value()].ports.push_back(id);
  return id;
}

support::Result<RunnableId> Rte::AddRunnable(SwcId swc, RunnableConfig config) {
  if (finalized_) return support::FailedPrecondition("AddRunnable after Finalize");
  if (swc.value() >= swcs_.size()) return support::NotFound("unknown SW-C");
  if (!config.body) return support::InvalidArgument("runnable body missing");
  Runnable r;
  r.swc = swc;
  r.config = std::move(config);
  runnables_.push_back(std::move(r));
  return RunnableId(static_cast<std::uint32_t>(runnables_.size() - 1));
}

support::Status Rte::TriggerOnDataReceived(RunnableId runnable, PortId required_port) {
  if (finalized_) return support::FailedPrecondition("trigger config after Finalize");
  if (runnable.value() >= runnables_.size()) return support::NotFound("unknown runnable");
  DACM_RETURN_IF_ERROR(
      CheckPort(required_port, PortDirection::kRequired, PortStyle::kSenderReceiver));
  ports_[required_port.value()].data_received_runnables.push_back(runnable);
  return support::OkStatus();
}

support::Status Rte::ConnectLocal(PortId provided, PortId required) {
  if (finalized_) return support::FailedPrecondition("connector config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kSenderReceiver));
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kSenderReceiver));
  if (ports_[provided.value()].config.max_len > ports_[required.value()].config.max_len) {
    return support::Incompatible("connector would truncate: " +
                                 ports_[provided.value()].config.name + " -> " +
                                 ports_[required.value()].config.name);
  }
  ports_[provided.value()].local_receivers.push_back(required);
  return support::OkStatus();
}

support::Status Rte::ConnectClientServer(PortId required, PortId provided) {
  if (finalized_) return support::FailedPrecondition("connector config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kClientServer));
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kClientServer));
  Port& client = ports_[required.value()];
  if (client.cs_server.valid()) {
    return support::AlreadyExists("C/S port already connected: " + client.config.name);
  }
  client.cs_server = provided;
  return support::OkStatus();
}

support::Status Rte::BindRemoteTxSignal(PortId provided, bsw::SignalId signal) {
  if (finalized_) return support::FailedPrecondition("binding config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kSenderReceiver));
  ports_[provided.value()].remote_tx_signals.push_back(signal);
  return support::OkStatus();
}

support::Status Rte::BindRemoteRxSignal(PortId required, bsw::SignalId signal) {
  if (finalized_) return support::FailedPrecondition("binding config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kSenderReceiver));
  return com_.SetRxNotification(
      signal, [this, required](std::span<const std::uint8_t> data) {
        Deliver(required, data);
      });
}

bsw::CanTp& Rte::CreateTpChannel(std::uint32_t tx_id, std::uint32_t rx_id,
                                 std::size_t max_message) {
  tp_channels_.push_back(
      std::make_unique<bsw::CanTp>(can_if_, tx_id, rx_id, max_message));
  return *tp_channels_.back();
}

support::Status Rte::BindRemoteTxTp(PortId provided, bsw::CanTp& channel) {
  if (finalized_) return support::FailedPrecondition("binding config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kSenderReceiver));
  ports_[provided.value()].remote_tx_tps.push_back(&channel);
  return support::OkStatus();
}

support::Status Rte::BindRemoteRxTp(PortId required, bsw::CanTp& channel) {
  if (finalized_) return support::FailedPrecondition("binding config after Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kSenderReceiver));
  channel.SetMessageHandler([this, required](const support::Bytes& message) {
    Deliver(required, message);
  });
  return support::OkStatus();
}

support::Status Rte::Finalize() {
  if (finalized_) return support::FailedPrecondition("Finalize called twice");
  // Create one OS task per runnable and arm timing events.
  for (Runnable& r : runnables_) {
    os::TaskConfig task_config;
    task_config.name = "rte." + swcs_[r.swc.value()].name + "." + r.config.name;
    task_config.kind = os::TaskKind::kBasic;
    task_config.priority = r.config.priority;
    task_config.max_activations = r.config.max_activations;
    task_config.execution_time = r.config.execution_time;
    task_config.body = [body = r.config.body](os::EventMask) { body(); };
    DACM_ASSIGN_OR_RETURN(r.task, os_.CreateTask(std::move(task_config)));
    if (r.config.period > 0) {
      DACM_ASSIGN_OR_RETURN(
          auto alarm, os_.CreateTaskAlarm("alarm." + r.config.name, r.task,
                                          r.config.period, r.config.period));
      (void)alarm;
    }
  }
  finalized_ = true;
  return support::OkStatus();
}

support::Status Rte::Write(PortId provided, std::span<const std::uint8_t> data) {
  if (!finalized_) return support::FailedPrecondition("Write before Finalize");
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kSenderReceiver));
  Port& port = ports_[provided.value()];
  if (data.size() > port.config.max_len) {
    return support::CapacityExceeded("payload exceeds port max_len on " +
                                     port.config.name);
  }
  ++writes_;
  for (PortId receiver : port.local_receivers) {
    Deliver(receiver, data);
  }
  for (bsw::SignalId signal : port.remote_tx_signals) {
    DACM_RETURN_IF_ERROR(com_.SendSignal(signal, data));
  }
  for (bsw::CanTp* tp : port.remote_tx_tps) {
    DACM_RETURN_IF_ERROR(tp->Send(data));
  }
  return support::OkStatus();
}

support::Result<support::Bytes> Rte::Read(PortId required) const {
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kSenderReceiver));
  const Port& port = ports_[required.value()];
  if (!port.has_value) return support::NotFound("no data on " + port.config.name);
  return port.last_value;
}

bool Rte::HasFreshData(PortId required) const {
  if (required.value() >= ports_.size()) return false;
  return ports_[required.value()].fresh;
}

support::Result<support::Bytes> Rte::ReadClearing(PortId required) {
  DACM_ASSIGN_OR_RETURN(auto value, Read(required));
  ports_[required.value()].fresh = false;
  return value;
}

support::Status Rte::RegisterServerHandler(PortId provided, ServerHandler handler) {
  DACM_RETURN_IF_ERROR(
      CheckPort(provided, PortDirection::kProvided, PortStyle::kClientServer));
  if (!handler) return support::InvalidArgument("null server handler");
  ports_[provided.value()].server_handler = std::move(handler);
  return support::OkStatus();
}

support::Result<support::Bytes> Rte::Call(PortId required,
                                          std::span<const std::uint8_t> request) {
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kClientServer));
  const Port& port = ports_[required.value()];
  if (!port.cs_server.valid()) {
    return support::FailedPrecondition("C/S port not connected: " + port.config.name);
  }
  const Port& server = ports_[port.cs_server.value()];
  if (!server.server_handler) {
    return support::Unavailable("no server handler behind " + server.config.name);
  }
  return server.server_handler(request);
}

support::Status Rte::SetPortListener(PortId required, PortListener listener) {
  DACM_RETURN_IF_ERROR(
      CheckPort(required, PortDirection::kRequired, PortStyle::kSenderReceiver));
  ports_[required.value()].listener = std::move(listener);
  return support::OkStatus();
}

support::Result<PortId> Rte::FindPort(SwcId swc, const std::string& name) const {
  if (swc.value() >= swcs_.size()) return support::NotFound("unknown SW-C");
  for (PortId pid : swcs_[swc.value()].ports) {
    if (ports_[pid.value()].config.name == name) return pid;
  }
  return support::NotFound("port " + name + " on " + swcs_[swc.value()].name);
}

support::Result<SwcId> Rte::FindSwc(const std::string& name) const {
  for (std::size_t i = 0; i < swcs_.size(); ++i) {
    if (swcs_[i].name == name) return SwcId(static_cast<std::uint32_t>(i));
  }
  return support::NotFound("SW-C: " + name);
}

const std::string& Rte::PortName(PortId port) const {
  static const std::string kUnknown = "<unknown>";
  if (port.value() >= ports_.size()) return kUnknown;
  return ports_[port.value()].config.name;
}

support::Status Rte::CheckPort(PortId id, PortDirection dir, PortStyle style) const {
  if (id.value() >= ports_.size()) return support::NotFound("unknown port");
  const Port& port = ports_[id.value()];
  if (port.config.direction != dir) {
    return support::InvalidArgument("port direction mismatch on " + port.config.name);
  }
  if (port.config.style != style) {
    return support::InvalidArgument("port style mismatch on " + port.config.name);
  }
  return support::OkStatus();
}

void Rte::Deliver(PortId required, std::span<const std::uint8_t> data) {
  Port& port = ports_[required.value()];
  if (data.size() > port.config.max_len) {
    DACM_LOG_WARN("rte") << "dropping oversize delivery on " << port.config.name;
    return;
  }
  port.last_value.assign(data.begin(), data.end());
  port.has_value = true;
  port.fresh = true;
  ++deliveries_;
  if (port.listener) port.listener(data);
  for (RunnableId rid : port.data_received_runnables) {
    (void)os_.ActivateTask(runnables_[rid.value()].task);
  }
}

}  // namespace dacm::rte
