// System integration helpers (the "system description" role).
//
// In AUTOSAR methodology, a system description maps VFB connectors that
// cross ECU boundaries onto bus messages.  These helpers perform that
// mapping for the simulated system: given two Rte instances on the same
// CAN bus, they allocate COM PDUs/signals (small fixed payloads) or CanTp
// channel pairs (variable payloads) and bind both sides, so neither SW-C
// can tell the connection is remote.
#pragma once

#include <string>

#include "rte/rte.hpp"

namespace dacm::rte {

/// Wires a small fixed-size sender-receiver connector across ECUs through
/// COM.  `can_id` must be unique on the bus; `length` is the exact payload
/// size carried (1..8 bytes).
support::Status ConnectRemoteSenderReceiver(Rte& tx_rte, bsw::Com& tx_com,
                                            PortId provided, Rte& rx_rte,
                                            bsw::Com& rx_com, PortId required,
                                            const std::string& route_name,
                                            std::uint32_t can_id, std::uint8_t length);

/// Wires a variable-size sender-receiver connector across ECUs through a
/// CanTp channel pair.  `can_id_fwd` carries the traffic; an id is consumed
/// on the bus.  Payloads up to `max_message` bytes.
support::Status ConnectRemoteTp(Rte& tx_rte, PortId provided, Rte& rx_rte,
                                PortId required, std::uint32_t can_id_fwd,
                                std::size_t max_message = 1 << 20);

/// Allocates unique CAN identifiers for system integration, low ids first
/// (highest bus priority) so allocation order expresses priority.
class CanIdAllocator {
 public:
  explicit CanIdAllocator(std::uint32_t first = 0x100) : next_(first) {}

  std::uint32_t Allocate() { return next_++; }

 private:
  std::uint32_t next_;
};

}  // namespace dacm::rte
