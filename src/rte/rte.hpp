// Runtime environment (RTE) — the realisation of the Virtual Function Bus.
//
// One Rte instance serves one ECU.  Configuration is design-time-static,
// exactly like generated AUTOSAR RTE code: software components, their
// ports, runnables and connectors are declared before Finalize(); after
// that the structure is frozen and only data flows.
//
// Communication model:
//  * sender-receiver ports with last-is-best semantics
//    (Rte::Write / Rte::Read), 1:N fan-out per provided port;
//  * client-server ports with synchronous intra-ECU calls
//    (Rte::Call / RegisterServerHandler);
//  * local connectors: direct buffer hand-off, firing data-received
//    triggers and port listeners;
//  * remote connectors: bound to COM signals (small fixed-size payloads in
//    one CAN frame) or to CanTp channels (variable-size payloads, used by
//    the PIRTE's multiplexed Type I/II ports), so an SW-C never observes
//    whether its peer is local — the VFB promise.
//
// Runnables map 1:1 onto OS basic tasks; triggers are timing events
// (periodic alarms) and data-received events (task activation when a
// required port gets data).  Middleware (the PIRTE) additionally uses port
// listeners, which fire synchronously on arrival in the same dispatch.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bsw/can_tp.hpp"
#include "bsw/com.hpp"
#include "os/os.hpp"
#include "support/bytes.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::rte {

struct SwcTag {};
struct PortTag {};
struct RunnableTag {};
using SwcId = support::StrongId<SwcTag>;
using PortId = support::StrongId<PortTag>;
using RunnableId = support::StrongId<RunnableTag>;

enum class PortDirection { kProvided, kRequired };
enum class PortStyle { kSenderReceiver, kClientServer };

/// Static description of one SW-C port.
struct PortConfig {
  std::string name;
  PortDirection direction = PortDirection::kProvided;
  PortStyle style = PortStyle::kSenderReceiver;
  /// Upper bound on payload size through this port.
  std::size_t max_len = 8;
};

/// Static description of one runnable entity.
struct RunnableConfig {
  std::string name;
  std::uint8_t priority = 1;
  sim::SimTime execution_time = 10 * sim::kMicrosecond;
  std::uint8_t max_activations = 8;
  /// Periodic timing event; 0 = no timing trigger.
  sim::SimTime period = 0;
  std::function<void()> body;
};

class Rte {
 public:
  /// The RTE sits on the ECU's OS and BSW communication stack.
  Rte(os::Os& ecu_os, bsw::CanIf& can_if, bsw::Com& com);

  Rte(const Rte&) = delete;
  Rte& operator=(const Rte&) = delete;

  // --- static configuration (before Finalize) -------------------------------

  /// Declares a software component.
  support::Result<SwcId> AddSwc(std::string name);

  /// Declares a port on `swc`.
  support::Result<PortId> AddPort(SwcId swc, PortConfig config);

  /// Declares a runnable on `swc`; a dedicated OS task is created for it at
  /// Finalize().
  support::Result<RunnableId> AddRunnable(SwcId swc, RunnableConfig config);

  /// Data-received event: activates `runnable` whenever `required_port`
  /// receives data.
  support::Status TriggerOnDataReceived(RunnableId runnable, PortId required_port);

  /// Local connector: provided sender-receiver port -> required port on the
  /// same ECU.  1:N allowed (connect repeatedly).
  support::Status ConnectLocal(PortId provided, PortId required);

  /// Local client-server connector: required C/S port -> provided C/S port
  /// on the same ECU (synchronous operation invocation).
  support::Status ConnectClientServer(PortId required, PortId provided);

  /// Binds a provided port's writes to a COM TX signal (cross-ECU, small).
  support::Status BindRemoteTxSignal(PortId provided, bsw::SignalId signal);

  /// Routes a COM RX signal into a required port (cross-ECU, small).
  support::Status BindRemoteRxSignal(PortId required, bsw::SignalId signal);

  /// Creates a CanTp channel owned by this RTE (for variable-size routes).
  bsw::CanTp& CreateTpChannel(std::uint32_t tx_id, std::uint32_t rx_id,
                              std::size_t max_message = 1 << 20);

  /// Binds a provided port's writes to a CanTp channel (cross-ECU, large).
  support::Status BindRemoteTxTp(PortId provided, bsw::CanTp& channel);

  /// Routes a CanTp channel's reassembled messages into a required port.
  support::Status BindRemoteRxTp(PortId required, bsw::CanTp& channel);

  /// Freezes the configuration: creates OS tasks and timing alarms,
  /// validates connector compatibility.
  support::Status Finalize();

  // --- runtime: sender-receiver ---------------------------------------------

  /// Writes through a provided S/R port; fans out to every connected local
  /// required port and remote binding.
  support::Status Write(PortId provided, std::span<const std::uint8_t> data);

  /// Reads the last value received on a required S/R port.  kNotFound until
  /// the first arrival.
  support::Result<support::Bytes> Read(PortId required) const;

  /// True if data arrived on the port since the last ReadClearing call.
  bool HasFreshData(PortId required) const;
  support::Result<support::Bytes> ReadClearing(PortId required);

  // --- runtime: client-server -----------------------------------------------

  using ServerHandler =
      std::function<support::Result<support::Bytes>(std::span<const std::uint8_t>)>;

  /// Registers the server operation behind a provided C/S port.
  support::Status RegisterServerHandler(PortId provided, ServerHandler handler);

  /// Synchronous call through a required C/S port (intra-ECU).
  support::Result<support::Bytes> Call(PortId required,
                                       std::span<const std::uint8_t> request);

  // --- middleware hooks -------------------------------------------------------

  using PortListener = std::function<void(std::span<const std::uint8_t>)>;

  /// Synchronous delivery callback on a required port (used by the PIRTE;
  /// fires before data-received task activations).
  support::Status SetPortListener(PortId required, PortListener listener);

  // --- introspection ----------------------------------------------------------

  support::Result<PortId> FindPort(SwcId swc, const std::string& name) const;
  support::Result<SwcId> FindSwc(const std::string& name) const;
  const std::string& PortName(PortId port) const;
  std::uint64_t writes() const { return writes_; }
  std::uint64_t deliveries() const { return deliveries_; }
  os::Os& ecu_os() { return os_; }
  bool finalized() const { return finalized_; }

 private:
  struct Port {
    SwcId swc;
    PortConfig config;
    // S/R receive state (required ports).
    support::Bytes last_value;
    bool has_value = false;
    bool fresh = false;
    // Connections (provided ports).
    std::vector<PortId> local_receivers;
    std::vector<bsw::SignalId> remote_tx_signals;
    std::vector<bsw::CanTp*> remote_tx_tps;
    // Triggers and hooks (required ports).
    std::vector<RunnableId> data_received_runnables;
    PortListener listener;
    // C/S.
    ServerHandler server_handler;
    PortId cs_server;  // resolved server port for a required C/S port
  };

  struct Swc {
    std::string name;
    std::vector<PortId> ports;
  };

  struct Runnable {
    SwcId swc;
    RunnableConfig config;
    os::TaskId task;
  };

  support::Status CheckPort(PortId id, PortDirection dir, PortStyle style) const;
  void Deliver(PortId required, std::span<const std::uint8_t> data);

  os::Os& os_;
  bsw::CanIf& can_if_;
  bsw::Com& com_;
  bool finalized_ = false;
  std::vector<Swc> swcs_;
  std::vector<Port> ports_;
  std::vector<Runnable> runnables_;
  std::vector<std::unique_ptr<bsw::CanTp>> tp_channels_;
  std::uint64_t writes_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace dacm::rte
