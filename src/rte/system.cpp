#include "rte/system.hpp"

namespace dacm::rte {

support::Status ConnectRemoteSenderReceiver(Rte& tx_rte, bsw::Com& tx_com,
                                            PortId provided, Rte& rx_rte,
                                            bsw::Com& rx_com, PortId required,
                                            const std::string& route_name,
                                            std::uint32_t can_id, std::uint8_t length) {
  DACM_ASSIGN_OR_RETURN(
      auto tx_pdu,
      tx_com.DefinePdu("pdu.tx." + route_name, can_id, length, bsw::PduDirection::kTx));
  DACM_ASSIGN_OR_RETURN(auto tx_signal,
                        tx_com.DefineSignal("sig.tx." + route_name, tx_pdu, 0, length));
  DACM_ASSIGN_OR_RETURN(
      auto rx_pdu,
      rx_com.DefinePdu("pdu.rx." + route_name, can_id, length, bsw::PduDirection::kRx));
  DACM_ASSIGN_OR_RETURN(auto rx_signal,
                        rx_com.DefineSignal("sig.rx." + route_name, rx_pdu, 0, length));
  DACM_RETURN_IF_ERROR(tx_rte.BindRemoteTxSignal(provided, tx_signal));
  DACM_RETURN_IF_ERROR(rx_rte.BindRemoteRxSignal(required, rx_signal));
  return support::OkStatus();
}

support::Status ConnectRemoteTp(Rte& tx_rte, PortId provided, Rte& rx_rte,
                                PortId required, std::uint32_t can_id_fwd,
                                std::size_t max_message) {
  // The TX side channel transmits on can_id_fwd; the RX side channel
  // reassembles from it.  The unused opposite identifiers are distinct
  // values that never appear on the bus.
  bsw::CanTp& tx_channel =
      tx_rte.CreateTpChannel(can_id_fwd, can_id_fwd | 0x400, max_message);
  bsw::CanTp& rx_channel =
      rx_rte.CreateTpChannel(can_id_fwd | 0x400, can_id_fwd, max_message);
  DACM_RETURN_IF_ERROR(tx_rte.BindRemoteTxTp(provided, tx_channel));
  DACM_RETURN_IF_ERROR(rx_rte.BindRemoteRxTp(required, rx_channel));
  return support::OkStatus();
}

}  // namespace dacm::rte
