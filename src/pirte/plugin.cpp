#include "pirte/plugin.hpp"

namespace dacm::pirte {

std::string_view PluginStateName(PluginState state) {
  switch (state) {
    case PluginState::kInstalled: return "installed";
    case PluginState::kRunning: return "running";
    case PluginState::kStopped: return "stopped";
    case PluginState::kFaulted: return "faulted";
  }
  return "?";
}

PluginInstance::PluginInstance(std::string name, std::string version,
                               vm::Program program, const PortInitContext& pic,
                               PluginHost& host, vm::VmLimits limits)
    : name_(std::move(name)), version_(std::move(version)) {
  for (const PicEntry& entry : pic.entries) {
    PluginPort port;
    port.local_index = entry.local_index;
    port.name = entry.port_name;
    port.unique_id = entry.unique_id;
    port.direction = entry.direction;
    ports_.push_back(std::move(port));
  }
  env_ = std::make_unique<Env>(host, *this);
  vm_ = std::make_unique<vm::VmInstance>(std::move(program), *env_, limits);
}

bool PluginInstance::HasEntry(const std::string& entry) const {
  return vm_->program().FindEntry(entry).ok();
}

support::Result<PluginPort*> PluginInstance::PortByLocal(std::uint8_t local_index) {
  for (PluginPort& port : ports_) {
    if (port.local_index == local_index) return &port;
  }
  return support::NotFound("plug-in port P" + std::to_string(local_index) + " on " +
                           name_);
}

support::Result<PluginPort*> PluginInstance::PortByUnique(std::uint8_t unique_id) {
  for (PluginPort& port : ports_) {
    if (port.unique_id == unique_id) return &port;
  }
  return support::NotFound("plug-in port uid " + std::to_string(unique_id) + " on " +
                           name_);
}

}  // namespace dacm::pirte
