// External Communication Manager (ECM) SW-C (paper §3.1.1, Type I in §3.1.3).
//
// The ECM *inherits from the plug-in SW-C* (it is a Pirte and can host
// plug-ins itself — the example application's COM plug-in runs here) and
// adds the communication module for the external world:
//
//  * a socket client to the pre-defined trusted server, opened during
//    initialization; the server address is part of the static (OEM)
//    configuration and cannot be altered dynamically;
//  * gateway routing: installation packages and lifecycle commands coming
//    from the server are routed to the recipient plug-in SW-C over Type I
//    ports (or handled locally when the target is the ECM's own ECU);
//    acknowledgements travel the reverse path and are forwarded to the
//    server;
//  * ECC handling: the ECM extracts the External Connection Context from
//    passing installation packages, opens the external links, and routes
//    inbound FES messages to the destination plug-in port — directly when
//    the plug-in is local, wrapped as a Type I external-data message
//    otherwise.  Outbound ECC entries turn writes to PLC-unconnected local
//    plug-in ports into FES frames.
#pragma once

#include <memory>
#include <unordered_map>

#include "pirte/pirte.hpp"
#include "pirte/protocol.hpp"
#include "sim/network.hpp"

namespace dacm::pirte {

/// One Type I channel from the ECM to a remote plug-in SW-C.
struct EcmRoute {
  std::uint32_t ecu_id = 0;
  rte::PortId out = rte::PortId::Invalid();  // provided: ECM -> plug-in SW-C
  rte::PortId in = rte::PortId::Invalid();   // required: plug-in SW-C -> ECM
};

struct EcmConfig {
  std::string server_address;  // trusted server endpoint (OEM-fixed)
  std::string vin;             // this vehicle's identity towards the server
  std::vector<EcmRoute> routes;
  /// Reconnect retry period when the server is unreachable.
  sim::SimTime reconnect_period = 500 * sim::kMillisecond;
};

struct EcmStats {
  std::uint64_t packages_routed = 0;   // forwarded to remote SW-Cs
  std::uint64_t packages_local = 0;    // installed on the ECM's own PIRTE
  std::uint64_t acks_forwarded = 0;    // remote acks relayed to the server
  std::uint64_t external_in = 0;       // FES frames received
  std::uint64_t external_out = 0;      // FES frames sent
};

class Ecm final : public Pirte {
 public:
  Ecm(rte::Rte& ecu_rte, bsw::Nvm* nvm, bsw::Dem* dem, sim::Network& network,
      PirteConfig pirte_config, EcmConfig ecm_config);

  /// Base Init + route listeners + server connection.
  support::Status Init() override;

  bool connected_to_server() const {
    return server_peer_ != nullptr && server_peer_->connected();
  }
  const EcmStats& ecm_stats() const { return ecm_stats_; }

 protected:
  void OnUnconnectedWrite(PluginInstance& plugin, PluginPort& port,
                          std::span<const std::uint8_t> data) override;
  void SendAck(const std::string& plugin_name, bool ok,
               const std::string& detail) override;

 private:
  void TryConnect();
  void OnServerMessage(const support::SharedBytes& data);
  void HandleServerPirteMessage(const PirteMessage& message);
  void OnRouteMessage(const EcmRoute& route, std::span<const std::uint8_t> data);
  void RegisterEcc(const ExternalConnectionContext& ecc);
  void EnsureExternalLink(const std::string& endpoint);
  void OnExternalFrame(const std::string& endpoint, const support::SharedBytes& data);
  support::Status SendToServer(const Envelope& envelope);
  const EcmRoute* RouteFor(std::uint32_t ecu_id) const;

  sim::Network& network_;
  EcmConfig ecm_config_;
  EcmStats ecm_stats_;
  std::shared_ptr<sim::NetPeer> server_peer_;
  std::vector<EccEntry> ecc_entries_;
  std::unordered_map<std::string, std::shared_ptr<sim::NetPeer>> external_links_;
};

}  // namespace dacm::pirte
