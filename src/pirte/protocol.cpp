#include "pirte/protocol.hpp"

#include "pirte/package.hpp"

namespace dacm::pirte {

support::Bytes Envelope::Serialize() const {
  support::ByteWriter writer;
  writer.Reserve(9 + vin.size() + message.size());
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteString(vin);
  writer.WriteBlob(message);
  return writer.Take();
}

support::Result<EnvelopeView> EnvelopeView::Parse(
    std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  EnvelopeView view;
  DACM_ASSIGN_OR_RETURN(std::uint8_t kind, reader.ReadU8());
  if (kind > 1) return support::Corrupted("bad envelope kind");
  view.kind = static_cast<Envelope::Kind>(kind);
  DACM_ASSIGN_OR_RETURN(view.vin, reader.ReadStringView());
  DACM_ASSIGN_OR_RETURN(view.message, reader.ReadBlobView());
  return view;
}

support::Result<Envelope> Envelope::Deserialize(std::span<const std::uint8_t> data) {
  DACM_ASSIGN_OR_RETURN(EnvelopeView view, EnvelopeView::Parse(data));
  Envelope envelope;
  envelope.kind = view.kind;
  envelope.vin = std::string(view.vin);
  envelope.message.assign(view.message.begin(), view.message.end());
  return envelope;
}

support::Bytes SerializeEnveloped(std::string_view vin, const PirteMessage& message) {
  const std::size_t inner = message.WireSize();
  support::ByteWriter writer;
  writer.Reserve(9 + vin.size() + inner);
  writer.WriteU8(static_cast<std::uint8_t>(Envelope::Kind::kPirteMessage));
  writer.WriteString(vin);
  writer.WriteU32(static_cast<std::uint32_t>(inner));  // message blob framing
  message.SerializeTo(writer);
  return writer.Take();
}

support::Bytes SerializeEnvelopedAckBatch(
    std::string_view vin, std::span<const BatchAckEntryView> verdicts) {
  const std::size_t payload = AckBatchWireSize(verdicts);
  const std::size_t inner = PirteMessage::kFixedWireSize + payload;
  support::ByteWriter writer;
  writer.Reserve(9 + vin.size() + inner);
  writer.WriteU8(static_cast<std::uint8_t>(Envelope::Kind::kPirteMessage));
  writer.WriteString(vin);
  writer.WriteU32(static_cast<std::uint32_t>(inner));  // message blob framing
  PirteMessage::SerializeHeaderTo(writer, MessageType::kAckBatch,
                                  /*plugin_name=*/{}, /*target_ecu=*/0,
                                  /*dest_port=*/0, /*ok=*/true, /*detail=*/{},
                                  static_cast<std::uint32_t>(payload));
  SerializeAckBatchTo(writer, verdicts);
  return writer.Take();
}

support::Bytes FesFrame::Serialize() const {
  support::ByteWriter writer;
  writer.Reserve(8 + message_id.size() + payload.size());
  writer.WriteString(message_id);
  writer.WriteBlob(payload);
  return writer.Take();
}

support::Result<FesFrame> FesFrame::Deserialize(std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  FesFrame frame;
  DACM_ASSIGN_OR_RETURN(frame.message_id, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(frame.payload, reader.ReadBlob());
  return frame;
}

}  // namespace dacm::pirte
