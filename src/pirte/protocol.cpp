#include "pirte/protocol.hpp"

namespace dacm::pirte {

support::Bytes Envelope::Serialize() const {
  support::ByteWriter writer;
  writer.WriteU8(static_cast<std::uint8_t>(kind));
  writer.WriteString(vin);
  writer.WriteBlob(message);
  return writer.Take();
}

support::Result<Envelope> Envelope::Deserialize(std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  Envelope envelope;
  DACM_ASSIGN_OR_RETURN(std::uint8_t kind, reader.ReadU8());
  if (kind > 1) return support::Corrupted("bad envelope kind");
  envelope.kind = static_cast<Kind>(kind);
  DACM_ASSIGN_OR_RETURN(envelope.vin, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(envelope.message, reader.ReadBlob());
  return envelope;
}

support::Bytes FesFrame::Serialize() const {
  support::ByteWriter writer;
  writer.WriteString(message_id);
  writer.WriteBlob(payload);
  return writer.Take();
}

support::Result<FesFrame> FesFrame::Deserialize(std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  FesFrame frame;
  DACM_ASSIGN_OR_RETURN(frame.message_id, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(frame.payload, reader.ReadBlob());
  return frame;
}

}  // namespace dacm::pirte
