// Fault protection for the exposed plug-in API (paper §3.1.1).
//
// "For safety reasons, the built-in software should monitor the exposed
// API and provide fault protection mechanisms for the critical signals."
//
// A SignalGuard wraps a Type III virtual port's outbound translation with
// an OEM-defined policy:
//
//   * structural: payload length bounds;
//   * value: for integer control signals, a [min, max] range with either
//     clamping (saturate to the nearest bound) or dropping;
//   * temporal: a minimum inter-arrival time (rate limit) per port.
//
// Violations are counted per guard and optionally reported as Dem events,
// so the vehicle's diagnostics see a misbehaving plug-in long before a
// workshop does.  The guard composes with an inner Translator (format
// conversion first, then policy on the converted value).
#pragma once

#include <memory>
#include <string>

#include "bsw/dem.hpp"
#include "pirte/virtual_port.hpp"
#include "sim/simulator.hpp"

namespace dacm::pirte {

/// What to do with a value-range violation.
enum class GuardAction : std::uint8_t {
  kClamp = 0,  // saturate into [min_value, max_value] and pass on
  kDrop = 1,   // discard the message
};

/// OEM policy for one guarded signal.
struct GuardPolicy {
  std::string name;  // diagnostic label, e.g. "WheelsReq"

  /// Payload length bounds (bytes).  Violations always drop.
  std::size_t min_len = 0;
  std::size_t max_len = SIZE_MAX;

  /// Value range for 4-byte little-endian signed control payloads.  Only
  /// checked when check_value is set and the payload is exactly 4 bytes.
  bool check_value = false;
  std::int32_t min_value = INT32_MIN;
  std::int32_t max_value = INT32_MAX;
  GuardAction on_range_violation = GuardAction::kClamp;

  /// Minimum simulated time between accepted messages; 0 = unlimited rate.
  sim::SimTime min_interval = 0;
};

struct GuardStats {
  std::uint64_t passed = 0;
  std::uint64_t clamped = 0;
  std::uint64_t dropped_len = 0;
  std::uint64_t dropped_range = 0;
  std::uint64_t dropped_rate = 0;

  std::uint64_t violations() const {
    return clamped + dropped_len + dropped_range + dropped_rate;
  }
};

/// One guard instance; create via SignalGuard::Create and install its
/// Translator() as the virtual port's translate_out.  The guard must
/// outlive the PIRTE that uses the translator (keep the shared_ptr).
class SignalGuard : public std::enable_shared_from_this<SignalGuard> {
 public:
  /// `dem` and `event` may be null/invalid for statistics-only guarding.
  static std::shared_ptr<SignalGuard> Create(sim::Simulator& simulator,
                                             GuardPolicy policy, bsw::Dem* dem,
                                             bsw::DemEventId event);

  /// The translate_out hook enforcing the policy.  Dropping is expressed
  /// as an error status (the PIRTE discards the write and counts it).
  Translator MakeTranslator(Translator inner = {});

  const GuardStats& stats() const { return stats_; }
  const GuardPolicy& policy() const { return policy_; }

 private:
  SignalGuard(sim::Simulator& simulator, GuardPolicy policy, bsw::Dem* dem,
              bsw::DemEventId event);

  support::Result<support::Bytes> Check(support::Bytes data);
  void ReportViolation();
  void ReportPass();

  sim::Simulator& simulator_;
  GuardPolicy policy_;
  bsw::Dem* dem_;
  bsw::DemEventId event_;
  GuardStats stats_;
  bool saw_message_ = false;
  sim::SimTime last_accept_ = 0;
};

}  // namespace dacm::pirte
