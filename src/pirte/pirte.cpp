#include "pirte/pirte.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace dacm::pirte {

Pirte::Pirte(rte::Rte& ecu_rte, bsw::Nvm* nvm, bsw::Dem* dem, PirteConfig config)
    : rte_(ecu_rte), config_(std::move(config)), nvm_(nvm), dem_(dem) {}

support::Status Pirte::Init() {
  if (initialized_) return support::FailedPrecondition("Pirte::Init called twice");

  // The VM task: drains the plug-in work queue at its own priority.
  os::TaskConfig task_config;
  task_config.name = "pirte." + config_.name + ".vm";
  task_config.kind = os::TaskKind::kBasic;
  task_config.priority = config_.vm_task_priority;
  task_config.max_activations = 16;
  task_config.execution_time = config_.vm_task_execution_time;
  task_config.body = [this](os::EventMask) { DrainWorkQueue(); };
  DACM_ASSIGN_OR_RETURN(vm_task_, rte_.ecu_os().CreateTask(std::move(task_config)));

  // Type I input (from the ECM).
  if (config_.type1_in.valid()) {
    DACM_RETURN_IF_ERROR(rte_.SetPortListener(
        config_.type1_in, [this](std::span<const std::uint8_t> data) {
          auto message = PirteMessage::Deserialize(data);
          if (!message.ok()) {
            DACM_LOG_WARN("pirte") << config_.name << ": undecodable Type I message: "
                                   << message.status().ToString();
            return;
          }
          OnTypeIMessage(*message);
        }));
  }

  // Virtual-port inputs (Type II demultiplexing, Type III fan-in).
  for (const VirtualPortConfig& vp : config_.virtual_ports) {
    if (!vp.swc_in.valid()) continue;
    DACM_RETURN_IF_ERROR(rte_.SetPortListener(
        vp.swc_in, [this, &vp](std::span<const std::uint8_t> data) {
          OnVirtualPortIn(vp, data);
        }));
  }

  // Plug-in step scheduler.  The alarm is created stopped and armed on
  // demand (first step-capable plug-in starts running); when a tick finds
  // nothing to step it disarms itself, so an idle PIRTE does not keep the
  // simulator's event queue busy forever.
  if (config_.step_period > 0) {
    DACM_ASSIGN_OR_RETURN(
        step_alarm_,
        rte_.ecu_os().CreateStoppedCallbackAlarm(
            "pirte." + config_.name + ".step", [this]() {
              bool queued = false;
              for (auto& [name, record] : plugins_) {
                if (record.instance->state() == PluginState::kRunning &&
                    record.instance->HasEntry("step")) {
                  Enqueue(WorkItem{WorkItem::Kind::kStep, name, 0});
                  queued = true;
                }
              }
              if (!queued) {
                step_alarm_armed_ = false;
                (void)rte_.ecu_os().CancelAlarm(step_alarm_);
              }
            }));
  }

  // Kick alarm: if Init() queued work (e.g. persisted plug-ins), the VM
  // task cannot be activated before StartOs; this one-shot does it.
  DACM_ASSIGN_OR_RETURN(auto kick,
                        rte_.ecu_os().CreateCallbackAlarm(
                            "pirte." + config_.name + ".kick",
                            [this]() {
                              if (!work_queue_.empty()) {
                                (void)rte_.ecu_os().ActivateTask(vm_task_);
                              }
                            },
                            sim::kMicrosecond, 0));
  (void)kick;

  // Diagnostics.
  if (dem_ != nullptr) {
    DACM_ASSIGN_OR_RETURN(fault_event_, dem_->DefineEvent(config_.name + ".plugin_fault"));
    DACM_ASSIGN_OR_RETURN(fuel_event_,
                          dem_->DefineEvent(config_.name + ".plugin_fuel", 3));
  }

  initialized_ = true;
  LoadPersisted();
  return support::OkStatus();
}

// --- lifecycle ---------------------------------------------------------------

support::Status Pirte::Install(const InstallationPackage& package) {
  return InstallInternal(package, /*persist=*/true, /*run_on_install=*/true);
}

support::Status Pirte::InstallInternal(const InstallationPackage& package, bool persist,
                                       bool run_on_install) {
  if (!initialized_) return support::FailedPrecondition("Install before Init");
  if (plugins_.size() >= config_.max_plugins) {
    return support::ResourceExhausted("plug-in quota reached on " + config_.name);
  }
  if (package.binary.size() > config_.max_binary_size) {
    return support::CapacityExceeded("binary exceeds quota: " + package.plugin_name);
  }
  if (plugins_.contains(package.plugin_name)) {
    return support::AlreadyExists("plug-in already installed: " + package.plugin_name);
  }
  DACM_RETURN_IF_ERROR(ValidateContexts(package));
  DACM_ASSIGN_OR_RETURN(auto program, vm::Program::Deserialize(package.binary));

  PluginRecord record;
  record.instance = std::make_unique<PluginInstance>(
      package.plugin_name, package.version, std::move(program), package.pic, *this,
      config_.vm_limits);
  record.plc = package.plc;
  record.package_bytes = package.Serialize();

  for (const PlcEntry& entry : package.plc.entries) {
    Route route;
    route.kind = entry.kind;
    route.remote_port_id = entry.remote_port_id;
    route.peer_plugin = entry.peer_plugin;
    route.peer_local_port = entry.peer_local_port;
    if (entry.kind == PlcKind::kVirtual || entry.kind == PlcKind::kVirtualRemote) {
      route.virtual_port = FindVirtualPort(entry.virtual_port);
    }
    record.routes.emplace(entry.local_port, std::move(route));
  }

  record.instance->SetState(PluginState::kRunning);
  const std::string name = package.plugin_name;
  const bool has_on_install = record.instance->HasEntry("on_install");
  plugins_.emplace(name, std::move(record));
  ++stats_.installs;
  DACM_LOG_INFO("pirte") << config_.name << ": installed " << name << " v"
                         << package.version;

  if (run_on_install && has_on_install) {
    Enqueue(WorkItem{WorkItem::Kind::kOnInstall, name, 0});
  }
  ArmStepAlarmIfNeeded();
  if (persist) Persist();
  return support::OkStatus();
}

void Pirte::ArmStepAlarmIfNeeded() {
  if (config_.step_period == 0 || step_alarm_armed_ || !step_alarm_.valid()) return;
  for (const auto& [name, record] : plugins_) {
    if (record.instance->state() == PluginState::kRunning &&
        record.instance->HasEntry("step")) {
      step_alarm_armed_ = true;
      (void)rte_.ecu_os().SetRelAlarm(step_alarm_, config_.step_period,
                                      config_.step_period);
      return;
    }
  }
}

support::Status Pirte::ValidateContexts(const InstallationPackage& package) const {
  // Unique-id clashes against already installed plug-ins (the server should
  // never produce these; a second line of defence).
  for (const PicEntry& entry : package.pic.entries) {
    for (const auto& [name, record] : plugins_) {
      for (const PluginPort& port : record.instance->ports()) {
        if (port.unique_id == entry.unique_id) {
          return support::Incompatible(
              "port unique id " + std::to_string(entry.unique_id) +
              " already taken by plug-in " + name);
        }
      }
    }
  }
  // Every PLC local port must exist in the PIC; referenced virtual ports
  // must exist in the static configuration.
  for (const PlcEntry& entry : package.plc.entries) {
    const bool in_pic =
        std::any_of(package.pic.entries.begin(), package.pic.entries.end(),
                    [&](const PicEntry& pic) { return pic.local_index == entry.local_port; });
    if (!in_pic) {
      return support::Incompatible("PLC references port P" +
                                   std::to_string(entry.local_port) + " missing from PIC");
    }
    if (entry.kind == PlcKind::kVirtual || entry.kind == PlcKind::kVirtualRemote) {
      if (FindVirtualPort(entry.virtual_port) == nullptr) {
        return support::Incompatible("PLC references unknown virtual port V" +
                                     std::to_string(entry.virtual_port));
      }
    }
  }
  return support::OkStatus();
}

support::Status Pirte::Uninstall(const std::string& plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) return support::NotFound("plug-in: " + plugin_name);
  // The paper's rule: stop before removal; on_stop gets one last chance
  // synchronously (the record disappears right after).
  if (it->second.instance->state() == PluginState::kRunning &&
      it->second.instance->HasEntry("on_stop")) {
    RunPluginEntry(*it->second.instance, "on_stop", 0);
  }
  plugins_.erase(it);
  ++stats_.uninstalls;
  Persist();
  DACM_LOG_INFO("pirte") << config_.name << ": uninstalled " << plugin_name;
  return support::OkStatus();
}

support::Status Pirte::Stop(const std::string& plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) return support::NotFound("plug-in: " + plugin_name);
  PluginInstance& plugin = *it->second.instance;
  if (plugin.state() != PluginState::kRunning) {
    return support::FailedPrecondition("plug-in not running: " + plugin_name);
  }
  if (plugin.HasEntry("on_stop")) RunPluginEntry(plugin, "on_stop", 0);
  if (plugin.state() == PluginState::kRunning) plugin.SetState(PluginState::kStopped);
  return support::OkStatus();
}

support::Status Pirte::Start(const std::string& plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) return support::NotFound("plug-in: " + plugin_name);
  PluginInstance& plugin = *it->second.instance;
  if (plugin.state() == PluginState::kRunning) {
    return support::FailedPrecondition("plug-in already running: " + plugin_name);
  }
  if (plugin.state() == PluginState::kFaulted) {
    return support::FailedPrecondition("faulted plug-in needs reinstall: " + plugin_name);
  }
  plugin.SetState(PluginState::kRunning);
  ArmStepAlarmIfNeeded();
  return support::OkStatus();
}

// --- introspection -------------------------------------------------------------

PluginInstance* Pirte::FindPlugin(const std::string& name) {
  auto it = plugins_.find(name);
  return it == plugins_.end() ? nullptr : it->second.instance.get();
}

const PluginInstance* Pirte::FindPlugin(const std::string& name) const {
  auto it = plugins_.find(name);
  return it == plugins_.end() ? nullptr : it->second.instance.get();
}

std::vector<std::string> Pirte::InstalledPluginNames() const {
  std::vector<std::string> names;
  names.reserve(plugins_.size());
  for (const auto& [name, record] : plugins_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

support::Result<support::Bytes> Pirte::ReadPluginPortByUnique(std::uint8_t unique_id) {
  for (auto& [name, record] : plugins_) {
    auto port = record.instance->PortByUnique(unique_id);
    if (port.ok()) {
      if (!(*port)->has_value) {
        return support::NotFound("no data on port uid " + std::to_string(unique_id));
      }
      return (*port)->last_value;
    }
  }
  return support::NotFound("port uid " + std::to_string(unique_id));
}

support::Status Pirte::DeliverToPluginPortByUnique(std::uint8_t unique_id,
                                                   std::span<const std::uint8_t> data) {
  for (auto& [name, record] : plugins_) {
    auto port = record.instance->PortByUnique(unique_id);
    if (port.ok()) {
      DeliverToPlugin(record, **port, data);
      return support::OkStatus();
    }
  }
  return support::NotFound("port uid " + std::to_string(unique_id));
}

// --- PluginHost ------------------------------------------------------------------

support::Result<support::Bytes> Pirte::PluginReadPort(PluginInstance& plugin,
                                                      std::uint8_t local_port) {
  DACM_ASSIGN_OR_RETURN(PluginPort * port, plugin.PortByLocal(local_port));
  port->fresh = false;
  return port->last_value;
}

support::Status Pirte::PluginWritePort(PluginInstance& plugin, std::uint8_t local_port,
                                       std::span<const std::uint8_t> data) {
  auto record_it = plugins_.find(plugin.name());
  if (record_it == plugins_.end()) {
    return support::Internal("plug-in record missing: " + plugin.name());
  }
  PluginRecord& record = record_it->second;
  DACM_ASSIGN_OR_RETURN(PluginPort * port, plugin.PortByLocal(local_port));
  port->last_value.assign(data.begin(), data.end());
  port->has_value = true;
  ++stats_.messages_routed;

  auto route_it = record.routes.find(local_port);
  if (route_it == record.routes.end() ||
      route_it->second.kind == PlcKind::kUnconnected) {
    OnUnconnectedWrite(plugin, *port, data);
    return support::OkStatus();
  }
  const Route& route = route_it->second;
  switch (route.kind) {
    case PlcKind::kVirtual: {
      const VirtualPortConfig* vp = route.virtual_port;
      if (vp == nullptr || !vp->swc_out.valid()) {
        return support::FailedPrecondition("virtual port has no outgoing SW-C port");
      }
      if (vp->translate_out) {
        auto translated = vp->translate_out(data);
        if (!translated.ok()) {
          // A kOutOfRange verdict is a *guarded drop* (paper §3.1.1 fault
          // protection): the message dies here, diagnostics were notified
          // by the guard, and the plug-in is not faulted for it.
          if (translated.status().code() == support::ErrorCode::kOutOfRange) {
            ++stats_.guard_drops;
            return support::OkStatus();
          }
          return translated.status();
        }
        return rte_.Write(vp->swc_out, *translated);
      }
      return rte_.Write(vp->swc_out, data);
    }
    case PlcKind::kVirtualRemote: {
      const VirtualPortConfig* vp = route.virtual_port;
      if (vp == nullptr || !vp->swc_out.valid()) {
        return support::FailedPrecondition("Type II virtual port has no SW-C port");
      }
      // Attach the recipient's unique port id (paper §3.1.3, Type II).
      support::Bytes tagged;
      tagged.reserve(data.size() + 1);
      tagged.push_back(route.remote_port_id);
      tagged.insert(tagged.end(), data.begin(), data.end());
      return rte_.Write(vp->swc_out, tagged);
    }
    case PlcKind::kLocalPlugin: {
      auto peer_it = plugins_.find(route.peer_plugin);
      if (peer_it == plugins_.end()) {
        return support::Unavailable("peer plug-in not installed: " + route.peer_plugin);
      }
      DACM_ASSIGN_OR_RETURN(PluginPort * peer_port,
                            peer_it->second.instance->PortByLocal(route.peer_local_port));
      DeliverToPlugin(peer_it->second, *peer_port, data);
      return support::OkStatus();
    }
    case PlcKind::kUnconnected:
      break;  // handled above
  }
  return support::OkStatus();
}

bool Pirte::PluginPortAvailable(PluginInstance& plugin, std::uint8_t local_port) {
  auto port = plugin.PortByLocal(local_port);
  return port.ok() && (*port)->fresh;
}

std::uint32_t Pirte::HostClockMs() {
  return static_cast<std::uint32_t>(rte_.ecu_os().simulator().Now() / sim::kMillisecond);
}

// --- message handling ---------------------------------------------------------

void Pirte::OnTypeIMessage(const PirteMessage& message) {
  switch (message.type) {
    case MessageType::kInstallPackage: {
      auto package = InstallationPackage::Deserialize(message.payload);
      if (!package.ok()) {
        SendAck(message.plugin_name, false, package.status().ToString());
        return;
      }
      auto status = Install(*package);
      SendAck(package->plugin_name, status.ok(), status.ToString());
      return;
    }
    case MessageType::kUninstall: {
      auto status = Uninstall(message.plugin_name);
      SendAck(message.plugin_name, status.ok(), status.ToString());
      return;
    }
    case MessageType::kStop: {
      auto status = Stop(message.plugin_name);
      SendAck(message.plugin_name, status.ok(), status.ToString());
      return;
    }
    case MessageType::kStart: {
      auto status = Start(message.plugin_name);
      SendAck(message.plugin_name, status.ok(), status.ToString());
      return;
    }
    case MessageType::kExternalData: {
      auto status = DeliverToPluginPortByUnique(message.dest_port, message.payload);
      if (!status.ok()) {
        DACM_LOG_WARN("pirte") << config_.name
                               << ": external data undeliverable: " << status.ToString();
      }
      return;
    }
    case MessageType::kAck:
    case MessageType::kAckBatch:
      // Plug-in SW-Cs do not receive acks; the ECM override handles them.
      DACM_LOG_WARN("pirte") << config_.name << ": unexpected ack";
      return;
    case MessageType::kInstallBatch:
    case MessageType::kUninstallBatch:
      // Campaign batches terminate at the ECM, which unpacks them before
      // routing; a batch on a Type I port is a protocol violation.
      DACM_LOG_WARN("pirte") << config_.name << ": unexpected install batch";
      return;
  }
}

support::Status Pirte::SendTypeI(const PirteMessage& message) {
  if (!config_.type1_out.valid()) {
    return support::FailedPrecondition("no Type I output configured on " + config_.name);
  }
  return rte_.Write(config_.type1_out, message.Serialize());
}

void Pirte::SendAck(const std::string& plugin_name, bool ok, const std::string& detail) {
  PirteMessage ack;
  ack.type = MessageType::kAck;
  ack.plugin_name = plugin_name;
  ack.target_ecu = config_.ecu_id;
  ack.ok = ok;
  ack.detail = detail;
  auto status = SendTypeI(ack);
  if (!status.ok()) {
    DACM_LOG_WARN("pirte") << config_.name << ": ack not sent: " << status.ToString();
  }
}

void Pirte::OnUnconnectedWrite(PluginInstance& plugin, PluginPort& port,
                               std::span<const std::uint8_t> data) {
  // Base behaviour: the value stays in the port buffer where the PIRTE (or
  // a test) can read it directly — the paper's "PIRTE1 will communicate
  // with them directly".
  (void)plugin;
  (void)port;
  (void)data;
}

const VirtualPortConfig* Pirte::FindVirtualPort(std::uint8_t id) const {
  for (const VirtualPortConfig& vp : config_.virtual_ports) {
    if (vp.id == id) return &vp;
  }
  return nullptr;
}

void Pirte::OnVirtualPortIn(const VirtualPortConfig& vp,
                            std::span<const std::uint8_t> data) {
  if (vp.kind == VirtualPortKind::kTypeII) {
    // Strip the recipient unique port id and demultiplex.
    if (data.empty()) return;
    const std::uint8_t unique_id = data[0];
    ++stats_.type2_rx;
    auto status = DeliverToPluginPortByUnique(unique_id, data.subspan(1));
    if (!status.ok()) {
      DACM_LOG_WARN("pirte") << config_.name << ": Type II recipient missing (uid "
                             << static_cast<int>(unique_id) << ")";
    }
    return;
  }

  // Type III: translate, then fan out to every plug-in port PLC-linked to
  // this virtual port.
  support::Bytes translated;
  std::span<const std::uint8_t> payload = data;
  if (vp.translate_in) {
    auto result = vp.translate_in(data);
    if (!result.ok()) {
      DACM_LOG_WARN("pirte") << config_.name << ": translation failed on " << vp.name;
      return;
    }
    translated = std::move(*result);
    payload = translated;
  }
  ++stats_.type3_rx;
  for (auto& [name, record] : plugins_) {
    for (const PlcEntry& entry : record.plc.entries) {
      if (entry.kind != PlcKind::kVirtual || entry.virtual_port != vp.id) continue;
      auto port = record.instance->PortByLocal(entry.local_port);
      if (!port.ok() || (*port)->direction != PluginPortDirection::kRequired) continue;
      DeliverToPlugin(record, **port, payload);
    }
  }
}

void Pirte::DeliverToPlugin(PluginRecord& record, PluginPort& port,
                            std::span<const std::uint8_t> data) {
  port.last_value.assign(data.begin(), data.end());
  port.has_value = true;
  port.fresh = true;
  if (record.instance->state() != PluginState::kRunning) return;
  if (record.instance->HasEntry("on_data")) {
    Enqueue(WorkItem{WorkItem::Kind::kOnData, record.instance->name(),
                     port.local_index});
  }
}

void Pirte::Enqueue(WorkItem item) {
  work_queue_.push_back(std::move(item));
  if (rte_.ecu_os().started()) {
    (void)rte_.ecu_os().ActivateTask(vm_task_);
  }
}

void Pirte::DrainWorkQueue() {
  if (alive_hook_) alive_hook_();
  // Drain a bounded batch per activation so one flood cannot monopolise
  // even the VM task's own activations.
  constexpr std::size_t kBatch = 32;
  std::size_t processed = 0;
  while (!work_queue_.empty() && processed < kBatch) {
    WorkItem item = std::move(work_queue_.front());
    work_queue_.pop_front();
    ++processed;
    auto it = plugins_.find(item.plugin);
    if (it == plugins_.end()) continue;  // uninstalled while queued
    PluginInstance& plugin = *it->second.instance;
    switch (item.kind) {
      case WorkItem::Kind::kOnInstall:
        RunPluginEntry(plugin, "on_install", 0);
        break;
      case WorkItem::Kind::kOnData:
        if (plugin.state() == PluginState::kRunning) {
          RunPluginEntry(plugin, "on_data", item.local_port);
        }
        break;
      case WorkItem::Kind::kStep:
        if (plugin.state() == PluginState::kRunning) {
          RunPluginEntry(plugin, "step", 0);
        }
        break;
      case WorkItem::Kind::kOnStop:
        RunPluginEntry(plugin, "on_stop", 0);
        break;
    }
  }
  if (!work_queue_.empty()) {
    (void)rte_.ecu_os().ActivateTask(vm_task_);
  }
}

void Pirte::RunPluginEntry(PluginInstance& plugin, const std::string& entry,
                           std::uint8_t local_port) {
  if (!plugin.HasEntry(entry)) return;
  ++stats_.vm_activations;
  // Convention: register 0 carries the triggering local port index.
  plugin.vm().SetRegister(0, local_port);
  auto result = plugin.vm().Run(entry);
  if (!result.ok()) {
    ReportFault(plugin, result.status().ToString());
    return;
  }
  switch (result->outcome) {
    case vm::ExecOutcome::kHalted:
      if (dem_ != nullptr && fault_event_.valid()) {
        (void)dem_->ReportEvent(fault_event_, bsw::DemEventStatus::kPassed);
      }
      break;
    case vm::ExecOutcome::kFuelExhausted:
      ++stats_.vm_fuel_exhaustions;
      if (dem_ != nullptr && fuel_event_.valid()) {
        (void)dem_->ReportEvent(fuel_event_, bsw::DemEventStatus::kFailed);
      }
      break;
    case vm::ExecOutcome::kTrap:
      ReportFault(plugin, "trap " + std::to_string(result->trap_code));
      break;
    case vm::ExecOutcome::kFault:
      ReportFault(plugin, result->fault);
      break;
  }
}

void Pirte::ReportFault(PluginInstance& plugin, const std::string& what) {
  ++stats_.vm_faults;
  plugin.CountFault();
  plugin.SetLastFault(what);
  plugin.SetState(PluginState::kFaulted);
  if (dem_ != nullptr && fault_event_.valid()) {
    (void)dem_->ReportEvent(fault_event_, bsw::DemEventStatus::kFailed);
  }
  DACM_LOG_WARN("pirte") << config_.name << ": plug-in " << plugin.name()
                         << " faulted: " << what;
}

// --- persistence ---------------------------------------------------------------

void Pirte::Persist() {
  if (nvm_ == nullptr || !config_.nv_block.valid()) return;
  support::ByteWriter writer;
  writer.WriteVarU32(static_cast<std::uint32_t>(plugins_.size()));
  for (const auto& name : InstalledPluginNames()) {
    writer.WriteBlob(plugins_.at(name).package_bytes);
  }
  auto status = nvm_->WriteBlock(config_.nv_block, writer.bytes());
  if (!status.ok()) {
    DACM_LOG_WARN("pirte") << config_.name << ": persist failed: " << status.ToString();
  }
}

void Pirte::LoadPersisted() {
  if (nvm_ == nullptr || !config_.nv_block.valid()) return;
  auto block = nvm_->ReadBlock(config_.nv_block);
  if (!block.ok()) return;  // never written or corrupted: start empty
  support::ByteReader reader(*block);
  auto count = reader.ReadVarU32();
  if (!count.ok()) return;
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto blob = reader.ReadBlob();
    if (!blob.ok()) return;
    auto package = InstallationPackage::Deserialize(*blob);
    if (!package.ok()) continue;
    auto status = InstallInternal(*package, /*persist=*/false, /*run_on_install=*/true);
    if (!status.ok()) {
      DACM_LOG_WARN("pirte") << config_.name
                             << ": persisted plug-in reinstall failed: "
                             << status.ToString();
    }
  }
}

}  // namespace dacm::pirte
