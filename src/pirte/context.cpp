#include "pirte/context.hpp"

namespace dacm::pirte {

void PortInitContext::SerializeTo(support::ByteWriter& writer) const {
  std::size_t need = 5;
  for (const PicEntry& entry : entries) need += 7 + entry.port_name.size();
  writer.Reserve(need);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const PicEntry& entry : entries) {
    writer.WriteU8(entry.local_index);
    writer.WriteString(entry.port_name);
    writer.WriteU8(entry.unique_id);
    writer.WriteU8(static_cast<std::uint8_t>(entry.direction));
  }
}

support::Result<PortInitContext> PortInitContext::DeserializeFrom(
    support::ByteReader& reader) {
  PortInitContext pic;
  DACM_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadVarU32());
  if (count > 256) return support::Corrupted("PIC too large");
  pic.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PicEntry entry;
    DACM_ASSIGN_OR_RETURN(entry.local_index, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(entry.port_name, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(entry.unique_id, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(std::uint8_t dir, reader.ReadU8());
    if (dir > 1) return support::Corrupted("bad PIC direction");
    entry.direction = static_cast<PluginPortDirection>(dir);
    pic.entries.push_back(std::move(entry));
  }
  return pic;
}

void PortLinkingContext::SerializeTo(support::ByteWriter& writer) const {
  std::size_t need = 5;
  for (const PlcEntry& entry : entries) need += 9 + entry.peer_plugin.size();
  writer.Reserve(need);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const PlcEntry& entry : entries) {
    writer.WriteU8(entry.local_port);
    writer.WriteU8(static_cast<std::uint8_t>(entry.kind));
    writer.WriteU8(entry.virtual_port);
    writer.WriteU8(entry.remote_port_id);
    writer.WriteString(entry.peer_plugin);
    writer.WriteU8(entry.peer_local_port);
  }
}

support::Result<PortLinkingContext> PortLinkingContext::DeserializeFrom(
    support::ByteReader& reader) {
  PortLinkingContext plc;
  DACM_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadVarU32());
  if (count > 256) return support::Corrupted("PLC too large");
  plc.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PlcEntry entry;
    DACM_ASSIGN_OR_RETURN(entry.local_port, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(std::uint8_t kind, reader.ReadU8());
    if (kind > 3) return support::Corrupted("bad PLC kind");
    entry.kind = static_cast<PlcKind>(kind);
    DACM_ASSIGN_OR_RETURN(entry.virtual_port, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(entry.remote_port_id, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(entry.peer_plugin, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(entry.peer_local_port, reader.ReadU8());
    plc.entries.push_back(std::move(entry));
  }
  return plc;
}

void ExternalConnectionContext::SerializeTo(support::ByteWriter& writer) const {
  std::size_t need = 5;
  for (const EccEntry& entry : entries) {
    need += 14 + entry.endpoint.size() + entry.message_id.size();
  }
  writer.Reserve(need);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const EccEntry& entry : entries) {
    writer.WriteU8(static_cast<std::uint8_t>(entry.direction));
    writer.WriteString(entry.endpoint);
    writer.WriteString(entry.message_id);
    writer.WriteU32(entry.target_ecu);
    writer.WriteU8(entry.port_unique_id);
  }
}

support::Result<ExternalConnectionContext> ExternalConnectionContext::DeserializeFrom(
    support::ByteReader& reader) {
  ExternalConnectionContext ecc;
  DACM_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadVarU32());
  if (count > 256) return support::Corrupted("ECC too large");
  ecc.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EccEntry entry;
    DACM_ASSIGN_OR_RETURN(std::uint8_t dir, reader.ReadU8());
    if (dir > 1) return support::Corrupted("bad ECC direction");
    entry.direction = static_cast<EccDirection>(dir);
    DACM_ASSIGN_OR_RETURN(entry.endpoint, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(entry.message_id, reader.ReadString());
    DACM_ASSIGN_OR_RETURN(entry.target_ecu, reader.ReadU32());
    DACM_ASSIGN_OR_RETURN(entry.port_unique_id, reader.ReadU8());
    ecc.entries.push_back(std::move(entry));
  }
  return ecc;
}

}  // namespace dacm::pirte
