// Installation packages and Type I / server wire messages.
//
// Two message layers share these definitions:
//
//  * PirteMessage — what travels on Type I SW-C ports between the ECM and
//    the plug-in SW-Cs (and, embedded in FesFrames, between the server /
//    external devices and the ECM).  The message type id is the first
//    byte; 0 is the installation package, as in the paper.
//
//  * InstallationPackage — plug-in name/version + PIC + PLC (+ ECC for the
//    ECM) + the PVM binary, CRC-protected as one unit.
#pragma once

#include <string>
#include <vector>

#include "pirte/context.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::pirte {

/// Type-I message type ids (first byte on the wire).
enum class MessageType : std::uint8_t {
  kInstallPackage = 0,  // paper: "e.g. 0 for the installation package"
  kUninstall = 1,
  kAck = 2,
  kExternalData = 3,  // external world -> plug-in port
  kStop = 4,          // lifecycle: stop a running plug-in (pre-update state rule)
  kStart = 5,         // lifecycle: (re)start a stopped plug-in
  kInstallBatch = 6,  // campaign push: one message carrying an app's packages
  kAckBatch = 7,      // one acknowledgement covering a whole received batch
  kUninstallBatch = 8,  // rollback push: the kInstallBatch framing in reverse
};

/// The complete artifact the server assembles per (plug-in, vehicle).
struct InstallationPackage {
  std::string plugin_name;
  std::string version;
  PortInitContext pic;
  PortLinkingContext plc;
  ExternalConnectionContext ecc;  // empty unless externally communicating
  support::Bytes binary;          // serialized vm::Program

  support::Bytes Serialize() const;
  static support::Result<InstallationPackage> Deserialize(
      std::span<const std::uint8_t> data);
};

/// One message on a Type I port.
struct PirteMessage {
  MessageType type = MessageType::kAck;
  std::string plugin_name;
  std::uint32_t target_ecu = 0;   // recipient ECU (routing key in the ECM)
  std::uint8_t dest_port = 0;     // SW-C-unique port id (kExternalData)
  bool ok = true;                 // kAck payload
  std::string detail;             // kAck diagnostic / kExternalData message id
  support::Bytes payload;         // package bytes / external data

  support::Bytes Serialize() const;
  static support::Result<PirteMessage> Deserialize(std::span<const std::uint8_t> data);

  // The wire layout, defined once: every serializer (member Serialize,
  // the one-pass envelope framing, batch assembly) delegates here so the
  // field sequence and the length arithmetic cannot diverge.
  static constexpr std::size_t kFixedWireSize = 19;  // scalars + 3 length prefixes
  static std::size_t WireSizeOf(std::string_view plugin_name,
                                std::string_view detail,
                                std::span<const std::uint8_t> payload) {
    return kFixedWireSize + plugin_name.size() + detail.size() + payload.size();
  }
  std::size_t WireSize() const {
    return WireSizeOf(plugin_name, detail, payload);
  }
  /// Appends the serialized fields to `writer` (no framing around them).
  static void SerializeFieldsTo(support::ByteWriter& writer, MessageType type,
                                std::string_view plugin_name,
                                std::uint32_t target_ecu, std::uint8_t dest_port,
                                bool ok, std::string_view detail,
                                std::span<const std::uint8_t> payload);
  /// Everything up to and including the payload length prefix; the caller
  /// writes exactly `payload_size` payload bytes right after.  Lets
  /// one-pass framers emit a computed payload without first materializing
  /// it in its own buffer.
  static void SerializeHeaderTo(support::ByteWriter& writer, MessageType type,
                                std::string_view plugin_name,
                                std::uint32_t target_ecu, std::uint8_t dest_port,
                                bool ok, std::string_view detail,
                                std::uint32_t payload_size);
  void SerializeTo(support::ByteWriter& writer) const {
    SerializeFieldsTo(writer, type, plugin_name, target_ecu, dest_port, ok,
                      detail, payload);
  }
};

/// Zero-copy view of a serialized PirteMessage (the EnvelopeView idiom):
/// string/blob fields alias the parsed buffer, so the view must not
/// outlive it.  Dispatch sites that route on type/plugin and drop the
/// message before returning use this to skip three allocations.
struct PirteMessageView {
  MessageType type = MessageType::kAck;
  std::string_view plugin_name;
  std::uint32_t target_ecu = 0;
  std::uint8_t dest_port = 0;
  bool ok = true;
  std::string_view detail;
  std::span<const std::uint8_t> payload;

  static support::Result<PirteMessageView> Parse(std::span<const std::uint8_t> data);
};

// --- campaign batches --------------------------------------------------------
//
// A fleet campaign pushes ONE kInstallBatch message per vehicle instead of
// one round-trip per plug-in; its payload is a varint count followed by
// the serialized per-plug-in kInstallPackage messages.  The vehicle
// answers with a single kAckBatch whose payload carries one verdict per
// plug-in.

/// One per-plug-in install inside a batch.  The views alias the caller's
/// buffers (typically the InstalledAPP table's recorded package bytes), so
/// batch assembly costs exactly one pass over the payload bytes.
struct InstallBatchEntry {
  std::string_view plugin_name;
  std::uint32_t target_ecu = 0;
  std::span<const std::uint8_t> package_bytes;
};

/// Builds the payload of a kInstallBatch message: each entry is framed as
/// a serialized kInstallPackage PirteMessage, written in place.
support::Bytes SerializeInstallBatch(std::span<const InstallBatchEntry> entries);

/// One per-plug-in uninstall inside a kUninstallBatch payload.  No package
/// bytes: the plug-in name plus its placement is all an uninstall carries.
struct UninstallBatchEntry {
  std::string_view plugin_name;
  std::uint32_t target_ecu = 0;
};

/// Builds the payload of a kUninstallBatch message — the kInstallBatch
/// framing in reverse: each entry is a serialized kUninstall PirteMessage,
/// so ForEachInBatch walks both batch shapes with the same code.  Rollback
/// campaigns push one of these per vehicle instead of a round-trip per
/// plug-in.
support::Bytes SerializeUninstallBatch(std::span<const UninstallBatchEntry> entries);

/// Walks a kInstallBatch payload without copying: `fn` (returning
/// support::Status) receives a view of each embedded serialized
/// PirteMessage.  Stops on malformed input or the first error from `fn`.
/// A template so the per-entry call stays direct (no std::function) on
/// the batch hot paths.
template <typename Fn>
support::Status ForEachInBatch(std::span<const std::uint8_t> payload, Fn&& fn) {
  support::ByteReader reader(payload);
  DACM_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadVarU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    DACM_ASSIGN_OR_RETURN(std::span<const std::uint8_t> entry,
                          reader.ReadBlobView());
#if defined(__GNUC__) || defined(__clang__)
    // Entries sit KiBs apart (each embeds a package binary), so each
    // entry's header is a fresh cache/TLB miss on a campaign-sized batch.
    // Kick off the next entry's header load before parsing this one; the
    // fleet-delivery profile is memory-latency-bound right here.
    if (i + 1 < count && reader.remaining() >= 4) {
      __builtin_prefetch(entry.data() + entry.size() + 4);
    }
#endif
    DACM_RETURN_IF_ERROR(fn(entry));
  }
  return support::OkStatus();
}

/// One per-plug-in verdict inside a kAckBatch payload.
struct BatchAckEntry {
  std::string plugin;
  bool ok = true;
  std::string detail;
};

support::Bytes SerializeAckBatch(std::span<const BatchAckEntry> entries);
support::Result<std::vector<BatchAckEntry>> DeserializeAckBatch(
    std::span<const std::uint8_t> payload);

/// View form of a verdict: aliases the caller's storage.  Fleet endpoints
/// assemble thousands of ack batches per campaign straight from parsed
/// batch views, so the owning form above would mean two string copies per
/// plug-in on the vehicle-side hot path.
struct BatchAckEntryView {
  std::string_view plugin;
  bool ok = true;
  std::string_view detail;
};

/// Exact serialized size of a kAckBatch payload — lets one-pass framers
/// (SerializeEnvelopedAckBatch) size the whole wire buffer up front.
std::size_t AckBatchWireSize(std::span<const BatchAckEntryView> entries);

/// Appends the kAckBatch payload (varint count + verdicts) to `writer`.
void SerializeAckBatchTo(support::ByteWriter& writer,
                         std::span<const BatchAckEntryView> entries);

/// Zero-copy walk of a kAckBatch payload: `fn(plugin, ok, detail)` per
/// verdict, the views aliasing `payload`.  The server's hot ack path —
/// thousands of fleet acknowledgements per campaign — uses this to stay
/// allocation-free, hence a template rather than std::function.
template <typename Fn>
support::Status ForEachAckInBatch(std::span<const std::uint8_t> payload, Fn&& fn) {
  support::ByteReader reader(payload);
  DACM_ASSIGN_OR_RETURN(std::uint32_t count, reader.ReadVarU32());
  for (std::uint32_t i = 0; i < count; ++i) {
    DACM_ASSIGN_OR_RETURN(std::string_view plugin, reader.ReadStringView());
    DACM_ASSIGN_OR_RETURN(std::uint8_t ok, reader.ReadU8());
    DACM_ASSIGN_OR_RETURN(std::string_view detail, reader.ReadStringView());
    fn(plugin, ok != 0, detail);
  }
  return support::OkStatus();
}

}  // namespace dacm::pirte
