// Installation packages and Type I / server wire messages.
//
// Two message layers share these definitions:
//
//  * PirteMessage — what travels on Type I SW-C ports between the ECM and
//    the plug-in SW-Cs (and, embedded in FesFrames, between the server /
//    external devices and the ECM).  The message type id is the first
//    byte; 0 is the installation package, as in the paper.
//
//  * InstallationPackage — plug-in name/version + PIC + PLC (+ ECC for the
//    ECM) + the PVM binary, CRC-protected as one unit.
#pragma once

#include <string>

#include "pirte/context.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::pirte {

/// Type-I message type ids (first byte on the wire).
enum class MessageType : std::uint8_t {
  kInstallPackage = 0,  // paper: "e.g. 0 for the installation package"
  kUninstall = 1,
  kAck = 2,
  kExternalData = 3,  // external world -> plug-in port
  kStop = 4,          // lifecycle: stop a running plug-in (pre-update state rule)
  kStart = 5,         // lifecycle: (re)start a stopped plug-in
};

/// The complete artifact the server assembles per (plug-in, vehicle).
struct InstallationPackage {
  std::string plugin_name;
  std::string version;
  PortInitContext pic;
  PortLinkingContext plc;
  ExternalConnectionContext ecc;  // empty unless externally communicating
  support::Bytes binary;          // serialized vm::Program

  support::Bytes Serialize() const;
  static support::Result<InstallationPackage> Deserialize(
      std::span<const std::uint8_t> data);
};

/// One message on a Type I port.
struct PirteMessage {
  MessageType type = MessageType::kAck;
  std::string plugin_name;
  std::uint32_t target_ecu = 0;   // recipient ECU (routing key in the ECM)
  std::uint8_t dest_port = 0;     // SW-C-unique port id (kExternalData)
  bool ok = true;                 // kAck payload
  std::string detail;             // kAck diagnostic / kExternalData message id
  support::Bytes payload;         // package bytes / external data

  support::Bytes Serialize() const;
  static support::Result<PirteMessage> Deserialize(std::span<const std::uint8_t> data);
};

}  // namespace dacm::pirte
