// Plug-in configuration contexts (paper §3.1.2, §3.2.2).
//
// A context ships with the plug-in binaries inside the installation
// package and tells the receiving PIRTE how to wire the new plug-in:
//
//  * Port Initialization Context (PIC) — maps the developer-chosen port
//    names / local indices to SW-C-scope *unique* port ids assigned by the
//    trusted server (which knows which ids the already-installed plug-ins
//    occupy);
//  * Port Linking Context (PLC) — per plug-in port, the connection to
//    establish: none (the PIRTE itself reads/writes the port directly,
//    written "P0-" in the paper), a virtual port ("P3-V5"), a virtual port
//    with a remote recipient port id attached ("P2-V0.P0" — Type II
//    multiplexing), or a direct link to another plug-in port on the same
//    SW-C;
//  * External Connection Context (ECC) — consumed by the ECM only:
//    external endpoint, message id, and in-vehicle routing (recipient ECU
//    + plug-in port).  Outbound entries (vehicle -> external world) are an
//    extension the FES examples use.
#pragma once

#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::pirte {

/// Direction of a plug-in port as the developer declared it.
enum class PluginPortDirection : std::uint8_t { kRequired = 0, kProvided = 1 };

/// One PIC entry: local index (as referenced by the plug-in bytecode) and
/// developer-visible name, bound to the SW-C-unique id the server assigned.
struct PicEntry {
  std::uint8_t local_index = 0;
  std::string port_name;
  std::uint8_t unique_id = 0;
  PluginPortDirection direction = PluginPortDirection::kRequired;
};

struct PortInitContext {
  std::vector<PicEntry> entries;

  void SerializeTo(support::ByteWriter& writer) const;
  static support::Result<PortInitContext> DeserializeFrom(support::ByteReader& reader);
};

/// Connection kind of one PLC entry.
enum class PlcKind : std::uint8_t {
  kUnconnected = 0,    // "P0-": PIRTE communicates with the port directly
  kVirtual = 1,        // "P3-V5": plain virtual-port connection
  kVirtualRemote = 2,  // "P2-V0.P0": Type II link, recipient port id attached
  kLocalPlugin = 3,    // direct link to a peer plug-in port on this SW-C
};

struct PlcEntry {
  std::uint8_t local_port = 0;  // P#, plug-in-local index
  PlcKind kind = PlcKind::kUnconnected;
  std::uint8_t virtual_port = 0;    // V# (vehicle-scope id), for kVirtual*
  std::uint8_t remote_port_id = 0;  // recipient SW-C-unique id, for kVirtualRemote
  std::string peer_plugin;          // for kLocalPlugin
  std::uint8_t peer_local_port = 0; // for kLocalPlugin
};

struct PortLinkingContext {
  std::vector<PlcEntry> entries;

  void SerializeTo(support::ByteWriter& writer) const;
  static support::Result<PortLinkingContext> DeserializeFrom(support::ByteReader& reader);
};

enum class EccDirection : std::uint8_t { kInbound = 0, kOutbound = 1 };

/// One ECC entry.  Inbound: messages tagged `message_id` arriving from
/// `endpoint` are routed to plug-in port `port_unique_id` on `target_ecu`.
/// Outbound: writes to that port are sent to `endpoint` tagged with
/// `message_id`.
struct EccEntry {
  EccDirection direction = EccDirection::kInbound;
  std::string endpoint;    // e.g. "111.22.33.44:56789"
  std::string message_id;  // e.g. "Wheels"
  std::uint32_t target_ecu = 0;
  std::uint8_t port_unique_id = 0;
};

struct ExternalConnectionContext {
  std::vector<EccEntry> entries;

  bool empty() const { return entries.empty(); }

  void SerializeTo(support::ByteWriter& writer) const;
  static support::Result<ExternalConnectionContext> DeserializeFrom(
      support::ByteReader& reader);
};

}  // namespace dacm::pirte
