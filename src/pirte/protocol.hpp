// Wire protocol between the trusted server, the ECM, and external devices.
//
//  * Envelope — server <-> ECM framing: a Hello (VIN announcement, sent by
//    the ECM right after the socket connect) or an embedded PirteMessage
//    (installation package / lifecycle command / ack).
//  * FesFrame — external device <-> ECM framing for federated-embedded-
//    system traffic: a message id (matched against ECC entries, e.g.
//    "Wheels" / "Speed") plus an opaque payload.
#pragma once

#include <string>

#include "pirte/package.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::pirte {

struct Envelope {
  enum class Kind : std::uint8_t { kHello = 0, kPirteMessage = 1 };

  Kind kind = Kind::kHello;
  std::string vin;          // kHello
  support::Bytes message;   // kPirteMessage: serialized PirteMessage

  support::Bytes Serialize() const;
  static support::Result<Envelope> Deserialize(std::span<const std::uint8_t> data);
};

/// Zero-copy view of a serialized Envelope: `vin` and `message` alias the
/// parsed buffer, so the view must not outlive it.  Receive handlers that
/// inspect an envelope and drop it before returning (server and ECM
/// dispatch) use this to skip two allocations per message.
struct EnvelopeView {
  Envelope::Kind kind = Envelope::Kind::kHello;
  std::string_view vin;
  std::span<const std::uint8_t> message;

  static support::Result<EnvelopeView> Parse(std::span<const std::uint8_t> data);
};

struct FesFrame {
  std::string message_id;  // e.g. "Wheels"
  support::Bytes payload;

  support::Bytes Serialize() const;
  static support::Result<FesFrame> Deserialize(std::span<const std::uint8_t> data);
};

/// One-pass framing of a kPirteMessage envelope: writes the envelope
/// header and the inner message fields into a single sized buffer, instead
/// of serializing the message and copying it into Envelope::message.  The
/// server's Pusher uses this — campaign payloads run to tens of KiB per
/// vehicle, so each saved pass is measurable.
support::Bytes SerializeEnveloped(std::string_view vin, const PirteMessage& message);

/// One-pass framing of a vehicle's whole campaign answer: envelope header,
/// kAckBatch message header and every verdict, in one sized buffer.  The
/// vehicle side of a fleet sends exactly one of these per batch push, so
/// the two intermediate buffers the generic path needs (payload, inner
/// message) are worth skipping.
support::Bytes SerializeEnvelopedAckBatch(
    std::string_view vin, std::span<const BatchAckEntryView> verdicts);

}  // namespace dacm::pirte
