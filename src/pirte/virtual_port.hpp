// Virtual ports (paper §3.1.2, §3.1.3).
//
// Virtual ports are the static API the OEM exposes to plug-ins: each one
// maps a PIRTE-level endpoint onto SW-C ports, with an optional format
// translation in each direction ("the plug-in and SW-C ports can have
// completely different formats, as long as the PIRTE is able to translate
// between these formats in its virtual ports").
//
// The kind decides the PIRTE's handling:
//  * Type II — a bidirectional channel to a peer plug-in SW-C; outgoing
//    data gets the recipient's unique port id attached, incoming data has
//    it stripped and demultiplexed (any number of plug-in connections over
//    one static SW-C port pair);
//  * Type III — a unidirectional mapping to built-in software; payloads
//    pass translated but otherwise unchanged.
// (Type I channels are configured separately on the PIRTE/ECM because the
// PIRTE itself, not a plug-in, terminates them.)
#pragma once

#include <functional>
#include <string>

#include "rte/rte.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::pirte {

enum class VirtualPortKind : std::uint8_t { kTypeII = 2, kTypeIII = 3 };

/// Optional payload translation (plug-in format <-> SW-C format).
using Translator =
    std::function<support::Result<support::Bytes>(std::span<const std::uint8_t>)>;

struct VirtualPortConfig {
  std::uint8_t id = 0;  // vehicle-scope V# (assigned by the OEM)
  std::string name;     // e.g. "WheelsReq"
  VirtualPortKind kind = VirtualPortKind::kTypeIII;
  /// SW-C port for plug-in -> system flow (invalid if none).
  rte::PortId swc_out = rte::PortId::Invalid();
  /// SW-C port for system -> plug-in flow (invalid if none).
  rte::PortId swc_in = rte::PortId::Invalid();
  /// Translation applied on the way out / in (identity if empty).
  Translator translate_out;
  Translator translate_in;
};

}  // namespace dacm::pirte
