#include "pirte/guard.hpp"

#include <utility>

#include "support/log.hpp"

namespace dacm::pirte {

std::shared_ptr<SignalGuard> SignalGuard::Create(sim::Simulator& simulator,
                                                 GuardPolicy policy, bsw::Dem* dem,
                                                 bsw::DemEventId event) {
  return std::shared_ptr<SignalGuard>(
      new SignalGuard(simulator, std::move(policy), dem, event));
}

SignalGuard::SignalGuard(sim::Simulator& simulator, GuardPolicy policy,
                         bsw::Dem* dem, bsw::DemEventId event)
    : simulator_(simulator), policy_(std::move(policy)), dem_(dem), event_(event) {}

Translator SignalGuard::MakeTranslator(Translator inner) {
  // The returned closure keeps the guard alive through the PIRTE's static
  // configuration.
  auto self = shared_from_this();
  return [self, inner = std::move(inner)](std::span<const std::uint8_t> data)
             -> support::Result<support::Bytes> {
    support::Bytes converted;
    if (inner) {
      DACM_ASSIGN_OR_RETURN(converted, inner(data));
    } else {
      converted.assign(data.begin(), data.end());
    }
    return self->Check(std::move(converted));
  };
}

support::Result<support::Bytes> SignalGuard::Check(support::Bytes data) {
  // Structural: length bounds.
  if (data.size() < policy_.min_len || data.size() > policy_.max_len) {
    ++stats_.dropped_len;
    ReportViolation();
    return support::OutOfRange(policy_.name + ": payload length " +
                               std::to_string(data.size()) + " outside policy");
  }

  // Temporal: rate limit on accepted messages.
  if (policy_.min_interval > 0 && saw_message_ &&
      simulator_.Now() - last_accept_ < policy_.min_interval) {
    ++stats_.dropped_rate;
    ReportViolation();
    return support::OutOfRange(policy_.name + ": rate limit");
  }

  // Value: 4-byte LE signed control range.
  if (policy_.check_value && data.size() == 4) {
    support::ByteReader reader(data);
    const std::int32_t value = *reader.ReadI32();
    if (value < policy_.min_value || value > policy_.max_value) {
      if (policy_.on_range_violation == GuardAction::kDrop) {
        ++stats_.dropped_range;
        ReportViolation();
        return support::OutOfRange(policy_.name + ": value " +
                                   std::to_string(value) + " outside [" +
                                   std::to_string(policy_.min_value) + ", " +
                                   std::to_string(policy_.max_value) + "]");
      }
      const std::int32_t clamped =
          value < policy_.min_value ? policy_.min_value : policy_.max_value;
      support::ByteWriter writer;
      writer.WriteI32(clamped);
      data = writer.Take();
      ++stats_.clamped;
      ReportViolation();
      saw_message_ = true;
      last_accept_ = simulator_.Now();
      return data;
    }
  }

  ++stats_.passed;
  ReportPass();
  saw_message_ = true;
  last_accept_ = simulator_.Now();
  return data;
}

void SignalGuard::ReportViolation() {
  DACM_LOG_WARN("guard") << policy_.name << ": violation #"
                         << stats_.violations();
  if (dem_ != nullptr && event_.valid()) {
    (void)dem_->ReportEvent(event_, bsw::DemEventStatus::kFailed);
  }
}

void SignalGuard::ReportPass() {
  if (dem_ != nullptr && event_.valid()) {
    (void)dem_->ReportEvent(event_, bsw::DemEventStatus::kPassed);
  }
}

}  // namespace dacm::pirte
