#include "pirte/ecm.hpp"

#include "support/log.hpp"

namespace dacm::pirte {

Ecm::Ecm(rte::Rte& ecu_rte, bsw::Nvm* nvm, bsw::Dem* dem, sim::Network& network,
         PirteConfig pirte_config, EcmConfig ecm_config)
    : Pirte(ecu_rte, nvm, dem, std::move(pirte_config)),
      network_(network),
      ecm_config_(std::move(ecm_config)) {}

support::Status Ecm::Init() {
  DACM_RETURN_IF_ERROR(Pirte::Init());

  // Listen on every Type I channel from the plug-in SW-Cs.
  for (const EcmRoute& route : ecm_config_.routes) {
    if (!route.in.valid()) continue;
    DACM_RETURN_IF_ERROR(rte_.SetPortListener(
        route.in, [this, &route](std::span<const std::uint8_t> data) {
          OnRouteMessage(route, data);
        }));
  }

  // "During its initialization, the ECM PIRTE creates a socket client to
  // set up a connection with a pre-defined trusted server."  Retries run
  // on a periodic alarm until the connection is established.
  TryConnect();
  DACM_ASSIGN_OR_RETURN(auto alarm,
                        rte_.ecu_os().CreateCallbackAlarm(
                            "ecm." + config_.name + ".reconnect",
                            [this]() {
                              // A dead link (remote end gone) counts as
                              // disconnected: drop it and dial again.
                              if (server_peer_ != nullptr &&
                                  !server_peer_->connected()) {
                                server_peer_ = nullptr;
                              }
                              if (server_peer_ == nullptr) TryConnect();
                            },
                            ecm_config_.reconnect_period,
                            ecm_config_.reconnect_period));
  (void)alarm;
  return support::OkStatus();
}

void Ecm::TryConnect() {
  auto peer = network_.Connect(ecm_config_.server_address);
  if (!peer.ok()) {
    DACM_LOG_DEBUG("ecm") << config_.name << ": server unreachable: "
                          << peer.status().ToString();
    return;
  }
  server_peer_ = std::move(*peer);
  server_peer_->SetReceiveHandler(
      [this](const support::SharedBytes& data) { OnServerMessage(data); });
  Envelope hello;
  hello.kind = Envelope::Kind::kHello;
  hello.vin = ecm_config_.vin;
  (void)SendToServer(hello);
  DACM_LOG_INFO("ecm") << config_.name << ": connected to trusted server as VIN "
                       << ecm_config_.vin;
}

support::Status Ecm::SendToServer(const Envelope& envelope) {
  if (server_peer_ == nullptr) {
    return support::Unavailable("no server connection");
  }
  return server_peer_->Send(envelope.Serialize());
}

void Ecm::OnServerMessage(const support::SharedBytes& data) {
  // Zero-copy parse: the envelope is dropped before this handler returns.
  auto envelope = EnvelopeView::Parse(data);
  if (!envelope.ok() || envelope->kind != Envelope::Kind::kPirteMessage) {
    DACM_LOG_WARN("ecm") << config_.name << ": undecodable server message";
    return;
  }
  auto message = PirteMessage::Deserialize(envelope->message);
  if (!message.ok()) {
    DACM_LOG_WARN("ecm") << config_.name << ": undecodable PirteMessage from server";
    return;
  }
  HandleServerPirteMessage(*message);
}

void Ecm::HandleServerPirteMessage(const PirteMessage& message) {
  // A campaign batch (install, or the rollback engine's uninstall batch)
  // unpacks into its per-plug-in messages; each is then handled (ECC
  // extraction, local install/uninstall or Type I routing) and
  // acknowledged exactly as if it had been pushed individually.
  if (message.type == MessageType::kInstallBatch ||
      message.type == MessageType::kUninstallBatch) {
    auto status = ForEachInBatch(
        message.payload, [this](std::span<const std::uint8_t> entry) {
          auto inner = PirteMessage::Deserialize(entry);
          if (!inner.ok()) return inner.status();
          // Batches carry per-plug-in messages only; a nested batch is a
          // protocol violation (and rejecting it bounds the recursion a
          // hostile peer could otherwise drive arbitrarily deep).
          if (inner->type == MessageType::kInstallBatch ||
              inner->type == MessageType::kUninstallBatch ||
              inner->type == MessageType::kAckBatch) {
            return support::Corrupted("nested batch rejected");
          }
          HandleServerPirteMessage(*inner);
          return support::OkStatus();
        });
    if (!status.ok()) {
      // Reject the whole batch with a *typed* nack (a failed kAckBatch
      // naming the batch label) so the server can fail the row without
      // guessing whether a plain plug-in ack meant the app.
      PirteMessage nack;
      nack.type = MessageType::kAckBatch;
      nack.plugin_name = message.plugin_name;  // the batch's app label
      nack.target_ecu = config_.ecu_id;
      nack.ok = false;
      nack.detail = "undecodable batch: " + status.ToString();
      Envelope envelope;
      envelope.kind = Envelope::Kind::kPirteMessage;
      envelope.vin = ecm_config_.vin;
      envelope.message = nack.Serialize();
      (void)SendToServer(envelope);
    }
    return;
  }

  PirteMessage to_route = message;

  // The ECM extracts the ECC from any passing installation package.
  if (message.type == MessageType::kInstallPackage) {
    auto package = InstallationPackage::Deserialize(message.payload);
    if (!package.ok()) {
      SendAck(message.plugin_name, false, package.status().ToString());
      return;
    }
    if (!package->ecc.empty()) {
      RegisterEcc(package->ecc);
      package->ecc.entries.clear();
      to_route.payload = package->Serialize();
    }
  }

  if (to_route.target_ecu == config_.ecu_id) {
    // Local target: the ECM PIRTE handles the message itself.
    ++ecm_stats_.packages_local;
    OnTypeIMessage(to_route);  // base-class handling; acks go via override
    return;
  }

  const EcmRoute* route = RouteFor(to_route.target_ecu);
  if (route == nullptr || !route->out.valid()) {
    SendAck(to_route.plugin_name, false,
            "no Type I route to ECU " + std::to_string(to_route.target_ecu));
    return;
  }
  ++ecm_stats_.packages_routed;
  auto status = rte_.Write(route->out, to_route.Serialize());
  if (!status.ok()) {
    SendAck(to_route.plugin_name, false, status.ToString());
  }
}

void Ecm::OnRouteMessage(const EcmRoute& route, std::span<const std::uint8_t> data) {
  auto message = PirteMessage::Deserialize(data);
  if (!message.ok()) {
    DACM_LOG_WARN("ecm") << config_.name << ": undecodable Type I message from ECU "
                         << route.ecu_id;
    return;
  }
  if (message->type == MessageType::kAck) {
    // Forward the acknowledgement to the trusted server.
    ++ecm_stats_.acks_forwarded;
    Envelope envelope;
    envelope.kind = Envelope::Kind::kPirteMessage;
    envelope.vin = ecm_config_.vin;
    envelope.message = message->Serialize();
    auto status = SendToServer(envelope);
    if (!status.ok()) {
      DACM_LOG_WARN("ecm") << config_.name
                           << ": ack forwarding failed: " << status.ToString();
    }
    return;
  }
  DACM_LOG_WARN("ecm") << config_.name << ": unexpected Type I message type from ECU "
                       << route.ecu_id;
}

void Ecm::SendAck(const std::string& plugin_name, bool ok, const std::string& detail) {
  PirteMessage ack;
  ack.type = MessageType::kAck;
  ack.plugin_name = plugin_name;
  ack.target_ecu = config_.ecu_id;
  ack.ok = ok;
  ack.detail = detail;
  Envelope envelope;
  envelope.kind = Envelope::Kind::kPirteMessage;
  envelope.vin = ecm_config_.vin;
  envelope.message = ack.Serialize();
  auto status = SendToServer(envelope);
  if (!status.ok()) {
    DACM_LOG_WARN("ecm") << config_.name << ": ack not sent: " << status.ToString();
  }
}

void Ecm::RegisterEcc(const ExternalConnectionContext& ecc) {
  for (const EccEntry& entry : ecc.entries) {
    ecc_entries_.push_back(entry);
    EnsureExternalLink(entry.endpoint);
  }
}

void Ecm::EnsureExternalLink(const std::string& endpoint) {
  if (external_links_.contains(endpoint)) return;
  auto peer = network_.Connect(endpoint);
  if (!peer.ok()) {
    DACM_LOG_WARN("ecm") << config_.name << ": external endpoint unreachable: "
                         << endpoint;
    return;
  }
  (*peer)->SetReceiveHandler([this, endpoint](const support::SharedBytes& data) {
    OnExternalFrame(endpoint, data);
  });
  external_links_.emplace(endpoint, std::move(*peer));
  DACM_LOG_INFO("ecm") << config_.name << ": external link up: " << endpoint;
}

void Ecm::OnExternalFrame(const std::string& endpoint,
                          const support::SharedBytes& data) {
  auto frame = FesFrame::Deserialize(data);
  if (!frame.ok()) {
    DACM_LOG_WARN("ecm") << config_.name << ": undecodable FES frame from " << endpoint;
    return;
  }
  ++ecm_stats_.external_in;
  for (const EccEntry& entry : ecc_entries_) {
    if (entry.direction != EccDirection::kInbound) continue;
    if (entry.endpoint != endpoint || entry.message_id != frame->message_id) continue;
    if (entry.target_ecu == config_.ecu_id) {
      // "the ECM PIRTE writes or reads directly to/from the plug-in port"
      auto status = DeliverToPluginPortByUnique(entry.port_unique_id, frame->payload);
      if (!status.ok()) {
        DACM_LOG_WARN("ecm") << config_.name << ": inbound FES data undeliverable: "
                             << status.ToString();
      }
      return;
    }
    const EcmRoute* route = RouteFor(entry.target_ecu);
    if (route == nullptr || !route->out.valid()) {
      DACM_LOG_WARN("ecm") << config_.name << ": no route for inbound FES data to ECU "
                           << entry.target_ecu;
      return;
    }
    PirteMessage message;
    message.type = MessageType::kExternalData;
    message.target_ecu = entry.target_ecu;
    message.dest_port = entry.port_unique_id;
    message.detail = frame->message_id;
    message.payload = frame->payload;
    (void)rte_.Write(route->out, message.Serialize());
    return;
  }
  DACM_LOG_WARN("ecm") << config_.name << ": no ECC entry for message id '"
                       << frame->message_id << "' from " << endpoint;
}

void Ecm::OnUnconnectedWrite(PluginInstance& plugin, PluginPort& port,
                             std::span<const std::uint8_t> data) {
  // Outbound external connection: a write to a PLC-unconnected port whose
  // unique id matches an outbound ECC entry becomes a FES frame.
  for (const EccEntry& entry : ecc_entries_) {
    if (entry.direction != EccDirection::kOutbound) continue;
    if (entry.target_ecu != config_.ecu_id || entry.port_unique_id != port.unique_id) {
      continue;
    }
    auto link = external_links_.find(entry.endpoint);
    if (link == external_links_.end()) {
      EnsureExternalLink(entry.endpoint);
      link = external_links_.find(entry.endpoint);
      if (link == external_links_.end()) return;
    }
    FesFrame frame;
    frame.message_id = entry.message_id;
    frame.payload.assign(data.begin(), data.end());
    auto status = link->second->Send(frame.Serialize());
    if (status.ok()) ++ecm_stats_.external_out;
    return;
  }
  Pirte::OnUnconnectedWrite(plugin, port, data);
}

const EcmRoute* Ecm::RouteFor(std::uint32_t ecu_id) const {
  for (const EcmRoute& route : ecm_config_.routes) {
    if (route.ecu_id == ecu_id) return &route;
  }
  return nullptr;
}

}  // namespace dacm::pirte
