#include "pirte/package.hpp"

#include "support/crc.hpp"

namespace dacm::pirte {

support::Bytes InstallationPackage::Serialize() const {
  support::ByteWriter body;
  // The binary dominates; reserving for it plus the scalar fields leaves
  // only the context tables to (rarely) grow the buffer.
  body.Reserve(32 + plugin_name.size() + version.size() + binary.size());
  body.WriteString(plugin_name);
  body.WriteString(version);
  pic.SerializeTo(body);
  plc.SerializeTo(body);
  ecc.SerializeTo(body);
  body.WriteBlob(binary);

  support::ByteWriter out;
  const support::Bytes body_bytes = body.Take();
  out.Reserve(4 + body_bytes.size());
  out.WriteU32(support::Crc32(body_bytes));
  out.WriteRaw(body_bytes);
  return out.Take();
}

support::Result<InstallationPackage> InstallationPackage::Deserialize(
    std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  DACM_ASSIGN_OR_RETURN(std::uint32_t wire_crc, reader.ReadU32());
  if (data.size() < 4 || support::Crc32(data.subspan(4)) != wire_crc) {
    return support::Corrupted("installation package CRC mismatch");
  }
  InstallationPackage package;
  DACM_ASSIGN_OR_RETURN(package.plugin_name, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(package.version, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(package.pic, PortInitContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.plc, PortLinkingContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.ecc, ExternalConnectionContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.binary, reader.ReadBlob());
  return package;
}

support::Bytes PirteMessage::Serialize() const {
  support::ByteWriter writer;
  writer.Reserve(19 + plugin_name.size() + detail.size() + payload.size());
  writer.WriteU8(static_cast<std::uint8_t>(type));
  writer.WriteString(plugin_name);
  writer.WriteU32(target_ecu);
  writer.WriteU8(dest_port);
  writer.WriteU8(ok ? 1 : 0);
  writer.WriteString(detail);
  writer.WriteBlob(payload);
  return writer.Take();
}

support::Result<PirteMessage> PirteMessage::Deserialize(
    std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  PirteMessage message;
  DACM_ASSIGN_OR_RETURN(std::uint8_t type, reader.ReadU8());
  if (type > 5) return support::Corrupted("bad PirteMessage type");
  message.type = static_cast<MessageType>(type);
  DACM_ASSIGN_OR_RETURN(message.plugin_name, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(message.target_ecu, reader.ReadU32());
  DACM_ASSIGN_OR_RETURN(message.dest_port, reader.ReadU8());
  DACM_ASSIGN_OR_RETURN(std::uint8_t ok, reader.ReadU8());
  message.ok = ok != 0;
  DACM_ASSIGN_OR_RETURN(message.detail, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(message.payload, reader.ReadBlob());
  return message;
}

}  // namespace dacm::pirte
