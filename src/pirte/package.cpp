#include "pirte/package.hpp"

#include <algorithm>

#include "support/crc.hpp"

namespace dacm::pirte {

support::Bytes InstallationPackage::Serialize() const {
  support::ByteWriter body;
  // The binary dominates; reserving for it plus the scalar fields leaves
  // only the context tables to (rarely) grow the buffer.
  body.Reserve(32 + plugin_name.size() + version.size() + binary.size());
  body.WriteString(plugin_name);
  body.WriteString(version);
  pic.SerializeTo(body);
  plc.SerializeTo(body);
  ecc.SerializeTo(body);
  body.WriteBlob(binary);

  support::ByteWriter out;
  const support::Bytes body_bytes = body.Take();
  out.Reserve(4 + body_bytes.size());
  out.WriteU32(support::Crc32(body_bytes));
  out.WriteRaw(body_bytes);
  return out.Take();
}

support::Result<InstallationPackage> InstallationPackage::Deserialize(
    std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  DACM_ASSIGN_OR_RETURN(std::uint32_t wire_crc, reader.ReadU32());
  if (data.size() < 4 || support::Crc32(data.subspan(4)) != wire_crc) {
    return support::Corrupted("installation package CRC mismatch");
  }
  InstallationPackage package;
  DACM_ASSIGN_OR_RETURN(package.plugin_name, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(package.version, reader.ReadString());
  DACM_ASSIGN_OR_RETURN(package.pic, PortInitContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.plc, PortLinkingContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.ecc, ExternalConnectionContext::DeserializeFrom(reader));
  DACM_ASSIGN_OR_RETURN(package.binary, reader.ReadBlob());
  return package;
}

void PirteMessage::SerializeHeaderTo(support::ByteWriter& writer, MessageType type,
                                     std::string_view plugin_name,
                                     std::uint32_t target_ecu,
                                     std::uint8_t dest_port, bool ok,
                                     std::string_view detail,
                                     std::uint32_t payload_size) {
  writer.WriteU8(static_cast<std::uint8_t>(type));
  writer.WriteString(plugin_name);
  writer.WriteU32(target_ecu);
  writer.WriteU8(dest_port);
  writer.WriteU8(ok ? 1 : 0);
  writer.WriteString(detail);
  writer.WriteU32(payload_size);  // blob framing; payload bytes follow
}

void PirteMessage::SerializeFieldsTo(support::ByteWriter& writer, MessageType type,
                                     std::string_view plugin_name,
                                     std::uint32_t target_ecu,
                                     std::uint8_t dest_port, bool ok,
                                     std::string_view detail,
                                     std::span<const std::uint8_t> payload) {
  SerializeHeaderTo(writer, type, plugin_name, target_ecu, dest_port, ok, detail,
                    static_cast<std::uint32_t>(payload.size()));
  writer.WriteRaw(payload);
}

support::Bytes PirteMessage::Serialize() const {
  support::ByteWriter writer;
  writer.Reserve(WireSize());
  SerializeTo(writer);
  return writer.Take();
}

support::Result<PirteMessage> PirteMessage::Deserialize(
    std::span<const std::uint8_t> data) {
  // Single parser definition: materialize the zero-copy view (the
  // Envelope/EnvelopeView idiom).
  DACM_ASSIGN_OR_RETURN(PirteMessageView view, PirteMessageView::Parse(data));
  PirteMessage message;
  message.type = view.type;
  message.plugin_name = std::string(view.plugin_name);
  message.target_ecu = view.target_ecu;
  message.dest_port = view.dest_port;
  message.ok = view.ok;
  message.detail = std::string(view.detail);
  message.payload.assign(view.payload.begin(), view.payload.end());
  return message;
}

support::Result<PirteMessageView> PirteMessageView::Parse(
    std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  PirteMessageView view;
  DACM_ASSIGN_OR_RETURN(std::uint8_t type, reader.ReadU8());
  if (type > static_cast<std::uint8_t>(MessageType::kUninstallBatch)) {
    return support::Corrupted("bad PirteMessage type");
  }
  view.type = static_cast<MessageType>(type);
  DACM_ASSIGN_OR_RETURN(view.plugin_name, reader.ReadStringView());
  DACM_ASSIGN_OR_RETURN(view.target_ecu, reader.ReadU32());
  DACM_ASSIGN_OR_RETURN(view.dest_port, reader.ReadU8());
  DACM_ASSIGN_OR_RETURN(std::uint8_t ok, reader.ReadU8());
  view.ok = ok != 0;
  DACM_ASSIGN_OR_RETURN(view.detail, reader.ReadStringView());
  DACM_ASSIGN_OR_RETURN(view.payload, reader.ReadBlobView());
  return view;
}

support::Bytes SerializeInstallBatch(std::span<const InstallBatchEntry> entries) {
  // Each entry is framed exactly like PirteMessage::Serialize would frame a
  // kInstallPackage, but written straight into the batch buffer through the
  // shared layout definition — no intermediate message objects, one sized
  // allocation, one pass over the package bytes.
  support::ByteWriter writer;
  std::size_t total = 8;
  for (const InstallBatchEntry& entry : entries) {
    total += 4 + PirteMessage::WireSizeOf(entry.plugin_name, {},
                                          entry.package_bytes);
  }
  writer.Reserve(total);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const InstallBatchEntry& entry : entries) {
    const std::size_t inner =
        PirteMessage::WireSizeOf(entry.plugin_name, {}, entry.package_bytes);
    writer.WriteU32(static_cast<std::uint32_t>(inner));  // blob framing
    PirteMessage::SerializeFieldsTo(writer, MessageType::kInstallPackage,
                                    entry.plugin_name, entry.target_ecu,
                                    /*dest_port=*/0, /*ok=*/true,
                                    /*detail=*/{}, entry.package_bytes);
  }
  return writer.Take();
}

support::Bytes SerializeUninstallBatch(std::span<const UninstallBatchEntry> entries) {
  support::ByteWriter writer;
  std::size_t total = 8;
  for (const UninstallBatchEntry& entry : entries) {
    total += 4 + PirteMessage::WireSizeOf(entry.plugin_name, {}, {});
  }
  writer.Reserve(total);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const UninstallBatchEntry& entry : entries) {
    const std::size_t inner = PirteMessage::WireSizeOf(entry.plugin_name, {}, {});
    writer.WriteU32(static_cast<std::uint32_t>(inner));  // blob framing
    PirteMessage::SerializeFieldsTo(writer, MessageType::kUninstall,
                                    entry.plugin_name, entry.target_ecu,
                                    /*dest_port=*/0, /*ok=*/true,
                                    /*detail=*/{}, /*payload=*/{});
  }
  return writer.Take();
}

support::Bytes SerializeAckBatch(std::span<const BatchAckEntry> entries) {
  support::ByteWriter writer;
  std::size_t total = 8;
  for (const BatchAckEntry& entry : entries) {
    total += 9 + entry.plugin.size() + entry.detail.size();
  }
  writer.Reserve(total);
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const BatchAckEntry& entry : entries) {
    writer.WriteString(entry.plugin);
    writer.WriteU8(entry.ok ? 1 : 0);
    writer.WriteString(entry.detail);
  }
  return writer.Take();
}

std::size_t AckBatchWireSize(std::span<const BatchAckEntryView> entries) {
  std::size_t varint = 1;
  for (auto count = entries.size() >> 7; count != 0; count >>= 7) ++varint;
  std::size_t total = varint;
  for (const BatchAckEntryView& entry : entries) {
    total += 9 + entry.plugin.size() + entry.detail.size();
  }
  return total;
}

void SerializeAckBatchTo(support::ByteWriter& writer,
                         std::span<const BatchAckEntryView> entries) {
  writer.WriteVarU32(static_cast<std::uint32_t>(entries.size()));
  for (const BatchAckEntryView& entry : entries) {
    writer.WriteString(entry.plugin);
    writer.WriteU8(entry.ok ? 1 : 0);
    writer.WriteString(entry.detail);
  }
}

support::Result<std::vector<BatchAckEntry>> DeserializeAckBatch(
    std::span<const std::uint8_t> payload) {
  std::vector<BatchAckEntry> entries;
  DACM_RETURN_IF_ERROR(ForEachAckInBatch(
      payload, [&entries](std::string_view plugin, bool ok, std::string_view detail) {
        entries.push_back(
            BatchAckEntry{std::string(plugin), ok, std::string(detail)});
      }));
  return entries;
}

}  // namespace dacm::pirte
