// Plug-in instances.
//
// A PluginInstance is one installed plug-in inside a plug-in SW-C: the PVM
// program + persistent registers, the plug-in port table (built from the
// PIC), and a lifecycle state machine:
//
//     kInstalled -> kRunning <-> kStopped      (start/stop)
//     kRunning   -> kFaulted                   (VM fault / trap / fuel abuse)
//
// Updates follow the paper's pragmatic rule: a plug-in is stopped and
// removed before its new version is installed fresh — no state transfer.
//
// Optional entry points the PIRTE invokes if present:
//   on_install  — once, right after installation
//   on_data     — per message; register 0 holds the receiving local port
//   step        — periodic best-effort tick (PIRTE plug-in scheduler)
//   on_stop     — before the plug-in is stopped/uninstalled
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pirte/context.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"
#include "vm/interpreter.hpp"

namespace dacm::pirte {

class PluginInstance;

/// Host services a plug-in's VM reaches through its PortEnv; implemented by
/// the PIRTE.  All port references are plug-in-local indices.
class PluginHost {
 public:
  virtual ~PluginHost() = default;
  virtual support::Result<support::Bytes> PluginReadPort(PluginInstance& plugin,
                                                         std::uint8_t local_port) = 0;
  virtual support::Status PluginWritePort(PluginInstance& plugin,
                                          std::uint8_t local_port,
                                          std::span<const std::uint8_t> data) = 0;
  virtual bool PluginPortAvailable(PluginInstance& plugin, std::uint8_t local_port) = 0;
  virtual std::uint32_t HostClockMs() = 0;
};

enum class PluginState : std::uint8_t { kInstalled, kRunning, kStopped, kFaulted };

std::string_view PluginStateName(PluginState state);

/// One plug-in port with its receive buffer.
struct PluginPort {
  std::uint8_t local_index = 0;
  std::string name;
  std::uint8_t unique_id = 0;  // SW-C-scope unique (assigned by the server)
  PluginPortDirection direction = PluginPortDirection::kRequired;
  support::Bytes last_value;
  bool has_value = false;
  bool fresh = false;
};

class PluginInstance {
 public:
  /// Builds the instance from a verified program and its PIC.  `host` must
  /// outlive the instance.
  PluginInstance(std::string name, std::string version, vm::Program program,
                 const PortInitContext& pic, PluginHost& host,
                 vm::VmLimits limits = {});

  PluginInstance(const PluginInstance&) = delete;
  PluginInstance& operator=(const PluginInstance&) = delete;

  const std::string& name() const { return name_; }
  const std::string& version() const { return version_; }
  PluginState state() const { return state_; }
  void SetState(PluginState state) { state_ = state; }

  vm::VmInstance& vm() { return *vm_; }
  const vm::VmInstance& vm() const { return *vm_; }

  /// True if the program exports `entry`.
  bool HasEntry(const std::string& entry) const;

  /// Port table lookups.
  support::Result<PluginPort*> PortByLocal(std::uint8_t local_index);
  support::Result<PluginPort*> PortByUnique(std::uint8_t unique_id);
  const std::vector<PluginPort>& ports() const { return ports_; }
  std::vector<PluginPort>& ports() { return ports_; }

  /// Diagnostics.
  std::uint64_t faults() const { return faults_; }
  void CountFault() { ++faults_; }
  const std::string& last_fault() const { return last_fault_; }
  void SetLastFault(std::string fault) { last_fault_ = std::move(fault); }

 private:
  // vm::PortEnv adapter translating VM port syscalls to host calls.
  class Env final : public vm::PortEnv {
   public:
    Env(PluginHost& host, PluginInstance& plugin) : host_(host), plugin_(plugin) {}
    support::Result<support::Bytes> ReadPort(std::uint8_t port) override {
      return host_.PluginReadPort(plugin_, port);
    }
    support::Status WritePort(std::uint8_t port,
                              std::span<const std::uint8_t> data) override {
      return host_.PluginWritePort(plugin_, port, data);
    }
    bool PortAvailable(std::uint8_t port) override {
      return host_.PluginPortAvailable(plugin_, port);
    }
    std::uint32_t ClockMs() override { return host_.HostClockMs(); }

   private:
    PluginHost& host_;
    PluginInstance& plugin_;
  };

  std::string name_;
  std::string version_;
  PluginState state_ = PluginState::kInstalled;
  std::vector<PluginPort> ports_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<vm::VmInstance> vm_;
  std::uint64_t faults_ = 0;
  std::string last_fault_;
};

}  // namespace dacm::pirte
