#include "bsw/dem.hpp"

namespace dacm::bsw {

support::Result<DemEventId> Dem::DefineEvent(std::string name,
                                             std::uint8_t failure_threshold) {
  if (failure_threshold == 0) {
    return support::InvalidArgument("failure_threshold must be >= 1");
  }
  for (const Event& e : events_) {
    if (e.name == name) return support::AlreadyExists("Dem event: " + name);
  }
  Event e;
  e.name = std::move(name);
  e.threshold = failure_threshold;
  events_.push_back(std::move(e));
  return DemEventId(static_cast<std::uint32_t>(events_.size() - 1));
}

support::Status Dem::ReportEvent(DemEventId event, DemEventStatus status) {
  if (event.value() >= events_.size()) return support::NotFound("unknown Dem event");
  Event& e = events_[event.value()];
  if (status == DemEventStatus::kFailed) {
    if (e.counter < e.threshold) ++e.counter;
    if (e.counter >= e.threshold && !e.confirmed) {
      e.confirmed = true;
      ++e.occurrences;
      e.last_confirmed_at = simulator_.Now();
    }
  } else {
    e.counter = 0;
    e.confirmed = false;
  }
  return support::OkStatus();
}

support::Result<bool> Dem::IsEventConfirmed(DemEventId event) const {
  if (event.value() >= events_.size()) return support::NotFound("unknown Dem event");
  return events_[event.value()].confirmed;
}

support::Result<std::uint32_t> Dem::OccurrenceCount(DemEventId event) const {
  if (event.value() >= events_.size()) return support::NotFound("unknown Dem event");
  return events_[event.value()].occurrences;
}

support::Result<sim::SimTime> Dem::LastConfirmedAt(DemEventId event) const {
  if (event.value() >= events_.size()) return support::NotFound("unknown Dem event");
  return events_[event.value()].last_confirmed_at;
}

void Dem::ClearAll() {
  for (Event& e : events_) {
    e.counter = 0;
    e.confirmed = false;
    e.occurrences = 0;
    e.last_confirmed_at = 0;
  }
}

support::Result<DemEventId> Dem::FindEvent(const std::string& name) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].name == name) return DemEventId(static_cast<std::uint32_t>(i));
  }
  return support::NotFound("Dem event: " + name);
}

std::vector<std::string> Dem::ConfirmedEventNames() const {
  std::vector<std::string> names;
  for (const Event& e : events_) {
    if (e.confirmed) names.push_back(e.name);
  }
  return names;
}

}  // namespace dacm::bsw
