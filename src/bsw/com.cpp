#include "bsw/com.hpp"

#include <algorithm>

namespace dacm::bsw {

Com::Com(CanIf& can_if) : can_if_(can_if) {}

support::Result<PduId> Com::DefinePdu(std::string name, std::uint32_t can_id,
                                      std::uint8_t length, PduDirection direction) {
  if (initialized_) return support::FailedPrecondition("DefinePdu after Init");
  if (length > 8) return support::InvalidArgument("PDU longer than a CAN frame");
  Pdu pdu;
  pdu.name = std::move(name);
  pdu.can_id = can_id;
  pdu.length = length;
  pdu.direction = direction;
  pdu.buffer.assign(length, 0);
  pdus_.push_back(std::move(pdu));
  return PduId(static_cast<std::uint32_t>(pdus_.size() - 1));
}

support::Result<SignalId> Com::DefineSignal(std::string name, PduId pdu,
                                            std::uint8_t byte_offset,
                                            std::uint8_t length) {
  if (initialized_) return support::FailedPrecondition("DefineSignal after Init");
  if (pdu.value() >= pdus_.size()) return support::NotFound("unknown PDU");
  Pdu& p = pdus_[pdu.value()];
  if (byte_offset + length > p.length) {
    return support::OutOfRange("signal does not fit in PDU " + p.name);
  }
  Signal s;
  s.name = std::move(name);
  s.pdu = pdu;
  s.offset = byte_offset;
  s.length = length;
  signals_.push_back(std::move(s));
  const SignalId id(static_cast<std::uint32_t>(signals_.size() - 1));
  p.signals.push_back(id);
  return id;
}

support::Status Com::Init() {
  if (initialized_) return support::FailedPrecondition("Com::Init called twice");
  for (std::size_t i = 0; i < pdus_.size(); ++i) {
    if (pdus_[i].direction != PduDirection::kRx) continue;
    DACM_RETURN_IF_ERROR(can_if_.BindRx(
        pdus_[i].can_id,
        [this, i](const sim::CanFrame& frame) { OnPduReceived(i, frame); }));
  }
  initialized_ = true;
  return support::OkStatus();
}

support::Status Com::SendSignal(SignalId signal, std::span<const std::uint8_t> value) {
  if (!initialized_) return support::FailedPrecondition("SendSignal before Init");
  if (signal.value() >= signals_.size()) return support::NotFound("unknown signal");
  const Signal& s = signals_[signal.value()];
  Pdu& p = pdus_[s.pdu.value()];
  if (p.direction != PduDirection::kTx) {
    return support::InvalidArgument("SendSignal on RX signal " + s.name);
  }
  if (value.size() != s.length) {
    return support::InvalidArgument("signal value size mismatch for " + s.name);
  }
  std::copy(value.begin(), value.end(), p.buffer.begin() + s.offset);

  sim::CanFrame frame;
  frame.can_id = p.can_id;
  frame.dlc = p.length;
  std::copy(p.buffer.begin(), p.buffer.end(), frame.data.begin());
  DACM_RETURN_IF_ERROR(can_if_.Transmit(frame));
  ++pdus_sent_;
  return support::OkStatus();
}

support::Status Com::ReadSignal(SignalId signal, std::span<std::uint8_t> out) const {
  if (signal.value() >= signals_.size()) return support::NotFound("unknown signal");
  const Signal& s = signals_[signal.value()];
  const Pdu& p = pdus_[s.pdu.value()];
  if (out.size() != s.length) {
    return support::InvalidArgument("signal read size mismatch for " + s.name);
  }
  std::copy(p.buffer.begin() + s.offset, p.buffer.begin() + s.offset + s.length,
            out.begin());
  return support::OkStatus();
}

support::Status Com::SetRxNotification(SignalId signal, SignalNotification fn) {
  if (signal.value() >= signals_.size()) return support::NotFound("unknown signal");
  Signal& s = signals_[signal.value()];
  if (pdus_[s.pdu.value()].direction != PduDirection::kRx) {
    return support::InvalidArgument("RX notification on TX signal " + s.name);
  }
  s.notification = std::move(fn);
  return support::OkStatus();
}

support::Result<SignalId> Com::FindSignal(const std::string& name) const {
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i].name == name) return SignalId(static_cast<std::uint32_t>(i));
  }
  return support::NotFound("signal: " + name);
}

void Com::OnPduReceived(std::size_t pdu_index, const sim::CanFrame& frame) {
  Pdu& p = pdus_[pdu_index];
  const std::size_t n = std::min<std::size_t>(p.length, frame.dlc);
  std::copy(frame.data.begin(), frame.data.begin() + static_cast<std::ptrdiff_t>(n),
            p.buffer.begin());
  ++pdus_received_;
  for (SignalId sid : p.signals) {
    Signal& s = signals_[sid.value()];
    if (s.notification) {
      s.notification(std::span<const std::uint8_t>(p.buffer.data() + s.offset, s.length));
    }
  }
}

}  // namespace dacm::bsw
