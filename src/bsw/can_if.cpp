#include "bsw/can_if.hpp"

namespace dacm::bsw {

CanIf::CanIf(sim::CanBus& bus, std::string ecu_name) : bus_(bus) {
  node_ = bus_.AttachNode(std::move(ecu_name),
                          [this](const sim::CanFrame& f) { OnBusFrame(f); });
}

support::Status CanIf::BindRx(std::uint32_t can_id, RxIndication handler) {
  if (!handler) return support::InvalidArgument("null RX indication");
  auto [it, inserted] = rx_bindings_.emplace(can_id, std::move(handler));
  (void)it;
  if (!inserted) {
    return support::AlreadyExists("RX binding for CAN id " + std::to_string(can_id));
  }
  return support::OkStatus();
}

support::Status CanIf::Transmit(const sim::CanFrame& frame) {
  return bus_.Send(node_, frame);
}

void CanIf::OnBusFrame(const sim::CanFrame& frame) {
  ++frames_received_;
  auto it = rx_bindings_.find(frame.can_id);
  if (it == rx_bindings_.end()) {
    ++frames_unroutable_;  // not addressed to this ECU; normal on a broadcast bus
    return;
  }
  it->second(frame);
}

}  // namespace dacm::bsw
