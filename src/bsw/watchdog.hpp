// Watchdog manager (WdgM-flavoured alive supervision).
//
// Supervised entities (e.g. the plug-in VM task) must report alive
// indications within each supervision cycle; missed cycles beyond the
// tolerance report a Dem failure.  This implements the paper's requirement
// that the built-in software supervises the dynamic layer without trusting
// it.
#pragma once

#include <string>
#include <vector>

#include "bsw/dem.hpp"
#include "sim/simulator.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

struct SupervisedEntityTag {};
using SupervisedEntityId = support::StrongId<SupervisedEntityTag>;

class Watchdog {
 public:
  /// `cycle`: supervision period.  The watchdog checks all entities once
  /// per cycle, driven by the simulator.
  Watchdog(sim::Simulator& simulator, Dem& dem, sim::SimTime cycle);

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers an entity expecting >= `min_alive` alive reports per cycle;
  /// `tolerance`: consecutive failed cycles allowed before the Dem event
  /// fires.  `dem_event` is reported on expiry.
  support::Result<SupervisedEntityId> Register(std::string name,
                                               std::uint32_t min_alive,
                                               std::uint32_t tolerance,
                                               DemEventId dem_event);

  /// Starts periodic checking.
  void Start();

  /// Alive indication from the supervised code path.
  support::Status ReportAlive(SupervisedEntityId entity);

  /// True if the entity's supervision has expired.
  support::Result<bool> Expired(SupervisedEntityId entity) const;

 private:
  void CheckCycle();

  struct Entity {
    std::string name;
    std::uint32_t min_alive;
    std::uint32_t tolerance;
    DemEventId dem_event;
    std::uint32_t alive_count = 0;
    std::uint32_t failed_cycles = 0;
    bool expired = false;
  };

  sim::Simulator& simulator_;
  Dem& dem_;
  sim::SimTime cycle_;
  bool started_ = false;
  std::vector<Entity> entities_;
};

}  // namespace dacm::bsw
