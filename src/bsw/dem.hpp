// Diagnostic event manager (Dem-flavoured).
//
// The paper requires the built-in software to "monitor the exposed API and
// provide fault protection mechanisms for the critical signals".  Faults
// detected by those monitors (range violations, watchdog expiries, VM
// faults) are reported here as diagnostic events with debounce counters and
// occurrence bookkeeping, queryable by tests and the diagnostics example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

struct DemEventTag {};
using DemEventId = support::StrongId<DemEventTag>;

enum class DemEventStatus { kPassed, kFailed };

class Dem {
 public:
  explicit Dem(sim::Simulator& simulator) : simulator_(simulator) {}

  /// Declares a diagnostic event.  `failure_threshold`: consecutive kFailed
  /// reports required to confirm the event (counter debounce).
  support::Result<DemEventId> DefineEvent(std::string name,
                                          std::uint8_t failure_threshold = 1);

  /// Reports a monitor verdict for an event.
  support::Status ReportEvent(DemEventId event, DemEventStatus status);

  /// True once the debounce counter has confirmed the failure.
  support::Result<bool> IsEventConfirmed(DemEventId event) const;

  /// Number of confirmed failure episodes (confirmed -> passed -> confirmed
  /// counts twice).
  support::Result<std::uint32_t> OccurrenceCount(DemEventId event) const;

  /// Timestamp of the most recent confirmation.
  support::Result<sim::SimTime> LastConfirmedAt(DemEventId event) const;

  /// Clears stored state for all events (diagnostic "clear DTCs").
  void ClearAll();

  support::Result<DemEventId> FindEvent(const std::string& name) const;

  /// All confirmed event names (diagnostic readout).
  std::vector<std::string> ConfirmedEventNames() const;

 private:
  struct Event {
    std::string name;
    std::uint8_t threshold;
    std::uint8_t counter = 0;
    bool confirmed = false;
    std::uint32_t occurrences = 0;
    sim::SimTime last_confirmed_at = 0;
  };

  sim::Simulator& simulator_;
  std::vector<Event> events_;
};

}  // namespace dacm::bsw
