// CAN interface layer (CanIf).
//
// Binds one ECU to a sim::CanBus node and demultiplexes received frames to
// upper layers by CAN identifier.  Mirrors the AUTOSAR CanIf contract at
// the granularity the stack above needs: static RX bindings, transmit
// pass-through, and RX indication callbacks.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "sim/can_bus.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

class CanIf {
 public:
  using RxIndication = std::function<void(const sim::CanFrame&)>;

  CanIf(sim::CanBus& bus, std::string ecu_name);

  CanIf(const CanIf&) = delete;
  CanIf& operator=(const CanIf&) = delete;

  /// Registers the handler for frames with identifier `can_id`.
  support::Status BindRx(std::uint32_t can_id, RxIndication handler);

  /// Transmits one frame on the bus.
  support::Status Transmit(const sim::CanFrame& frame);

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_unroutable() const { return frames_unroutable_; }

 private:
  void OnBusFrame(const sim::CanFrame& frame);

  sim::CanBus& bus_;
  sim::CanNodeId node_;
  std::unordered_map<std::uint32_t, RxIndication> rx_bindings_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_unroutable_ = 0;
};

}  // namespace dacm::bsw
