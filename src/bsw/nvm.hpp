// Non-volatile memory manager (NvM-flavoured block store).
//
// The PIRTE persists installed plug-ins and their contexts in NvM blocks so
// an ECU "reboot" restores the dynamic configuration — and a physical ECU
// replacement (paper §3.2.2 restore operation) starts from empty blocks.
// Blocks are declared statically with a fixed maximum size; every write
// stores a CRC that is validated on read, so corruption injected by tests
// is detected rather than silently propagated.
#pragma once

#include <string>
#include <vector>

#include "support/bytes.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

struct NvBlockTag {};
using NvBlockId = support::StrongId<NvBlockTag>;

class Nvm {
 public:
  Nvm() = default;

  /// Declares a block of up to `max_size` bytes.
  support::Result<NvBlockId> DefineBlock(std::string name, std::size_t max_size);

  /// Writes (replaces) a block's content.
  support::Status WriteBlock(NvBlockId block, std::span<const std::uint8_t> data);

  /// Reads a block; fails with kNotFound if never written, kCorrupted on
  /// CRC mismatch.
  support::Result<support::Bytes> ReadBlock(NvBlockId block) const;

  /// Erases a block back to the never-written state.
  support::Status EraseBlock(NvBlockId block);

  /// Fault injection: flips one bit in the stored image of `block`.
  support::Status CorruptBlockForTest(NvBlockId block, std::size_t bit_index);

  support::Result<NvBlockId> FindBlock(const std::string& name) const;

 private:
  struct Block {
    std::string name;
    std::size_t max_size;
    bool written = false;
    support::Bytes data;
    std::uint32_t crc = 0;
  };
  std::vector<Block> blocks_;
};

}  // namespace dacm::bsw
