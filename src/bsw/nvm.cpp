#include "bsw/nvm.hpp"

#include "support/crc.hpp"

namespace dacm::bsw {

support::Result<NvBlockId> Nvm::DefineBlock(std::string name, std::size_t max_size) {
  for (const Block& b : blocks_) {
    if (b.name == name) return support::AlreadyExists("NvM block: " + name);
  }
  blocks_.push_back(Block{std::move(name), max_size, false, {}, 0});
  return NvBlockId(static_cast<std::uint32_t>(blocks_.size() - 1));
}

support::Status Nvm::WriteBlock(NvBlockId block, std::span<const std::uint8_t> data) {
  if (block.value() >= blocks_.size()) return support::NotFound("unknown NvM block");
  Block& b = blocks_[block.value()];
  if (data.size() > b.max_size) {
    return support::CapacityExceeded("NvM block " + b.name + " overflow");
  }
  b.data.assign(data.begin(), data.end());
  b.crc = support::Crc32(data);
  b.written = true;
  return support::OkStatus();
}

support::Result<support::Bytes> Nvm::ReadBlock(NvBlockId block) const {
  if (block.value() >= blocks_.size()) return support::NotFound("unknown NvM block");
  const Block& b = blocks_[block.value()];
  if (!b.written) return support::NotFound("NvM block " + b.name + " never written");
  if (support::Crc32(b.data) != b.crc) {
    return support::Corrupted("NvM block " + b.name + " CRC mismatch");
  }
  return b.data;
}

support::Status Nvm::EraseBlock(NvBlockId block) {
  if (block.value() >= blocks_.size()) return support::NotFound("unknown NvM block");
  Block& b = blocks_[block.value()];
  b.written = false;
  b.data.clear();
  b.crc = 0;
  return support::OkStatus();
}

support::Status Nvm::CorruptBlockForTest(NvBlockId block, std::size_t bit_index) {
  if (block.value() >= blocks_.size()) return support::NotFound("unknown NvM block");
  Block& b = blocks_[block.value()];
  if (!b.written || b.data.empty()) {
    return support::FailedPrecondition("cannot corrupt unwritten block");
  }
  const std::size_t byte = (bit_index / 8) % b.data.size();
  b.data[byte] ^= static_cast<std::uint8_t>(1u << (bit_index % 8));
  return support::OkStatus();
}

support::Result<NvBlockId> Nvm::FindBlock(const std::string& name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].name == name) return NvBlockId(static_cast<std::uint32_t>(i));
  }
  return support::NotFound("NvM block: " + name);
}

}  // namespace dacm::bsw
