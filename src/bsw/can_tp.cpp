#include "bsw/can_tp.hpp"

#include <algorithm>
#include <cassert>

#include "support/crc.hpp"

namespace dacm::bsw {

CanTp::CanTp(CanIf& can_if, std::uint32_t tx_id, std::uint32_t rx_id,
             std::size_t max_message)
    : can_if_(can_if), tx_id_(tx_id), max_message_(max_message) {
  // A failed binding here is a static configuration bug (duplicate rx id);
  // surface it loudly at construction.
  auto status = can_if_.BindRx(rx_id, [this](const sim::CanFrame& f) { OnFrame(f); });
  (void)status;
  assert(status.ok() && "duplicate CanTp rx binding");
}

support::Status CanTp::Send(std::span<const std::uint8_t> message) {
  // Append CRC32 trailer (one allocation for body + trailer).
  support::Bytes payload;
  payload.reserve(message.size() + 4);
  payload.assign(message.begin(), message.end());
  payload.resize(payload.size() + 4);
  support::StoreLeU32(payload.data() + message.size(), support::Crc32(message));

  if (payload.size() > max_message_) {
    return support::CapacityExceeded("CanTp message exceeds max_message");
  }

  if (payload.size() <= 7) {
    sim::CanFrame frame;
    frame.can_id = tx_id_;
    frame.dlc = static_cast<std::uint8_t>(payload.size() + 1);
    frame.data[0] = static_cast<std::uint8_t>(kSingle | payload.size());
    std::copy(payload.begin(), payload.end(), frame.data.begin() + 1);
    DACM_RETURN_IF_ERROR(can_if_.Transmit(frame));
    ++messages_sent_;
    return support::OkStatus();
  }

  // First frame: PCI byte + u32 length + 3 data bytes.
  sim::CanFrame first;
  first.can_id = tx_id_;
  first.dlc = 8;
  first.data[0] = kFirst;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  support::StoreLeU32(first.data.data() + 1, len);
  std::size_t pos = std::min<std::size_t>(3, payload.size());
  std::copy(payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(pos),
            first.data.begin() + 5);
  DACM_RETURN_IF_ERROR(can_if_.Transmit(first));

  std::uint8_t seq = 1;
  while (pos < payload.size()) {
    sim::CanFrame cf;
    cf.can_id = tx_id_;
    const std::size_t chunk = std::min<std::size_t>(7, payload.size() - pos);
    cf.dlc = static_cast<std::uint8_t>(chunk + 1);
    cf.data[0] = static_cast<std::uint8_t>(kConsecutive | (seq & 0x0f));
    std::copy(payload.begin() + static_cast<std::ptrdiff_t>(pos),
              payload.begin() + static_cast<std::ptrdiff_t>(pos + chunk),
              cf.data.begin() + 1);
    DACM_RETURN_IF_ERROR(can_if_.Transmit(cf));
    pos += chunk;
    seq = static_cast<std::uint8_t>((seq + 1) & 0x0f);
  }
  ++messages_sent_;
  return support::OkStatus();
}

void CanTp::OnFrame(const sim::CanFrame& frame) {
  if (frame.dlc == 0) {
    Fail(support::ProtocolError("empty CanTp frame"));
    return;
  }
  const std::uint8_t pci = frame.data[0] & 0xf0;
  switch (pci) {
    case kSingle: {
      const std::size_t len = frame.data[0] & 0x0f;
      if (len + 1 > frame.dlc) {
        Fail(support::ProtocolError("SF length exceeds dlc"));
        return;
      }
      rx_buffer_.assign(frame.data.begin() + 1,
                        frame.data.begin() + 1 + static_cast<std::ptrdiff_t>(len));
      rx_active_ = false;
      DeliverIfComplete();
      return;
    }
    case kFirst: {
      if (frame.dlc < 5) {
        Fail(support::ProtocolError("FF too short"));
        return;
      }
      const std::uint32_t len = support::LoadLeU32(frame.data.data() + 1);
      if (len > max_message_) {
        Fail(support::CapacityExceeded("FF length exceeds max_message"));
        return;
      }
      rx_active_ = true;
      rx_expected_ = len;
      rx_next_seq_ = 1;
      rx_buffer_.clear();
      // One allocation for the whole reassembly: len is bounded by
      // max_message_, so a corrupt length cannot balloon the buffer.
      rx_buffer_.reserve(len);
      rx_buffer_.insert(rx_buffer_.end(), frame.data.begin() + 5,
                        frame.data.begin() + frame.dlc);
      return;
    }
    case kConsecutive: {
      if (!rx_active_) {
        Fail(support::ProtocolError("CF without FF"));
        return;
      }
      const std::uint8_t seq = frame.data[0] & 0x0f;
      if (seq != rx_next_seq_) {
        rx_active_ = false;
        Fail(support::ProtocolError("CF sequence gap (lost frame?)"));
        return;
      }
      rx_next_seq_ = static_cast<std::uint8_t>((rx_next_seq_ + 1) & 0x0f);
      rx_buffer_.insert(rx_buffer_.end(), frame.data.begin() + 1,
                        frame.data.begin() + frame.dlc);
      if (rx_buffer_.size() >= rx_expected_) {
        rx_active_ = false;
        rx_buffer_.resize(rx_expected_);
        DeliverIfComplete();
      }
      return;
    }
    default:
      Fail(support::ProtocolError("unknown PCI"));
  }
}

void CanTp::DeliverIfComplete() {
  if (rx_buffer_.size() < 4) {
    Fail(support::Corrupted("message shorter than CRC trailer"));
    return;
  }
  const std::size_t body_len = rx_buffer_.size() - 4;
  const std::uint32_t wire_crc = support::LoadLeU32(rx_buffer_.data() + body_len);
  const std::uint32_t crc =
      support::Crc32(std::span<const std::uint8_t>(rx_buffer_.data(), body_len));
  if (crc != wire_crc) {
    Fail(support::Corrupted("CanTp CRC mismatch"));
    return;
  }
  rx_buffer_.resize(body_len);
  ++messages_received_;
  if (on_message_) on_message_(rx_buffer_);
}

void CanTp::Fail(support::Status status) {
  ++reassembly_errors_;
  if (on_error_) on_error_(status);
}

}  // namespace dacm::bsw
