// AUTOSAR COM module (signal/PDU layer).
//
// Statically configured signals are packed into PDUs and transmitted on the
// CAN bus (direct transmission mode: every SendSignal triggers its PDU).
// Receive-side unpacking fires per-signal notification callbacks and keeps
// a last-value buffer, matching the sender-receiver semantics the RTE maps
// onto COM for inter-ECU communication.
//
// Signals are byte-aligned (offset/length in bytes) — a simplification over
// bit-packed production COM that preserves the layer contract.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bsw/can_if.hpp"
#include "support/bytes.hpp"
#include "support/ids.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

struct PduTag {};
struct SignalTag {};
using PduId = support::StrongId<PduTag>;
using SignalId = support::StrongId<SignalTag>;

enum class PduDirection { kTx, kRx };

class Com {
 public:
  explicit Com(CanIf& can_if);

  Com(const Com&) = delete;
  Com& operator=(const Com&) = delete;

  // --- static configuration (before Init) ----------------------------------

  /// Declares a PDU carried in CAN frames with identifier `can_id`.
  support::Result<PduId> DefinePdu(std::string name, std::uint32_t can_id,
                                   std::uint8_t length, PduDirection direction);

  /// Declares a byte-aligned signal inside `pdu`.
  support::Result<SignalId> DefineSignal(std::string name, PduId pdu,
                                         std::uint8_t byte_offset, std::uint8_t length);

  /// Freezes configuration and binds RX PDUs to CanIf.
  support::Status Init();

  // --- runtime --------------------------------------------------------------

  /// Writes a TX signal and transmits its PDU.
  support::Status SendSignal(SignalId signal, std::span<const std::uint8_t> value);

  /// Reads the last received (or sent) value of a signal.
  support::Status ReadSignal(SignalId signal, std::span<std::uint8_t> out) const;

  using SignalNotification = std::function<void(std::span<const std::uint8_t>)>;

  /// Registers a receive notification for an RX signal.
  support::Status SetRxNotification(SignalId signal, SignalNotification fn);

  std::uint64_t pdus_sent() const { return pdus_sent_; }
  std::uint64_t pdus_received() const { return pdus_received_; }

  support::Result<SignalId> FindSignal(const std::string& name) const;

 private:
  struct Signal {
    std::string name;
    PduId pdu;
    std::uint8_t offset;
    std::uint8_t length;
    SignalNotification notification;
  };
  struct Pdu {
    std::string name;
    std::uint32_t can_id;
    std::uint8_t length;
    PduDirection direction;
    support::Bytes buffer;          // current packed value
    std::vector<SignalId> signals;  // members, for RX fan-out
  };

  void OnPduReceived(std::size_t pdu_index, const sim::CanFrame& frame);

  CanIf& can_if_;
  bool initialized_ = false;
  std::vector<Pdu> pdus_;
  std::vector<Signal> signals_;
  std::uint64_t pdus_sent_ = 0;
  std::uint64_t pdus_received_ = 0;
};

}  // namespace dacm::bsw
