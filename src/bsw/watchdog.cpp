#include "bsw/watchdog.hpp"

namespace dacm::bsw {

Watchdog::Watchdog(sim::Simulator& simulator, Dem& dem, sim::SimTime cycle)
    : simulator_(simulator), dem_(dem), cycle_(cycle) {}

support::Result<SupervisedEntityId> Watchdog::Register(std::string name,
                                                       std::uint32_t min_alive,
                                                       std::uint32_t tolerance,
                                                       DemEventId dem_event) {
  if (started_) return support::FailedPrecondition("Register after Start");
  Entity e;
  e.name = std::move(name);
  e.min_alive = min_alive;
  e.tolerance = tolerance;
  e.dem_event = dem_event;
  entities_.push_back(std::move(e));
  return SupervisedEntityId(static_cast<std::uint32_t>(entities_.size() - 1));
}

void Watchdog::Start() {
  if (started_) return;
  started_ = true;
  simulator_.ScheduleAfter(cycle_, [this]() { CheckCycle(); });
}

support::Status Watchdog::ReportAlive(SupervisedEntityId entity) {
  if (entity.value() >= entities_.size()) return support::NotFound("unknown entity");
  ++entities_[entity.value()].alive_count;
  return support::OkStatus();
}

support::Result<bool> Watchdog::Expired(SupervisedEntityId entity) const {
  if (entity.value() >= entities_.size()) return support::NotFound("unknown entity");
  return entities_[entity.value()].expired;
}

void Watchdog::CheckCycle() {
  for (Entity& e : entities_) {
    if (e.alive_count >= e.min_alive) {
      e.failed_cycles = 0;
      (void)dem_.ReportEvent(e.dem_event, DemEventStatus::kPassed);
    } else {
      ++e.failed_cycles;
      if (e.failed_cycles > e.tolerance) {
        e.expired = true;
        (void)dem_.ReportEvent(e.dem_event, DemEventStatus::kFailed);
      }
    }
    e.alive_count = 0;
  }
  simulator_.ScheduleAfter(cycle_, [this]() { CheckCycle(); });
}

}  // namespace dacm::bsw
