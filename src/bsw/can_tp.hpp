// CAN transport protocol (ISO 15765-2 flavoured segmentation).
//
// Installation packages and multiplexed Type II payloads are larger than a
// classic CAN frame, so they travel segmented:
//
//   single frame  SF: [0x0 | len(<=7)] data...
//   first frame   FF: [0x1] [len u32]  data(3 bytes)
//   consecutive   CF: [0x2 | seq(4 bits wraps)] data(<=7)
//
// One CanTp channel owns one (tx_id, rx_id) CAN identifier pair.  The
// receiver reassembles in order and verifies a trailing CRC32 appended by
// the sender, reporting kCorrupted on mismatch (exercised by the bus
// corruption fault injection).  Flow control is implicit: the simulated
// bus preserves order and the receiver has buffer space for the declared
// maximum message size.
#pragma once

#include <functional>

#include "bsw/can_if.hpp"
#include "support/bytes.hpp"
#include "support/status.hpp"

namespace dacm::bsw {

class CanTp {
 public:
  using MessageHandler = std::function<void(const support::Bytes&)>;
  using ErrorHandler = std::function<void(const support::Status&)>;

  /// `tx_id`: CAN identifier this channel transmits on; `rx_id`: identifier
  /// it reassembles from.  `max_message` bounds receive buffering.
  CanTp(CanIf& can_if, std::uint32_t tx_id, std::uint32_t rx_id,
        std::size_t max_message = 1 << 20);

  CanTp(const CanTp&) = delete;
  CanTp& operator=(const CanTp&) = delete;

  /// Sends one message (segmenting as needed).  A CRC32 trailer is added.
  support::Status Send(std::span<const std::uint8_t> message);

  /// Installs the reassembled-message callback.
  void SetMessageHandler(MessageHandler handler) { on_message_ = std::move(handler); }

  /// Installs the callback invoked on reassembly errors (bad sequence,
  /// CRC mismatch, oversize).
  void SetErrorHandler(ErrorHandler handler) { on_error_ = std::move(handler); }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }
  std::uint64_t reassembly_errors() const { return reassembly_errors_; }

 private:
  enum PciType : std::uint8_t { kSingle = 0x00, kFirst = 0x10, kConsecutive = 0x20 };

  void OnFrame(const sim::CanFrame& frame);
  void Fail(support::Status status);
  void DeliverIfComplete();

  CanIf& can_if_;
  std::uint32_t tx_id_;
  std::size_t max_message_;

  // RX reassembly state.
  bool rx_active_ = false;
  std::size_t rx_expected_ = 0;
  std::uint8_t rx_next_seq_ = 0;
  support::Bytes rx_buffer_;

  MessageHandler on_message_;
  ErrorHandler on_error_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_received_ = 0;
  std::uint64_t reassembly_errors_ = 0;
};

}  // namespace dacm::bsw
