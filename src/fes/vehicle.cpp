#include "fes/vehicle.hpp"

namespace dacm::fes {

namespace {
/// Type I channels carry whole installation packages.
constexpr std::size_t kTypeIMaxLen = 1 << 20;
/// Type II payload: recipient id byte + VM I/O window.
constexpr std::size_t kTypeIIMaxLen = 1 + vm::kIoWindowSize;
}  // namespace

support::Result<rte::PortId> PluginSwcBuilder::AddTypeIIIOut(
    std::uint8_t v_id, const std::string& name, std::size_t max_len,
    pirte::Translator translate) {
  rte::PortConfig port;
  port.name = "vp." + name + ".out";
  port.direction = rte::PortDirection::kProvided;
  port.style = rte::PortStyle::kSenderReceiver;
  port.max_len = max_len;
  DACM_ASSIGN_OR_RETURN(auto port_id,
                        ecu_.ecu_rte().AddPort(config_.swc, std::move(port)));
  pirte::VirtualPortConfig vp;
  vp.id = v_id;
  vp.name = name;
  vp.kind = pirte::VirtualPortKind::kTypeIII;
  vp.swc_out = port_id;
  vp.translate_out = std::move(translate);
  config_.virtual_ports.push_back(std::move(vp));
  return port_id;
}

support::Result<rte::PortId> PluginSwcBuilder::AddTypeIIIIn(
    std::uint8_t v_id, const std::string& name, std::size_t max_len,
    pirte::Translator translate) {
  rte::PortConfig port;
  port.name = "vp." + name + ".in";
  port.direction = rte::PortDirection::kRequired;
  port.style = rte::PortStyle::kSenderReceiver;
  port.max_len = max_len;
  DACM_ASSIGN_OR_RETURN(auto port_id,
                        ecu_.ecu_rte().AddPort(config_.swc, std::move(port)));
  pirte::VirtualPortConfig vp;
  vp.id = v_id;
  vp.name = name;
  vp.kind = pirte::VirtualPortKind::kTypeIII;
  vp.swc_in = port_id;
  vp.translate_in = std::move(translate);
  config_.virtual_ports.push_back(std::move(vp));
  return port_id;
}

Vehicle::Vehicle(sim::Simulator& simulator, sim::Network& network, VehicleParams params)
    : simulator_(simulator),
      network_(network),
      params_(std::move(params)),
      bus_(simulator, params_.can_bit_rate) {}

Ecu& Vehicle::AddEcu(std::uint32_t id, const std::string& name) {
  ecus_.push_back(std::make_unique<Ecu>(simulator_, bus_, id, name));
  return *ecus_.back();
}

Ecu* Vehicle::FindEcu(std::uint32_t id) {
  for (auto& ecu : ecus_) {
    if (ecu->id() == id) return ecu.get();
  }
  return nullptr;
}

support::Result<PluginSwcBuilder*> Vehicle::AddPluginSwc(Ecu& ecu,
                                                         const std::string& pirte_name) {
  pirte::PirteConfig config;
  config.name = pirte_name;
  config.ecu_id = ecu.id();
  DACM_ASSIGN_OR_RETURN(config.swc, ecu.ecu_rte().AddSwc("PluginSWC." + pirte_name));
  DACM_ASSIGN_OR_RETURN(config.nv_block,
                        ecu.nvm().DefineBlock("pirte." + pirte_name, 1 << 20));
  builders_.push_back(std::unique_ptr<PluginSwcBuilder>(
      new PluginSwcBuilder(ecu, std::move(config))));
  return builders_.back().get();
}

support::Status Vehicle::ConnectPluginSwcs(PluginSwcBuilder& a, PluginSwcBuilder& b,
                                           std::uint8_t v_a, std::uint8_t v_b) {
  auto make_pair = [&](PluginSwcBuilder& side, const std::string& peer)
      -> support::Result<std::pair<rte::PortId, rte::PortId>> {
    rte::PortConfig out;
    out.name = "t2.out." + peer;
    out.direction = rte::PortDirection::kProvided;
    out.max_len = kTypeIIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto out_id,
                          side.ecu_.ecu_rte().AddPort(side.config_.swc, std::move(out)));
    rte::PortConfig in;
    in.name = "t2.in." + peer;
    in.direction = rte::PortDirection::kRequired;
    in.max_len = kTypeIIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto in_id,
                          side.ecu_.ecu_rte().AddPort(side.config_.swc, std::move(in)));
    return std::make_pair(out_id, in_id);
  };

  DACM_ASSIGN_OR_RETURN(auto ports_a, make_pair(a, b.name()));
  DACM_ASSIGN_OR_RETURN(auto ports_b, make_pair(b, a.name()));

  if (&a.ecu_ == &b.ecu_) {
    DACM_RETURN_IF_ERROR(a.ecu_.ecu_rte().ConnectLocal(ports_a.first, ports_b.second));
    DACM_RETURN_IF_ERROR(a.ecu_.ecu_rte().ConnectLocal(ports_b.first, ports_a.second));
  } else {
    DACM_RETURN_IF_ERROR(rte::ConnectRemoteTp(a.ecu_.ecu_rte(), ports_a.first,
                                              b.ecu_.ecu_rte(), ports_b.second,
                                              can_ids_.Allocate(), kTypeIIMaxLen + 64));
    DACM_RETURN_IF_ERROR(rte::ConnectRemoteTp(b.ecu_.ecu_rte(), ports_b.first,
                                              a.ecu_.ecu_rte(), ports_a.second,
                                              can_ids_.Allocate(), kTypeIIMaxLen + 64));
  }

  pirte::VirtualPortConfig vp_a;
  vp_a.id = v_a;
  vp_a.name = "t2." + a.name() + "->" + b.name();
  vp_a.kind = pirte::VirtualPortKind::kTypeII;
  vp_a.swc_out = ports_a.first;
  vp_a.swc_in = ports_a.second;
  a.config_.virtual_ports.push_back(std::move(vp_a));

  pirte::VirtualPortConfig vp_b;
  vp_b.id = v_b;
  vp_b.name = "t2." + b.name() + "->" + a.name();
  vp_b.kind = pirte::VirtualPortKind::kTypeII;
  vp_b.swc_out = ports_b.first;
  vp_b.swc_in = ports_b.second;
  b.config_.virtual_ports.push_back(std::move(vp_b));
  return support::OkStatus();
}

support::Status Vehicle::DesignateEcm(PluginSwcBuilder& builder,
                                      const std::string& server_address) {
  if (ecm_builder_ != nullptr) {
    return support::AlreadyExists("ECM already designated");
  }
  ecm_builder_ = &builder;
  server_address_ = server_address;
  return support::OkStatus();
}

support::Status Vehicle::Finalize() {
  if (finalized_) return support::FailedPrecondition("Vehicle::Finalize called twice");
  if (ecm_builder_ == nullptr) {
    return support::FailedPrecondition("no ECM designated");
  }

  // Create the Type I channels: one pair per non-ECM plug-in SW-C.
  std::vector<pirte::EcmRoute> routes;
  for (auto& builder : builders_) {
    if (builder.get() == ecm_builder_) continue;

    rte::Rte& ecm_rte = ecm_builder_->ecu_.ecu_rte();
    rte::Rte& swc_rte = builder->ecu_.ecu_rte();
    const std::string suffix = builder->name();

    rte::PortConfig ecm_out;
    ecm_out.name = "t1.out." + suffix;
    ecm_out.direction = rte::PortDirection::kProvided;
    ecm_out.max_len = kTypeIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto ecm_out_id,
                          ecm_rte.AddPort(ecm_builder_->config_.swc, std::move(ecm_out)));
    rte::PortConfig ecm_in;
    ecm_in.name = "t1.in." + suffix;
    ecm_in.direction = rte::PortDirection::kRequired;
    ecm_in.max_len = kTypeIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto ecm_in_id,
                          ecm_rte.AddPort(ecm_builder_->config_.swc, std::move(ecm_in)));

    rte::PortConfig swc_out;
    swc_out.name = "t1.out";
    swc_out.direction = rte::PortDirection::kProvided;
    swc_out.max_len = kTypeIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto swc_out_id,
                          swc_rte.AddPort(builder->config_.swc, std::move(swc_out)));
    rte::PortConfig swc_in;
    swc_in.name = "t1.in";
    swc_in.direction = rte::PortDirection::kRequired;
    swc_in.max_len = kTypeIMaxLen;
    DACM_ASSIGN_OR_RETURN(auto swc_in_id,
                          swc_rte.AddPort(builder->config_.swc, std::move(swc_in)));

    if (&ecm_builder_->ecu_ == &builder->ecu_) {
      DACM_RETURN_IF_ERROR(ecm_rte.ConnectLocal(ecm_out_id, swc_in_id));
      DACM_RETURN_IF_ERROR(swc_rte.ConnectLocal(swc_out_id, ecm_in_id));
    } else {
      // Type I installation traffic gets low-priority (high) CAN ids so it
      // cannot starve control traffic: allocate from a high base.
      DACM_RETURN_IF_ERROR(rte::ConnectRemoteTp(ecm_rte, ecm_out_id, swc_rte, swc_in_id,
                                                0x200 + can_ids_.Allocate(),
                                                kTypeIMaxLen + 64));
      DACM_RETURN_IF_ERROR(rte::ConnectRemoteTp(swc_rte, swc_out_id, ecm_rte, ecm_in_id,
                                                0x200 + can_ids_.Allocate(),
                                                kTypeIMaxLen + 64));
    }

    builder->config_.type1_out = swc_out_id;
    builder->config_.type1_in = swc_in_id;
    routes.push_back(pirte::EcmRoute{builder->ecu_.id(), ecm_out_id, ecm_in_id});
  }

  // Construct + init the PIRTEs (ECM included).
  for (auto& builder : builders_) {
    if (builder.get() == ecm_builder_) {
      pirte::EcmConfig ecm_config;
      ecm_config.server_address = server_address_;
      ecm_config.vin = params_.vin;
      ecm_config.routes = routes;
      auto ecm = std::make_unique<pirte::Ecm>(
          builder->ecu_.ecu_rte(), &builder->ecu_.nvm(), &builder->ecu_.dem(),
          network_, std::move(builder->config_), std::move(ecm_config));
      ecm_ = ecm.get();
      pirtes_.push_back(std::move(ecm));
    } else {
      pirtes_.push_back(std::make_unique<pirte::Pirte>(
          builder->ecu_.ecu_rte(), &builder->ecu_.nvm(), &builder->ecu_.dem(),
          std::move(builder->config_)));
    }
    DACM_RETURN_IF_ERROR(pirtes_.back()->Init());
  }

  // Start every ECU.
  for (auto& ecu : ecus_) {
    DACM_RETURN_IF_ERROR(ecu->Start());
  }
  finalized_ = true;
  return support::OkStatus();
}

pirte::Pirte* Vehicle::FindPirte(const std::string& name) {
  for (auto& pirte : pirtes_) {
    if (pirte->config().name == name) return pirte.get();
  }
  return nullptr;
}

}  // namespace dacm::fes
