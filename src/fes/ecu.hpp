// One simulated ECU: the full per-node AUTOSAR stack bundled together.
//
// Construction wires OS + CanIf + COM + RTE + NvM + Dem onto the shared
// CAN bus; examples and the Vehicle builder then declare SW-Cs, runnables
// and connectors before Start() freezes the configuration.
#pragma once

#include <memory>
#include <string>

#include "bsw/com.hpp"
#include "bsw/dem.hpp"
#include "bsw/nvm.hpp"
#include "os/os.hpp"
#include "rte/rte.hpp"
#include "sim/can_bus.hpp"

namespace dacm::fes {

class Ecu {
 public:
  Ecu(sim::Simulator& simulator, sim::CanBus& bus, std::uint32_t id, std::string name)
      : id_(id),
        name_(std::move(name)),
        os_(simulator, name_),
        can_if_(bus, name_),
        com_(can_if_),
        rte_(os_, can_if_, com_),
        dem_(simulator) {}

  Ecu(const Ecu&) = delete;
  Ecu& operator=(const Ecu&) = delete;

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }

  os::Os& ecu_os() { return os_; }
  bsw::CanIf& can_if() { return can_if_; }
  bsw::Com& com() { return com_; }
  rte::Rte& ecu_rte() { return rte_; }
  bsw::Nvm& nvm() { return nvm_; }
  bsw::Dem& dem() { return dem_; }

  /// Freezes COM + RTE and starts the OS.
  support::Status Start() {
    DACM_RETURN_IF_ERROR(com_.Init());
    DACM_RETURN_IF_ERROR(rte_.Finalize());
    return os_.StartOs();
  }

 private:
  std::uint32_t id_;
  std::string name_;
  os::Os os_;
  bsw::CanIf can_if_;
  bsw::Com com_;
  rte::Rte rte_;
  bsw::Nvm nvm_;
  bsw::Dem dem_;
};

}  // namespace dacm::fes
