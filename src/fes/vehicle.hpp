// Vehicle assembly kit.
//
// Builds the in-vehicle side of the paper's architecture: ECUs on a shared
// CAN bus, plug-in SW-Cs with their PIRTEs, the ECM, and the static Type
// I/II channels between them.  Usage follows the AUTOSAR methodology's
// phases:
//
//   Vehicle vehicle(simulator, network, {vin, model});
//   Ecu& ecu1 = vehicle.AddEcu(1, "ECU1");
//   Ecu& ecu2 = vehicle.AddEcu(2, "ECU2");
//   ... declare built-in SW-Cs / runnables on ecuX.ecu_rte() ...
//   PluginSwcBuilder& p1 = vehicle.AddPluginSwc(ecu1, "PIRTE1");
//   PluginSwcBuilder& p2 = vehicle.AddPluginSwc(ecu2, "PIRTE2");
//   auto wheels = p2.AddTypeIIIOut(4, "WheelsReq");   // SW-C port to wire up
//   ... ConnectLocal(wheels, builtin_required_port) ...
//   vehicle.ConnectPluginSwcs(p1, p2, 0, 3);          // Type II pair V0/V3
//   vehicle.DesignateEcm(p1, "server-addr");
//   vehicle.Finalize();                               // constructs PIRTEs/ECM, starts ECUs
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fes/ecu.hpp"
#include "pirte/ecm.hpp"
#include "pirte/pirte.hpp"
#include "rte/system.hpp"
#include "sim/network.hpp"

namespace dacm::fes {

struct VehicleParams {
  std::string vin;
  std::string model;
  std::uint32_t can_bit_rate = 500'000;
};

class Vehicle;

/// Accumulates the static (OEM) configuration of one plug-in SW-C before
/// the PIRTE is constructed at Vehicle::Finalize().
class PluginSwcBuilder {
 public:
  /// Declares a Type III virtual port for plug-in -> system data; returns
  /// the provided SW-C port to connect to built-in software.
  support::Result<rte::PortId> AddTypeIIIOut(std::uint8_t v_id, const std::string& name,
                                             std::size_t max_len = 64,
                                             pirte::Translator translate = {});

  /// Declares a Type III virtual port for system -> plug-in data; returns
  /// the required SW-C port that built-in software feeds.
  support::Result<rte::PortId> AddTypeIIIIn(std::uint8_t v_id, const std::string& name,
                                            std::size_t max_len = 64,
                                            pirte::Translator translate = {});

  /// VM scheduling / quota knobs (defaults are sensible).
  void SetVmLimits(const vm::VmLimits& limits) { config_.vm_limits = limits; }
  void SetStepPeriod(sim::SimTime period) { config_.step_period = period; }
  void SetVmTaskPriority(std::uint8_t priority) { config_.vm_task_priority = priority; }
  void SetMaxPlugins(std::size_t count) { config_.max_plugins = count; }
  void SetMaxBinarySize(std::size_t bytes) { config_.max_binary_size = bytes; }

  Ecu& ecu() { return ecu_; }
  rte::SwcId swc() const { return config_.swc; }
  const std::string& name() const { return config_.name; }

 private:
  friend class Vehicle;
  PluginSwcBuilder(Ecu& ecu, pirte::PirteConfig config) : ecu_(ecu), config_(std::move(config)) {}

  Ecu& ecu_;
  pirte::PirteConfig config_;
};

class Vehicle {
 public:
  Vehicle(sim::Simulator& simulator, sim::Network& network, VehicleParams params);

  Vehicle(const Vehicle&) = delete;
  Vehicle& operator=(const Vehicle&) = delete;

  /// Adds an ECU to the vehicle's CAN bus.
  Ecu& AddEcu(std::uint32_t id, const std::string& name);
  Ecu* FindEcu(std::uint32_t id);

  /// Adds the plug-in SW-C (with its future PIRTE `pirte_name`) to `ecu`.
  support::Result<PluginSwcBuilder*> AddPluginSwc(Ecu& ecu,
                                                  const std::string& pirte_name);

  /// Creates a Type II channel between two plug-in SW-Cs; `v_a` / `v_b` are
  /// the vehicle-scope virtual-port ids each side exposes for it.
  support::Status ConnectPluginSwcs(PluginSwcBuilder& a, PluginSwcBuilder& b,
                                    std::uint8_t v_a, std::uint8_t v_b);

  /// Marks `builder`'s SW-C as the ECM and sets the trusted-server address.
  support::Status DesignateEcm(PluginSwcBuilder& builder,
                               const std::string& server_address);

  /// Creates the Type I channels, constructs every PIRTE and the ECM,
  /// initializes them, and starts all ECUs.
  support::Status Finalize();

  // --- access after Finalize ---------------------------------------------------

  pirte::Pirte* FindPirte(const std::string& name);
  pirte::Ecm* ecm() { return ecm_; }
  const std::string& vin() const { return params_.vin; }
  const std::string& model() const { return params_.model; }
  sim::CanBus& bus() { return bus_; }

 private:
  sim::Simulator& simulator_;
  sim::Network& network_;
  VehicleParams params_;
  sim::CanBus bus_;
  rte::CanIdAllocator can_ids_;
  std::vector<std::unique_ptr<Ecu>> ecus_;
  std::vector<std::unique_ptr<PluginSwcBuilder>> builders_;
  PluginSwcBuilder* ecm_builder_ = nullptr;
  std::string server_address_;
  std::vector<std::unique_ptr<pirte::Pirte>> pirtes_;
  pirte::Ecm* ecm_ = nullptr;
  bool finalized_ = false;
};

}  // namespace dacm::fes
