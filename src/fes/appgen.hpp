// Synthetic APP generation for tests and benchmarks.
//
// Produces well-formed server::App records with assembled PVM binaries:
// echo plug-ins (forward every message from port 0 to port 1), counters,
// compute kernels with tunable instruction counts, and multi-plug-in apps
// with dependency chains — the workload generators behind FIG2-A/B and
// the property tests.
#pragma once

#include <cstdint>
#include <string>

#include "server/model.hpp"
#include "support/status.hpp"

namespace dacm::fes {

/// Assembles PVM source; aborts on assembly failure (generator bug).
support::Bytes AssembleOrDie(const std::string& source);

/// A plug-in that, on data at local port 0, copies the payload to local
/// port 1.
support::Bytes MakeEchoPluginBinary();

/// A plug-in whose `step` entry increments register 1 and writes the
/// counter (1 byte) to local port 0.
support::Bytes MakeCounterPluginBinary();

/// A plug-in whose `on_data` entry runs `iterations` loop turns before
/// halting (fuel-consumption workload).
support::Bytes MakeSpinPluginBinary(std::uint32_t iterations);

/// A plug-in that immediately faults (TRAP) in `on_data`.
support::Bytes MakeTrapPluginBinary();

/// Parameters for synthetic app construction.
struct SyntheticAppParams {
  std::string name;
  std::string version = "1.0";
  std::string vehicle_model;
  std::uint32_t plugin_count = 1;
  std::uint32_t ports_per_plugin = 2;  // >= 2
  std::uint32_t target_ecu = 1;        // all plug-ins placed here
  std::vector<std::string> depends_on;
  std::vector<std::string> conflicts_with;
  /// Extra (unreachable) code bytes appended to each plug-in binary so
  /// fleet benchmarks can dial in realistic package sizes.
  std::uint32_t binary_padding = 0;
};

/// Returns `binary` with `padding` NOP bytes appended after the program's
/// code (unreachable; entry points and behavior are unchanged).
support::Bytes PadBinary(const support::Bytes& binary, std::uint32_t padding);

/// Builds an app of echo plug-ins; port 0 of each plug-in is declared
/// required, the rest provided and PIRTE-direct (kNone connections), so
/// the app deploys against any vehicle model without virtual-port
/// requirements.
server::App MakeSyntheticApp(const SyntheticAppParams& params);

}  // namespace dacm::fes
