// Scripted fleet construction at scale.
//
// A ScriptedFleet stands in for thousands of vehicles in server-side
// campaign tests and the fleet benchmark: each endpoint is just a network
// peer that says Hello for its VIN and acknowledges every push — no CAN
// bus, ECUs or PIRTEs — so a 10k-vehicle fleet costs a few MB instead of
// a few GB, and the measured work is the *server's* pipeline.
//
// Endpoints understand all three push shapes: per-plug-in
// kInstallPackage / kUninstall messages (answered with one kAck each),
// campaign kInstallBatch messages, and rollback kUninstallBatch messages
// (each batch answered with a single kAckBatch covering every embedded
// entry).  Parsing uses the zero-copy views, so the per-message
// vehicle-side cost stays far below the server-side work being measured.
//
// The fleet doubles as a sim::FleetFaultTarget: fault scenarios
// (sim/fault.hpp) can churn endpoints offline (the connection closes;
// BringOnline re-dials and re-announces the VIN) and arm transient nacks
// (the endpoint rejects every push until a sim-time heals it) — the
// failure modes the campaign engine's retry machine must converge over.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pirte/package.hpp"
#include "server/server.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "support/metrics.hpp"

namespace dacm::fes {

struct ScriptedFleetOptions {
  std::size_t vehicle_count = 1;
  std::string vin_prefix = "FLEET-";
  std::string model = "rpi-testbed";
  /// Multi-model fleets: vehicle i binds to models[i % models.size()]
  /// (round-robin, so every model gets an equal cohort).  Empty (the
  /// default) binds the whole fleet to `model`.  Every named model must
  /// be uploaded before BindAndConnect.
  std::vector<std::string> models;
  /// Answer campaign batches with one kAckBatch (the cheap path).  When
  /// false, every embedded package is acknowledged individually — useful
  /// to exercise the server's mixed-ack handling.
  bool batch_ack = true;
  /// Acks report failure for every Nth vehicle (0 = all succeed).
  std::size_t nack_every = 0;
};

class ScriptedFleet : public sim::FleetFaultTarget {
 public:
  /// Creates the endpoints; call BindAndConnect before deploying.
  ScriptedFleet(sim::Simulator& simulator, sim::Network& network,
                server::TrustedServer& server, ScriptedFleetOptions options);

  /// Binds every VIN to `user` on the server, connects each endpoint and
  /// runs the simulator until the Hellos have settled.
  support::Status BindAndConnect(server::UserId user);

  // --- sim::FleetFaultTarget -------------------------------------------------
  std::size_t FleetSize() const override { return vins_.size(); }
  /// Closes the endpoint's connection; pushes fail until BringOnline.
  support::Status TakeOffline(std::size_t index) override;
  /// Re-dials the server and re-announces the VIN (no-op when online).
  support::Status BringOnline(std::size_t index) override;
  /// The endpoint nacks every push received before sim time `until`.
  void SetTransientNack(std::size_t index, sim::SimTime until) override;

  // --- crash-recovery harness ------------------------------------------------

  /// Points the fleet at a successor server (same address).  Call from the
  /// KillAndRestartServer restart closure: the old TrustedServer reference
  /// dangles the moment the kill closure destroys it.
  void RetargetServer(server::TrustedServer& server) { server_ = &server; }

  /// Re-dials every endpoint that believes it is online but whose peer
  /// died underneath it (the killed server closed all Pusher connections).
  /// Returns the number of endpoints re-dialed.  Run the simulator
  /// afterwards so the Hellos settle.
  std::size_t RedialDead();

  bool online(std::size_t index) const;

  /// Starts a time-to-install observation window: each endpoint's *first*
  /// install batch delivered after this call observes
  /// `now - epoch` (µs of sim time) into the
  /// `dacm_fleet_time_to_install_us` histogram.  Call right before
  /// DeployCampaign / StartCampaign; call again to re-arm for the next
  /// campaign.  Vehicle-side view of deploy latency: it includes wave
  /// scheduling and retry delay, which the server's push→ack round-trip
  /// histogram does not.
  void MarkCampaignEpoch();

  const std::vector<std::string>& vins() const { return vins_; }
  std::uint64_t batches_received() const {
    return batches_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t uninstall_batches_received() const {
    return uninstall_batches_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t packages_received() const {
    return packages_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t acks_sent() const {
    return acks_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t nacks_sent() const {
    return nacks_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  /// Redial budget for a BringOnline that collides with a link flap
  /// (100 ms cadence -> up to ~6.4 s of outage bridged per churn).
  static constexpr std::uint8_t kMaxRedials = 64;

  /// The model vehicle `index` binds to (round-robin over options.models,
  /// or the single-model fallback).
  const std::string& ModelOf(std::size_t index) const;
  /// Dials the server, installs the receive handler and says Hello.
  support::Status ConnectEndpoint(std::size_t index);
  void OnMessage(std::size_t index, const support::SharedBytes& data);

  sim::Simulator& simulator_;
  sim::Network& network_;
  /// Never null; a pointer (not a reference) so RetargetServer can swap in
  /// the recovered successor after a kill.
  server::TrustedServer* server_;
  ScriptedFleetOptions options_;
  // Endpoint state as parallel columns indexed by fleet position — no
  // per-vehicle heap row, so a million-endpoint fleet is five flat
  // arrays.  Message handlers capture the index, never a pointer into
  // the columns (which may reallocate while connects are in flight).
  std::vector<std::string> vins_;
  std::vector<std::shared_ptr<sim::NetPeer>> peers_;
  std::vector<std::uint8_t> online_;
  std::vector<sim::SimTime> nack_until_;
  std::vector<std::uint8_t> redials_left_;
  /// Time-to-install window (MarkCampaignEpoch): the epoch sim time, and
  /// a per-endpoint "already observed this window" flag.  0 = no window
  /// armed.  Message delivery runs on the sim thread, so plain columns
  /// suffice.
  sim::SimTime observe_epoch_ = 0;
  std::vector<std::uint8_t> observed_;
  /// Bound at construction so the family is registered (and therefore
  /// exposed, with count 0) even before the first observation window —
  /// the metrics-smoke gate requires its presence in any fleet run.
  support::Histogram& time_to_install_us_;
  /// Atomic (relaxed): with parallel sim lanes, endpoints on different
  /// lanes handle deliveries concurrently.  Each endpoint's *column*
  /// state (online_, nack_until_, observed_) stays plain — a vehicle is
  /// pinned to one lane, so its columns are single-threaded per window;
  /// only these fleet-wide tallies are shared.
  std::atomic<std::uint64_t> batches_received_{0};
  std::atomic<std::uint64_t> uninstall_batches_received_{0};
  std::atomic<std::uint64_t> packages_received_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> nacks_sent_{0};
  /// Control-plane only (BringOnline / RedialDead run on lane 0).
  std::uint64_t reconnects_ = 0;
};

}  // namespace dacm::fes
