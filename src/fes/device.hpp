// External devices for federated embedded systems.
//
// An ExternalDevice models the paper's smart phone (or any off-board FES
// participant): it listens on a network address, accepts connections from
// vehicle ECMs (opened per the ECC), and exchanges FesFrames with them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pirte/protocol.hpp"
#include "sim/network.hpp"

namespace dacm::fes {

class ExternalDevice {
 public:
  using FrameHandler =
      std::function<void(const std::string& message_id, const support::Bytes& payload)>;

  ExternalDevice(sim::Network& network, std::string address)
      : network_(network), address_(std::move(address)) {}

  ExternalDevice(const ExternalDevice&) = delete;
  ExternalDevice& operator=(const ExternalDevice&) = delete;

  /// Begins listening for ECM connections.
  support::Status Start() {
    return network_.Listen(address_, [this](std::shared_ptr<sim::NetPeer> peer) {
      peer->SetReceiveHandler(
          [this](const support::SharedBytes& data) { OnFrame(data); });
      peers_.push_back(std::move(peer));
    });
  }

  /// Sends one FES frame to every connected vehicle; the serialized frame
  /// is shared across peers (refcount, not a copy per connection).
  support::Status Send(const std::string& message_id,
                       std::span<const std::uint8_t> payload) {
    if (peers_.empty()) return support::Unavailable("no vehicle connected");
    pirte::FesFrame frame;
    frame.message_id = message_id;
    frame.payload.assign(payload.begin(), payload.end());
    const support::SharedBytes wire(frame.Serialize());
    for (auto& peer : peers_) {
      DACM_RETURN_IF_ERROR(peer->Send(wire));
    }
    return support::OkStatus();
  }

  /// Installs the handler for frames arriving from vehicles.
  void SetFrameHandler(FrameHandler handler) { on_frame_ = std::move(handler); }

  std::size_t connections() const { return peers_.size(); }
  std::uint64_t frames_received() const { return frames_received_; }
  const std::string& address() const { return address_; }

 private:
  void OnFrame(const support::SharedBytes& data) {
    auto frame = pirte::FesFrame::Deserialize(data);
    if (!frame.ok()) return;
    ++frames_received_;
    if (on_frame_) on_frame_(frame->message_id, frame->payload);
  }

  sim::Network& network_;
  std::string address_;
  std::vector<std::shared_ptr<sim::NetPeer>> peers_;
  FrameHandler on_frame_;
  std::uint64_t frames_received_ = 0;
};

}  // namespace dacm::fes
