// The paper's §4 example application as a reusable fixture (Figure 3).
//
// Reproduces the open-source test platform: a model car with two
// RPi-class ECUs — ECU1 hosts the ECM (PIRTE1), ECU2 hosts a plug-in SW-C
// (PIRTE2) in front of the motor-control built-in software — federated
// with a smart phone through the trusted server.
//
// The RemoteCar APP contains the two plug-ins of the paper:
//  * COM (on ECU1/ECM): listens to phone signals 'Wheels' / 'Speed'
//    (external-inbound connections on P0/P1) and forwards them over the
//    Type II channel V0 to OP's ports (PLC {P0-, P1-, P2-V0.P0, P3-V0.P1});
//  * OP (on ECU2): receives on P0/P1 and writes the control values through
//    virtual ports WheelsReq (V4) and SpeedReq (V5) into the built-in
//    software (PLC {P2-V4, P3-V5}); V6 (SpeedProv) is exposed but unused,
//    "set up by the OEM for the use of future plug-ins".
//
// Control payloads are 4-byte little-endian signed integers.
#pragma once

#include <memory>

#include "fes/device.hpp"
#include "fes/vehicle.hpp"
#include "pirte/guard.hpp"
#include "server/server.hpp"

namespace dacm::fes {

struct Figure3Options {
  std::string server_address = "10.0.0.1:443";
  std::string phone_address = "111.22.33.44:56789";
  std::string vin = "VIN-0001";
  std::string vehicle_model = "rpi-testbed";
  sim::SimTime network_latency = 20 * sim::kMillisecond;
  /// OEM fault protection on the critical signals (paper §3.1.1): wheel
  /// angles outside [-45, 45] are clamped; speeds outside [0, 100] dropped.
  bool guard_critical_signals = true;
};

/// Builds the server::App for the remote-control-car application.
server::App MakeRemoteCarApp(const std::string& phone_address);

/// OEM upload for the rpi-testbed model (Figure 3's HW/SystemSW confs).
server::VehicleModelConf MakeRpiTestbedConf();

class Figure3Testbed {
 public:
  /// Assembles the whole federation and runs the simulator until the ECM
  /// is connected to the trusted server.
  static support::Result<std::unique_ptr<Figure3Testbed>> Create(
      Figure3Options options = {});

  /// Uploads the model conf + RemoteCar app and creates the user binding.
  support::Status SetUp();

  /// User-triggered deployment of the RemoteCar app; runs the simulator
  /// until the server records kInstalled (or `timeout` elapses).
  support::Status DeployRemoteCar(sim::SimTime timeout = 5 * sim::kSecond);

  /// Sends a phone command and runs the simulator until the built-in
  /// software observes it (or `timeout`).  Returns the end-to-end latency.
  support::Result<sim::SimTime> SendWheels(std::int32_t angle,
                                           sim::SimTime timeout = 2 * sim::kSecond);
  support::Result<sim::SimTime> SendSpeed(std::int32_t speed,
                                          sim::SimTime timeout = 2 * sim::kSecond);

  // --- state observed by the built-in motor-control software ---------------
  std::int32_t last_wheels() const { return last_wheels_; }
  std::int32_t last_speed() const { return last_speed_; }
  std::uint64_t wheels_commands() const { return wheels_commands_; }
  std::uint64_t speed_commands() const { return speed_commands_; }

  // --- components ------------------------------------------------------------
  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return network_; }
  server::TrustedServer& server() { return *server_; }
  ExternalDevice& phone() { return *phone_; }
  Vehicle& vehicle() { return *vehicle_; }
  server::UserId user() const { return user_; }
  const Figure3Options& options() const { return options_; }
  /// The critical-signal guards (null when guard_critical_signals is off).
  pirte::SignalGuard* wheels_guard() { return wheels_guard_.get(); }
  pirte::SignalGuard* speed_guard() { return speed_guard_.get(); }

  /// Runs the simulator until `pred` holds or `timeout` elapses.
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout);

 private:
  explicit Figure3Testbed(Figure3Options options);
  support::Status Build();

  Figure3Options options_;
  sim::Simulator simulator_;
  sim::Network network_;
  std::unique_ptr<server::TrustedServer> server_;
  std::unique_ptr<ExternalDevice> phone_;
  std::unique_ptr<Vehicle> vehicle_;
  std::shared_ptr<pirte::SignalGuard> wheels_guard_;
  std::shared_ptr<pirte::SignalGuard> speed_guard_;
  server::UserId user_ = server::UserId::Invalid();

  std::int32_t last_wheels_ = 0;
  std::int32_t last_speed_ = 0;
  std::uint64_t wheels_commands_ = 0;
  std::uint64_t speed_commands_ = 0;
};

/// Encodes a 4-byte little-endian signed control value.
support::Bytes EncodeControl(std::int32_t value);
/// Decodes one (returns 0 on malformed input).
std::int32_t DecodeControl(std::span<const std::uint8_t> data);

}  // namespace dacm::fes
