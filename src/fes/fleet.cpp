#include "fes/fleet.hpp"

#include <string_view>

#include "pirte/package.hpp"
#include "pirte/protocol.hpp"
#include "support/metrics.hpp"

namespace dacm::fes {
namespace {

// FNV-1a over the VIN: the same stable-hash family the server's shard
// router uses, so a vehicle's sim lane is a pure function of its VIN —
// identical across runs, reconnects, and lane counts.
std::uint64_t VinHash(std::string_view vin) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : vin) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

ScriptedFleet::ScriptedFleet(sim::Simulator& simulator, sim::Network& network,
                             server::TrustedServer& server,
                             ScriptedFleetOptions options)
    : simulator_(simulator),
      network_(network),
      server_(&server),
      options_(std::move(options)),
      time_to_install_us_(support::Metrics::Instance().GetHistogram(
          "dacm_fleet_time_to_install_us")) {
  vins_.reserve(options_.vehicle_count);
  for (std::size_t i = 0; i < options_.vehicle_count; ++i) {
    vins_.push_back(options_.vin_prefix + std::to_string(i));
  }
  peers_.resize(options_.vehicle_count);
  online_.assign(options_.vehicle_count, 0);
  nack_until_.assign(options_.vehicle_count, 0);
  redials_left_.assign(options_.vehicle_count, kMaxRedials);
}

const std::string& ScriptedFleet::ModelOf(std::size_t index) const {
  if (options_.models.empty()) return options_.model;
  return options_.models[index % options_.models.size()];
}

support::Status ScriptedFleet::ConnectEndpoint(std::size_t index) {
  DACM_ASSIGN_OR_RETURN(peers_[index], network_.Connect(server_->address()));
  // Pushes to this vehicle fire on its VIN-hashed simulator lane, so with
  // ConfigureLanes(N) the fleet's receive handlers spread over N lanes
  // while the server-side peers stay on the control plane (lane 0).
  peers_[index]->SetLane(simulator_.LaneForKey(VinHash(vins_[index])));
  peers_[index]->SetReceiveHandler(
      [this, index](const support::SharedBytes& data) {
        OnMessage(index, data);
      });

  pirte::Envelope hello;
  hello.kind = pirte::Envelope::Kind::kHello;
  hello.vin = vins_[index];
  DACM_RETURN_IF_ERROR(peers_[index]->Send(hello.Serialize()));
  online_[index] = 1;
  return support::OkStatus();
}

support::Status ScriptedFleet::BindAndConnect(server::UserId user) {
  for (std::size_t i = 0; i < vins_.size(); ++i) {
    DACM_RETURN_IF_ERROR(server_->BindVehicle(user, vins_[i], ModelOf(i)));
    DACM_RETURN_IF_ERROR(ConnectEndpoint(i));
  }
  simulator_.Run();
  for (const std::string& vin : vins_) {
    if (!server_->VehicleOnline(vin)) {
      return support::Unavailable("fleet endpoint failed to come online: " + vin);
    }
  }
  return support::OkStatus();
}

support::Status ScriptedFleet::TakeOffline(std::size_t index) {
  if (index >= vins_.size()) return support::OutOfRange("fleet index");
  if (online_[index] == 0) return support::OkStatus();
  peers_[index]->Close();
  online_[index] = 0;
  return support::OkStatus();
}

support::Status ScriptedFleet::BringOnline(std::size_t index) {
  if (index >= vins_.size()) return support::OutOfRange("fleet index");
  if (online_[index] != 0) return support::OkStatus();
  auto status = ConnectEndpoint(index);
  if (!status.ok()) {
    // The WAN may be mid-flap; redial later like a real ECM's reconnect
    // alarm would, so a churn return that collides with a link flap does
    // not strand the vehicle offline forever.  Only a downed link is
    // worth retrying (a missing listener is permanent), and the redials
    // are bounded so a never-healing outage cannot keep the simulator's
    // event queue non-empty forever.  The retry event captures `this`:
    // the fleet must outlive the simulator run, like every endpoint
    // handler already requires.
    if (status.code() == support::ErrorCode::kUnavailable &&
        redials_left_[index] > 0) {
      --redials_left_[index];
      simulator_.ScheduleAfter(100 * sim::kMillisecond,
                               [this, index] { (void)BringOnline(index); });
    }
    return status;
  }
  redials_left_[index] = kMaxRedials;
  ++reconnects_;
  return support::OkStatus();
}

void ScriptedFleet::SetTransientNack(std::size_t index, sim::SimTime until) {
  if (index >= vins_.size()) return;
  nack_until_[index] = until;
}

void ScriptedFleet::MarkCampaignEpoch() {
  observe_epoch_ = simulator_.Now();
  observed_.assign(vins_.size(), 0);
}

std::size_t ScriptedFleet::RedialDead() {
  std::size_t redialed = 0;
  for (std::size_t i = 0; i < vins_.size(); ++i) {
    if (online_[i] == 0 || peers_[i]->connected()) continue;
    // The server died under this endpoint: its Pusher side closed every
    // connection, but the endpoint never asked to go offline.  Flip it
    // offline and reuse the BringOnline redial machinery (including the
    // flap-bridging retry alarm).
    online_[i] = 0;
    (void)BringOnline(i);
    ++redialed;
  }
  return redialed;
}

bool ScriptedFleet::online(std::size_t index) const {
  return index < vins_.size() && online_[index] != 0 &&
         peers_[index]->connected();
}

void ScriptedFleet::OnMessage(std::size_t index,
                              const support::SharedBytes& data) {
  auto envelope = pirte::EnvelopeView::Parse(data);
  if (!envelope.ok() || envelope->kind != pirte::Envelope::Kind::kPirteMessage) {
    return;
  }
  auto view = pirte::PirteMessageView::Parse(envelope->message);
  if (!view.ok()) return;

  const bool scripted_nack =
      options_.nack_every != 0 && (index + 1) % options_.nack_every == 0;
  const bool transient_nack = simulator_.Now() < nack_until_[index];
  const bool ack_ok = !scripted_nack && !transient_nack;

  // One-pass framing (envelope + message into a single sized buffer):
  // the vehicle side of a campaign sends one of these per push, and the
  // fleet stands in for thousands of vehicles.  All replies funnel
  // through send_wire so the ack counters have exactly one home.
  auto send_wire = [&](support::SharedBytes wire) {
    if (peers_[index]->Send(std::move(wire)).ok()) {
      acks_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!ack_ok) nacks_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto send_reply = [&](const pirte::PirteMessage& reply) {
    send_wire(pirte::SerializeEnveloped(vins_[index], reply));
  };

  switch (view->type) {
    case pirte::MessageType::kInstallBatch:
    case pirte::MessageType::kUninstallBatch: {
      if (view->type == pirte::MessageType::kInstallBatch) {
        batches_received_.fetch_add(1, std::memory_order_relaxed);
        // First install batch since MarkCampaignEpoch: the vehicle-side
        // time-to-install sample (sim µs from epoch to wire delivery).
        if (observe_epoch_ != 0 && index < observed_.size() &&
            observed_[index] == 0) {
          observed_[index] = 1;
          time_to_install_us_.Observe(simulator_.Now() - observe_epoch_);
        }
      } else {
        uninstall_batches_received_.fetch_add(1, std::memory_order_relaxed);
      }
      // Verdict views alias the delivered buffer (alive for the whole
      // handler); the scratch vector is reused across messages and is
      // thread-local because handlers on different sim lanes run
      // concurrently.
      static thread_local std::vector<pirte::BatchAckEntryView>
          verdict_scratch_;
      verdict_scratch_.clear();
      auto status = pirte::ForEachInBatch(
          view->payload, [&](std::span<const std::uint8_t> entry) {
            auto inner = pirte::PirteMessageView::Parse(entry);
            if (!inner.ok()) return inner.status();
            packages_received_.fetch_add(1, std::memory_order_relaxed);
            verdict_scratch_.push_back(pirte::BatchAckEntryView{
                inner->plugin_name, ack_ok,
                ack_ok ? std::string_view() : std::string_view("scripted nack")});
            return support::OkStatus();
          });
      if (!status.ok()) return;
      if (options_.batch_ack) {
        // The whole reply — envelope, kAckBatch header, verdicts — in one
        // sized buffer.
        send_wire(
            pirte::SerializeEnvelopedAckBatch(vins_[index], verdict_scratch_));
      } else {
        for (const pirte::BatchAckEntryView& verdict : verdict_scratch_) {
          pirte::PirteMessage reply;
          reply.type = pirte::MessageType::kAck;
          reply.plugin_name = std::string(verdict.plugin);
          reply.ok = verdict.ok;
          reply.detail = std::string(verdict.detail);
          send_reply(reply);
        }
      }
      return;
    }
    case pirte::MessageType::kInstallPackage:
    case pirte::MessageType::kUninstall: {
      packages_received_.fetch_add(1, std::memory_order_relaxed);
      pirte::PirteMessage reply;
      reply.type = pirte::MessageType::kAck;
      reply.plugin_name = std::string(view->plugin_name);
      reply.ok = ack_ok;
      if (!ack_ok) reply.detail = "scripted nack";
      send_reply(reply);
      return;
    }
    default:
      return;
  }
}

}  // namespace dacm::fes
