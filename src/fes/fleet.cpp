#include "fes/fleet.hpp"

#include "pirte/package.hpp"
#include "pirte/protocol.hpp"

namespace dacm::fes {

ScriptedFleet::ScriptedFleet(sim::Simulator& simulator, sim::Network& network,
                             server::TrustedServer& server,
                             ScriptedFleetOptions options)
    : simulator_(simulator),
      network_(network),
      server_(&server),
      options_(std::move(options)) {
  vins_.reserve(options_.vehicle_count);
  for (std::size_t i = 0; i < options_.vehicle_count; ++i) {
    vins_.push_back(options_.vin_prefix + std::to_string(i));
  }
}

support::Status ScriptedFleet::ConnectEndpoint(Endpoint& endpoint) {
  DACM_ASSIGN_OR_RETURN(endpoint.peer, network_.Connect(server_->address()));
  Endpoint* raw = &endpoint;
  endpoint.peer->SetReceiveHandler(
      [this, raw](const support::SharedBytes& data) { OnMessage(*raw, data); });

  pirte::Envelope hello;
  hello.kind = pirte::Envelope::Kind::kHello;
  hello.vin = endpoint.vin;
  DACM_RETURN_IF_ERROR(endpoint.peer->Send(hello.Serialize()));
  endpoint.online = true;
  return support::OkStatus();
}

support::Status ScriptedFleet::BindAndConnect(server::UserId user) {
  endpoints_.reserve(vins_.size());
  for (std::size_t i = 0; i < vins_.size(); ++i) {
    DACM_RETURN_IF_ERROR(server_->BindVehicle(user, vins_[i], options_.model));

    auto endpoint = std::make_unique<Endpoint>();
    endpoint->vin = vins_[i];
    endpoint->index = i;
    DACM_RETURN_IF_ERROR(ConnectEndpoint(*endpoint));
    endpoints_.push_back(std::move(endpoint));
  }
  simulator_.Run();
  for (const std::string& vin : vins_) {
    if (!server_->VehicleOnline(vin)) {
      return support::Unavailable("fleet endpoint failed to come online: " + vin);
    }
  }
  return support::OkStatus();
}

support::Status ScriptedFleet::TakeOffline(std::size_t index) {
  if (index >= endpoints_.size()) return support::OutOfRange("fleet index");
  Endpoint& endpoint = *endpoints_[index];
  if (!endpoint.online) return support::OkStatus();
  endpoint.peer->Close();
  endpoint.online = false;
  return support::OkStatus();
}

support::Status ScriptedFleet::BringOnline(std::size_t index) {
  if (index >= endpoints_.size()) return support::OutOfRange("fleet index");
  Endpoint& endpoint = *endpoints_[index];
  if (endpoint.online) return support::OkStatus();
  auto status = ConnectEndpoint(endpoint);
  if (!status.ok()) {
    // The WAN may be mid-flap; redial later like a real ECM's reconnect
    // alarm would, so a churn return that collides with a link flap does
    // not strand the vehicle offline forever.  Only a downed link is
    // worth retrying (a missing listener is permanent), and the redials
    // are bounded so a never-healing outage cannot keep the simulator's
    // event queue non-empty forever.  The retry event captures `this`:
    // the fleet must outlive the simulator run, like every endpoint
    // handler already requires.
    if (status.code() == support::ErrorCode::kUnavailable &&
        endpoint.redials_left > 0) {
      --endpoint.redials_left;
      simulator_.ScheduleAfter(100 * sim::kMillisecond,
                               [this, index] { (void)BringOnline(index); });
    }
    return status;
  }
  endpoint.redials_left = Endpoint::kMaxRedials;
  ++reconnects_;
  return support::OkStatus();
}

void ScriptedFleet::SetTransientNack(std::size_t index, sim::SimTime until) {
  if (index >= endpoints_.size()) return;
  endpoints_[index]->nack_until = until;
}

std::size_t ScriptedFleet::RedialDead() {
  std::size_t redialed = 0;
  for (const std::unique_ptr<Endpoint>& endpoint : endpoints_) {
    if (!endpoint->online || endpoint->peer->connected()) continue;
    // The server died under this endpoint: its Pusher side closed every
    // connection, but the endpoint never asked to go offline.  Flip it
    // offline and reuse the BringOnline redial machinery (including the
    // flap-bridging retry alarm).
    endpoint->online = false;
    (void)BringOnline(endpoint->index);
    ++redialed;
  }
  return redialed;
}

bool ScriptedFleet::online(std::size_t index) const {
  return index < endpoints_.size() && endpoints_[index]->online &&
         endpoints_[index]->peer->connected();
}

void ScriptedFleet::OnMessage(Endpoint& endpoint, const support::SharedBytes& data) {
  auto envelope = pirte::EnvelopeView::Parse(data);
  if (!envelope.ok() || envelope->kind != pirte::Envelope::Kind::kPirteMessage) {
    return;
  }
  auto view = pirte::PirteMessageView::Parse(envelope->message);
  if (!view.ok()) return;

  const bool scripted_nack =
      options_.nack_every != 0 && (endpoint.index + 1) % options_.nack_every == 0;
  const bool transient_nack = simulator_.Now() < endpoint.nack_until;
  const bool ack_ok = !scripted_nack && !transient_nack;

  // One-pass framing (envelope + message into a single sized buffer):
  // the vehicle side of a campaign sends one of these per push, and the
  // fleet stands in for thousands of vehicles.  All replies funnel
  // through send_wire so the ack counters have exactly one home.
  auto send_wire = [&](support::SharedBytes wire) {
    if (endpoint.peer->Send(std::move(wire)).ok()) {
      ++acks_sent_;
      if (!ack_ok) ++nacks_sent_;
    }
  };
  auto send_reply = [&](const pirte::PirteMessage& reply) {
    send_wire(pirte::SerializeEnveloped(endpoint.vin, reply));
  };

  switch (view->type) {
    case pirte::MessageType::kInstallBatch:
    case pirte::MessageType::kUninstallBatch: {
      if (view->type == pirte::MessageType::kInstallBatch) {
        ++batches_received_;
      } else {
        ++uninstall_batches_received_;
      }
      // Verdict views alias the delivered buffer (alive for the whole
      // handler); the scratch vector is reused across messages.
      verdict_scratch_.clear();
      auto status = pirte::ForEachInBatch(
          view->payload, [&](std::span<const std::uint8_t> entry) {
            auto inner = pirte::PirteMessageView::Parse(entry);
            if (!inner.ok()) return inner.status();
            ++packages_received_;
            verdict_scratch_.push_back(pirte::BatchAckEntryView{
                inner->plugin_name, ack_ok,
                ack_ok ? std::string_view() : std::string_view("scripted nack")});
            return support::OkStatus();
          });
      if (!status.ok()) return;
      if (options_.batch_ack) {
        // The whole reply — envelope, kAckBatch header, verdicts — in one
        // sized buffer.
        send_wire(
            pirte::SerializeEnvelopedAckBatch(endpoint.vin, verdict_scratch_));
      } else {
        for (const pirte::BatchAckEntryView& verdict : verdict_scratch_) {
          pirte::PirteMessage reply;
          reply.type = pirte::MessageType::kAck;
          reply.plugin_name = std::string(verdict.plugin);
          reply.ok = verdict.ok;
          reply.detail = std::string(verdict.detail);
          send_reply(reply);
        }
      }
      return;
    }
    case pirte::MessageType::kInstallPackage:
    case pirte::MessageType::kUninstall: {
      ++packages_received_;
      pirte::PirteMessage reply;
      reply.type = pirte::MessageType::kAck;
      reply.plugin_name = std::string(view->plugin_name);
      reply.ok = ack_ok;
      if (!ack_ok) reply.detail = "scripted nack";
      send_reply(reply);
      return;
    }
    default:
      return;
  }
}

}  // namespace dacm::fes
