#include "fes/testbed.hpp"

#include "fes/appgen.hpp"

namespace dacm::fes {

support::Bytes EncodeControl(std::int32_t value) {
  support::ByteWriter writer;
  writer.WriteI32(value);
  return writer.Take();
}

std::int32_t DecodeControl(std::span<const std::uint8_t> data) {
  support::ByteReader reader(data);
  auto value = reader.ReadI32();
  return value.ok() ? *value : 0;
}

namespace {

/// COM: phone data lands on P0 ('Wheels') / P1 ('Speed'); forward 4-byte
/// frames to P2 / P3 (Type II towards OP).
support::Bytes MakeComPluginBinary() {
  return AssembleOrDie(R"(
    .entry on_data handler
    handler:
      LOAD 0
      JZ wheels          ; triggered by P0
      LOAD 0
      PUSH 1
      CMPEQ
      JNZ speed          ; triggered by P1
      HALT
    wheels:
      READP 0
      POP
      WRITEP 2 4
      HALT
    speed:
      READP 1
      POP
      WRITEP 3 4
      HALT
  )");
}

/// OP: Type II data lands on P0 (wheels) / P1 (speed); write through the
/// virtual ports via P2 (WheelsReq) / P3 (SpeedReq).
support::Bytes MakeOpPluginBinary() {
  return AssembleOrDie(R"(
    .entry on_data handler
    handler:
      LOAD 0
      JZ wheels
      LOAD 0
      PUSH 1
      CMPEQ
      JNZ speed
      HALT
    wheels:
      READP 0
      POP
      WRITEP 2 4
      HALT
    speed:
      READP 1
      POP
      WRITEP 3 4
      HALT
  )");
}

}  // namespace

server::App MakeRemoteCarApp(const std::string& phone_address) {
  server::App app;
  app.name = "remote-car";
  app.version = "1.0";
  app.developer = "sics";

  server::PluginDecl com;
  com.name = "COM";
  com.binary = MakeComPluginBinary();
  com.ports = {
      {0, "wheels_in", pirte::PluginPortDirection::kRequired},
      {1, "speed_in", pirte::PluginPortDirection::kRequired},
      {2, "wheels_out", pirte::PluginPortDirection::kProvided},
      {3, "speed_out", pirte::PluginPortDirection::kProvided},
  };
  server::PluginDecl op;
  op.name = "OP";
  op.binary = MakeOpPluginBinary();
  op.ports = {
      {0, "wheels_in", pirte::PluginPortDirection::kRequired},
      {1, "speed_in", pirte::PluginPortDirection::kRequired},
      {2, "wheels_req", pirte::PluginPortDirection::kProvided},
      {3, "speed_req", pirte::PluginPortDirection::kProvided},
  };
  app.plugins.push_back(std::move(com));
  app.plugins.push_back(std::move(op));

  server::SwConf conf;
  conf.vehicle_model = "rpi-testbed";
  conf.min_platform = "1.0";
  conf.required_virtual_ports = {"WheelsReq", "SpeedReq"};
  conf.placements = {{"COM", 1}, {"OP", 2}};

  using Target = server::ConnectionDecl::Target;
  // COM: {P0-, P1-} with inbound external connections ('Wheels'/'Speed'),
  // {P2-V0.P0, P3-V0.P1} towards OP.
  conf.connections.push_back({"COM", 0, Target::kExternalIn, "", "", 0,
                              phone_address, "Wheels"});
  conf.connections.push_back({"COM", 1, Target::kExternalIn, "", "", 0,
                              phone_address, "Speed"});
  conf.connections.push_back({"COM", 2, Target::kPeerPlugin, "", "OP", 0, "", ""});
  conf.connections.push_back({"COM", 3, Target::kPeerPlugin, "", "OP", 1, "", ""});
  // OP: {P2-V4, P3-V5}.
  conf.connections.push_back({"OP", 2, Target::kVirtualPort, "WheelsReq", "", 0, "", ""});
  conf.connections.push_back({"OP", 3, Target::kVirtualPort, "SpeedReq", "", 0, "", ""});
  app.confs.push_back(std::move(conf));
  return app;
}

server::VehicleModelConf MakeRpiTestbedConf() {
  server::VehicleModelConf conf;
  conf.model = "rpi-testbed";
  conf.hw.ecus = {
      {1, "ECU1", /*has_plugin_swc=*/true, /*is_ecm=*/true, 8, 64 * 1024},
      {2, "ECU2", /*has_plugin_swc=*/true, /*is_ecm=*/false, 8, 64 * 1024},
  };
  conf.sw.platform_version = "1.0";
  conf.sw.virtual_ports = {
      // id, name, kind, flow, ecu, peer_ecu
      {0, "t2.PIRTE1->PIRTE2", 2, server::VirtualPortFlow::kBidirectional, 1, 2},
      {3, "t2.PIRTE2->PIRTE1", 2, server::VirtualPortFlow::kBidirectional, 2, 1},
      {4, "WheelsReq", 3, server::VirtualPortFlow::kPluginToSystem, 2, 0},
      {5, "SpeedReq", 3, server::VirtualPortFlow::kPluginToSystem, 2, 0},
      {6, "SpeedProv", 3, server::VirtualPortFlow::kSystemToPlugin, 2, 0},
  };
  return conf;
}

Figure3Testbed::Figure3Testbed(Figure3Options options)
    : options_(std::move(options)), network_(simulator_, options_.network_latency) {}

support::Result<std::unique_ptr<Figure3Testbed>> Figure3Testbed::Create(
    Figure3Options options) {
  auto testbed = std::unique_ptr<Figure3Testbed>(new Figure3Testbed(std::move(options)));
  DACM_RETURN_IF_ERROR(testbed->Build());
  return testbed;
}

support::Status Figure3Testbed::Build() {
  server_ = std::make_unique<server::TrustedServer>(network_, options_.server_address);
  DACM_RETURN_IF_ERROR(server_->Start());
  phone_ = std::make_unique<ExternalDevice>(network_, options_.phone_address);
  DACM_RETURN_IF_ERROR(phone_->Start());

  vehicle_ = std::make_unique<Vehicle>(simulator_, network_,
                                       VehicleParams{options_.vin,
                                                     options_.vehicle_model, 500'000});
  Ecu& ecu1 = vehicle_->AddEcu(1, "ECU1");
  Ecu& ecu2 = vehicle_->AddEcu(2, "ECU2");
  (void)ecu1;

  // Built-in motor-control SW-C on ECU2.
  rte::Rte& rte2 = ecu2.ecu_rte();
  DACM_ASSIGN_OR_RETURN(auto motor_swc, rte2.AddSwc("MotorControl"));
  rte::PortConfig wheels_port;
  wheels_port.name = "Wheels";
  wheels_port.direction = rte::PortDirection::kRequired;
  wheels_port.max_len = 64;
  DACM_ASSIGN_OR_RETURN(auto wheels_in, rte2.AddPort(motor_swc, std::move(wheels_port)));
  rte::PortConfig speed_port;
  speed_port.name = "Speed";
  speed_port.direction = rte::PortDirection::kRequired;
  speed_port.max_len = 64;
  DACM_ASSIGN_OR_RETURN(auto speed_in, rte2.AddPort(motor_swc, std::move(speed_port)));
  rte::PortConfig speed_value_port;
  speed_value_port.name = "SpeedValue";
  speed_value_port.direction = rte::PortDirection::kProvided;
  speed_value_port.max_len = 64;
  DACM_ASSIGN_OR_RETURN(auto speed_value,
                        rte2.AddPort(motor_swc, std::move(speed_value_port)));

  rte::RunnableConfig wheels_runnable;
  wheels_runnable.name = "OnWheels";
  wheels_runnable.priority = 10;  // built-in control beats everything dynamic
  wheels_runnable.body = [this, &rte2, wheels_in]() {
    auto value = rte2.ReadClearing(wheels_in);
    if (value.ok()) {
      last_wheels_ = DecodeControl(*value);
      ++wheels_commands_;
    }
  };
  DACM_ASSIGN_OR_RETURN(auto wheels_rid, rte2.AddRunnable(motor_swc, wheels_runnable));
  DACM_RETURN_IF_ERROR(rte2.TriggerOnDataReceived(wheels_rid, wheels_in));

  rte::RunnableConfig speed_runnable;
  speed_runnable.name = "OnSpeed";
  speed_runnable.priority = 10;
  speed_runnable.body = [this, &rte2, speed_in]() {
    auto value = rte2.ReadClearing(speed_in);
    if (value.ok()) {
      last_speed_ = DecodeControl(*value);
      ++speed_commands_;
    }
  };
  DACM_ASSIGN_OR_RETURN(auto speed_rid, rte2.AddRunnable(motor_swc, speed_runnable));
  DACM_RETURN_IF_ERROR(rte2.TriggerOnDataReceived(speed_rid, speed_in));

  // Periodic speed measurement feeding SpeedProv (for future plug-ins).
  rte::RunnableConfig measure;
  measure.name = "MeasureSpeed";
  measure.priority = 5;
  measure.period = 100 * sim::kMillisecond;
  measure.body = [this, &rte2, speed_value]() {
    (void)rte2.Write(speed_value, EncodeControl(last_speed_));
  };
  DACM_ASSIGN_OR_RETURN(auto measure_rid, rte2.AddRunnable(motor_swc, measure));
  (void)measure_rid;

  // Plug-in SW-Cs.  Both PIRTEs offer a periodic best-effort step slice to
  // their plug-ins (the lazily armed VM scheduler; idle PIRTEs cost nothing).
  DACM_ASSIGN_OR_RETURN(auto* p1, vehicle_->AddPluginSwc(ecu1, "PIRTE1"));
  DACM_ASSIGN_OR_RETURN(auto* p2, vehicle_->AddPluginSwc(ecu2, "PIRTE2"));
  p1->SetStepPeriod(20 * sim::kMillisecond);
  p2->SetStepPeriod(20 * sim::kMillisecond);

  // Fault protection on the critical signals (paper §3.1.1): the OEM's
  // built-in monitors guard the exposed virtual ports.
  pirte::Translator wheels_translate;
  pirte::Translator speed_translate;
  if (options_.guard_critical_signals) {
    DACM_ASSIGN_OR_RETURN(auto wheels_event,
                          ecu2.dem().DefineEvent("guard.WheelsReq"));
    pirte::GuardPolicy wheels_policy;
    wheels_policy.name = "WheelsReq";
    wheels_policy.check_value = true;
    wheels_policy.min_value = -45;
    wheels_policy.max_value = 45;
    wheels_policy.on_range_violation = pirte::GuardAction::kClamp;
    wheels_guard_ = pirte::SignalGuard::Create(simulator_, wheels_policy,
                                               &ecu2.dem(), wheels_event);
    wheels_translate = wheels_guard_->MakeTranslator();

    DACM_ASSIGN_OR_RETURN(auto speed_event,
                          ecu2.dem().DefineEvent("guard.SpeedReq"));
    pirte::GuardPolicy speed_policy;
    speed_policy.name = "SpeedReq";
    speed_policy.check_value = true;
    speed_policy.min_value = 0;
    speed_policy.max_value = 100;
    speed_policy.on_range_violation = pirte::GuardAction::kDrop;
    speed_guard_ = pirte::SignalGuard::Create(simulator_, speed_policy,
                                              &ecu2.dem(), speed_event);
    speed_translate = speed_guard_->MakeTranslator();
  }

  DACM_ASSIGN_OR_RETURN(auto wheels_req,
                        p2->AddTypeIIIOut(4, "WheelsReq", 64, wheels_translate));
  DACM_ASSIGN_OR_RETURN(auto speed_req,
                        p2->AddTypeIIIOut(5, "SpeedReq", 64, speed_translate));
  DACM_ASSIGN_OR_RETURN(auto speed_prov, p2->AddTypeIIIIn(6, "SpeedProv"));
  DACM_RETURN_IF_ERROR(rte2.ConnectLocal(wheels_req, wheels_in));
  DACM_RETURN_IF_ERROR(rte2.ConnectLocal(speed_req, speed_in));
  DACM_RETURN_IF_ERROR(rte2.ConnectLocal(speed_value, speed_prov));

  DACM_RETURN_IF_ERROR(vehicle_->ConnectPluginSwcs(*p1, *p2, 0, 3));
  DACM_RETURN_IF_ERROR(vehicle_->DesignateEcm(*p1, options_.server_address));
  DACM_RETURN_IF_ERROR(vehicle_->Finalize());

  // Let the ECM connect and say hello.
  RunUntil([this]() { return server_->VehicleOnline(options_.vin); },
           5 * sim::kSecond);
  if (!server_->VehicleOnline(options_.vin)) {
    return support::Unavailable("ECM did not reach the trusted server");
  }
  return support::OkStatus();
}

support::Status Figure3Testbed::SetUp() {
  DACM_RETURN_IF_ERROR(server_->UploadVehicleModel(MakeRpiTestbedConf()));
  DACM_RETURN_IF_ERROR(server_->UploadApp(MakeRemoteCarApp(options_.phone_address)));
  DACM_ASSIGN_OR_RETURN(user_, server_->CreateUser("alice"));
  DACM_RETURN_IF_ERROR(server_->BindVehicle(user_, options_.vin, options_.vehicle_model));
  return support::OkStatus();
}

support::Status Figure3Testbed::DeployRemoteCar(sim::SimTime timeout) {
  DACM_RETURN_IF_ERROR(server_->Deploy(user_, options_.vin, "remote-car"));
  const bool installed = RunUntil(
      [this]() {
        auto state = server_->AppState(options_.vin, "remote-car");
        return state.ok() && *state == server::InstallState::kInstalled;
      },
      timeout);
  if (!installed) {
    auto state = server_->AppState(options_.vin, "remote-car");
    return support::Timeout("remote-car not installed; state: " +
                            std::string(state.ok()
                                            ? server::InstallStateName(*state)
                                            : state.status().ToString()));
  }
  return support::OkStatus();
}

support::Result<sim::SimTime> Figure3Testbed::SendWheels(std::int32_t angle,
                                                         sim::SimTime timeout) {
  const std::uint64_t before = wheels_commands_;
  const sim::SimTime start = simulator_.Now();
  DACM_RETURN_IF_ERROR(phone_->Send("Wheels", EncodeControl(angle)));
  if (!RunUntil([&]() { return wheels_commands_ > before; }, timeout)) {
    return support::Timeout("wheels command never reached the motor control");
  }
  return simulator_.Now() - start;
}

support::Result<sim::SimTime> Figure3Testbed::SendSpeed(std::int32_t speed,
                                                        sim::SimTime timeout) {
  const std::uint64_t before = speed_commands_;
  const sim::SimTime start = simulator_.Now();
  DACM_RETURN_IF_ERROR(phone_->Send("Speed", EncodeControl(speed)));
  if (!RunUntil([&]() { return speed_commands_ > before; }, timeout)) {
    return support::Timeout("speed command never reached the motor control");
  }
  return simulator_.Now() - start;
}

bool Figure3Testbed::RunUntil(const std::function<bool()>& pred, sim::SimTime timeout) {
  const sim::SimTime deadline = simulator_.Now() + timeout;
  while (simulator_.Now() < deadline) {
    if (pred()) return true;
    if (simulator_.Empty()) {
      // Nothing scheduled: advance in small hops so periodic alarms armed
      // later (none here) cannot be skipped; if truly idle we are done.
      break;
    }
    simulator_.Run(1);
  }
  return pred();
}

}  // namespace dacm::fes
