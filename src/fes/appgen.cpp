#include "fes/appgen.hpp"

#include <cstdlib>
#include <iostream>

#include "vm/assembler.hpp"

namespace dacm::fes {

support::Bytes AssembleOrDie(const std::string& source) {
  auto program = vm::Assemble(source);
  if (!program.ok()) {
    std::cerr << "internal plug-in source failed to assemble: "
              << program.status().ToString() << "\n";
    std::abort();
  }
  return program->Serialize();
}

support::Bytes MakeEchoPluginBinary() {
  return AssembleOrDie(R"(
    .entry on_data handler
    handler:
      LOAD 0          ; triggering port
      JNZ done        ; only react to port 0
      READP 0         ; payload -> I/O window, length on stack
      STORE 1         ; keep length in r1
      LOAD 1
      PUSH 16
      CMPLT
      JZ clamp        ; lengths >= 16 are clamped to 16
      LOAD 1
      STORE 2
      JMP emit
    clamp:
      PUSH 16
      STORE 2
    emit:
      WRITEP 1 16     ; forward the window (fixed frame)
      HALT
    done:
      HALT
  )");
}

support::Bytes MakeCounterPluginBinary() {
  return AssembleOrDie(R"(
    .entry step tick
    tick:
      LOAD 1
      PUSH 1
      ADD
      STORE 1
      LOAD 1
      STORE 128       ; low byte into the I/O window
      WRITEP 0 1
      HALT
  )");
}

support::Bytes MakeSpinPluginBinary(std::uint32_t iterations) {
  return AssembleOrDie(R"(
    .entry on_data spin
    spin:
      PUSH )" + std::to_string(iterations) + R"(
      STORE 1
    loop:
      LOAD 1
      JZ end
      LOAD 1
      PUSH 1
      SUB
      STORE 1
      JMP loop
    end:
      HALT
  )");
}

support::Bytes MakeTrapPluginBinary() {
  return AssembleOrDie(R"(
    .entry on_data boom
    boom:
      TRAP 42
  )");
}

support::Bytes PadBinary(const support::Bytes& binary, std::uint32_t padding) {
  if (padding == 0) return binary;
  auto program = vm::Program::Deserialize(binary);
  if (!program.ok()) {
    std::cerr << "PadBinary: not a PVM binary: " << program.status().ToString()
              << "\n";
    std::abort();
  }
  program->code.resize(program->code.size() + padding,
                       static_cast<std::uint8_t>(vm::Op::kNop));
  return program->Serialize();
}

server::App MakeSyntheticApp(const SyntheticAppParams& params) {
  server::App app;
  app.name = params.name;
  app.version = params.version;
  app.developer = "synthetic";
  app.depends_on = params.depends_on;
  app.conflicts_with = params.conflicts_with;

  server::SwConf conf;
  conf.vehicle_model = params.vehicle_model;

  const support::Bytes binary =
      PadBinary(MakeEchoPluginBinary(), params.binary_padding);
  for (std::uint32_t i = 0; i < params.plugin_count; ++i) {
    server::PluginDecl plugin;
    plugin.name = params.name + ".p" + std::to_string(i);
    plugin.binary = binary;
    for (std::uint32_t p = 0; p < params.ports_per_plugin; ++p) {
      server::PluginPortDecl port;
      port.local_index = static_cast<std::uint8_t>(p);
      port.name = "port" + std::to_string(p);
      port.direction = p == 0 ? pirte::PluginPortDirection::kRequired
                              : pirte::PluginPortDirection::kProvided;
      plugin.ports.push_back(std::move(port));
      server::ConnectionDecl connection;
      connection.plugin = plugin.name;
      connection.local_port = static_cast<std::uint8_t>(p);
      connection.target = server::ConnectionDecl::Target::kNone;
      conf.connections.push_back(std::move(connection));
    }
    conf.placements.push_back(
        server::PlacementDecl{plugin.name, params.target_ecu});
    app.plugins.push_back(std::move(plugin));
  }
  app.confs.push_back(std::move(conf));
  return app;
}

}  // namespace dacm::fes
