// Fleet-wide content-addressed package cache (the vcpkg ABI-hash idea
// applied to install batches).
//
// A campaign over millions of vehicles spans only dozens of distinct
// (model, app, version) combinations, and within one combination every
// vehicle with the same occupied-port-id layout receives byte-identical
// packages: GeneratePackages allocates unique ids lowest-free, so the
// output is a pure function of (app, confs, used-id layout).  The cache
// exploits that: package generation and SerializeInstallBatch run once
// per distinct key, and every matching vehicle re-pushes the same
// refcounted SharedBytes envelope.
//
// Two lifetimes, split deliberately:
//
//  * BatchManifest — the part the server must keep for as long as the
//    install row exists (plug-in names, placements, PICs, the uninstall
//    envelope, the content hash).  A few hundred bytes per distinct
//    batch, pinned by shared_ptr from every row.
//  * BatchPayload — the heavy part (serialized packages + the install
//    envelope, tens of KiB).  Rows hold it only while the install is in
//    flight; the cache keeps a weak_ptr, so when the last pending row
//    converges the payload is freed and steady-state memory is
//    O(distinct batches), not O(fleet).  A later repush (recovery,
//    restore) regenerates it deterministically from the pinned layout.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pirte/context.hpp"
#include "server/context_gen.hpp"
#include "server/model.hpp"
#include "server/status_db.hpp"
#include "support/shared_bytes.hpp"
#include "support/status.hpp"

namespace dacm::server {

/// The pinned, cheap half of a cached batch: everything an install row
/// needs after convergence (status-DB paragraphs, acks keyed by plug-in
/// name, rollback) without the package bytes.
struct BatchManifest {
  struct Plugin {
    std::string name;
    std::uint32_t ecu_id = 0;
    pirte::PortInitContext pic;  // unique ids this plug-in occupies
  };

  std::string app_name;
  std::string version;
  std::vector<Plugin> plugins;
  /// Pre-built VIN-less kUninstallBatch envelope; every rollback wave for
  /// this batch pushes it by refcount bump.
  support::SharedBytes uninstall_wire;
  /// FNV-1a over the install envelope — the content address.
  std::uint64_t content_hash = 0;
};

/// The heavy, droppable half: serialized InstallationPackages (manifest
/// plug-in order) and the VIN-less kInstallBatch envelope.
struct BatchPayload {
  std::vector<support::Bytes> packages;
  support::SharedBytes install_wire;
};

struct CachedBatch {
  std::shared_ptr<const BatchManifest> manifest;
  std::shared_ptr<const BatchPayload> payload;
};

/// Server-wide cache of generated install batches, keyed by
/// (model, app, version) and, within a key, by the canonical used-id
/// layout of the requesting vehicle (vehicles with different occupied
/// ids legitimately get different PICs — each layout is its own
/// variant, so distinct keys can never alias).
class PackageCache {
 public:
  /// Returns the batch for `app` on `model` given the vehicle's occupied
  /// ids — generating it on first sight of this (key, layout), reviving
  /// an expired payload deterministically, or handing back the live one.
  /// Generation failures (placement/port-exhaustion/...) pass through
  /// verbatim and cache nothing.
  support::Result<CachedBatch> Acquire(const std::string& model, const App& app,
                                       const SwConf& conf,
                                       const SystemSwConf& system_sw,
                                       const UsedIdMap& used_ids);

  /// Distinct (model, app, version) keys seen.
  std::size_t entries() const;
  /// Variants whose payload is still alive (some row holds it in flight).
  std::size_t live_payloads() const;

  /// Builds a one-off manifest for a row replayed from the status DB: the
  /// durable paragraph records only (plugin, ecu, unique ids), which is
  /// exactly what convergence bookkeeping and rollback need.  Not interned
  /// — a later materialization replaces it with a cached manifest.
  static std::shared_ptr<const BatchManifest> RecoveredManifest(
      const std::string& app_name, const std::string& version,
      std::span<const StatusParagraph::PluginIds> plugins);

 private:
  /// A vehicle's occupied-id layout in canonical form: (ecu, bitmap
  /// words) sorted by ecu, empty sets dropped.  Variant probes compare
  /// layouts in full — no hash-collision aliasing by construction.
  using Layout =
      std::vector<std::pair<std::uint32_t, std::array<std::uint64_t, 4>>>;

  struct Variant {
    Layout layout;
    std::shared_ptr<const BatchManifest> manifest;
    std::weak_ptr<const BatchPayload> payload;
  };
  struct Entry {
    std::vector<Variant> variants;
  };

  static Layout Canonicalize(const UsedIdMap& used_ids);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace dacm::server
