// Append-only campaign journal.
//
// The CampaignEngine's row tables are the orchestration truth: which
// vehicles converged, which are mid-retry, when the next wave is due.
// The journal write-ahead-logs every tick's effects so a restarted
// engine resumes exactly where the dead one stopped — without
// re-pushing converged rows and with the same Describe() fingerprint.
//
// Record stream (each CRC-framed by support::RecordWriter):
//
//   kStart  id kind user app policy started_at [vin...]
//   kRows   id n [row_index state attempts done_at error_code]*n
//   kFinish id status finished_at
//   kForget id
//   kWave   id waves_pushed total_pushes last_push_at next_tick_at
//
// kStart is written by Start(); every engine tick that mutates state
// commits one kRows record (the rows dirtied this tick) followed by a
// kWave (still running; also carries when the next tick is due) or a
// kFinish.  Commit happens *after* the wave's pushes, so the journal is
// at-least-once: a crash inside a tick replays that wave's pushes — the
// server's idempotent wave path (kAlreadyDone / repush) absorbs the
// duplicates.  Replay folds records per campaign id; a torn tail
// truncates to the last committed tick.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "server/campaign.hpp"
#include "support/status.hpp"
#include "support/storage.hpp"

namespace dacm::server {

/// One row's durable fields — exactly CampaignRow minus the VIN (keyed
/// by row index against the kStart record's VIN list).
struct JournalRowEntry {
  std::uint32_t index = 0;
  CampaignRowState state = CampaignRowState::kPending;
  std::uint32_t attempts = 0;
  sim::SimTime done_at = 0;
  support::ErrorCode error = support::ErrorCode::kOk;
};

/// A campaign folded out of the journal by ReplayCampaignJournal.
struct RecoveredCampaign {
  std::uint32_t id = 0;
  CampaignKind kind = CampaignKind::kDeploy;
  std::uint32_t user = 0;
  std::string app_name;
  RetryPolicy policy;
  sim::SimTime started_at = 0;
  std::vector<CampaignRow> rows;
  std::size_t waves_pushed = 0;
  std::uint64_t total_pushes = 0;
  sim::SimTime last_push_at = 0;
  /// When the dead engine would have ticked next (start time until the
  /// first wave commits).  The recovering engine resumes at
  /// max(next_tick_at, Now()).
  sim::SimTime next_tick_at = 0;
  CampaignStatus status = CampaignStatus::kRunning;
  sim::SimTime finished_at = 0;
  bool forgotten = false;
};

/// Append-side of the journal.  Writes are fire-and-forget from the
/// engine's point of view: a failing sink degrades durability, not the
/// running campaign (the engine logs and keeps orchestrating).
class CampaignJournal {
 public:
  explicit CampaignJournal(support::RecordSink& sink)
      : sink_(sink), writer_(sink) {}

  support::Status AppendStart(std::uint32_t id, CampaignKind kind,
                              std::uint32_t user, std::string_view app_name,
                              const RetryPolicy& policy, sim::SimTime started_at,
                              std::span<const CampaignRow> rows);
  support::Status AppendRows(std::uint32_t id,
                             std::span<const JournalRowEntry> entries);
  support::Status AppendWave(std::uint32_t id, std::size_t waves_pushed,
                             std::uint64_t total_pushes,
                             sim::SimTime last_push_at,
                             sim::SimTime next_tick_at);
  support::Status AppendFinish(std::uint32_t id, CampaignStatus status,
                               sim::SimTime finished_at);
  support::Status AppendForget(std::uint32_t id);

  // Record encoders behind the Append* calls — exposed so the engine's
  // CompactJournal can build a checkpoint image out of the exact same
  // wire records the live path appends (no second serializer to drift).
  static support::Bytes EncodeStart(std::uint32_t id, CampaignKind kind,
                                    std::uint32_t user,
                                    std::string_view app_name,
                                    const RetryPolicy& policy,
                                    sim::SimTime started_at,
                                    std::span<const CampaignRow> rows);
  static support::Bytes EncodeRows(std::uint32_t id,
                                   std::span<const JournalRowEntry> entries);
  static support::Bytes EncodeWave(std::uint32_t id, std::size_t waves_pushed,
                                   std::uint64_t total_pushes,
                                   sim::SimTime last_push_at,
                                   sim::SimTime next_tick_at);
  static support::Bytes EncodeFinish(std::uint32_t id, CampaignStatus status,
                                     sim::SimTime finished_at);
  static support::Bytes EncodeForget(std::uint32_t id);

  /// Atomically swaps the journal's contents for a checkpoint image
  /// (RecordSink::Rotate) and restarts the byte accounting.
  support::Status Rotate(std::span<const std::uint8_t> image);

  /// Frame bytes appended since construction / the last Rotate — the
  /// journal-compaction watermark's input.
  std::uint64_t bytes_appended() const { return writer_.bytes_appended(); }

 private:
  support::RecordSink& sink_;
  support::RecordWriter writer_;
};

/// Folds a journal image into per-campaign recovery state, ordered by
/// campaign id (= engine slot index).  Tolerates a torn tail; decoded
/// records that violate the stream invariants (rows before their start,
/// out-of-range indices) are kCorrupted.  A Forget tombstone with no
/// matching kStart (a compacted journal drops retired campaigns' starts)
/// materializes forgotten placeholder slots instead of failing.
support::Result<std::vector<RecoveredCampaign>> ReplayCampaignJournal(
    std::span<const std::uint8_t> data);

}  // namespace dacm::server
