// The trusted server (paper §3.2, Figure 2).
//
// "All plug-in management is done through a pre-defined trusted server...
// the trusted server acts as a central point of intelligence, performing
// compatibility checks and generating the different types of context."
//
// The class exposes the paper's two external modules:
//  * Web Services — programmatic facade for users (account setup, vehicle
//    binding), OEMs (vehicle-model conf uploads) and developers (APP +
//    SW conf uploads), plus the deploy / uninstall / restore operations;
//  * Pusher — the vehicle-facing side: ECMs connect over the simulated
//    network, announce their VIN, receive pushed installation packages and
//    lifecycle commands, and return acknowledgements that are tracked in
//    the InstalledAPP table.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pirte/protocol.hpp"
#include "server/context_gen.hpp"
#include "server/model.hpp"
#include "sim/network.hpp"

namespace dacm::server {

struct ServerStats {
  std::uint64_t packages_pushed = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t deploys_ok = 0;
  std::uint64_t deploys_rejected = 0;
  std::uint64_t uninstalls = 0;
  std::uint64_t restores = 0;
};

class TrustedServer {
 public:
  TrustedServer(sim::Network& network, std::string address);

  TrustedServer(const TrustedServer&) = delete;
  TrustedServer& operator=(const TrustedServer&) = delete;

  /// Starts the Pusher listener.
  support::Status Start();

  // --- Web Services: user setup ------------------------------------------------

  support::Result<UserId> CreateUser(const std::string& name);

  /// Binds a vehicle (by VIN, of a previously uploaded model) to a user.
  support::Status BindVehicle(UserId user, const std::string& vin,
                              const std::string& model);

  // --- Web Services: uploads ------------------------------------------------------

  /// OEM upload: HW conf + SystemSW conf for a vehicle model.
  support::Status UploadVehicleModel(VehicleModelConf conf);

  /// Developer upload: APP with binaries and SW confs.  Re-uploading the
  /// same name with a higher version replaces the stored APP.
  support::Status UploadApp(App app);

  // --- Web Services: operations -----------------------------------------------------

  /// Deploys `app_name` onto `vin`: compatibility check, dependency /
  /// conflict check, context generation, package push.  On success the
  /// InstalledAPP row is kPending until all acks arrive.
  support::Status Deploy(UserId user, const std::string& vin,
                         const std::string& app_name);

  /// Uninstalls an app; fails with kDependencyViolation when other
  /// installed apps depend on it (the paper notifies the user instead of
  /// cascading).
  support::Status UninstallApp(UserId user, const std::string& vin,
                               const std::string& app_name);

  /// Restore after physical ECU replacement: re-pushes the recorded
  /// packages of every installed plug-in placed on `ecu_id`.
  support::Status Restore(UserId user, const std::string& vin, std::uint32_t ecu_id);

  // --- queries --------------------------------------------------------------------

  support::Result<InstallState> AppState(const std::string& vin,
                                         const std::string& app_name) const;
  std::vector<std::string> InstalledApps(const std::string& vin) const;
  const Vehicle* FindVehicle(const std::string& vin) const;
  bool VehicleOnline(const std::string& vin) const;
  const ServerStats& stats() const { return stats_; }
  const std::string& address() const { return address_; }

 private:
  support::Status CheckOwnership(UserId user, const Vehicle& vehicle) const;
  support::Result<Vehicle*> VehicleByVin(const std::string& vin);
  support::Result<const VehicleModelConf*> ModelConf(const std::string& model) const;

  // Pusher internals.
  void OnAccept(std::shared_ptr<sim::NetPeer> peer);
  void OnVehicleMessage(sim::NetPeer* peer, const support::Bytes& data);
  support::Status PushToVehicle(const std::string& vin,
                                const pirte::PirteMessage& message);
  void HandleAck(const std::string& vin, const pirte::PirteMessage& ack);

  sim::Network& network_;
  std::string address_;
  bool started_ = false;

  std::vector<User> users_;
  std::unordered_map<std::string, VehicleModelConf> models_;   // by model name
  std::unordered_map<std::string, Vehicle> vehicles_;          // by VIN
  std::unordered_map<std::string, App> apps_;                  // by app name

  // Pusher connection registry.
  struct Connection {
    std::shared_ptr<sim::NetPeer> peer;
    std::string vin;  // empty until Hello
  };
  std::vector<Connection> connections_;
  ServerStats stats_;
};

}  // namespace dacm::server
