// The trusted server (paper §3.2, Figure 2).
//
// "All plug-in management is done through a pre-defined trusted server...
// the trusted server acts as a central point of intelligence, performing
// compatibility checks and generating the different types of context."
//
// The class exposes the paper's two external modules:
//  * Web Services — programmatic facade for users (account setup, vehicle
//    binding), OEMs (vehicle-model conf uploads) and developers (APP +
//    SW conf uploads), plus the deploy / uninstall / restore operations;
//  * Pusher — the vehicle-facing side: ECMs connect over the simulated
//    network, announce their VIN, receive pushed installation packages and
//    lifecycle commands, and return acknowledgements that are tracked in
//    the InstalledAPP table.
//
// Scale-out: per-vehicle state lives in packed per-shard columns
// (server/fleet_store.hpp) — VINs interned to dense u32 handles, install
// rows in a slab keyed by handle — partitioned by VIN hash, and
// DeployCampaign fans a fleet-wide rollout over a worker pool: one worker
// per shard, so compatibility checks and push staging for different
// vehicles run concurrently while each vehicle is only ever touched by
// its shard's owner.  Package generation is content-addressed
// (server/package_cache.hpp): a campaign over millions of vehicles
// generates and serializes each distinct (model, app, version, id-layout)
// batch exactly once and re-pushes the same refcounted envelope
// fleet-wide.  The catalog (users / models / apps) is read-mostly and
// sits behind a shared_mutex: web-service mutators take it exclusively,
// deploy workers share it.
//
// Inbound acknowledgements — the server's highest-volume traffic — are
// staged into per-shard inboxes by the simulation thread and applied in
// parallel (one worker per shard) at a flush event scheduled for the
// arrival timestamp, so campaigns' ack storms no longer serialize on the
// simulation thread.  Campaign *orchestration* (multi-wave retries,
// rollback campaigns, abort thresholds) lives in server/campaign.hpp and
// drives the CampaignWavePush entry point below.
//
// Threading rules (see README "Threading model"): everything except the
// shard work inside DeployCampaign / CampaignWavePush / FlushAckInboxes
// runs on the simulation thread; workers touch only their own shard plus
// the shared catalog under the read lock.
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pirte/protocol.hpp"
#include "server/catalog.hpp"
#include "server/context_gen.hpp"
#include "server/fleet_store.hpp"
#include "server/model.hpp"
#include "server/package_cache.hpp"
#include "server/status_db.hpp"
#include "sim/network.hpp"
#include "support/thread_pool.hpp"

namespace dacm::server {

struct ServerStats {
  std::uint64_t packages_pushed = 0;
  std::uint64_t acks_received = 0;
  /// Negative acknowledgements: per-plug-in nacks plus whole-batch
  /// rejections (each batch rejection counts once).
  std::uint64_t nacks_received = 0;
  std::uint64_t deploys_ok = 0;
  std::uint64_t deploys_rejected = 0;
  std::uint64_t uninstalls = 0;
  std::uint64_t restores = 0;
  /// Campaign re-pushes of an already-recorded install batch (retry of a
  /// row whose acks were lost mid-flap).
  std::uint64_t repushes = 0;
  /// Batched kUninstallBatch pushes from rollback campaigns.
  std::uint64_t rollback_pushes = 0;
  /// Dead Pusher connections pruned (handshake reaping + Hello adoption).
  std::uint64_t connections_reaped = 0;
  /// Sticky: a status-log write or sync failed even after the bounded
  /// retry loop — the in-memory state is ahead of the durable log, and a
  /// crash from here loses the unlogged transitions.  Set once, never
  /// cleared (the log's durable prefix stays short of reality until a
  /// successful compaction rewrites it).  Aggregate-only: meaningless on
  /// per-shard stats.
  bool durability_degraded = false;
  /// Status-log appends that succeeded only after retrying.
  std::uint64_t status_write_retries = 0;
  /// Status-log appends abandoned (degraded mode, or retries exhausted).
  std::uint64_t status_writes_lost = 0;
  /// Checkpoint compactions completed (watermark or explicit Compact()).
  std::uint64_t compactions = 0;
};

/// Direction of an orchestrated campaign wave (see server/campaign.hpp).
enum class CampaignKind : std::uint8_t { kDeploy = 0, kRollback = 1 };

/// Per-VIN outcome of one campaign wave push.
struct WaveOutcome {
  enum class Action : std::uint8_t {
    kAlreadyDone,  // nothing to do: installed (deploy) / gone (rollback)
    kPushed,       // batch staged onto the vehicle's connection
    kOffline,      // no live connection; eligible for a later wave
    kRejected,     // terminal rejection (compat, ownership, unknown VIN...)
  };
  Action action = Action::kRejected;
  support::Status status;
};

struct ServerOptions {
  /// Vehicle shards == deploy workers.  1 keeps the pipeline fully
  /// synchronous on the calling thread (no pool, no locking overhead on
  /// the hot path beyond an uncontended shared_mutex).
  std::size_t shard_count = 1;
  /// Durable install DB (server/status_db.hpp): when set, every
  /// InstalledApp mutation writes a status paragraph ahead of the
  /// visible transition, and RecoverInstallDb() can rebuild the
  /// per-vehicle tables from the sink's image.  The sink must outlive
  /// the server; nullptr (default) keeps the server memory-only.
  support::RecordSink* status_sink = nullptr;
  /// Durability knob for the status DB: issue a RecordSink::Sync() (for
  /// FileSink: fflush + fsync) every N appended frames.  0 (default)
  /// never syncs explicitly — the crash model tests exercise is process
  /// death, not power loss.
  std::size_t status_sync_every_n_frames = 0;
  /// Compaction watermark: once the status log has grown past this many
  /// bytes since the last checkpoint, the next ack flush folds the live
  /// state (catalog image + one paragraph per row) into a checkpoint and
  /// rotates the log onto it (RecordSink::Rotate).  0 (default) disables
  /// automatic compaction; Compact() can always be called explicitly
  /// (e.g. on clean shutdown).
  std::uint64_t compact_after_bytes = 0;
};

/// Outcome of one DeployCampaign call.
struct CampaignReport {
  std::size_t deployed = 0;  // batch pushed; rows are kPending until acked
  std::size_t rejected = 0;
  /// Per-VIN rejection reasons, grouped by shard (not fleet order).
  std::vector<std::pair<std::string, support::Status>> failures;
  /// Worker-side processing time per vehicle (ns): compatibility checks,
  /// context generation, package assembly and push staging.  Fleet order
  /// is not preserved (grouped by shard); used for tail-latency tracking.
  std::vector<std::uint64_t> per_vehicle_ns;
};

class TrustedServer {
 public:
  TrustedServer(sim::Network& network, std::string address,
                ServerOptions options = {});

  /// Unlistens and closes every Pusher connection.  Scheduled callbacks
  /// that captured this server (accept, ack flush, deliveries in flight)
  /// are disarmed — a mid-campaign kill leaves inert events, and the
  /// recovery harness can construct a successor on the same address in
  /// the same simulator event.
  ~TrustedServer();

  TrustedServer(const TrustedServer&) = delete;
  TrustedServer& operator=(const TrustedServer&) = delete;

  /// Starts the Pusher listener.
  support::Status Start();

  // --- Web Services: user setup ------------------------------------------------

  support::Result<UserId> CreateUser(const std::string& name);

  /// Binds a vehicle (by VIN, of a previously uploaded model) to a user.
  support::Status BindVehicle(UserId user, const std::string& vin,
                              const std::string& model);

  // --- Web Services: uploads ------------------------------------------------------

  /// OEM upload: HW conf + SystemSW conf for a vehicle model.
  support::Status UploadVehicleModel(VehicleModelConf conf);

  /// Developer upload: APP with binaries and SW confs.  Re-uploading the
  /// same name with a higher version replaces the stored APP.  Apps are
  /// capped at 64 plug-ins (install rows track acks in one 64-bit mask).
  support::Status UploadApp(App app);

  // --- Web Services: operations -----------------------------------------------------

  /// Deploys `app_name` onto `vin`: compatibility check, dependency /
  /// conflict check, context generation, package push.  On success the
  /// InstalledAPP row is kPending until all acks arrive.
  support::Status Deploy(UserId user, const std::string& vin,
                         const std::string& app_name);

  /// Fleet-wide OTA campaign: deploys `app_name` to every VIN in `vins`,
  /// sharding the per-vehicle pipeline over the worker pool and pushing
  /// one batched package set per vehicle.  Per-vehicle rejections land in
  /// the report; only a missing app fails the whole campaign.
  support::Result<CampaignReport> DeployCampaign(UserId user,
                                                 const std::string& app_name,
                                                 std::span<const std::string> vins);

  /// Uninstalls an app; fails with kDependencyViolation when other
  /// installed apps depend on it (the paper notifies the user instead of
  /// cascading).
  support::Status UninstallApp(UserId user, const std::string& vin,
                               const std::string& app_name);

  /// Restore after physical ECU replacement: re-pushes the recorded
  /// packages of every installed plug-in placed on `ecu_id`.
  support::Status Restore(UserId user, const std::string& vin, std::uint32_t ecu_id);

  // --- recovery ---------------------------------------------------------------

  /// Rebuilds the server from a status-DB image (StatusDb::ReplayImage):
  /// first the catalog — users, models, apps (with binaries) and VIN
  /// bindings are themselves write-ahead-logged as catalog records and
  /// folded into checkpoints, so a recovered server is serviceable
  /// without re-uploads — then the per-vehicle InstalledApp tables from
  /// the status paragraphs.  Catalog restore is an idempotent merge: a
  /// caller that already re-created users / re-uploaded apps / re-bound
  /// VINs (the pre-checkpoint recovery drill) keeps its live entries.
  /// Rows come back carrying their recorded (plugin, ecu, unique-id)
  /// manifest; package bytes and batch envelopes are NOT restored — they
  /// regenerate lazily from the recovered catalog the first time a wave
  /// needs them (MaterializeRowPackages).  Fails on a paragraph whose
  /// VIN is neither in the recovered catalog's bindings nor re-bound by
  /// the caller.  Simulation thread only, before any vehicle traffic.
  support::Status RecoverInstallDb(std::span<const std::uint8_t> image);

  /// Folds the live state — full catalog image plus one status paragraph
  /// per install row — into a checkpoint and atomically rotates the
  /// status log onto it (RecordSink::Rotate: write temp, sync, rename).
  /// The log shrinks to exactly the live bytes; replaying it afterwards
  /// reproduces the same server.  No-op Ok without a status sink.  Call
  /// on clean shutdown, or let ServerOptions::compact_after_bytes
  /// trigger it from ack flushes.  Simulation thread only.
  support::Status Compact();

  /// Deterministic fingerprint text of the whole fleet: every bound
  /// vehicle (sorted by VIN) with its model, owner and install rows
  /// (sorted by app).  The crash-point harness compares exactly this
  /// across kill/recover boundaries.  Simulation thread only.
  std::string DescribeFleet() const;
  /// FNV-1a hash of exactly the bytes DescribeFleet() would return,
  /// streamed without materializing the string.
  std::uint64_t FleetFingerprint() const;

  // --- campaign-engine entry points (see server/campaign.hpp) -----------------

  /// One orchestrated campaign wave: per VIN, performs whatever the kind
  /// requires right now — a fresh batched deploy, a re-push of the
  /// recorded batch for a stale kPending row, a clear-and-redeploy of a
  /// nacked row, or a kUninstallBatch rollback push — sharded over the
  /// worker pool exactly like DeployCampaign.  Returns outcomes in `vins`
  /// order.
  std::vector<WaveOutcome> CampaignWavePush(UserId user,
                                            const std::string& app_name,
                                            CampaignKind kind,
                                            std::span<const std::string> vins);

  /// Applies every staged acknowledgement now (simulation thread only).
  /// Inbound kAck/kAckBatch messages are staged into per-shard inboxes and
  /// normally applied by a flush event the server schedules at the arrival
  /// timestamp — shards drain in parallel over the worker pool, so ack
  /// application no longer serializes on the simulation thread.  Explicit
  /// calls are only needed to observe ack state without running events.
  void FlushAckInboxes();

  // --- queries --------------------------------------------------------------------

  support::Result<InstallState> AppState(const std::string& vin,
                                         const std::string& app_name) const;
  std::vector<std::string> InstalledApps(const std::string& vin) const;
  /// Materialized snapshot of one vehicle's state (nullptr for unknown
  /// VINs).  The live representation is columnar; this view exists for
  /// tests and diagnostics — do not call it per vehicle at fleet scale.
  std::shared_ptr<const Vehicle> FindVehicle(const std::string& vin) const;
  /// Cheap existence probe (no row materialization).
  bool HasVehicle(const std::string& vin) const;
  bool VehicleOnline(const std::string& vin) const;
  bool HasApp(const std::string& app_name) const;
  /// Aggregated over all shards.
  ServerStats stats() const;
  /// Cumulative wall time spent inside ack-inbox flushes (the phase that
  /// parallelizes one-worker-per-shard).  bench_fleet subtracts it from
  /// the simulation phase to report the Amdahl-serial fraction.
  std::uint64_t ack_flush_nanos() const { return flush_ns_; }
  /// One shard's counters (index < shard_count()).
  const ServerStats& shard_stats(std::size_t shard) const {
    return shards_[shard].stats;
  }
  /// Content-addressed package cache (diagnostics/tests).
  const PackageCache& package_cache() const { return cache_; }
  const std::string& address() const { return address_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// One inbound acknowledgement, staged by the simulation thread and
  /// applied by the owning shard's worker at the next flush.  The staged
  /// entry keeps the delivered envelope buffer alive by refcount and
  /// stores the already-parsed message view (aliasing that buffer) — no
  /// copy and no re-parse per ack.
  struct StagedAck {
    std::uint64_t seq = 0;    // global arrival order (log merge key)
    std::string vin;
    /// Handle resolved at staging time (the simulation thread owns every
    /// shard between flush barriers), so the flush worker skips the
    /// per-ack hash lookup.  kNil for unknown/unbound VINs.
    std::uint32_t vehicle = FleetStore::kNil;
    support::SharedBytes envelope;  // the delivered buffer
    /// The embedded kAck/kAckBatch bytes, in place.  Routing only peeks
    /// the type byte; the full parse happens on the flush worker, off the
    /// simulation thread.
    std::span<const std::uint8_t> message;
  };
  /// A log line produced off-thread during an inbox flush; emitted by the
  /// simulation thread after the barrier, sorted by arrival order, so the
  /// observable log stream is identical to inline application.
  struct DeferredLog {
    std::uint64_t seq = 0;
    bool warn = false;
    std::string text;
  };

  // Per-vehicle state partition.  A shard is owned by exactly one thread
  // at any time: the simulation thread outside DeployCampaign /
  // CampaignWavePush / FlushAckInboxes, its assigned worker inside.
  struct Shard {
    /// Packed columnar vehicle/row/connection state (fleet_store.hpp).
    FleetStore store;
    ServerStats stats;
    /// Ack inbox: filled by the simulation thread between flushes, drained
    /// by this shard's worker inside FlushAckInboxes.  Never accessed
    /// concurrently (the pool barrier separates the two phases).
    std::vector<StagedAck> ack_inbox;
    std::vector<DeferredLog> flush_logs;
  };

  /// Where an adopted connection's acks route (no VIN in the envelope).
  struct PeerRef {
    std::uint32_t shard = 0;
    std::uint32_t vehicle = FleetStore::kNil;
  };

  std::size_t ShardIndex(std::string_view vin) const;
  Shard& ShardFor(std::string_view vin);
  const Shard& ShardFor(std::string_view vin) const;

  /// Trace lane owned by whichever thread currently works `shard`: lane
  /// (shard index + 1); lane 0 belongs to the simulation thread.  Inside
  /// a ParallelFor each shard index is held by exactly one worker, and the
  /// pool barrier orders successive phases, so every lane has one writer.
  std::uint32_t TraceLane(const Shard& shard) const {
    return static_cast<std::uint32_t>(&shard - shards_.data()) + 1;
  }

  /// Snapshots the aggregated ServerStats into the process metrics
  /// registry.  Called at the ack-flush barrier (workers quiesced by the
  /// pool handshake) and after campaign fan-outs — the per-shard counters
  /// stay plain fields on the hot path; only the fold touches atomics.
  void FoldStatsToMetrics() const;

  support::Status CheckOwnership(UserId user, UserId owner,
                                 std::string_view vin) const;
  support::Result<const VehicleModelConf*> ModelConf(const std::string& model) const;
  /// Name of an interned model id (catalog read lock or sim thread).
  const std::string& ModelName(std::uint16_t model_id) const {
    return model_names_[model_id];
  }

  /// The full per-vehicle deploy pipeline.  Caller must hold the catalog
  /// read lock and own `shard`.  `batched` selects one kInstallBatch push
  /// (campaigns) vs one push per plug-in (interactive Deploy).
  support::Status DeployOnShard(Shard& shard, UserId user, const std::string& vin,
                                const App& app, bool batched);

  /// One VIN of a campaign wave.  Caller must hold the catalog read lock
  /// and own `shard`; `app` is null for rollback waves.
  WaveOutcome WavePushOnShard(Shard& shard, UserId user, const std::string& vin,
                              const std::string& app_name, const App* app,
                              CampaignKind kind);
  /// Re-pushes the install batch of a stale kPending row (previous
  /// wave's acks were lost), resetting its ack masks.  Rematerializes the
  /// payload — dropped on convergence, never persisted — before pushing,
  /// so it never sends an empty wire.
  support::Status RepushInstallBatch(Shard& shard, std::uint32_t vehicle,
                                     std::uint32_t row);
  /// Regenerates `row`'s packages from the catalog (caller holds the
  /// read lock and owns the vehicle's shard): derives the occupied ids
  /// of the vehicle's *other* rows, acquires the cached batch for that
  /// layout (deterministic generation reproduces the recorded ids when
  /// nothing shifted), and records the refreshed paragraph.  Used when
  /// the payload is absent — after RecoverInstallDb, or when convergence
  /// dropped it.
  support::Status MaterializeRowPackages(Shard& shard, std::uint32_t vehicle,
                                         std::uint32_t row);
  /// Names of installed apps that depend on `app_name` ("" when none).
  std::string DependentsOf(const Shard& shard, std::uint32_t vehicle,
                           const std::string& app_name) const;

  // Pusher internals (simulation thread only).
  void OnAccept(std::shared_ptr<sim::NetPeer> peer);
  void OnVehicleMessage(sim::NetPeer* peer, const support::SharedBytes& data);
  /// Schedules the ack-inbox flush event at Now() (once per batch of
  /// arrivals).
  void ScheduleAckFlush();
  support::Status PushToVehicle(Shard& shard, std::uint32_t vehicle,
                                const std::string& vin,
                                const pirte::PirteMessage& message);
  /// Pushes an already-serialized envelope (cached campaign batches are
  /// pushed this way: one refcount bump, no serialization).
  support::Status PushWireToVehicle(Shard& shard, std::uint32_t vehicle,
                                    std::string_view vin,
                                    const support::SharedBytes& wire);

  // Ack application (flush phase: runs on the shard's worker; `seq` keys
  // the deferred logs).
  void ApplyStagedAck(Shard& shard, const StagedAck& staged);
  void ApplyAck(Shard& shard, std::uint32_t vehicle, std::string_view plugin,
                bool ok, std::string_view detail, std::uint64_t seq);
  /// A failed kAckBatch: the vehicle rejected an entire campaign push;
  /// fails the named app's pending row (or re-arms an uninstalling row).
  void ApplyBatchNack(Shard& shard, std::uint32_t vehicle,
                      std::string_view app_name, std::string_view detail,
                      std::uint64_t seq);

  // Write-ahead status DB (no-ops when options_.status_sink is null).
  // Sink errors degrade durability, never availability: bounded retries,
  // then a sticky degraded flag and a warn — the in-memory transition
  // proceeds either way.
  void WriteStatus(std::string_view vin, const FleetStore::InstallRow& row,
                   Want want, DbState state);
  void WriteStatusRemoved(std::string_view vin, const std::string& app_name,
                          const std::string& version, Want want);
  /// Appends one pre-encoded record with the bounded retry-then-degrade
  /// policy above.  Thread-safe (shard workers write status concurrently;
  /// the writer serializes internally).
  support::Status AppendDurable(std::span<const std::uint8_t> payload);
  /// Merges a recovered catalog image into the live catalog (caller holds
  /// the exclusive catalog lock).  Idempotent against entries the caller
  /// already re-created; errors only on a genuine conflict (same user
  /// index, different name).
  support::Status RestoreCatalogLocked(const CatalogImage& image);
  /// Runs Compact() once the watermark is crossed (warn on failure).
  /// Called from FlushAckInboxes before the parallel drain — the one
  /// recurring simulation-thread hook every campaign path funnels
  /// through, and a point where no worker holds the catalog lock.
  void MaybeCompact();
  /// Streams the DescribeFleet() text into `sink` (one
  /// Append(string_view) per fragment) — single formatter behind
  /// DescribeFleet and FleetFingerprint so they can never drift.
  template <typename Sink>
  void FormatFleet(Sink& sink) const;

  sim::Network& network_;
  std::string address_;
  ServerOptions options_;
  bool started_ = false;

  // Shared catalog: read-mostly.  Mutators exclusive, deploy path shared.
  mutable std::shared_mutex catalog_mutex_;
  std::vector<User> users_;
  std::unordered_map<std::string, VehicleModelConf> models_;   // by model name
  std::unordered_map<std::string, App> apps_;                  // by app name
  /// Model-name interner: vehicles store a u16 id, not a string.  Grows
  /// under the exclusive lock (UploadVehicleModel); reads follow the same
  /// rules as the shard columns.
  std::vector<std::string> model_names_;
  std::unordered_map<std::string, std::uint16_t> model_ids_;

  /// Content-addressed batch cache, shared across shards (internally
  /// locked; generation for a new key runs under its mutex).
  PackageCache cache_;

  std::vector<Shard> shards_;
  /// Accepted connections that have not announced a VIN yet.
  std::vector<std::shared_ptr<sim::NetPeer>> pending_;
  /// Reverse lookup for acks whose envelope omits the VIN.
  std::unordered_map<const sim::NetPeer*, PeerRef> peer_vins_;
  /// Handshake reaping happens before a VIN (and so a shard) is known.
  std::uint64_t pending_reaped_ = 0;
  std::uint64_t next_ack_seq_ = 0;
  bool ack_flush_scheduled_ = false;
  std::uint64_t flush_ns_ = 0;  // total time inside FlushAckInboxes' barrier

  /// Append side of the durable install DB (set iff options_.status_sink).
  std::unique_ptr<StatusDb> status_db_;
  /// Sticky durability-degraded flag + write-loss accounting (see
  /// ServerStats).  Atomics: status writes come from shard workers.
  std::atomic<bool> durability_degraded_{false};
  std::atomic<std::uint64_t> status_write_retries_{0};
  std::atomic<std::uint64_t> status_writes_lost_{0};
  /// Completed checkpoint compactions (simulation thread only).
  std::uint64_t compactions_ = 0;
  /// Weak-referenced by accept/flush callbacks and in-flight SYNs: they
  /// go inert when the server is destroyed instead of dangling.
  std::shared_ptr<const bool> alive_ = std::make_shared<bool>(true);

  support::ThreadPool pool_;
};

}  // namespace dacm::server
